# Empty compiler generated dependencies file for join_order_test.
# This may be replaced when dependencies are built.
