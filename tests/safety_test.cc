#include "safety/safety.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Rule FirstRule(const char* text) { return P(text).rules()[0]; }

TEST(EcCheckTest, TextualOrderUnsafeReorderSafe) {
  Rule rule = FirstRule("q(Y) <- Y = X + 1, r(X).");
  Adornment free_head = Adornment::AllFree(1);
  EXPECT_FALSE(CheckRuleEc(rule, {0, 1}, free_head).ok());
  EXPECT_TRUE(CheckRuleEc(rule, {1, 0}, free_head).ok());
}

TEST(EcCheckTest, ComparisonNeedsBothSides) {
  Rule rule = FirstRule("q(X) <- r(X), X > Y.");
  // Y never bound: unsafe in every order.
  EXPECT_FALSE(CheckRuleEc(rule, {0, 1}, Adornment::AllFree(1)).ok());
  EXPECT_FALSE(CheckRuleEc(rule, {1, 0}, Adornment::AllFree(1)).ok());
  EXPECT_FALSE(FindEcOrder(rule, Adornment::AllFree(1)).has_value());
}

TEST(EcCheckTest, HeadBindingMakesBuiltinComputable) {
  Rule rule = FirstRule("bigger(X, Y) <- X > Y.");
  EXPECT_FALSE(CheckRuleEc(rule, {0}, Adornment::AllFree(2)).ok());
  EXPECT_TRUE(CheckRuleEc(rule, {0}, Adornment::AllBound(2)).ok());
}

TEST(EcCheckTest, RangeRestrictionEnforced) {
  // Head variable Z never bound by the body.
  Rule rule = FirstRule("q(X, Z) <- r(X).");
  EXPECT_FALSE(CheckRuleEc(rule, {0}, Adornment::AllFree(2)).ok());
  // With Z as an input (bound in the query form) the rule is fine.
  auto bf = Adornment::FromString("fb");
  ASSERT_TRUE(bf.ok());
  EXPECT_TRUE(CheckRuleEc(rule, {0}, *bf).ok());
}

TEST(EcCheckTest, GreedyFinderPlacesBuiltinsEagerly) {
  Rule rule = FirstRule("q(Z) <- r(X), s(Y), Z = X + Y, Z > 10.");
  auto order = FindEcOrder(rule, Adornment::AllFree(1));
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(CheckRuleEc(rule, *order, Adornment::AllFree(1)).ok());
}

TEST(EcCheckTest, NegationNeedsGroundArguments) {
  Rule rule = FirstRule("only(X) <- a(X), not b(X, Y).");
  // Y occurs only under negation: no order can bind it.
  EXPECT_FALSE(FindEcOrder(rule, Adornment::AllFree(1)).has_value());
  Rule ok = FirstRule("only(X) <- a(X), b2(X, Y), not b(X, Y).");
  EXPECT_TRUE(FindEcOrder(ok, Adornment::AllFree(1)).has_value());
}

// The paper's section 8.3 counterexample: p(x,y,z) <- x=3, z=x+y and the
// query conjoined with y = 2*x. No permutation of the rule body alone can
// compute it even though the answer <3, 6, 18> is finite.
TEST(EcCheckTest, PaperSection83NoSafePermutation) {
  Rule rule = FirstRule("p(X, Y, Z) <- X = 3, Z = X + Y.");
  // Query p(X, Y, Z)? with no bindings: Y cannot be bound by any order.
  EXPECT_FALSE(FindEcOrder(rule, Adornment::AllFree(3)).has_value());
  // But once y is bound (e.g. by flattening in the conjunct), it works:
  auto adn = Adornment::FromString("fbf");
  ASSERT_TRUE(adn.ok());
  EXPECT_TRUE(FindEcOrder(rule, *adn).has_value());
}

TEST(WellFoundedTest, DatalogCliqueAlwaysSafe) {
  Program p = P(R"(
    tc(X, Y) <- e(X, Y).
    tc(X, Y) <- e(X, Z), tc(Z, Y).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  ASSERT_EQ(g.cliques().size(), 1u);
  EXPECT_TRUE(CheckWellFounded(p, g.cliques()[0], {"tc", 2},
                               Adornment::AllFree(2))
                  .ok());
}

TEST(WellFoundedTest, ArithmeticGrowthRejected) {
  Program p = P(R"(
    nat(X) <- zero(X).
    nat(Y) <- nat(X), Y = X + 1.
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  ASSERT_EQ(g.cliques().size(), 1u);
  EXPECT_FALSE(CheckWellFounded(p, g.cliques()[0], {"nat", 1},
                                Adornment::AllFree(1))
                   .ok());
  EXPECT_FALSE(CheckWellFounded(p, g.cliques()[0], {"nat", 1},
                                Adornment::AllBound(1))
                   .ok());
}

TEST(WellFoundedTest, StructuralDescentOnBoundArgumentAccepted) {
  Program p = P(R"(
    member(X, [X | T]).
    member(X, [H | T]) <- member(X, T).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  ASSERT_EQ(g.cliques().size(), 1u);
  auto fb = Adornment::FromString("fb");
  ASSERT_TRUE(fb.ok());
  EXPECT_TRUE(CheckWellFounded(p, g.cliques()[0], {"member", 2}, *fb).ok());
  // Free second argument: bottom-up term growth, no well-founded order.
  EXPECT_FALSE(CheckWellFounded(p, g.cliques()[0], {"member", 2},
                                Adornment::AllFree(2))
                   .ok());
}

TEST(SafetyReportTest, SafeProgramReportsSafe) {
  Program p = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )");
  SafetyReport report = AnalyzeQuerySafety(p, L("anc(1, Y)"));
  EXPECT_TRUE(report.safe) << report.ToString();
}

TEST(SafetyReportTest, ProblemsNameTheRule) {
  Program p = P("q(X, Y) <- r(X), X > Y.");
  SafetyReport report = AnalyzeQuerySafety(p, L("q(X, Y)"));
  ASSERT_FALSE(report.safe);
  ASSERT_FALSE(report.problems.empty());
  EXPECT_NE(report.problems[0].find("q(X, Y)"), std::string::npos)
      << report.ToString();
}

TEST(SafetyReportTest, BoundQueryFormCanBeSafeWhereFreeIsNot) {
  Program p = P("half(X, Y) <- Y = X / 2.");
  EXPECT_FALSE(AnalyzeQuerySafety(p, L("half(X, Y)")).safe);
  EXPECT_TRUE(AnalyzeQuerySafety(p, L("half(10, Y)")).safe);
}

}  // namespace
}  // namespace ldl
