#ifndef LDLOPT_BENCH_BENCH_UTIL_H_
#define LDLOPT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace ldl {
namespace bench {

/// Fixed-width console table, used to print the paper-style result tables
/// that each bench binary regenerates.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&widths](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into std::string.
inline std::string Fmt(double v, const char* fmt = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Pct(size_t num, size_t den) {
  if (den == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%",
                100.0 * static_cast<double>(num) / static_cast<double>(den));
  return buf;
}

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Banner(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace ldl

#endif  // LDLOPT_BENCH_BENCH_UTIL_H_
