
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine_stress_test.cc" "tests/CMakeFiles/engine_stress_test.dir/engine_stress_test.cc.o" "gcc" "tests/CMakeFiles/engine_stress_test.dir/engine_stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testing/CMakeFiles/ldl_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/ldl/CMakeFiles/ldl_ldl.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/ldl_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/safety/CMakeFiles/ldl_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/ldl_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ldl_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ldl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ldl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/ldl_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ldl_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
