#ifndef LDLOPT_SAFETY_SAFETY_H_
#define LDLOPT_SAFETY_SAFETY_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/program.h"
#include "base/status.h"
#include "graph/binding.h"
#include "graph/dependency_graph.h"

namespace ldl {

/// Effective computability (EC) of one rule under a body order and a head
/// binding (paper section 8.1): walking the body in `order`,
///  - every builtin must be computable when reached (comparisons need both
///    sides bound, `=` needs one side bound);
///  - every negated literal must have all variables bound when reached;
///  - after the walk, every head variable in a *free* head position must be
///    bound (range restriction of the output).
/// Returns OK or kUnsafe with a message naming the offending literal.
Status CheckRuleEc(const Rule& rule, const std::vector<size_t>& order,
                   const Adornment& head_adornment);

/// Searches for an order making the rule effectively computable under the
/// head binding. Binding sets grow monotonically along a body walk, so a
/// greedy "place any placeable literal" scan is complete: it finds an EC
/// order iff one exists. Returns nullopt when every permutation is unsafe
/// (the section 8.3 situation that only flattening could rescue).
std::optional<std::vector<size_t>> FindEcOrder(const Rule& rule,
                                               const Adornment& head_adornment);

/// Sufficient well-foundedness condition for a recursive clique queried
/// under `query_adornment` (on predicate `queried`), per section 8.1:
///  - if no clique rule builds new terms (no function symbols in head
///    arguments, no arithmetic feeding head variables), the Herbrand
///    universe reachable bottom-up is finite: safe for any adornment;
///  - otherwise a well-founded order is required: some bound argument of
///    the recursive call must be a strict subterm of the corresponding
///    (bound) head argument — the "list is monotonically decreasing"
///    condition. Term-growing recursion without such a decreasing bound
///    argument is reported unsafe.
/// This is a sufficient condition: it may reject programs that terminate
/// for data-dependent reasons (e.g. growth driven by an acyclic base
/// relation), matching the paper's discussion of sufficient conditions.
Status CheckWellFounded(const Program& program, const RecursiveClique& clique,
                        const PredicateId& queried,
                        const Adornment& query_adornment);

/// A whole-query safety report: runs FindEcOrder for every (rule,
/// adornment) reachable from the goal and CheckWellFounded for every
/// reachable clique.
struct SafetyReport {
  bool safe = true;
  std::vector<std::string> problems;

  std::string ToString() const;
};

SafetyReport AnalyzeQuerySafety(const Program& program, const Literal& goal);

}  // namespace ldl

#endif  // LDLOPT_SAFETY_SAFETY_H_
