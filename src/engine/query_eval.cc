#include "engine/query_eval.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "base/strings.h"
#include "engine/counting.h"
#include "engine/magic.h"
#include "engine/unify.h"
#include "graph/dependency_graph.h"

namespace ldl {

Program ReachableSubprogram(const Program& program, const Literal& goal,
                            std::vector<size_t>* index_map) {
  std::set<PredicateId> reachable;
  std::vector<PredicateId> stack;
  if (program.IsDerived(goal.predicate())) {
    reachable.insert(goal.predicate());
    stack.push_back(goal.predicate());
  }
  while (!stack.empty()) {
    PredicateId pred = stack.back();
    stack.pop_back();
    for (size_t rule_index : program.RulesFor(pred)) {
      for (const Literal& lit : program.rules()[rule_index].body()) {
        if (lit.IsBuiltin()) continue;
        PredicateId p = lit.predicate();
        if (program.IsDerived(p) && reachable.insert(p).second) {
          stack.push_back(p);
        }
      }
    }
  }
  Program out;
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    if (reachable.count(rule.head().predicate())) {
      out.AddRule(rule);
      if (index_map != nullptr) index_map->push_back(i);
    }
  }
  return out;
}

Relation SelectMatching(Relation* rel, const Literal& goal) {
  Relation out("answers", goal.arity());
  if (rel == nullptr) return out;
  // Index on the ground positions of the goal.
  std::vector<int> bound_cols;
  Tuple key;
  for (size_t i = 0; i < goal.arity(); ++i) {
    if (goal.args()[i].IsGround()) {
      bound_cols.push_back(static_cast<int>(i));
      key.push_back(goal.args()[i]);
    }
  }
  auto consider = [&out, &goal](const Tuple& t) {
    Substitution subst;
    bool ok = true;
    for (size_t i = 0; i < goal.arity(); ++i) {
      if (!Unify(goal.args()[i], t[i], &subst)) {
        ok = false;
        break;
      }
    }
    if (ok) out.Insert(t);
  };
  if (!bound_cols.empty()) {
    for (uint32_t id : rel->Lookup(bound_cols, key)) {
      consider(rel->tuple(id));
    }
  } else {
    for (const Tuple& t : rel->tuples()) consider(t);
  }
  return out;
}

std::vector<Tuple> CanonicalAnswers(const Relation& answers) {
  std::vector<Tuple> out = answers.tuples();
  std::sort(out.begin(), out.end());
  return out;
}

std::string AnswerFingerprint(const Relation& answers) {
  // Commutative accumulation (sum of per-tuple hashes) so the digest is
  // independent of insertion order without sorting.
  uint64_t acc = 0;
  for (const Tuple& t : answers.tuples()) {
    acc += static_cast<uint64_t>(TupleHash{}(t)) * 0x9e3779b97f4a7c15ULL;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu:%016llx", answers.size(),
                static_cast<unsigned long long>(acc));
  return buf;
}

namespace {

Result<QueryResult> EvaluateFull(const Program& program, Database* base,
                                 const Literal& goal, RecursionMethod method,
                                 const QueryEvalOptions& options) {
  QueryResult result;
  result.method_used = method;
  std::vector<size_t> index_map;
  Program sub = ReachableSubprogram(program, goal, &index_map);
  // options.fixpoint.rule_orders is keyed by indices into the *original*
  // program; remap to the subprogram's indices.
  FixpointOptions fixpoint = options.fixpoint;
  fixpoint.method_label = RecursionMethodToString(method);
  fixpoint.rule_orders.clear();
  for (size_t sub_index = 0; sub_index < index_map.size(); ++sub_index) {
    auto it = options.fixpoint.rule_orders.find(index_map[sub_index]);
    if (it != options.fixpoint.rule_orders.end()) {
      fixpoint.rule_orders[sub_index] = it->second;
    }
  }
  Database scratch;
  scratch.set_accountant(fixpoint.trace.accountant);
  LDL_RETURN_NOT_OK(EvaluateProgram(sub, method, base, &scratch,
                                    &result.stats, fixpoint));
  result.answers = SelectMatching(scratch.Find(goal.predicate()), goal);
  // The full bottom-up methods compute every reachable derived predicate in
  // its entirety, so the scratch relation sizes are true all-free
  // cardinalities — exactly what the feedback statistics catalog wants.
  // (Magic/counting compute goal-restricted subsets and must not report.)
  for (const PredicateId& pred : scratch.Predicates()) {
    const Relation* rel = scratch.Find(pred);
    result.derived_sizes.emplace_back(pred,
                                      static_cast<uint64_t>(rel->size()));
  }
  return result;
}

Result<QueryResult> EvaluateMagic(const Program& program, Database* base,
                                  const Literal& goal,
                                  const QueryEvalOptions& options) {
  QueryResult result;
  result.method_used = RecursionMethod::kMagic;
  // Adornment itself only visits rules reachable from the goal, and
  // options.sips is keyed by original rule indices — adorn the original
  // program directly.
  Span rewrite_span =
      options.fixpoint.trace.StartSpan("magic-rewrite", "engine");
  LDL_ASSIGN_OR_RETURN(AdornedProgram adorned,
                       AdornProgramForQuery(program, goal, options.sips));
  LDL_ASSIGN_OR_RETURN(MagicProgram magic, MagicRewrite(adorned));
  rewrite_span.Finish();

  // Install the seed as a bodiless rule so its predicate counts as derived
  // (EvaluateProgram reads non-derived predicates from `base`).
  magic.rewritten.AddRule(Rule(magic.seed, {}));
  Database scratch;
  scratch.set_accountant(options.fixpoint.trace.accountant);
  // The SIP orders are already baked into the rewritten rule bodies;
  // rule_orders keyed by original-program indices must not leak through.
  FixpointOptions fixpoint = options.fixpoint;
  fixpoint.rule_orders.clear();
  // The rewritten program runs semi-naive, but the rounds belong to magic.
  fixpoint.method_label = "magic";
  LDL_RETURN_NOT_OK(EvaluateProgram(magic.rewritten,
                                    RecursionMethod::kSemiNaive, base,
                                    &scratch, &result.stats, fixpoint));
  result.answers =
      SelectMatching(scratch.Find(magic.answer_pred), magic.answer_goal);
  return result;
}

Result<QueryResult> EvaluateCounting(const Program& program, Database* base,
                                     const Literal& goal,
                                     const QueryEvalOptions& options) {
  Span rewrite_span =
      options.fixpoint.trace.StartSpan("counting-rewrite", "engine");
  auto rewritten = CountingRewrite(program, goal);
  rewrite_span.Finish();
  if (!rewritten.ok()) {
    if (options.counting_fallback &&
        rewritten.status().code() == StatusCode::kUnsupported) {
      LDL_ASSIGN_OR_RETURN(QueryResult result,
                           EvaluateMagic(program, base, goal, options));
      result.note = StrCat("counting inapplicable (",
                           rewritten.status().message(),
                           "); fell back to magic");
      return result;
    }
    return rewritten.status();
  }
  CountingProgram counting = std::move(rewritten).value();
  counting.rewritten.AddRule(Rule(counting.seed, {}));

  QueryResult result;
  result.method_used = RecursionMethod::kCounting;
  Database scratch;
  scratch.set_accountant(options.fixpoint.trace.accountant);
  FixpointOptions fixpoint = options.fixpoint;
  fixpoint.rule_orders.clear();
  fixpoint.method_label = "counting";
  // Divergence guard. On acyclic data the ascent gains at least one new
  // counter level per round and the longest level chain is bounded by the
  // number of base tuples, so |EDB| + a few settling rounds suffices for
  // any terminating run. Cyclic data then trips kResourceExhausted after
  // O(|EDB|) rounds — and falls back to magic below — instead of grinding
  // through the generic million-round safety cap.
  fixpoint.max_iterations =
      std::min(fixpoint.max_iterations,
               base->TotalTuples() + counting.rewritten.rules().size() + 8);
  Status st = EvaluateProgram(counting.rewritten, RecursionMethod::kSemiNaive,
                              base, &scratch, &result.stats, fixpoint);
  if (!st.ok()) {
    if (options.counting_fallback &&
        st.code() == StatusCode::kResourceExhausted) {
      LDL_ASSIGN_OR_RETURN(QueryResult fallback,
                           EvaluateMagic(program, base, goal, options));
      fallback.note =
          StrCat("counting diverged (", st.message(), "); fell back to magic");
      return fallback;
    }
    return st;
  }
  // Answers: project the counter away; re-attach the goal's constants.
  Relation matched = SelectMatching(scratch.Find(counting.answer_pred),
                                    counting.answer_goal);
  Relation answers("answers", goal.arity());
  const Adornment adn = Adornment::FromGoal(goal);
  for (const Tuple& t : matched.tuples()) {
    Tuple full;
    full.reserve(goal.arity());
    size_t free_idx = 1;  // t[0] is the counter (= 0)
    for (size_t i = 0; i < goal.arity(); ++i) {
      if (adn.IsBound(i)) {
        full.push_back(goal.args()[i]);
      } else {
        full.push_back(t[free_idx++]);
      }
    }
    answers.Insert(std::move(full));
  }
  result.answers = std::move(answers);
  return result;
}

}  // namespace

Result<QueryResult> EvaluateQuery(const Program& program, Database* base,
                                  const Literal& goal, RecursionMethod method,
                                  const QueryEvalOptions& options) {
  Span span = options.fixpoint.trace.StartSpan("query", "engine");
  if (span.active()) {
    span.AddArg("goal", goal.ToString());
    span.AddArg("method", RecursionMethodToString(method));
    if (options.fixpoint.engine.num_threads > 1) {
      span.AddArg("threads",
                  std::to_string(options.fixpoint.engine.num_threads));
    }
  }
  if (options.fixpoint.trace.metrics != nullptr) {
    options.fixpoint.trace.Count(
        StrCat("engine.method.", RecursionMethodToString(method)));
  }
  LDL_RETURN_NOT_OK(options.fixpoint.trace.CheckCancel());
  if (!program.IsDerived(goal.predicate())) {
    // A pure base-relation query needs no rules.
    QueryResult result;
    result.method_used = method;
    result.answers = SelectMatching(base->Find(goal.predicate()), goal);
    return result;
  }
  switch (method) {
    case RecursionMethod::kNaive:
    case RecursionMethod::kSemiNaive:
      return EvaluateFull(program, base, goal, method, options);
    case RecursionMethod::kMagic:
      return EvaluateMagic(program, base, goal, options);
    case RecursionMethod::kCounting:
      return EvaluateCounting(program, base, goal, options);
  }
  return Status::Internal("unknown recursion method");
}

}  // namespace ldl
