#ifndef LDLOPT_PLAN_EXPLAIN_H_
#define LDLOPT_PLAN_EXPLAIN_H_

#include <string>

#include "obs/context.h"
#include "plan/processing_tree.h"

namespace ldl {

/// EXPLAIN / EXPLAIN ANALYZE rendering of an annotated processing tree.
///
/// Without a profile the output is the estimate-only EXPLAIN view: one row
/// per node showing the tree structure (AND/OR/CC/SCAN/BUILTIN, [mat]/[pipe]
/// marks, method labels, adornments) with the optimizer's cost and
/// cardinality estimates in aligned columns.
///
/// With a profile (an ExecutionProfile filled by TreeInterpreter over the
/// same tree) it becomes EXPLAIN ANALYZE: estimated cost/rows side by side
/// with measured rows, tuples examined, wall time, executions and memo hits
/// per node. Nodes the execution never reached (e.g. builtins evaluated
/// inline by their AND parent) show "-" in the measured columns.
std::string RenderExplain(const PlanNode& tree,
                          const ExecutionProfile* profile = nullptr);

}  // namespace ldl

#endif  // LDLOPT_PLAN_EXPLAIN_H_
