// Experiment E5 — the premise of the paper's section 6:
//
//   "Typically, the cost spectrum of the executions in an execution space
//    spans many orders of magnitude ... It is more important to avoid the
//    worst executions than to obtain the best execution."
//
// For random conjunctive queries we enumerate the estimated cost of every
// permutation and report min / median / max, the cost of the Prolog-style
// lexicographic execution (the paper's section 1 baseline), and the cost of
// the optimizer's choice. A second table executes a small instance for real
// and shows the measured work tracks the estimates (who-wins preserved).
// A third table ablates the cost model weights (IO-heavy vs CPU-heavy).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "ast/parser.h"
#include "bench_util.h"
#include "engine/fixpoint.h"
#include "optimizer/join_order.h"
#include "storage/database.h"
#include "testing/query_gen.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Table;
using testing::MakeRandomConjunct;
using testing::QueryShape;

std::vector<double> AllPermutationCosts(const std::vector<ConjunctItem>& items,
                                        const CostModel& model) {
  std::vector<size_t> order(items.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> costs;
  BoundVars none;
  do {
    SequenceCost sc = model.CostSequence(items, order, none);
    if (sc.safe) costs.push_back(sc.cost);
  } while (std::next_permutation(order.begin(), order.end()));
  std::sort(costs.begin(), costs.end());
  return costs;
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E5", "cost spectrum over the permutation space "
                      "(estimated costs; n = 7 random relations)");
  {
    Table table({"seed", "shape", "min", "median", "max", "max/min",
                 "lexicographic", "optimizer", "opt/min"});
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      QueryShape shape =
          seed % 2 == 0 ? QueryShape::kChain : QueryShape::kRandom;
      Rng rng(seed * 104729);
      auto q = MakeRandomConjunct(shape, 7, &rng);
      CostModel model;
      std::vector<double> costs = AllPermutationCosts(q.items, model);
      if (costs.empty()) continue;
      StrategyOptions options;
      BoundVars none;
      OrderResult lex = MakeStrategy(SearchStrategy::kLexicographic, options)
                            ->FindOrder(q.items, none, model);
      OrderResult opt = MakeStrategy(SearchStrategy::kExhaustive, options)
                            ->FindOrder(q.items, none, model);
      table.AddRow({std::to_string(seed),
                    testing::QueryShapeToString(shape), Fmt(costs.front()),
                    Fmt(costs[costs.size() / 2]), Fmt(costs.back()),
                    Fmt(costs.back() / costs.front(), "%.1e"),
                    Fmt(lex.cost), Fmt(opt.cost),
                    Fmt(opt.cost / costs.front(), "%.3f")});
    }
    table.Print();
    std::printf(
        "Expected shape: max/min spans orders of magnitude; the optimizer\n"
        "sits at min; the textual (Prolog) order is a lottery ticket.\n\n");
  }

  bench::Banner("E5b", "estimates vs reality: executing best / textual / "
                       "worst orders of one 4-relation join");
  {
    // Materialize an actual database matching the generated statistics
    // closely enough, then evaluate the rule under three orders.
    Program program = *ParseProgram(
        "q(V0, V4) <- r0(V0, V1), r1(V1, V2), r2(V2, V3), r3(V3, V4).");
    Database db;
    testing::MakeRandomRelation("r0", 2, 4000, 60, 11, &db);
    testing::MakeRandomRelation("r1", 2, 50, 60, 12, &db);
    testing::MakeRandomRelation("r2", 2, 2000, 60, 13, &db);
    testing::MakeRandomRelation("r3", 2, 100, 60, 14, &db);
    Statistics stats = Statistics::Collect(db);

    CostModelOptions cost_options;
    CostModel model(cost_options);
    std::vector<ConjunctItem> items;
    for (const Literal& lit : program.rules()[0].body()) {
      items.push_back(MakeBaseItem(lit, stats, cost_options));
    }
    StrategyOptions options;
    BoundVars none;
    OrderResult best = MakeStrategy(SearchStrategy::kExhaustive, options)
                           ->FindOrder(items, none, model);

    // Worst safe order by full enumeration.
    std::vector<size_t> worst_order;
    double worst_cost = 0;
    {
      std::vector<size_t> order{0, 1, 2, 3};
      do {
        SequenceCost sc = model.CostSequence(items, order, none);
        if (sc.safe && sc.cost > worst_cost) {
          worst_cost = sc.cost;
          worst_order = order;
        }
      } while (std::next_permutation(order.begin(), order.end()));
    }

    Table table({"order", "est. cost", "tuples examined", "answers"});
    auto run = [&](const std::string& name, const std::vector<size_t>& order,
                   double est) {
      FixpointOptions fopts;
      fopts.rule_orders[0] = order;
      Database scratch;
      FixpointStats fstats;
      Status st = EvaluateProgram(program, RecursionMethod::kSemiNaive, &db,
                                  &scratch, &fstats, fopts);
      if (!st.ok()) return;
      table.AddRow({name, Fmt(est),
                    Fmt(static_cast<double>(fstats.counters.tuples_examined),
                        "%.4g"),
                    std::to_string(scratch.Find({"q", 2})->size())});
    };
    run("optimizer's best", best.order, best.cost);
    run("textual (Prolog)", {0, 1, 2, 3},
        model.CostSequence(items, {0, 1, 2, 3}, none).cost);
    run("worst", worst_order, worst_cost);
    table.Print();
    std::printf("Expected shape: measured work ranks exactly as estimated "
                "cost ranks.\n\n");
  }

  bench::Banner("E5c", "cost-model ablation: does the winner change when "
                       "the weights change?");
  {
    Table table({"weights", "optimal order (seed 3)", "cost"});
    for (auto [name, tuple_cost, probe_cost] :
         {std::tuple<const char*, double, double>{"CPU-heavy", 1.0, 0.1},
          std::tuple<const char*, double, double>{"balanced", 1.0, 1.2},
          std::tuple<const char*, double, double>{"IO-heavy", 1.0, 25.0}}) {
      CostModelOptions cost_options;
      cost_options.tuple_cost = tuple_cost;
      cost_options.index_probe_cost = probe_cost;
      CostModel model(cost_options);
      Rng rng(3 * 104729);
      testing::ConjunctGenOptions gen;
      gen.cost = cost_options;
      auto q = MakeRandomConjunct(QueryShape::kRandom, 6, &rng, gen);
      StrategyOptions options;
      BoundVars none;
      OrderResult best = MakeStrategy(SearchStrategy::kExhaustive, options)
                             ->FindOrder(q.items, none, model);
      std::string order_text;
      for (size_t i : best.order) order_text += "r" + std::to_string(i) + " ";
      table.AddRow({name, order_text, Fmt(best.cost)});
    }
    table.Print();
    std::printf("The search machinery is cost-model agnostic (section 6: the\n"
                "formulae are a black box); only the chosen plan shifts.\n\n");
  }
}

namespace {

void BM_FullEnumeration(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(17 + n);
  auto q = MakeRandomConjunct(QueryShape::kRandom, n, &rng);
  CostModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AllPermutationCosts(q.items, model));
  }
}
BENCHMARK(BM_FullEnumeration)->Arg(5)->Arg(7);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("cost_spectrum");
  return 0;
}
