#include "storage/sharded.h"

#include <cassert>

namespace ldl {

bool TupleBatch::Insert(Tuple t) {
  assert(t.size() == arity_ && "tuple arity mismatch");
  if (t.size() != arity_) return false;
  size_t h = TupleHash{}(t);
  auto& bucket = dedup_[h];
  for (uint32_t id : bucket) {
    if (tuples_[id] == t) return false;
  }
  bucket.push_back(static_cast<uint32_t>(tuples_.size()));
  approx_bytes_ += ApproxTupleBytes(t) + sizeof(size_t) + sizeof(uint32_t);
  tuples_.push_back(std::move(t));
  hashes_.push_back(h);
  return true;
}

void TupleBatch::Clear() {
  tuples_.clear();
  hashes_.clear();
  dedup_.clear();
  approx_bytes_ = 0;
}

ShardedMerger::ShardedMerger(size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

void ShardedMerger::CollectShard(size_t shard,
                                 const std::vector<const TupleBatch*>& batches,
                                 const Relation& base) {
  assert(shard < shards_.size());
  Shard& s = shards_[shard];
  const size_t p = shards_.size();
  for (const TupleBatch* batch : batches) {
    if (batch == nullptr) continue;
    const auto& tuples = batch->tuples();
    const auto& hashes = batch->hashes();
    for (size_t i = 0; i < tuples.size(); ++i) {
      const size_t h = hashes[i];
      if (h % p != shard) continue;
      if (base.ContainsHashed(tuples[i], h)) continue;
      auto& bucket = s.dedup[h];
      bool seen = false;
      for (uint32_t id : bucket) {
        if (s.tuples[id] == tuples[i]) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      bucket.push_back(static_cast<uint32_t>(s.tuples.size()));
      s.tuples.push_back(tuples[i]);
      s.hashes.push_back(h);
    }
  }
}

size_t ShardedMerger::Commit(Relation* full, Relation* delta) {
  size_t added = 0;
  for (Shard& s : shards_) {
    for (size_t i = 0; i < s.tuples.size(); ++i) {
      if (delta != nullptr) delta->AppendUnchecked(s.tuples[i], s.hashes[i]);
      full->AppendUnchecked(std::move(s.tuples[i]), s.hashes[i]);
      ++added;
    }
    s.tuples.clear();
    s.hashes.clear();
    s.dedup.clear();
  }
  return added;
}

size_t ShardedMerger::CollectedCount() const {
  size_t n = 0;
  for (const Shard& s : shards_) n += s.tuples.size();
  return n;
}

std::vector<Relation> HashPartitionRelation(const Relation& rel,
                                            size_t parts) {
  if (parts == 0) parts = 1;
  std::vector<Relation> out;
  out.reserve(parts);
  for (size_t i = 0; i < parts; ++i) {
    out.emplace_back(rel.name(), rel.arity());
  }
  for (const Tuple& t : rel.tuples()) {
    size_t h = TupleHash{}(t);
    // Source relations are duplicate-free, so each partition append is new.
    out[h % parts].AppendUnchecked(t, h);
  }
  return out;
}

}  // namespace ldl
