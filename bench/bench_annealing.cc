// Experiment E2 — simulated annealing as the stochastic strategy of the
// paper's section 7.1: "the minimum cost permutation can be found by
// picking, randomly, a 'large' number of permutations ... This number is
// claimed to be much smaller by using ... Simulated Annealing [IW 87]".
//
// We measure: solution quality (ratio to the exhaustive optimum) and the
// number of cost evaluations spent, versus exhaustive and DP — plus an
// ablation over the annealing schedule (cooling rate), since the paper
// notes the schedule is the only free parameter beyond the swap-two
// neighbor relation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "optimizer/join_order.h"
#include "testing/query_gen.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Table;
using testing::MakeRandomConjunct;
using testing::QueryShape;

struct SaStats {
  double avg_ratio = 0;
  double worst_ratio = 0;
  double avg_evals = 0;
  size_t optimal = 0;
  size_t total = 0;
};

SaStats MeasureSa(size_t n, double cooling, size_t trials) {
  StrategyOptions exact_options;
  CostModel model;
  auto exact = MakeStrategy(SearchStrategy::kDynamicProgramming,
                            exact_options);
  StrategyOptions sa_options;
  sa_options.anneal_cooling = cooling;
  auto sa = MakeStrategy(SearchStrategy::kAnnealing, sa_options);

  SaStats stats;
  for (size_t trial = 0; trial < trials; ++trial) {
    Rng rng(trial * 2654435761ULL + n);
    auto q = MakeRandomConjunct(QueryShape::kRandom, n, &rng);
    BoundVars none;
    OrderResult best = exact->FindOrder(q.items, none, model);
    OrderResult heur = sa->FindOrder(q.items, none, model);
    if (!best.safe || !heur.safe) continue;
    double ratio = heur.cost / best.cost;
    stats.total++;
    stats.avg_ratio += ratio;
    stats.worst_ratio = std::max(stats.worst_ratio, ratio);
    stats.avg_evals += static_cast<double>(heur.cost_evaluations);
    if (ratio <= 1.0001) stats.optimal++;
  }
  if (stats.total > 0) {
    stats.avg_ratio /= static_cast<double>(stats.total);
    stats.avg_evals /= static_cast<double>(stats.total);
  }
  return stats;
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E2", "simulated annealing quality vs evaluations "
                      "(30 random queries per row, vs DP optimum)");
  {
    Table table({"n", "n! (space)", "optimal", "avg ratio", "worst",
                 "avg evals (SA)"});
    for (size_t n : {6, 8, 10, 12}) {
      SaStats s = MeasureSa(n, 0.9, 30);
      double fact = 1;
      for (size_t i = 2; i <= n; ++i) fact *= static_cast<double>(i);
      table.AddRow({std::to_string(n), Fmt(fact, "%.2e"),
                    bench::Pct(s.optimal, s.total), Fmt(s.avg_ratio, "%.3f"),
                    Fmt(s.worst_ratio, "%.2f"), Fmt(s.avg_evals, "%.0f")});
    }
    table.Print();
  }
  std::printf("Ablation: annealing schedule (n = 10).\n");
  {
    Table table({"cooling", "optimal", "avg ratio", "worst", "avg evals"});
    for (double cooling : {0.5, 0.8, 0.9, 0.95}) {
      SaStats s = MeasureSa(10, cooling, 30);
      table.AddRow({Fmt(cooling, "%.2f"), bench::Pct(s.optimal, s.total),
                    Fmt(s.avg_ratio, "%.3f"), Fmt(s.worst_ratio, "%.2f"),
                    Fmt(s.avg_evals, "%.0f")});
    }
    table.Print();
  }
  std::printf(
      "Expected shape: SA reaches (near-)optimal cost with a number of\n"
      "evaluations that grows polynomially, far below n!.\n\n");
}

namespace {

void BM_Annealing(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7 + n);
  auto q = MakeRandomConjunct(QueryShape::kRandom, n, &rng);
  StrategyOptions options;
  CostModel model;
  auto sa = MakeStrategy(SearchStrategy::kAnnealing, options);
  BoundVars none;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa->FindOrder(q.items, none, model));
  }
}
BENCHMARK(BM_Annealing)->Arg(6)->Arg(10)->Arg(14);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("annealing");
  return 0;
}
