#ifndef LDLOPT_PLAN_PROCESSING_TREE_H_
#define LDLOPT_PLAN_PROCESSING_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/program.h"
#include "base/status.h"
#include "graph/binding.h"
#include "graph/dependency_graph.h"

namespace ldl {

/// Node kinds of the paper's processing graph (section 4): AND nodes are
/// joins, OR nodes are unions, contracted recursive cliques are CC nodes
/// (atomic fixpoint operators); leaves scan base relations or evaluate
/// builtin predicates.
enum class PlanNodeKind {
  kScan,     ///< leaf: base relation access
  kBuiltin,  ///< leaf: evaluable predicate (comparison / arithmetic)
  kAnd,      ///< join of its children (one rule body); carries a rule index
  kOr,       ///< union of its children (the rules defining a predicate)
  kCc,       ///< contracted clique: least-fixpoint operator
};

const char* PlanNodeKindToString(PlanNodeKind kind);

/// One node of a processing tree. Nodes own their children; a tree is the
/// logically-equivalent-execution artifact the optimizer's search walks and
/// the transformations of section 5 rewrite.
struct PlanNode {
  PlanNodeKind kind = PlanNodeKind::kScan;

  /// Square vs triangle node: materialized subtrees are computed bottom-up
  /// in full; pipelined subtrees consume bindings from their left siblings
  /// (sideways information passing).
  bool materialized = true;

  /// EL label: the algorithm implementing the node ("scan", "index-scan",
  /// "nested-loop", "index-join", "hash-join", "union", "naive",
  /// "seminaive", "magic", "counting").
  std::string method;

  /// The goal this node computes: for kScan/kBuiltin the literal itself;
  /// for kOr/kCc the defined predicate's goal pattern; for kAnd the head of
  /// its rule.
  Literal goal;

  /// Binding pattern under which the node is evaluated (PS: bound argument
  /// positions act as selections pushed onto the node).
  Adornment binding;

  /// Projection annotation (PP): columns of `goal` that ancestors actually
  /// need; empty = all.
  std::vector<size_t> projection;

  /// For kAnd: index of the rule in the source program, and the chosen
  /// permutation of the body (children are stored in execution order;
  /// `body_order[j]` is the original body position of child j).
  size_t rule_index = SIZE_MAX;
  std::vector<size_t> body_order;

  /// For kCc: the clique's predicates and rules (copied from the
  /// dependency graph) and the chosen per-rule SIPs (the c-permutation,
  /// PA transformation).
  std::vector<PredicateId> clique_predicates;
  std::vector<size_t> clique_rules;
  std::vector<std::vector<size_t>> clique_orders;

  /// Cost annotations filled by the optimizer.
  double est_cost = 0;
  double est_cardinality = 0;

  std::vector<std::unique_ptr<PlanNode>> children;

  std::unique_ptr<PlanNode> Clone() const;

  /// Multi-line ASCII rendering (indented tree).
  std::string ToString() const;
};

/// Builds the initial (unoptimized) processing tree for `goal`:
///  - each derived non-recursive predicate expands to an OR node over AND
///    nodes (one per rule), textual body order, all nodes materialized;
///  - each recursive clique is contracted into a single CC node whose
///    children are the subtrees for the non-clique literals used by the
///    clique's rules (the operands of the fixpoint operator);
///  - shared subtrees are replicated, making the graph a tree (section 4).
/// Expansion depth is bounded by the predicate nesting (finite because
/// cliques are contracted).
Result<std::unique_ptr<PlanNode>> BuildProcessingTree(const Program& program,
                                                      const Literal& goal);

/// Number of nodes in the tree.
size_t TreeSize(const PlanNode& node);

}  // namespace ldl

#endif  // LDLOPT_PLAN_PROCESSING_TREE_H_
