#include "optimizer/join_order.h"

#include <algorithm>
#include <cmath>

#include "obs/search_trace.h"
#include "optimizer/kbz.h"

namespace ldl {

const char* SearchStrategyToString(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kExhaustive:
      return "exhaustive";
    case SearchStrategy::kDynamicProgramming:
      return "dp";
    case SearchStrategy::kKbz:
      return "kbz";
    case SearchStrategy::kAnnealing:
      return "annealing";
    case SearchStrategy::kLexicographic:
      return "lexicographic";
  }
  return "?";
}

namespace {

std::vector<size_t> IdentityOrder(size_t n) {
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

/// Collapses the null/disabled cases so strategies test one pointer.
SearchTracer* Active(SearchTracer* trace) {
  return (trace != nullptr && trace->enabled()) ? trace : nullptr;
}

/// Prolog's control: take the body exactly as written. The paper's
/// motivating baseline ("it is up to the programmer to make sure this order
/// leads to a safe and efficient execution").
class LexicographicStrategy : public JoinOrderStrategy {
 public:
  std::string name() const override { return "lexicographic"; }

  OrderResult FindOrder(const std::vector<ConjunctItem>& items,
                        const BoundVars& initial, const CostModel& model,
                        SearchTracer* trace) override {
    OrderResult result;
    result.order = IdentityOrder(items.size());
    SequenceCost sc = model.CostSequence(items, result.order, initial);
    result.cost = sc.cost;
    result.out_card = sc.out_card;
    result.safe = sc.safe;
    result.cost_evaluations = 1;
    if (SearchTracer* st = Active(trace)) {
      st->RecordCandidate(result.order, sc.cost,
                          sc.safe ? CandidateDisposition::kKept
                                  : CandidateDisposition::kPrunedUnsafe,
                          "textual order");
    }
    return result;
  }
};

/// Exhaustive enumeration with branch-and-bound: abandons a prefix as soon
/// as its cost exceeds the best complete order found so far. Exact, and the
/// reference that the quadratic and stochastic strategies are measured
/// against (section 9: "supplies the basis for assessing ... the two
/// alternative algorithms").
class ExhaustiveStrategy : public JoinOrderStrategy {
 public:
  explicit ExhaustiveStrategy(const StrategyOptions& options)
      : options_(options) {}

  std::string name() const override { return "exhaustive"; }

  OrderResult FindOrder(const std::vector<ConjunctItem>& items,
                        const BoundVars& initial, const CostModel& model,
                        SearchTracer* trace) override {
    // All search state is local: FindOrder re-enters itself whenever a
    // derived item's estimate recursively optimizes a subquery.
    OrderResult result;
    if (items.size() > options_.exhaustive_limit) {
      // Too large: defer to DP (the caller picked the wrong strategy, but
      // degrade gracefully rather than running for hours).
      auto dp = MakeStrategy(SearchStrategy::kDynamicProgramming, options_);
      return dp->FindOrder(items, initial, model, trace);
    }
    std::vector<size_t> remaining = IdentityOrder(items.size());
    std::vector<size_t> prefix;
    StepState state;
    state.bound = initial;
    Recurse(items, model, Active(trace), &remaining, &prefix, state, &result);
    return result;
  }

 private:
  void Recurse(const std::vector<ConjunctItem>& items, const CostModel& model,
               SearchTracer* trace, std::vector<size_t>* remaining,
               std::vector<size_t>* prefix, const StepState& state,
               OrderResult* result) {
    if (remaining->empty()) {
      double total =
          state.cost + state.card * model.options().output_cost;
      result->cost_evaluations++;
      const bool improved = total < result->cost;
      if (trace != nullptr) {
        trace->RecordCandidate(*prefix, total,
                               improved ? CandidateDisposition::kKept
                                        : CandidateDisposition::kDominated);
      }
      if (improved) {
        result->cost = total;
        result->out_card = state.card;
        result->order = *prefix;
        result->safe = true;
      }
      return;
    }
    for (size_t i = 0; i < remaining->size(); ++i) {
      size_t item = (*remaining)[i];
      StepState next = state;
      model.ApplyStep(items[item], &next);
      result->cost_evaluations++;
      if (!next.safe || next.cost >= result->cost) {  // prune this prefix
        if (trace != nullptr) {
          trace->RecordCandidateStep(
              *prefix, item, next.cost,
              next.safe ? CandidateDisposition::kPrunedBound
                        : CandidateDisposition::kPrunedUnsafe);
        }
        continue;
      }
      remaining->erase(remaining->begin() + i);
      prefix->push_back(item);
      Recurse(items, model, trace, remaining, prefix, next, result);
      prefix->pop_back();
      remaining->insert(remaining->begin() + i, item);
    }
  }

  StrategyOptions options_;
};

/// Selinger-style dynamic programming over subsets [Sel 79]: O(n 2^n) time,
/// O(2^n) space, left-deep orders. The bound-variable set of a subset is a
/// function of the subset alone, so the DP decomposition is exact for our
/// cost model.
class DpStrategy : public JoinOrderStrategy {
 public:
  explicit DpStrategy(const StrategyOptions& options) : options_(options) {}

  std::string name() const override { return "dp"; }

  OrderResult FindOrder(const std::vector<ConjunctItem>& items,
                        const BoundVars& initial, const CostModel& model,
                        SearchTracer* trace) override {
    OrderResult result;
    const size_t n = items.size();
    if (n > options_.dp_limit) {
      auto sa = MakeStrategy(SearchStrategy::kAnnealing, options_);
      return sa->FindOrder(items, initial, model, trace);
    }
    SearchTracer* st = Active(trace);
    struct Entry {
      double cost = kInfiniteCost;
      double card = 0;
      int last = -1;      // last item added
      uint32_t prev = 0;  // preceding subset
      bool reached = false;
    };
    std::vector<Entry> table(size_t{1} << n);
    // Recompute bound vars per subset on demand (n is small).
    auto bound_for = [&](uint32_t mask) {
      // The bound-variable set of a subset is order-independent, but eq
      // builtins propagate only once a side is bound — iterate to fixpoint.
      BoundVars bound = initial;
      size_t prev_size = SIZE_MAX;
      while (bound.size() != prev_size) {
        prev_size = bound.size();
        for (size_t i = 0; i < n; ++i) {
          if (mask & (1u << i)) PropagateBindings(items[i].literal, &bound);
        }
      }
      return bound;
    };
    auto domains_for = [&](uint32_t mask) {
      std::map<std::string, double> domains;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) AbsorbDomains(items[i], &domains);
      }
      return domains;
    };
    table[0].cost = 0;
    table[0].card = 1;
    table[0].reached = true;
    // Left-deep prefix of a reached subset, via the prev-chain (tracing
    // only: O(n) per recorded candidate).
    auto chain_of = [&table](uint32_t mask) {
      std::vector<size_t> reversed;
      while (mask != 0) {
        reversed.push_back(static_cast<size_t>(table[mask].last));
        mask = table[mask].prev;
      }
      return std::vector<size_t>(reversed.rbegin(), reversed.rend());
    };
    size_t evals = 0;
    for (uint32_t mask = 0; mask < table.size(); ++mask) {
      if (!table[mask].reached || table[mask].cost >= kInfiniteCost) continue;
      BoundVars bound = bound_for(mask);
      std::map<std::string, double> domains = domains_for(mask);
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) continue;
        StepState state;
        state.cost = table[mask].cost;
        state.card = table[mask].card;
        state.bound = bound;
        state.domains = domains;
        model.ApplyStep(items[i], &state);
        ++evals;
        uint32_t next = mask | (1u << i);
        const bool improved = state.safe && state.cost < table[next].cost;
        if (st != nullptr) {
          st->RecordCandidateStep(
              chain_of(mask), i, state.cost,
              !state.safe ? CandidateDisposition::kPrunedUnsafe
              : improved  ? CandidateDisposition::kKept
                          : CandidateDisposition::kDominated);
        }
        if (!improved) continue;
        table[next] = {state.cost, state.card, static_cast<int>(i), mask,
                       true};
      }
    }
    const uint32_t full = static_cast<uint32_t>(table.size() - 1);
    result.cost_evaluations = evals;
    if (!table[full].reached || table[full].cost >= kInfiniteCost) {
      return result;  // no safe order
    }
    result.cost =
        table[full].cost + table[full].card * model.options().output_cost;
    result.out_card = table[full].card;
    result.safe = true;
    // Reconstruct.
    std::vector<size_t> reversed;
    uint32_t cur = full;
    while (cur != 0) {
      reversed.push_back(static_cast<size_t>(table[cur].last));
      cur = table[cur].prev;
    }
    result.order.assign(reversed.rbegin(), reversed.rend());
    return result;
  }

 private:
  StrategyOptions options_;
};

/// Simulated annealing [IW 87]: a random walk over the permutation space
/// whose neighbor relation is "interchange two positions" — the closure of
/// that relation is the whole space, which (per the paper) is all that is
/// needed to characterize the process besides the annealing schedule.
class AnnealingStrategy : public JoinOrderStrategy {
 public:
  explicit AnnealingStrategy(const StrategyOptions& options)
      : options_(options) {}

  std::string name() const override { return "annealing"; }

  OrderResult FindOrder(const std::vector<ConjunctItem>& items,
                        const BoundVars& initial, const CostModel& model,
                        SearchTracer* trace) override {
    OrderResult result;
    const size_t n = items.size();
    SearchTracer* st = Active(trace);
    Rng rng(options_.anneal_seed + n * 7919);
    std::vector<size_t> current = IdentityOrder(n);
    size_t evals = 0;
    auto cost_of = [&](const std::vector<size_t>& order) {
      ++evals;
      return model.CostSequence(items, order, initial);
    };
    SequenceCost cur_cost = cost_of(current);
    // If the textual order is unsafe, scan for a safe starting point.
    size_t tries = 0;
    while (!cur_cost.safe && tries++ < 4 * n * n) {
      if (st != nullptr) {
        st->RecordCandidate(current, cur_cost.cost,
                            CandidateDisposition::kPrunedUnsafe,
                            "restart: unsafe start");
      }
      rng.Shuffle(&current);
      cur_cost = cost_of(current);
    }
    if (!cur_cost.safe) {
      result.cost_evaluations = evals;
      return result;  // no safe order found to start from
    }
    if (st != nullptr) {
      st->RecordCandidate(current, cur_cost.cost,
                          CandidateDisposition::kKept, "starting point");
    }
    std::vector<size_t> best = current;
    SequenceCost best_cost = cur_cost;

    double temp =
        std::max(1.0, best_cost.cost * options_.anneal_initial_temp_factor);
    const size_t moves =
        options_.anneal_moves_per_temp ? options_.anneal_moves_per_temp
                                       : 4 * n * n;
    size_t no_improve = 0;
    while (no_improve < options_.anneal_max_no_improve && n >= 2) {
      bool improved = false;
      for (size_t m = 0; m < moves; ++m) {
        size_t i = rng.Uniform(n);
        size_t j = rng.Uniform(n);
        if (i == j) continue;
        std::swap(current[i], current[j]);
        SequenceCost cand = cost_of(current);
        bool accept = false;
        if (cand.safe) {
          if (cand.cost <= cur_cost.cost) {
            accept = true;
          } else {
            double delta = cand.cost - cur_cost.cost;
            accept = rng.UniformDouble() < std::exp(-delta / temp);
          }
        }
        if (st != nullptr) {
          // New global best = kept; other accepted or metropolis-rejected
          // moves lose on cost; unsafe neighbors are section 8.2 prunes.
          st->RecordCandidate(current, cand.cost,
                              !cand.safe ? CandidateDisposition::kPrunedUnsafe
                              : accept && cand.cost < best_cost.cost
                                  ? CandidateDisposition::kKept
                              : accept ? CandidateDisposition::kDominated
                                       : CandidateDisposition::kPrunedBound);
        }
        if (accept) {
          cur_cost = cand;
          if (cand.cost < best_cost.cost) {
            best = current;
            best_cost = cand;
            improved = true;
          }
        } else {
          std::swap(current[i], current[j]);  // undo
        }
      }
      temp *= options_.anneal_cooling;
      no_improve = improved ? 0 : no_improve + 1;
    }
    result.order = best;
    result.cost = best_cost.cost;
    result.out_card = best_cost.out_card;
    result.safe = best_cost.safe;
    result.cost_evaluations = evals;
    return result;
  }

 private:
  StrategyOptions options_;
};

}  // namespace

std::unique_ptr<JoinOrderStrategy> MakeStrategy(
    SearchStrategy strategy, const StrategyOptions& options) {
  switch (strategy) {
    case SearchStrategy::kExhaustive:
      return std::make_unique<ExhaustiveStrategy>(options);
    case SearchStrategy::kDynamicProgramming:
      return std::make_unique<DpStrategy>(options);
    case SearchStrategy::kKbz:
      return MakeKbzStrategy(options);
    case SearchStrategy::kAnnealing:
      return std::make_unique<AnnealingStrategy>(options);
    case SearchStrategy::kLexicographic:
      return std::make_unique<LexicographicStrategy>();
  }
  return nullptr;
}

}  // namespace ldl
