// Cost-model calibration (src/obs/calibration.h): q-error pairing of
// estimates with measured actuals, the measured-statistics overlay, plan
// pinning, plan regret, and the memoization row-counting guard.

#include "obs/calibration.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "ast/parser.h"
#include "ldl/ldl.h"
#include "obs/feedback.h"
#include "plan/interpreter.h"
#include "plan/processing_tree.h"
#include "storage/statistics.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

TEST(QErrorTest, PerfectEstimateIsOne) {
  EXPECT_DOUBLE_EQ(QError(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(QError(1, 1), 1.0);
}

TEST(QErrorTest, SymmetricOverAndUnderEstimation) {
  EXPECT_DOUBLE_EQ(QError(10, 2), 5.0);
  EXPECT_DOUBLE_EQ(QError(2, 10), 5.0);
}

TEST(QErrorTest, SubRowCardinalitiesClampToOne) {
  // An estimate of a quarter row against an empty actual is "right", not
  // infinitely wrong (both sides floor at one row).
  EXPECT_DOUBLE_EQ(QError(0.25, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.5, 4), 4.0);
}

TEST(MeasuredStatisticsTest, SetFindRoundTrip) {
  MeasuredStatistics m;
  EXPECT_TRUE(m.empty());
  PredicateId r = ParseLiteral("r(X, Y)")->predicate();
  m.Set(r, Adornment::AllFree(2), 60);
  ASSERT_NE(m.Find(r, Adornment::AllFree(2)), nullptr);
  EXPECT_DOUBLE_EQ(*m.Find(r, Adornment::AllFree(2)), 60);
  EXPECT_EQ(m.Find(r, Adornment::AllBound(2)), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(MeasuredStatisticsTest, AdjustBaseItemInjectsMeasuredTruth) {
  Literal lit = *ParseLiteral("r(X, Y)");
  Statistics stats;
  stats.Set(lit.predicate(), RelationStats{100, {100, 100}});
  ConjunctItem item = MakeBaseItem(lit, stats, CostModelOptions{});
  ASSERT_DOUBLE_EQ(item.base_cardinality, 100);

  MeasuredStatistics m;
  m.Set(lit.predicate(), Adornment::AllFree(2), 10);
  m.AdjustBaseItem(&item);
  EXPECT_DOUBLE_EQ(item.base_cardinality, 10);
  // distinct <= cardinality must keep holding under the override.
  for (double d : item.distinct) EXPECT_LE(d, 10);
  PlanEstimate est = item.estimate(Adornment::AllFree(2), 1.0);
  EXPECT_DOUBLE_EQ(est.card, 10);
}

// ---------------------------------------------------------------------------
// End-to-end: exact statistics. Estimates from a freshly collected catalog
// over an equi-join on tree-shaped data are exact, so every node's q-error
// is 1 and re-optimizing under the measured truth changes nothing.

TEST(CalibrationTest, ExactStatisticsGiveUnitQErrorAndZeroRegret) {
  auto program = ParseProgram("gp(X, Z) <- par(X, Y), par(Y, Z).");
  ASSERT_TRUE(program.ok());
  Database db;
  size_t nodes = testing::MakeTreeParentData(3, 4, &db);
  Statistics stats = Statistics::Collect(db);
  Literal goal = *ParseLiteral("gp(" + std::to_string(nodes - 1) + ", Z)");

  OptimizerOptions options;
  Optimizer optimizer(*program, stats, options);
  auto plan = optimizer.Optimize(goal);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->safe) << plan->unsafe_reason;
  auto tree = BuildProcessingTree(*program, goal);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(optimizer.AnnotateTree(tree->get()).ok());

  TreeInterpreter interpreter(*program, &db);
  auto answers = interpreter.Execute(**tree, (*tree)->goal);
  ASSERT_TRUE(answers.ok());

  CalibrationReport report = CalibrationReport::Build(
      **tree, interpreter.profile(), goal.ToString());
  ASSERT_GT(report.sample_count(), 0u);
  EXPECT_NEAR(report.median_q_error(), 1.0, 1e-9);
  EXPECT_NEAR(report.p95_q_error(), 1.0, 1e-9);
  EXPECT_NEAR(report.max_q_error(), 1.0, 1e-9);
  for (const NodeCalibration& nc : report.nodes()) {
    EXPECT_NEAR(nc.q_error, 1.0, 1e-9) << nc.label;
  }

  MeasuredStatistics measured =
      HarvestMeasuredStatistics(**tree, interpreter.profile());
  EXPECT_FALSE(measured.empty());
  RegretAnalysis regret =
      ComputePlanRegret(*program, stats, options, goal, *plan, measured);
  ASSERT_TRUE(regret.computed) << regret.note;
  EXPECT_DOUBLE_EQ(regret.regret(), 0.0);
  EXPECT_DOUBLE_EQ(regret.ratio(), 1.0);
  EXPECT_TRUE(regret.changes.empty());
}

// ---------------------------------------------------------------------------
// End-to-end: a lying catalog. r is claimed tiny (2 rows, it has 60), so
// the optimizer joins r first; the q-error exposes the lie and the regret
// analysis shows hindsight would have started from s.

struct SkewedFixture {
  Result<Program> program = ParseProgram("t(A, C) <- r(A, B), s(B, C).");
  Database db;
  Statistics stats;
  Literal goal = *ParseLiteral("t(A, C)");

  SkewedFixture() {
    for (int i = 0; i < 60; ++i) {
      db.AddFact(Literal::Make(
          "r", {Term::MakeInt(i), Term::MakeInt(i % 3)}));
    }
    for (int j = 0; j < 3; ++j) {
      db.AddFact(Literal::Make("s", {Term::MakeInt(j), Term::MakeInt(j)}));
    }
    stats.Set(ParseLiteral("r(X, Y)")->predicate(), RelationStats{2, {2, 2}});
    stats.Set(ParseLiteral("s(X, Y)")->predicate(), RelationStats{3, {3, 3}});
  }
};

TEST(CalibrationTest, MisestimationYieldsQErrorAboveOneAndPositiveRegret) {
  SkewedFixture fx;
  ASSERT_TRUE(fx.program.ok());

  OptimizerOptions options;
  Optimizer optimizer(*fx.program, fx.stats, options);
  auto plan = optimizer.Optimize(fx.goal);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->safe);
  // The lie makes r look free to scan: it goes first.
  ASSERT_EQ(plan->rule_orders.at(0), (std::vector<size_t>{0, 1}));

  auto tree = BuildProcessingTree(*fx.program, fx.goal);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(optimizer.AnnotateTree(tree->get()).ok());
  TreeInterpreter interpreter(*fx.program, &fx.db);
  auto answers = interpreter.Execute(**tree, (*tree)->goal);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 60u);

  CalibrationReport report = CalibrationReport::Build(
      **tree, interpreter.profile(), fx.goal.ToString());
  // The r scan was estimated at 2 rows and produced 60: q-error 30.
  EXPECT_GT(report.max_q_error(), 5.0);

  MeasuredStatistics measured =
      HarvestMeasuredStatistics(**tree, interpreter.profile());
  const double* r_ff = measured.Find(ParseLiteral("r(X, Y)")->predicate(),
                                     Adornment::AllFree(2));
  ASSERT_NE(r_ff, nullptr);
  EXPECT_DOUBLE_EQ(*r_ff, 60);

  RegretAnalysis regret = ComputePlanRegret(*fx.program, fx.stats, options,
                                            fx.goal, *plan, measured);
  ASSERT_TRUE(regret.computed) << regret.note;
  EXPECT_GT(regret.regret(), 0.0);
  EXPECT_GT(regret.ratio(), 1.0);
  EXPECT_FALSE(regret.changes.empty());
  EXPECT_GE(regret.measured_cost_chosen, regret.measured_cost_hindsight);
}

TEST(CalibrationTest, PinnedConstraintsForceTheGivenOrder) {
  SkewedFixture fx;
  ASSERT_TRUE(fx.program.ok());
  OptimizerOptions options;
  Optimizer optimizer(*fx.program, fx.stats, options);
  auto plan = optimizer.Optimize(fx.goal);
  ASSERT_TRUE(plan.ok());

  PlanConstraints pins;
  pins.rule_orders[0] = {1, 0};  // the order the search rejected
  OptimizerOptions pinned_options;
  pinned_options.pinned = &pins;
  Optimizer pinned_opt(*fx.program, fx.stats, pinned_options);
  auto pinned = pinned_opt.Optimize(fx.goal);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pinned->safe);
  EXPECT_EQ(pinned->rule_orders.at(0), (std::vector<size_t>{1, 0}));
  // Costing a pinned plan never beats the search over all orders.
  EXPECT_GE(pinned->TotalCost(), plan->TotalCost());
}

// ---------------------------------------------------------------------------
// The memoization guard (NodeActuals::out_rows): a memo hit replays an
// already-counted result, so re-running a memoized subtree must bump
// memo_hits without re-adding rows.

TEST(CalibrationTest, MemoHitsDoNotDoubleCountMeasuredRows) {
  auto program = ParseProgram("t(X, Y) <- r(X, Y).");
  ASSERT_TRUE(program.ok());
  Database db;
  for (int i = 0; i < 7; ++i) {
    db.AddFact(Literal::Make("r", {Term::MakeInt(i), Term::MakeInt(i + 1)}));
  }
  Statistics stats = Statistics::Collect(db);
  Literal goal = *ParseLiteral("t(X, Y)");
  auto tree = BuildProcessingTree(*program, goal);
  ASSERT_TRUE(tree.ok());
  OptimizerOptions options;
  Optimizer optimizer(*program, stats, options);
  ASSERT_TRUE(optimizer.AnnotateTree(tree->get()).ok());

  TreeInterpreter interpreter(*program, &db);
  auto first = interpreter.Execute(**tree, (*tree)->goal);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 7u);
  // Same node, same goal instance: served from the memo.
  auto second = interpreter.Execute(**tree, (*tree)->goal);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 7u);

  const NodeActuals* actuals = interpreter.profile().Find(tree->get());
  ASSERT_NE(actuals, nullptr);
  EXPECT_EQ(actuals->executions, 1u);
  EXPECT_EQ(actuals->memo_hits, 1u);
  EXPECT_EQ(actuals->out_rows, 7u);  // NOT 14: the hit must not re-add
  EXPECT_DOUBLE_EQ(actuals->RowsPerExecution(), 7.0);

  // The q-error pairing depends on per-execution rows, so the guard keeps
  // calibration honest under memoization too.
  CalibrationReport report = CalibrationReport::Build(
      **tree, interpreter.profile(), goal.ToString());
  for (const NodeCalibration& nc : report.nodes()) {
    if (nc.memo_hits > 0) EXPECT_NEAR(nc.act_rows, 7.0, 1e-9) << nc.label;
  }
}

// ---------------------------------------------------------------------------
// Export shapes.

TEST(CalibrationTest, JsonAndTextExportsCarryAllSections) {
  SkewedFixture fx;
  ASSERT_TRUE(fx.program.ok());
  OptimizerOptions options;
  Optimizer optimizer(*fx.program, fx.stats, options);
  auto plan = optimizer.Optimize(fx.goal);
  ASSERT_TRUE(plan.ok());
  auto tree = BuildProcessingTree(*fx.program, fx.goal);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(optimizer.AnnotateTree(tree->get()).ok());
  TreeInterpreter interpreter(*fx.program, &fx.db);
  ASSERT_TRUE(interpreter.Execute(**tree, (*tree)->goal).ok());

  CalibrationReport report = CalibrationReport::Build(
      **tree, interpreter.profile(), fx.goal.ToString());
  report.set_regret(ComputePlanRegret(
      *fx.program, fx.stats, options, fx.goal, *plan,
      HarvestMeasuredStatistics(**tree, interpreter.profile())));

  std::ostringstream json;
  report.WriteJson(json);
  const std::string j = json.str();
  for (const char* key :
       {"\"query\"", "\"nodes\"", "\"label\"", "\"kind\"", "\"est_rows\"",
        "\"act_rows\"", "\"q_error\"", "\"aggregate\"", "\"median_q_error\"",
        "\"p95_q_error\"", "\"by_kind\"", "\"by_method\"", "\"regret\"",
        "\"measured_cost_chosen\"", "\"measured_cost_hindsight\"",
        "\"ratio\"", "\"changes\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  }

  const std::string text = report.ToString();
  EXPECT_NE(text.find("CALIBRATION"), std::string::npos);
  EXPECT_NE(text.find("Q-ERR"), std::string::npos);
  EXPECT_NE(text.find("REGRET"), std::string::npos);
  EXPECT_NE(text.find("aggregate:"), std::string::npos);
}

TEST(CalibrationTest, MetricsExportPopulatesRegistry) {
  SkewedFixture fx;
  ASSERT_TRUE(fx.program.ok());
  OptimizerOptions options;
  Optimizer optimizer(*fx.program, fx.stats, options);
  auto tree = BuildProcessingTree(*fx.program, fx.goal);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(optimizer.AnnotateTree(tree->get()).ok());
  TreeInterpreter interpreter(*fx.program, &fx.db);
  ASSERT_TRUE(interpreter.Execute(**tree, (*tree)->goal).ok());
  CalibrationReport report = CalibrationReport::Build(
      **tree, interpreter.profile(), fx.goal.ToString());

  MetricsRegistry metrics;
  report.ExportTo(&metrics);
  EXPECT_EQ(metrics.counter_value("calibration.nodes"),
            report.sample_count());
  const Histogram* h = metrics.find_histogram("calibration.q_error");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), report.sample_count());
  report.ExportTo(nullptr);  // must be a no-op, not a crash
}

// ---------------------------------------------------------------------------
// Facade: EXPLAIN ANALYZE carries the new sections and rejects unsafe plans
// before execution.

TEST(CalibrationTest, ExplainAnalyzeIncludesCalibrationAndRegret) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
    par(bart, homer).  par(homer, abe).  par(lisa, homer).
  )").ok());
  auto analyzed = sys.AnalyzeCalibrated("anc(bart, Y)");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->text.find("CALIBRATION"), std::string::npos);
  EXPECT_NE(analyzed->text.find("REGRET"), std::string::npos);
  EXPECT_GT(analyzed->report.sample_count(), 0u);
  ASSERT_TRUE(analyzed->report.regret().computed)
      << analyzed->report.regret().note;

  auto text = sys.ExplainAnalyze("anc(bart, Y)");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("CALIBRATION"), std::string::npos);
}

TEST(CalibrationTest, ExplainAnalyzeRejectsUnsafePlansBeforeExecution) {
  LdlSystem sys;
  // A comparison with both sides free is not effectively computable under
  // any body order, so the free query form has no safe plan.
  ASSERT_TRUE(sys.LoadProgram("bigger(X, Y) <- X > Y.").ok());
  auto analyzed = sys.ExplainAnalyze("bigger(X, Y)");
  ASSERT_FALSE(analyzed.ok());
  EXPECT_EQ(analyzed.status().code(), StatusCode::kUnsafe);
}

// ---------------------------------------------------------------------------
// The feedback loop closing: planning under the catalog's blended overlay
// must shrink the estimate/actual gap that stale statistics opened.

TEST(CalibrationTest, FeedbackModeReducesMedianQErrorUnderStaleStatistics) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    t(A, C) <- r(A, B), s(B, C).
    r(100, 0). r(101, 1).
    s(0, 0). s(1, 1). s(2, 2).
  )").ok());
  // Collect statistics while r is tiny (2 rows)...
  EXPECT_EQ(sys.statistics().Get(
                ParseLiteral("r(X, Y)")->predicate()).cardinality, 2);
  // ...then grow r 30x behind the statistics' back (bulk loads through
  // database() deliberately do not refresh).
  for (int i = 0; i < 58; ++i) {
    sys.database()->AddFact(
        Literal::Make("r", {Term::MakeInt(i), Term::MakeInt(i % 3)}));
  }

  // Catalog without a drift detector: the epoch must NOT bump, or the
  // second run would re-collect statistics and fix the estimates for the
  // non-feedback side too, leaving nothing to compare.
  StatisticsCatalog catalog;
  sys.set_feedback(&catalog, nullptr);

  auto stale = sys.AnalyzeCalibrated("t(A, C)");
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  const double median_stale = stale->report.median_q_error();
  // r estimated at 2 rows, measured 60: the gap is real.
  EXPECT_GT(stale->report.max_q_error(), 5.0);
  EXPECT_FALSE(catalog.empty());

  OptimizerOptions options = sys.options();
  options.feedback = true;
  sys.set_options(options);
  auto fed = sys.AnalyzeCalibrated("t(A, C)");
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  EXPECT_LT(fed->report.median_q_error(), median_stale);
  EXPECT_LT(fed->report.max_q_error(), stale->report.max_q_error());
  sys.set_feedback(nullptr, nullptr);
}

}  // namespace
}  // namespace ldl
