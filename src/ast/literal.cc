#include "ast/literal.h"

#include <sstream>

#include "base/strings.h"

namespace ldl {

std::string PredicateId::ToString() const {
  return StrCat(name, "/", arity);
}

const char* BuiltinKindToString(BuiltinKind kind) {
  switch (kind) {
    case BuiltinKind::kNone:
      return "?";
    case BuiltinKind::kEq:
      return "=";
    case BuiltinKind::kNe:
      return "!=";
    case BuiltinKind::kLt:
      return "<";
    case BuiltinKind::kLe:
      return "<=";
    case BuiltinKind::kGt:
      return ">";
    case BuiltinKind::kGe:
      return ">=";
  }
  return "?";
}

Literal Literal::Make(std::string predicate, std::vector<Term> args) {
  Literal l;
  l.predicate_ = std::move(predicate);
  l.args_ = std::move(args);
  return l;
}

Literal Literal::MakeNegated(std::string predicate, std::vector<Term> args) {
  Literal l = Make(std::move(predicate), std::move(args));
  l.negated_ = true;
  return l;
}

Literal Literal::MakeBuiltin(BuiltinKind kind, Term lhs, Term rhs) {
  Literal l;
  l.predicate_ = BuiltinKindToString(kind);
  l.args_ = {std::move(lhs), std::move(rhs)};
  l.builtin_ = kind;
  return l;
}

void Literal::CollectVariables(std::vector<std::string>* out) const {
  for (const Term& t : args_) t.CollectVariables(out);
}

Literal Literal::WithArgs(std::vector<Term> args) const {
  Literal l = *this;
  l.args_ = std::move(args);
  return l;
}

Literal Literal::WithPredicateName(std::string name) const {
  Literal l = *this;
  l.predicate_ = std::move(name);
  return l;
}

bool Literal::operator==(const Literal& other) const {
  return predicate_ == other.predicate_ && negated_ == other.negated_ &&
         builtin_ == other.builtin_ && args_ == other.args_;
}

std::string Literal::ToString() const {
  std::ostringstream os;
  if (negated_) os << "not ";
  if (IsBuiltin()) {
    os << args_[0] << ' ' << predicate_ << ' ' << args_[1];
  } else {
    os << predicate_ << '(';
    bool first = true;
    for (const Term& a : args_) {
      if (!first) os << ", ";
      first = false;
      os << a;
    }
    os << ')';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Literal& literal) {
  return os << literal.ToString();
}

}  // namespace ldl
