// Quickstart: load an LDL program, let the optimizer devise the execution
// strategy, run a query, and inspect the plan.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "ldl/ldl.h"

int main() {
  ldl::LdlSystem sys;

  // A knowledge base: facts plus recursive rules. Note the rule order and
  // the literal order inside rules carry *no* operational meaning — the
  // optimizer picks the execution strategy (the paper's core promise).
  ldl::Status st = sys.LoadProgram(R"(
    % family facts
    par(bart, homer).   par(lisa, homer).
    par(homer, abe).    par(marge, jackie).
    par(maggie, homer). par(abe, orville).

    % ancestor = transitive closure of par
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )");
  if (!st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // A bound query form: anc(bart, Y)? — "all ancestors of bart".
  auto answer = sys.Query("anc(bart, Y)");
  if (!answer.ok()) {
    std::printf("query failed: %s\n", answer.status().ToString().c_str());
    return 1;
  }

  std::printf("anc(bart, Y)? ->\n");
  for (const ldl::Tuple& t : answer->answers.tuples()) {
    std::printf("  Y = %s\n", t[1].ToString().c_str());
  }

  // What did the optimizer decide? The bound argument makes a focused
  // method (magic sets / counting) the winner.
  std::printf("\n--- optimized plan ---\n%s",
              answer->plan.Explain(sys.program()).c_str());
  std::printf("execution: %s\n", answer->exec_stats.ToString().c_str());

  // The same predicate under a free query form gets a different plan.
  auto explain = sys.Explain("anc(X, Y)");
  if (explain.ok()) {
    std::printf("\n--- plan for the free form anc(X, Y)? ---\n%s",
                explain->c_str());
  }
  return 0;
}
