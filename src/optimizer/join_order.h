#ifndef LDLOPT_OPTIMIZER_JOIN_ORDER_H_
#define LDLOPT_OPTIMIZER_JOIN_ORDER_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "optimizer/cost_model.h"

namespace ldl {

class SearchTracer;  // obs/search_trace.h

/// The generic search strategies of the paper's section 7.1. All of them
/// minimize the same cost function over permutations of a conjunct; they
/// trade optimality guarantees against running time, and the optimizer can
/// use them interchangeably (a design goal stated explicitly in the paper).
enum class SearchStrategy {
  kExhaustive,          ///< n! enumeration with branch-and-bound pruning
  kDynamicProgramming,  ///< Selinger-style O(n 2^n) over subsets [Sel 79]
  kKbz,                 ///< quadratic ASI-based ordering [KBZ 86]
  kAnnealing,           ///< simulated annealing, swap-two neighbors [IW 87]
  kLexicographic,       ///< Prolog's textual order (the unoptimized baseline)
};

const char* SearchStrategyToString(SearchStrategy strategy);

struct StrategyOptions {
  /// Exhaustive enumeration refuses conjuncts larger than this (the paper's
  /// "10-15 join" practicality bound); callers fall back to DP/annealing.
  size_t exhaustive_limit = 10;
  size_t dp_limit = 20;

  /// Simulated annealing schedule.
  uint64_t anneal_seed = 0x1d10f7;
  double anneal_initial_temp_factor = 0.5;  ///< T0 = factor * initial cost
  double anneal_cooling = 0.9;
  size_t anneal_moves_per_temp = 0;  ///< 0 = 4*n*n
  size_t anneal_max_no_improve = 8;  ///< temperature levels w/o improvement
};

/// The outcome of one join-order search.
struct OrderResult {
  std::vector<size_t> order;
  double cost = kInfiniteCost;
  double out_card = 0;
  bool safe = false;
  /// Number of full-or-partial sequence costings performed — the unit in
  /// which the paper compares strategy efforts (experiments E2/E3).
  size_t cost_evaluations = 0;
};

/// Interface implemented by every search strategy.
class JoinOrderStrategy {
 public:
  virtual ~JoinOrderStrategy() = default;

  virtual std::string name() const = 0;

  /// Finds a (hopefully minimal-cost) order of `items` starting from the
  /// variables in `initial`. When every order is unsafe the result has
  /// safe=false and infinite cost — the caller reports the query unsafe
  /// (section 8.2).
  ///
  /// When `trace` is non-null and enabled, every candidate the search
  /// visits — complete orders, abandoned prefixes, rejected moves — is
  /// recorded with its disposition (obs/search_trace.h). A null or
  /// disabled tracer costs one branch per candidate.
  virtual OrderResult FindOrder(const std::vector<ConjunctItem>& items,
                                const BoundVars& initial,
                                const CostModel& model,
                                SearchTracer* trace) = 0;

  /// Untraced convenience overload.
  OrderResult FindOrder(const std::vector<ConjunctItem>& items,
                        const BoundVars& initial, const CostModel& model) {
    return FindOrder(items, initial, model, nullptr);
  }
};

/// Creates the strategy implementation for `strategy`.
std::unique_ptr<JoinOrderStrategy> MakeStrategy(SearchStrategy strategy,
                                                const StrategyOptions& options);

}  // namespace ldl

#endif  // LDLOPT_OPTIMIZER_JOIN_ORDER_H_
