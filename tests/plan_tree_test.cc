#include "plan/processing_tree.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "plan/transform.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

// The rule base of the paper's Figure 2-1 shape: a derived predicate over
// joins/unions plus a recursive clique.
constexpr const char* kFigureRules = R"(
  p1(X, Y) <- b1(X, Z), p2(Z, Y).
  p1(X, Y) <- b2(X, Y).
  p2(X, Y) <- b3(X, Z), p2(Z, Y).
  p2(X, Y) <- b4(X, Y).
)";

TEST(ProcessingTreeTest, NonRecursiveAndOrShape) {
  Program p = P(R"(
    gp(X, Z) <- par(X, Y), par(Y, Z).
  )");
  auto tree = BuildProcessingTree(p, L("gp(1, Z)"));
  ASSERT_TRUE(tree.ok()) << tree.status();
  const PlanNode& root = **tree;
  EXPECT_EQ(root.kind, PlanNodeKind::kOr);
  ASSERT_EQ(root.children.size(), 1u);
  const PlanNode& and_node = *root.children[0];
  EXPECT_EQ(and_node.kind, PlanNodeKind::kAnd);
  EXPECT_EQ(and_node.children.size(), 2u);
  EXPECT_EQ(and_node.children[0]->kind, PlanNodeKind::kScan);
  // Query binding is recorded on the OR node (PS pushed onto it).
  EXPECT_EQ(root.binding.ToString(), "bf");
}

TEST(ProcessingTreeTest, CliqueContractionProducesCcNode) {
  Program p = P(kFigureRules);
  auto tree = BuildProcessingTree(p, L("p1(X, Y)"));
  ASSERT_TRUE(tree.ok()) << tree.status();
  // p1 is an OR over two AND nodes; the first AND has a CC child for p2's
  // clique (recursive), whose own children are the non-clique operands.
  const PlanNode& root = **tree;
  ASSERT_EQ(root.children.size(), 2u);
  const PlanNode& and1 = *root.children[0];
  ASSERT_EQ(and1.children.size(), 2u);
  const PlanNode& cc = *and1.children[1];
  EXPECT_EQ(cc.kind, PlanNodeKind::kCc);
  ASSERT_EQ(cc.clique_predicates.size(), 1u);
  EXPECT_EQ(cc.clique_predicates[0].ToString(), "p2/2");
  // CC operands: b4 (exit) and b3 (recursive rule's base literal) — the
  // clique literal itself is contracted away.
  EXPECT_EQ(cc.children.size(), 2u);
  for (const auto& child : cc.children) {
    EXPECT_EQ(child->kind, PlanNodeKind::kScan);
  }
  // The contracted graph is an acyclic tree: rendering terminates and
  // counts a bounded number of nodes.
  EXPECT_GT(TreeSize(root), 5u);
}

TEST(ProcessingTreeTest, MutualRecursionSingleCc) {
  Program p = P(R"(
    even(X) <- zero(X).
    even(X) <- succ(Y, X), odd(Y).
    odd(X) <- succ(Y, X), even(Y).
  )");
  auto tree = BuildProcessingTree(p, L("even(4)"));
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ((*tree)->kind, PlanNodeKind::kCc);
  EXPECT_EQ((*tree)->clique_predicates.size(), 2u);
}

TEST(TransformTest, MpFlipsMaterialization) {
  Program p = P("gp(X, Z) <- par(X, Y), par(Y, Z).");
  auto tree = BuildProcessingTree(p, L("gp(X, Z)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* node = tree->get();
  EXPECT_TRUE(node->materialized);
  ASSERT_TRUE(TransformMp(node).ok());
  EXPECT_FALSE(node->materialized);
  ASSERT_TRUE(TransformMp(node).ok());  // involution
  EXPECT_TRUE(node->materialized);
}

TEST(TransformTest, PrPermutesAndChildren) {
  Program p = P("q(X) <- a(X), b(X), c(X).");
  auto tree = BuildProcessingTree(p, L("q(X)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* and_node = (*tree)->children[0].get();
  ASSERT_EQ(and_node->kind, PlanNodeKind::kAnd);
  ASSERT_TRUE(TransformPr(and_node, {2, 0, 1}).ok());
  EXPECT_EQ(and_node->children[0]->goal.predicate_name(), "c");
  EXPECT_EQ(and_node->body_order, (std::vector<size_t>{2, 0, 1}));
  // Applying the inverse permutation restores the original.
  ASSERT_TRUE(TransformPr(and_node, {1, 2, 0}).ok());
  EXPECT_EQ(and_node->body_order, (std::vector<size_t>{0, 1, 2}));
  // Invalid permutations are rejected.
  EXPECT_FALSE(TransformPr(and_node, {0, 0, 1}).ok());
  EXPECT_FALSE(TransformPr(and_node, {0, 1}).ok());
}

TEST(TransformTest, ElValidatesLabels) {
  Program p = P("q(X) <- a(X), b(X).");
  auto tree = BuildProcessingTree(p, L("q(X)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* and_node = (*tree)->children[0].get();
  EXPECT_TRUE(TransformEl(and_node, "hash-join").ok());
  EXPECT_EQ(and_node->method, "hash-join");
  EXPECT_FALSE(TransformEl(and_node, "seminaive").ok());  // CC-only label
  PlanNode* or_node = tree->get();
  EXPECT_FALSE(TransformEl(or_node, "hash-join").ok());
}

TEST(TransformTest, PaInstallsCPermutationAndMethod) {
  Program p = P(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )");
  auto tree = BuildProcessingTree(p, L("sg(1, Y)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* cc = tree->get();
  ASSERT_EQ(cc->kind, PlanNodeKind::kCc);
  ASSERT_EQ(cc->clique_rules.size(), 2u);
  // One permutation per clique rule (exit has 1 literal, recursive has 3).
  std::vector<std::vector<size_t>> c_perm = {{0}, {2, 1, 0}};
  ASSERT_TRUE(TransformPa(cc, c_perm, "magic").ok());
  EXPECT_EQ(cc->method, "magic");
  EXPECT_EQ(cc->clique_orders[1], (std::vector<size_t>{2, 1, 0}));
  // Wrong arity of the c-permutation is rejected.
  EXPECT_FALSE(TransformPa(cc, {{0}}, "magic").ok());
}

TEST(TransformTest, PushSelectAndProject) {
  Program p = P("q(X, Y) <- a(X, Y).");
  auto tree = BuildProcessingTree(p, L("q(X, Y)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* node = tree->get();
  ASSERT_TRUE(TransformPushSelect(node, 0).ok());
  EXPECT_TRUE(node->binding.IsBound(0));
  ASSERT_TRUE(TransformPullSelect(node, 0).ok());
  EXPECT_FALSE(node->binding.IsBound(0));
  EXPECT_FALSE(TransformPushSelect(node, 5).ok());

  ASSERT_TRUE(TransformPushProject(node, {1, 0, 1}).ok());
  EXPECT_EQ(node->projection, (std::vector<size_t>{0, 1}));  // sorted, deduped
  ASSERT_TRUE(TransformPullProject(node).ok());
  EXPECT_TRUE(node->projection.empty());
}

TEST(TransformTest, FlattenDistributesJoinOverUnion) {
  // Figure 4-2: AND over an OR becomes an OR of ANDs.
  Program p = P(R"(
    u(X, Y) <- alt1(X, Y).
    u(X, Y) <- alt2(X, Y).
    q(X, Z) <- base(X, Y), u(Y, Z).
  )");
  auto tree = BuildProcessingTree(p, L("q(X, Z)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* and_node = (*tree)->children[0].get();
  ASSERT_EQ(and_node->kind, PlanNodeKind::kAnd);
  ASSERT_EQ(and_node->children[1]->kind, PlanNodeKind::kOr);

  auto flattened = TransformFlatten(*and_node, 1);
  ASSERT_TRUE(flattened.ok()) << flattened.status();
  EXPECT_EQ((*flattened)->kind, PlanNodeKind::kOr);
  ASSERT_EQ((*flattened)->children.size(), 2u);
  for (const auto& child : (*flattened)->children) {
    EXPECT_EQ(child->kind, PlanNodeKind::kAnd);
    EXPECT_EQ(child->children.size(), 2u);
    EXPECT_EQ(child->children[1]->kind, PlanNodeKind::kAnd);  // inlined alt
  }
  // Unflatten inverts the rewrite back to a single AND over an OR.
  auto unflattened = TransformUnflatten(**flattened);
  ASSERT_TRUE(unflattened.ok()) << unflattened.status();
  EXPECT_EQ((*unflattened)->kind, PlanNodeKind::kAnd);
  EXPECT_EQ((*unflattened)->children[1]->kind, PlanNodeKind::kOr);
}

TEST(TransformTest, FlattenRequiresOrChild) {
  Program p = P("q(X) <- a(X), b(X).");
  auto tree = BuildProcessingTree(p, L("q(X)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* and_node = (*tree)->children[0].get();
  EXPECT_FALSE(TransformFlatten(*and_node, 0).ok());
}

TEST(ProcessingTreeTest, ToStringRendersTree) {
  Program p = P(kFigureRules);
  auto tree = BuildProcessingTree(p, L("p1(1, Y)"));
  ASSERT_TRUE(tree.ok());
  std::string text = (*tree)->ToString();
  EXPECT_NE(text.find("OR"), std::string::npos);
  EXPECT_NE(text.find("AND"), std::string::npos);
  EXPECT_NE(text.find("CC"), std::string::npos);
  EXPECT_NE(text.find("SCAN"), std::string::npos);
}

TEST(ProcessingTreeTest, CloneIsDeepAndEqualStructure) {
  Program p = P(kFigureRules);
  auto tree = BuildProcessingTree(p, L("p1(1, Y)"));
  ASSERT_TRUE(tree.ok());
  auto copy = (*tree)->Clone();
  EXPECT_EQ(copy->ToString(), (*tree)->ToString());
  // Mutating the copy leaves the original intact.
  copy->children[0]->method = "hash-join";
  EXPECT_NE(copy->ToString(), (*tree)->ToString());
}

}  // namespace
}  // namespace ldl
