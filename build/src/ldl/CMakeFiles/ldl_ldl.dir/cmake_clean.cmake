file(REMOVE_RECURSE
  "CMakeFiles/ldl_ldl.dir/ldl.cc.o"
  "CMakeFiles/ldl_ldl.dir/ldl.cc.o.d"
  "libldl_ldl.a"
  "libldl_ldl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_ldl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
