// ldl_lint — static analysis for LDL programs.
//
// Usage: ldl_lint [options] file.ldl [file.ldl ...]
//        ldl_lint [options] -          (read one program from stdin)
//
//   --werror       treat warnings as errors (nonzero exit)
//   --no-warn      suppress warnings entirely
//   --no-verify    skip optimizing + plan-verifying the embedded query forms
//   --analyze      run the semantic program analyzer too: type/sort
//                  inference (L011 sort-conflicting constants, L012
//                  always-false comparisons, L013 contradictory variable
//                  constraints) and rule subsumption (L014)
//   --trace FILE   write per-phase spans (parse / lint / verify-queries,
//                  one set per input) as Chrome trace_event JSON
//
// For each file: parse (parse failures report as error L000), run every
// ProgramLinter check, then — unless --no-verify — optimize each embedded
// query form with verify_plans on, so the processing tree of every query is
// checked against the §4/§5 invariants. Unsafe queries report as error S001,
// and each recursive clique is probed under every entry adornment: a clique
// that is unsafe under all of them warns as L010 (every query that touches
// it is doomed, whatever its binding pattern).
//
// Exit status: 0 clean (warnings allowed unless --werror), 1 findings,
// 2 usage error.

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/linter.h"
#include "ast/parser.h"
#include "base/strings.h"
#include "graph/dependency_graph.h"
#include "ldl/ldl.h"
#include "obs/search_trace.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"

namespace {

struct CliOptions {
  bool werror = false;
  bool warnings = true;
  bool verify_queries = true;
  bool analyze = false;
  std::string trace_file;
  std::vector<std::string> files;
};

int Usage() {
  std::cerr << "usage: ldl_lint [--werror] [--no-warn] [--no-verify] "
               "[--analyze] [--trace FILE] file.ldl... | -\n";
  return 2;
}

bool ReadInput(const std::string& name, std::string* out) {
  if (name == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream in(name);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

void Print(const std::string& file, const ldl::DiagnosticSink& sink,
           bool warnings) {
  for (const ldl::Diagnostic& d : sink.diagnostics()) {
    if (!warnings && d.severity == ldl::Severity::kWarning) continue;
    std::cout << file << ": " << d.ToString() << "\n";
  }
}

/// Optimizes every query form embedded in the program with plan
/// verification on; optimizer/verifier failures and unsafe queries become
/// diagnostics. Base-relation queries have no plan to verify.
void VerifyQueries(const std::string& text, ldl::DiagnosticSink* sink) {
  ldl::OptimizerOptions options;
  options.verify_plans = true;
  ldl::LdlSystem sys(options);
  ldl::Status load = sys.LoadProgram(text);
  if (!load.ok()) return;  // parse/validate problems already reported
  for (const ldl::QueryForm& query : sys.pending_queries()) {
    if (!sys.program().IsDerived(query.goal.predicate())) continue;
    auto plan = sys.Plan(query.goal);
    if (!plan.ok()) {
      sink->Error("V000",
                  plan.status().ToString(),
                  ldl::SourceLocation::For("query: " + query.ToString()));
    } else if (!plan->safe) {
      sink->Error("S001",
                  "query has no safe execution: " + plan->unsafe_reason,
                  ldl::SourceLocation::For("query: " + query.ToString()));
    }
  }
}

/// L010: warns for every recursive clique that has no safe evaluation
/// under ANY entry adornment. Each of the 2^arity binding patterns of each
/// clique predicate is probed with a proxy goal (bound positions get a
/// placeholder constant — safety does not depend on the constant's value);
/// the optimizer's pruned-unsafe search events supply the reasons.
void CheckRecursiveCliques(const ldl::Program& program,
                           ldl::DiagnosticSink* sink) {
  // Probing is exponential in arity by design (that is the adornment
  // space); skip pathological arities rather than stall the lint.
  constexpr size_t kMaxProbeArity = 8;
  ldl::DependencyGraph graph = ldl::DependencyGraph::Build(program);
  if (graph.cliques().empty()) return;
  ldl::SearchTracer tracer;
  ldl::OptimizerOptions options;
  options.trace.search = &tracer;
  ldl::Statistics stats;  // safety is statistics-independent
  for (const ldl::RecursiveClique& clique : graph.cliques()) {
    bool any_safe = false;
    std::set<std::string> reasons;
    for (const ldl::PredicateId& pred : clique.predicates) {
      if (pred.arity > kMaxProbeArity) {
        any_safe = true;  // unprobed: give it the benefit of the doubt
        break;
      }
      for (size_t mask = 0; mask < (size_t{1} << pred.arity) && !any_safe;
           ++mask) {
        std::vector<ldl::Term> args;
        for (size_t i = 0; i < pred.arity; ++i) {
          args.push_back(mask >> i & 1
                             ? ldl::Term::MakeInt(0)
                             : ldl::Term::MakeVariable(ldl::StrCat("X", i)));
        }
        tracer.Clear();
        ldl::Optimizer optimizer(program, stats, options);
        auto plan = optimizer.Optimize(
            ldl::Literal::Make(pred.name, std::move(args)));
        if (plan.ok() && plan->safe) {
          any_safe = true;
          break;
        }
        if (plan.ok() && !plan->unsafe_reason.empty()) {
          reasons.insert(plan->unsafe_reason);
        }
        for (const ldl::SearchCandidate& c : tracer.candidates()) {
          if (c.disposition == ldl::CandidateDisposition::kPrunedUnsafe &&
              !tracer.DetailOf(c).empty()) {
            reasons.insert(tracer.DetailOf(c));
          }
        }
      }
      if (any_safe) break;
    }
    if (any_safe) continue;
    std::string names;
    for (const ldl::PredicateId& pred : clique.predicates) {
      ldl::StrAppend(&names, names.empty() ? "" : ", ", pred.name, "/",
                     pred.arity);
    }
    std::string message = ldl::StrCat(
        "recursive clique {", names,
        "} has no adornment with a safe evaluation; every query reaching "
        "it will fail");
    size_t listed = 0;
    for (const std::string& reason : reasons) {
      ldl::StrAppend(&message, listed == 0 ? " (" : "; ", reason);
      if (++listed == 3) break;
    }
    if (listed > 0) message += ")";
    sink->Warning("L010", message);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      cli.werror = true;
    } else if (arg == "--no-warn") {
      cli.warnings = false;
    } else if (arg == "--no-verify") {
      cli.verify_queries = false;
    } else if (arg == "--analyze") {
      cli.analyze = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      cli.trace_file = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ldl_lint: unknown option " << arg << "\n";
      return Usage();
    } else {
      cli.files.push_back(arg);
    }
  }
  if (cli.files.empty()) return Usage();

  ldl::Tracer tracer;
  tracer.set_enabled(!cli.trace_file.empty());

  size_t total_errors = 0;
  size_t total_warnings = 0;
  for (const std::string& file : cli.files) {
    ldl::Span file_span(&tracer, "lint-file", "lint");
    if (file_span.active()) file_span.AddArg("file", file);
    std::string text;
    if (!ReadInput(file, &text)) {
      std::cout << file << ": error L000: cannot read file\n";
      total_errors++;
      continue;
    }
    ldl::DiagnosticSink sink;
    ldl::Span parse_span(&tracer, "parse", "lint");
    auto parsed = ldl::ParseProgram(text);
    parse_span.Finish();
    if (!parsed.ok()) {
      sink.Error("L000", parsed.status().ToString());
    } else {
      ldl::Span lint_span(&tracer, "lint", "lint");
      ldl::ProgramLinter(*parsed).Lint(&sink);
      lint_span.Finish();
      if (cli.analyze) {
        ldl::Span analyze_span(&tracer, "analyze", "lint");
        ldl::ProgramAnalyzer(*parsed).Lint(&sink);
      }
      if (cli.verify_queries && !sink.HasErrors()) {
        ldl::Span verify_span(&tracer, "verify-queries", "lint");
        VerifyQueries(text, &sink);
        CheckRecursiveCliques(*parsed, &sink);
      }
      sink.StableSortByLocation();
    }
    Print(file, sink, cli.warnings);
    total_errors += sink.error_count();
    total_warnings += sink.warning_count();
  }

  if (!cli.trace_file.empty()) {
    std::ofstream out(cli.trace_file);
    if (!out) {
      std::cerr << "ldl_lint: cannot write " << cli.trace_file << "\n";
      return 2;
    }
    tracer.WriteChromeTrace(out);
  }

  if (total_errors + (cli.werror ? total_warnings : 0) > 0) {
    std::cout << total_errors << " error(s), " << total_warnings
              << " warning(s)\n";
    return 1;
  }
  return 0;
}
