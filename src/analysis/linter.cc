#include "analysis/linter.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/strings.h"
#include "graph/dependency_graph.h"

namespace ldl {

namespace {

SourceLocation RuleLoc(size_t index, const Rule& rule) {
  return SourceLocation::ForRule(index, rule.ToString());
}

/// Variables of `rule` grounded by the body: every variable of a positive,
/// non-builtin literal, closed under `=` propagation (X = expr grounds X
/// once all of expr's variables are grounded, and vice versa). This is the
/// same closure Rule::IsRangeRestricted computes; recomputed here so the
/// linter can name the offending variables instead of answering yes/no.
std::set<std::string> GroundedVariables(const Rule& rule) {
  std::set<std::string> grounded;
  for (const Literal& l : rule.body()) {
    if (l.IsBuiltin() || l.negated()) continue;
    std::vector<std::string> vars;
    l.CollectVariables(&vars);
    grounded.insert(vars.begin(), vars.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : rule.body()) {
      if (l.builtin() != BuiltinKind::kEq) continue;
      auto all_ground = [&grounded](const Term& t) {
        std::vector<std::string> vars;
        t.CollectVariables(&vars);
        return std::all_of(
            vars.begin(), vars.end(),
            [&grounded](const std::string& v) { return grounded.count(v); });
      };
      auto ground_all = [&grounded, &changed](const Term& t) {
        std::vector<std::string> vars;
        t.CollectVariables(&vars);
        for (const std::string& v : vars) {
          if (grounded.insert(v).second) changed = true;
        }
      };
      const Term& lhs = l.args()[0];
      const Term& rhs = l.args()[1];
      if (all_ground(rhs) && !all_ground(lhs)) ground_all(lhs);
      if (all_ground(lhs) && !all_ground(rhs)) ground_all(rhs);
    }
  }
  return grounded;
}

}  // namespace

ProgramLinter::ProgramLinter(const Program& program, LintOptions options)
    : program_(program), options_(options) {}

void ProgramLinter::Lint(DiagnosticSink* sink) const {
  if (options_.check_structure) CheckStructure(sink);
  if (options_.check_arity) CheckArities(sink);
  if (options_.check_range) CheckRangeRestriction(sink);
  if (options_.check_stratification) CheckStratification(sink);
  if (options_.check_undefined) CheckUndefined(sink);
  if (options_.check_unused) CheckUnused(sink);
  if (options_.check_duplicates) CheckDuplicates(sink);
  if (options_.check_singletons) CheckSingletons(sink);
}

void ProgramLinter::CheckArities(DiagnosticSink* sink) const {
  // First-seen arity per predicate name; later uses with another arity are
  // reported where they occur.
  std::map<std::string, size_t> arity_of;
  auto check = [&](const Literal& l, SourceLocation loc) {
    if (l.IsBuiltin()) return;
    auto [it, inserted] = arity_of.emplace(l.predicate_name(), l.arity());
    if (!inserted && it->second != l.arity()) {
      sink->Error("L001",
                  StrCat("predicate ", l.predicate_name(), " used with arity ",
                         l.arity(), " but previously with arity ", it->second),
                  std::move(loc));
    }
  };
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const Rule& rule = program_.rules()[i];
    check(rule.head(), RuleLoc(i, rule));
    for (const Literal& l : rule.body()) check(l, RuleLoc(i, rule));
  }
  for (const Literal& f : program_.facts()) {
    check(f, SourceLocation::For(StrCat("fact: ", f.ToString())));
  }
  for (const QueryForm& q : program_.queries()) {
    check(q.goal, SourceLocation::For(StrCat("query: ", q.ToString())));
  }
}

void ProgramLinter::CheckRangeRestriction(DiagnosticSink* sink) const {
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const Rule& rule = program_.rules()[i];
    std::set<std::string> grounded = GroundedVariables(rule);
    std::vector<std::string> head_vars;
    rule.head().CollectVariables(&head_vars);
    std::set<std::string> reported;
    for (const std::string& v : head_vars) {
      if (grounded.count(v) || !reported.insert(v).second) continue;
      sink->Error("L002",
                  StrCat("head variable ", v,
                         " is not range-restricted: it never appears in a "
                         "positive body literal (directly or through `=`)"),
                  RuleLoc(i, rule));
    }
  }
}

void ProgramLinter::CheckSingletons(DiagnosticSink* sink) const {
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const Rule& rule = program_.rules()[i];
    std::vector<std::string> all;
    rule.head().CollectVariables(&all);
    for (const Literal& l : rule.body()) l.CollectVariables(&all);
    std::map<std::string, size_t> counts;
    for (const std::string& v : all) counts[v]++;
    for (const auto& [name, count] : counts) {
      if (count != 1 || name.empty() || name[0] == '_') continue;
      sink->Warning("L003",
                    StrCat("singleton variable ", name,
                           " (prefix it with _ if intentional)"),
                    RuleLoc(i, rule));
    }
  }
}

void ProgramLinter::CheckStratification(DiagnosticSink* sink) const {
  DependencyGraph graph = DependencyGraph::Build(program_);
  bool reported = false;
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const Rule& rule = program_.rules()[i];
    int head_clique = graph.CliqueIndex(rule.head().predicate());
    if (head_clique < 0) continue;
    for (const Literal& l : rule.body()) {
      if (!l.negated() || l.IsBuiltin()) continue;
      if (graph.CliqueIndex(l.predicate()) == head_clique) {
        sink->Error("L004",
                    StrCat("unstratified negation: not ", l.predicate().ToString(),
                           " negates a predicate in the head's own recursive "
                           "clique"),
                    RuleLoc(i, rule));
        reported = true;
      }
    }
  }
  // The per-rule scan pinpoints same-clique negation; the graph-level check
  // additionally rejects negative cycles that cross clique boundaries.
  if (!reported) {
    Status st = graph.CheckStratified();
    if (!st.ok()) sink->Error("L004", st.message());
  }
}

void ProgramLinter::CheckUndefined(DiagnosticSink* sink) const {
  std::set<PredicateId> facts;
  for (const Literal& f : program_.facts()) facts.insert(f.predicate());
  std::set<PredicateId> seen;
  auto check = [&](const Literal& l, SourceLocation loc) {
    if (l.IsBuiltin()) return;
    const PredicateId pred = l.predicate();
    if (program_.IsDerived(pred) || facts.count(pred)) return;
    if (!seen.insert(pred).second) return;
    sink->Warning("L005",
                  StrCat("predicate ", pred.ToString(),
                         " is defined by no rule or fact; it must be a base "
                         "relation loaded into the database"),
                  std::move(loc));
  };
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const Rule& rule = program_.rules()[i];
    for (const Literal& l : rule.body()) check(l, RuleLoc(i, rule));
  }
  for (const QueryForm& q : program_.queries()) {
    check(q.goal, SourceLocation::For(StrCat("query: ", q.ToString())));
  }
}

void ProgramLinter::CheckUnused(DiagnosticSink* sink) const {
  // Without a query there is no entry point to compute reachability from:
  // the file is a library and every head is exported.
  if (program_.queries().empty()) return;
  DependencyGraph graph = DependencyGraph::Build(program_);
  for (const PredicateId& pred : program_.DerivedPredicates()) {
    bool used = false;
    for (const QueryForm& q : program_.queries()) {
      const PredicateId qp = q.goal.predicate();
      if (qp == pred || graph.DependsOn(qp, pred)) {
        used = true;
        break;
      }
    }
    if (!used) {
      sink->Warning("L006",
                    StrCat("derived predicate ", pred.ToString(),
                           " is not reachable from any query"),
                    SourceLocation::For(pred.ToString()));
    }
  }
}

void ProgramLinter::CheckDuplicates(DiagnosticSink* sink) const {
  std::map<std::string, size_t> first;
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const Rule& rule = program_.rules()[i];
    auto [it, inserted] = first.emplace(rule.ToString(), i);
    if (!inserted) {
      sink->Warning("L007",
                    StrCat("duplicate of rule ", it->second),
                    RuleLoc(i, rule));
    }
  }
}

void ProgramLinter::CheckStructure(DiagnosticSink* sink) const {
  for (size_t i = 0; i < program_.rules().size(); ++i) {
    const Rule& rule = program_.rules()[i];
    if (rule.head().IsBuiltin()) {
      sink->Error("L008", StrCat("builtin as rule head: ",
                                 rule.head().ToString()),
                  RuleLoc(i, rule));
    } else if (rule.head().negated()) {
      sink->Error("L008", StrCat("negated rule head: ",
                                 rule.head().ToString()),
                  RuleLoc(i, rule));
    }
    for (const Literal& l : rule.body()) {
      if (l.IsBuiltin() && l.negated()) {
        sink->Error("L008",
                    StrCat("negation applied to builtin: ", l.ToString()),
                    RuleLoc(i, rule));
      }
    }
  }
  for (const Literal& f : program_.facts()) {
    bool ground = true;
    for (const Term& t : f.args()) ground = ground && t.IsGround();
    if (!ground) {
      sink->Error("L009", StrCat("non-ground fact: ", f.ToString()),
                  SourceLocation::For(StrCat("fact: ", f.ToString())));
    }
  }
}

Status LintProgram(const Program& program, LintOptions options) {
  DiagnosticSink sink;
  ProgramLinter(program, options).Lint(&sink);
  return sink.ToStatus(StatusCode::kInvalidArgument);
}

}  // namespace ldl
