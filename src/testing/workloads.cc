#include "testing/workloads.h"

#include <vector>

namespace ldl {
namespace testing {

namespace {

Tuple Pair(int64_t a, int64_t b) {
  return {Term::MakeInt(a), Term::MakeInt(b)};
}

}  // namespace

size_t MakeSameGenerationData(size_t fanout, size_t depth, Database* db) {
  Relation* up = db->GetOrCreate({"up", 2});
  Relation* dn = db->GetOrCreate({"dn", 2});
  Relation* flat = db->GetOrCreate({"flat", 2});

  // Levels: level 0 is the root generation (where `flat` links live);
  // deeper levels fan out downward. up(x, parent): from level k+1 to k.
  // A query sg(leaf, Y) climbs `up`, crosses `flat`, descends `dn`.
  std::vector<std::vector<int64_t>> levels;
  int64_t next_id = 0;
  levels.push_back({});
  const size_t root_width = fanout;  // several roots so flat is non-trivial
  for (size_t i = 0; i < root_width; ++i) levels[0].push_back(next_id++);
  for (size_t d = 1; d <= depth; ++d) {
    levels.push_back({});
    for (int64_t parent : levels[d - 1]) {
      for (size_t f = 0; f < fanout; ++f) {
        int64_t child = next_id++;
        levels[d].push_back(child);
        up->Insert(Pair(child, parent));
        dn->Insert(Pair(parent, child));
      }
    }
  }
  // flat: ring among the root generation.
  for (size_t i = 0; i < levels[0].size(); ++i) {
    flat->Insert(Pair(levels[0][i], levels[0][(i + 1) % levels[0].size()]));
  }
  return static_cast<size_t>(next_id);
}

size_t MakeTreeParentData(size_t fanout, size_t depth, Database* db) {
  Relation* par = db->GetOrCreate({"par", 2});
  std::vector<int64_t> frontier{0};
  int64_t next_id = 1;
  for (size_t d = 0; d < depth; ++d) {
    std::vector<int64_t> next;
    for (int64_t parent : frontier) {
      for (size_t f = 0; f < fanout; ++f) {
        int64_t child = next_id++;
        par->Insert(Pair(child, parent));
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return static_cast<size_t>(next_id);
}

void MakeRandomDag(size_t n, size_t out_degree, uint64_t seed, Database* db) {
  Relation* edge = db->GetOrCreate({"edge", 2});
  Rng rng(seed);
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t k = 0; k < out_degree; ++k) {
      size_t j = i + 1 + rng.Uniform(n - i - 1);
      edge->Insert(Pair(static_cast<int64_t>(i), static_cast<int64_t>(j)));
    }
  }
}

void MakeCycle(size_t n, Database* db) {
  Relation* edge = db->GetOrCreate({"edge", 2});
  for (size_t i = 0; i < n; ++i) {
    edge->Insert(Pair(static_cast<int64_t>(i),
                      static_cast<int64_t>((i + 1) % n)));
  }
}

void MakeRandomRelation(const std::string& name, size_t arity, size_t rows,
                        size_t domain, uint64_t seed, Database* db) {
  Relation* rel = db->GetOrCreate({name, arity});
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    Tuple t;
    t.reserve(arity);
    for (size_t c = 0; c < arity; ++c) {
      t.push_back(Term::MakeInt(static_cast<int64_t>(rng.Uniform(domain))));
    }
    rel->Insert(std::move(t));
  }
}

}  // namespace testing
}  // namespace ldl
