#ifndef LDLOPT_ANALYSIS_LINTER_H_
#define LDLOPT_ANALYSIS_LINTER_H_

#include "analysis/diagnostic.h"
#include "ast/program.h"
#include "base/status.h"

namespace ldl {

/// Which lint checks run. Every check is on by default; the flags exist so
/// tooling (ldl_lint --no-style) and tests can focus a single pass.
struct LintOptions {
  bool check_arity = true;          ///< L001
  bool check_range = true;          ///< L002
  bool check_singletons = true;     ///< L003
  bool check_stratification = true; ///< L004
  bool check_undefined = true;      ///< L005
  bool check_unused = true;         ///< L006
  bool check_duplicates = true;     ///< L007
  bool check_structure = true;      ///< L008, L009
};

/// Static checks over an ast::Program, run before the program reaches the
/// optimizer or engine. Error codes are stable (see DESIGN.md §7):
///
///   L001 error    predicate used with more than one arity
///   L002 error    head variable not range-restricted (never grounded by a
///                 positive body literal or a chain of `=` builtins)
///   L003 warning  singleton variable (occurs exactly once in its rule and
///                 does not start with `_`)
///   L004 error    unstratified negation: a negated body literal whose
///                 predicate is in the same recursive clique as the head,
///                 or any negative cycle found by the dependency graph
///   L005 warning  predicate used in a body or query but defined by no rule
///                 or fact (must be a base relation loaded externally)
///   L006 warning  derived predicate never used in a body or query (only
///                 reported when the program declares at least one query —
///                 a query-less file is a library whose heads are all
///                 entry points)
///   L007 warning  duplicate rule (syntactically identical, including
///                 variable names)
///   L008 error    malformed clause: builtin or negated literal as a rule
///                 head, or negation applied to a builtin
///   L009 error    non-ground fact
///
/// The linter never mutates the program; all findings go to the sink.
class ProgramLinter {
 public:
  explicit ProgramLinter(const Program& program, LintOptions options = {});

  /// Runs every enabled check, appending findings to `sink`.
  void Lint(DiagnosticSink* sink) const;

 private:
  void CheckArities(DiagnosticSink* sink) const;
  void CheckRangeRestriction(DiagnosticSink* sink) const;
  void CheckSingletons(DiagnosticSink* sink) const;
  void CheckStratification(DiagnosticSink* sink) const;
  void CheckUndefined(DiagnosticSink* sink) const;
  void CheckUnused(DiagnosticSink* sink) const;
  void CheckDuplicates(DiagnosticSink* sink) const;
  void CheckStructure(DiagnosticSink* sink) const;

  const Program& program_;
  LintOptions options_;
};

/// Convenience wrapper: lints `program` and returns OK iff no errors were
/// found (warnings do not fail). The full findings, warnings included, can
/// be retrieved by running ProgramLinter with an own sink.
Status LintProgram(const Program& program, LintOptions options = {});

}  // namespace ldl

#endif  // LDLOPT_ANALYSIS_LINTER_H_
