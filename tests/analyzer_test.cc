// Semantic program analysis (analysis/analyzer.h): type/sort inference with
// the L011..L014 lints, adornment reachability, dead-rule collection and
// elimination, and the optimizer integration (pruned-unreachable search
// candidates, smaller memo lattices, unchanged answers).

#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "ast/parser.h"
#include "engine/query_eval.h"
#include "ldl/ldl.h"
#include "obs/metrics.h"
#include "obs/search_trace.h"
#include "storage/database.h"

namespace ldl {
namespace {

Program Parse(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return *parsed;
}

Literal Goal(const std::string& text) {
  auto goal = ParseLiteral(text);
  EXPECT_TRUE(goal.ok()) << goal.status();
  return *goal;
}

AdornedPredicate Ap(const std::string& name, const std::string& adornment) {
  auto adn = Adornment::FromString(adornment);
  EXPECT_TRUE(adn.ok());
  return {{name, adn->size()}, *adn};
}

// ---------------------------------------------------------------------------
// Type inference

TEST(AnalyzerTypesTest, InfersColumnSortsBottomUp) {
  Program program = Parse(R"(
    e(1, 2).  e(2, 3).
    name(1, ann).  name(2, bob).
    t(X, Y) <- e(X, Y).
    labeled(X, N) <- t(X, _Y), name(X, N).
  )");
  ProgramAnalysis a = ProgramAnalyzer(program).AnalyzeProgram();

  const std::vector<TypeSet>& t_cols = a.TypesOf({"t", 2});
  ASSERT_EQ(t_cols.size(), 2u);
  EXPECT_EQ(t_cols[0], TypeSet(TypeSet::kNumeric));
  EXPECT_EQ(t_cols[1], TypeSet(TypeSet::kNumeric));

  const std::vector<TypeSet>& l_cols = a.TypesOf({"labeled", 2});
  ASSERT_EQ(l_cols.size(), 2u);
  EXPECT_EQ(l_cols[0], TypeSet(TypeSet::kNumeric));
  EXPECT_EQ(l_cols[1], TypeSet(TypeSet::kSymbol));
  EXPECT_TRUE(a.type_stats().converged);
}

TEST(AnalyzerTypesTest, MixedColumnsJoinAcrossFactsAndRules) {
  Program program = Parse(R"(
    m(1).  m(foo).
    n(X) <- m(X).
  )");
  ProgramAnalysis a = ProgramAnalyzer(program).AnalyzeProgram();
  const std::vector<TypeSet>& cols = a.TypesOf({"n", 1});
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_EQ(cols[0], TypeSet(TypeSet::kNumeric | TypeSet::kSymbol));
  EXPECT_EQ(cols[0].ToString(), "{num,sym}");
}

TEST(AnalyzerTypesTest, RecursiveCliqueTypesConverge) {
  Program program = Parse(R"(
    e(1, 2).
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
  )");
  ProgramAnalysis a = ProgramAnalyzer(program).AnalyzeProgram();
  const std::vector<TypeSet>& cols = a.TypesOf({"t", 2});
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], TypeSet(TypeSet::kNumeric));
  EXPECT_EQ(cols[1], TypeSet(TypeSet::kNumeric));
  EXPECT_TRUE(a.type_stats().converged);
}

// ---------------------------------------------------------------------------
// Lints L011..L014

TEST(AnalyzerLintTest, L011FlagsSortIncompatibleConstantArgument) {
  Program program = Parse(R"(
    e(1, 2).  e(2, 3).
    p(X) <- e(X, foo).
  )");
  DiagnosticSink sink;
  ProgramAnalyzer(program).Lint(&sink);
  EXPECT_TRUE(sink.Has("L011")) << sink.ToString();
  ProgramAnalysis a = ProgramAnalyzer(program).AnalyzeProgram();
  EXPECT_TRUE(a.RuleUnsatisfiable(0));
}

TEST(AnalyzerLintTest, L012FlagsGroundComparisonAlwaysFalse) {
  Program program = Parse(R"(
    e(1, 2).
    p(X) <- e(X, _Y), 1 > 2.
  )");
  DiagnosticSink sink;
  ProgramAnalyzer(program).Lint(&sink);
  EXPECT_TRUE(sink.Has("L012")) << sink.ToString();
}

TEST(AnalyzerLintTest, L012FlagsCrossSortComparisonAlwaysFalse) {
  // Y ranges over numbers; in the engine's term order no number is greater
  // than a symbol, so Y > foo can never hold.
  Program program = Parse(R"(
    e(1, 2).
    p(X) <- e(X, Y), Y > foo.
  )");
  DiagnosticSink sink;
  ProgramAnalyzer(program).Lint(&sink);
  EXPECT_TRUE(sink.Has("L012")) << sink.ToString();
  // The same comparison the other way around is possible (num < sym).
  Program ok_program = Parse(R"(
    e(1, 2).
    p(X) <- e(X, Y), Y < foo.
  )");
  DiagnosticSink ok_sink;
  ProgramAnalyzer(ok_program).Lint(&ok_sink);
  EXPECT_FALSE(ok_sink.Has("L012")) << ok_sink.ToString();
}

TEST(AnalyzerLintTest, L013FlagsContradictorySortConstraints) {
  // X is numeric via e's first column and a symbol via the equation.
  Program program = Parse(R"(
    e(1, 2).
    p(X) <- e(X, _Y), X = foo.
  )");
  DiagnosticSink sink;
  ProgramAnalyzer(program).Lint(&sink);
  EXPECT_TRUE(sink.Has("L013")) << sink.ToString();
}

TEST(AnalyzerLintTest, L014FlagsSubsumedRule) {
  // Rule 1's body is a superset of rule 0's under the identity substitution:
  // everything it derives, rule 0 derives already.
  Program program = Parse(R"(
    e(1, 2).
    s(X, Y) <- e(X, Y).
    s(X, Y) <- e(X, Y), e(Y, X).
  )");
  DiagnosticSink sink;
  ProgramAnalyzer(program).Lint(&sink);
  EXPECT_TRUE(sink.Has("L014")) << sink.ToString();
  ProgramAnalysis a = ProgramAnalyzer(program).AnalyzeProgram();
  EXPECT_FALSE(a.RuleSubsumed(0));
  EXPECT_TRUE(a.RuleSubsumed(1));
}

TEST(AnalyzerLintTest, VariantRulesKeepTheTextuallyEarlierOne) {
  // The two rules are renamings of each other (mutual subsumption): exactly
  // one — the later — must be flagged, deterministically.
  Program program = Parse(R"(
    e(1, 2).
    s(X, Y) <- e(X, Y).
    s(A, B) <- e(A, B).
  )");
  ProgramAnalysis a = ProgramAnalyzer(program).AnalyzeProgram();
  EXPECT_FALSE(a.RuleSubsumed(0));
  EXPECT_TRUE(a.RuleSubsumed(1));
}

TEST(AnalyzerLintTest, CleanProgramHasNoFindings) {
  Program program = Parse(R"(
    e(1, 2).  e(2, 3).
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
    v(X, Y) <- t(X, Y), X < Y.
  )");
  DiagnosticSink sink;
  ProgramAnalyzer(program).Lint(&sink);
  EXPECT_TRUE(sink.empty()) << sink.ToString();
}

// ---------------------------------------------------------------------------
// Adornment reachability

TEST(AnalyzerReachabilityTest, BoundGoalNeverRequestsAllFreeViews) {
  Program program = Parse(R"(
    e(1, 2).  e(2, 3).
    t(X, Y) <- e(X, Y).
    v(X, Y) <- t(X, Z), e(Z, Y).
  )");
  ProgramAnalysis a = ProgramAnalyzer(program).Analyze(Goal("v(1, Qy)"));

  EXPECT_TRUE(a.has_goal());
  EXPECT_TRUE(a.reachability_complete());
  EXPECT_TRUE(a.AdornmentReachable(Ap("v", "bf")));
  EXPECT_FALSE(a.AdornmentReachable(Ap("v", "ff")));
  // t's first argument is always bound through the view's head.
  EXPECT_TRUE(a.AdornmentReachable(Ap("t", "bf")));
  EXPECT_TRUE(a.AdornmentReachable(Ap("t", "bb")));
  EXPECT_FALSE(a.AdornmentReachable(Ap("t", "ff")));
  // Base predicates are never constrained.
  EXPECT_TRUE(a.AdornmentReachable(Ap("e", "ff")));
  EXPECT_GE(a.reachable_pair_count(), 3u);
}

TEST(AnalyzerReachabilityTest, FreeGoalReachesAllFree) {
  Program program = Parse(R"(
    e(1, 2).
    t(X, Y) <- e(X, Y).
    v(X, Y) <- t(X, Z), e(Z, Y).
  )");
  ProgramAnalysis a = ProgramAnalyzer(program).Analyze(Goal("v(Qx, Qy)"));
  EXPECT_TRUE(a.AdornmentReachable(Ap("v", "ff")));
  EXPECT_TRUE(a.AdornmentReachable(Ap("t", "ff")));
}

TEST(AnalyzerReachabilityTest, RecursiveCliqueSeedsAllFree) {
  // Clique members may be computed in full-fixpoint context whatever the
  // entry adornment, so all-free must stay reachable for them.
  Program program = Parse(R"(
    e(1, 2).  e(2, 3).
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
  )");
  ProgramAnalysis a = ProgramAnalyzer(program).Analyze(Goal("t(1, Qy)"));
  EXPECT_TRUE(a.AdornmentReachable(Ap("t", "bf")));
  EXPECT_TRUE(a.AdornmentReachable(Ap("t", "ff")));
}

TEST(AnalyzerReachabilityTest, GoalIndependentAnalysisPrunesNothing) {
  Program program = Parse(R"(
    e(1, 2).
    t(X, Y) <- e(X, Y).
  )");
  ProgramAnalysis a = ProgramAnalyzer(program).AnalyzeProgram();
  EXPECT_FALSE(a.has_goal());
  EXPECT_TRUE(a.AdornmentReachable(Ap("t", "ff")));
  EXPECT_TRUE(a.AdornmentReachable(Ap("t", "bb")));
}

// ---------------------------------------------------------------------------
// Dead rules and elimination

TEST(AnalyzerDeadRuleTest, CollectsAllFourCategories) {
  Database db;
  ASSERT_TRUE(db.AddFact(Goal("e(1, 2)")).ok());
  Program program = Parse(R"(
    v(X, Y) <- e(X, Y).
    v(X, Y) <- e(X, Y), 1 > 2.
    v(X, Y) <- e(X, Y), e(Y, X).
    orphan(X) <- e(X, X).
    ghostly(X) <- ghost(X, X).
  )");
  AnalyzerOptions options;
  options.database = &db;  // `ghost` has no relation: statically empty
  ProgramAnalysis a = ProgramAnalyzer(program, options).Analyze(Goal("v(1, Qy)"));

  ASSERT_EQ(a.dead_rules().size(), 4u);
  EXPECT_EQ(a.dead_rules()[0].rule_index, 1u);
  EXPECT_EQ(a.dead_rules()[0].reason,
            "body is statically unsatisfiable (sort conflict)");
  EXPECT_EQ(a.dead_rules()[1].rule_index, 2u);
  EXPECT_EQ(a.dead_rules()[1].reason, "subsumed by another rule");
  EXPECT_EQ(a.dead_rules()[2].rule_index, 3u);
  EXPECT_EQ(a.dead_rules()[2].reason, "unreachable from v/2");
  EXPECT_EQ(a.dead_rules()[3].rule_index, 4u);
  EXPECT_EQ(a.dead_rules()[3].reason, "unreachable from v/2");

  DeadRuleElimination pruned = EliminateDeadRules(program, a);
  EXPECT_EQ(pruned.program.rules().size(), 1u);
  EXPECT_EQ(pruned.removed_rules.size(), 4u);
  EXPECT_EQ(pruned.reasons.size(), 4u);
}

TEST(AnalyzerDeadRuleTest, EmptyBasePredicateKillsItsRules) {
  Database db;
  ASSERT_TRUE(db.AddFact(Goal("e(1, 2)")).ok());
  Program program = Parse(R"(
    v(X, Y) <- e(X, Y).
    v(X, Y) <- ghost(X, Y).
  )");
  AnalyzerOptions options;
  options.database = &db;
  ProgramAnalysis a =
      ProgramAnalyzer(program, options).Analyze(Goal("v(1, Qy)"));
  ASSERT_EQ(a.dead_rules().size(), 1u);
  EXPECT_EQ(a.dead_rules()[0].rule_index, 1u);
  EXPECT_EQ(a.dead_rules()[0].reason,
            "positive occurrence of statically empty ghost/2");
}

// ---------------------------------------------------------------------------
// Cardinality sketch

TEST(AnalyzerCardinalityTest, SketchesBaseAndDerivedBounds) {
  Database db;
  for (const char* fact : {"e(1, 2)", "e(2, 3)", "e(3, 4)"}) {
    ASSERT_TRUE(db.AddFact(Goal(fact)).ok());
  }
  Program program = Parse(R"(
    v(X, Y) <- e(X, Z), e(Z, Y).
  )");
  AnalyzerOptions options;
  options.database = &db;
  ProgramAnalysis a = ProgramAnalyzer(program, options).AnalyzeProgram();
  EXPECT_DOUBLE_EQ(a.CardinalityBound({"e", 2}), 3.0);
  EXPECT_DOUBLE_EQ(a.CardinalityBound({"v", 2}), 9.0);
  EXPECT_TRUE(a.cardinality_stats().converged);
}

TEST(AnalyzerCardinalityTest, RecursiveCliqueWidensToCap) {
  Database db;
  ASSERT_TRUE(db.AddFact(Goal("e(1, 2)")).ok());
  Program program = Parse(R"(
    t(X, Y) <- e(X, Y).
    t(X, Y) <- t(X, Z), t(Z, Y).
  )");
  AnalyzerOptions options;
  options.database = &db;
  ProgramAnalysis a = ProgramAnalyzer(program, options).AnalyzeProgram();
  // The nonlinear product grows without bound until widening caps it.
  EXPECT_GE(a.CardinalityBound({"t", 2}), 1.0);
  EXPECT_TRUE(a.cardinality_stats().converged);
}

// ---------------------------------------------------------------------------
// Diagnostics determinism

TEST(DiagnosticSinkTest, StableSortByLocationIsDeterministic) {
  DiagnosticSink sink;
  sink.Warning("L013", "later rule", SourceLocation::ForRule(2, "r2"));
  sink.Warning("L012", "rule-less", SourceLocation::For("query"));
  sink.Warning("L014", "earlier rule", SourceLocation::ForRule(0, "r0"));
  sink.Warning("L011", "earlier rule, smaller code",
               SourceLocation::ForRule(0, "r0"));
  sink.StableSortByLocation();

  ASSERT_EQ(sink.diagnostics().size(), 4u);
  EXPECT_EQ(sink.diagnostics()[0].code, "L011");
  EXPECT_EQ(sink.diagnostics()[1].code, "L014");
  EXPECT_EQ(sink.diagnostics()[2].code, "L013");
  EXPECT_EQ(sink.diagnostics()[3].code, "L012");  // SIZE_MAX sorts last
}

// ---------------------------------------------------------------------------
// Optimizer integration

constexpr const char* kLayered = R"(
  e(1, 2).  e(2, 3).  e(3, 4).  e(4, 5).
  t(X, Y) <- e(X, Y).
  v(X, Y) <- t(X, Z), e(Z, Y).
  w(X, Y) <- v(X, Z), e(Z, Y).
)";

TEST(AnalyzerOptimizerTest, ExplainOptimizeShowsPrunedUnreachable) {
  OptimizerOptions options;
  options.analyze_reachability = true;
  LdlSystem sys(options);
  ASSERT_TRUE(sys.LoadProgram(kLayered).ok());
  auto explain = sys.ExplainOptimize("w(1, Qy)");
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_NE(explain->find("pruned-unreachable"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("unreachable prunes"), std::string::npos) << *explain;
}

TEST(AnalyzerOptimizerTest, PruningShrinksMemoLattice) {
  auto memo_size = [](bool analyze) {
    SearchTracer tracer;
    OptimizerOptions options;
    options.analyze_reachability = analyze;
    options.trace.search = &tracer;
    LdlSystem sys(options);
    EXPECT_TRUE(sys.LoadProgram(kLayered).ok());
    auto plan = sys.Plan("w(1, Qy)");
    EXPECT_TRUE(plan.ok()) << plan.status();
    return tracer.memo().size();
  };
  const size_t unpruned = memo_size(false);
  const size_t pruned = memo_size(true);
  EXPECT_LT(pruned, unpruned);
}

TEST(AnalyzerOptimizerTest, AnalysisPassesPreserveAnswers) {
  constexpr const char* kWithDeadRules = R"(
    e(1, 2).  e(2, 3).  e(3, 4).
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
    t(X, Y) <- e(X, Y), X = zz_dead.
    v(X, Y) <- t(X, Y), X < Y.
    orphan(X, Y) <- e(X, Y).
  )";
  auto answers = [&](bool analysis, const std::string& goal) {
    OptimizerOptions options;
    options.analyze_reachability = analysis;
    options.eliminate_dead_rules = analysis;
    LdlSystem sys(options);
    EXPECT_TRUE(sys.LoadProgram(kWithDeadRules).ok());
    auto result = sys.Query(goal);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? CanonicalAnswers(result->answers)
                       : std::vector<Tuple>{};
  };
  for (const char* goal : {"v(1, Qy)", "v(Qx, Qy)", "t(2, Qy)"}) {
    EXPECT_EQ(answers(false, goal), answers(true, goal)) << goal;
  }
}

TEST(AnalyzerOptimizerTest, MetricsExportCountsAnalysisWork) {
  Program program = Parse(kLayered);
  ProgramAnalysis a = ProgramAnalyzer(program).Analyze(Goal("w(1, Qy)"));
  MetricsRegistry metrics;
  a.ExportTo(&metrics);
  EXPECT_GT(metrics.counter_value("analysis.reachable_adornments"), 0u);
  EXPECT_GT(metrics.counter_value("analysis.dataflow_visits"), 0u);
  EXPECT_FALSE(a.ToString().empty());
}

}  // namespace
}  // namespace ldl
