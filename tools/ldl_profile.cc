// ldl_profile — optimizer and engine observability for LDL programs.
//
// Usage: ldl_profile [options] file.ldl
//        ldl_profile [options] -          (read the program from stdin)
//
//   --analyze            EXPLAIN ANALYZE: execute each query through the
//                        tree interpreter and print estimated cost next to
//                        measured rows / tuples / time per plan node.
//                        Default is EXPLAIN only (no execution).
//   --query GOAL         profile GOAL (e.g. "anc(bart, Y)") instead of the
//                        query forms embedded in the file. Repeatable.
//   --trace-json FILE    write spans as Chrome trace_event JSON (loadable
//                        in Perfetto / chrome://tracing).
//   --metrics-json FILE  write the metrics registry as flat JSON.
//   --metrics            print the metrics registry to stdout.
//   --calibration-json FILE
//                        with --analyze: write the per-query calibration
//                        reports (per-node q-errors, aggregates, plan
//                        regret) as a JSON array.
//   --explain-optimize   print EXPLAIN OPTIMIZE per query: the plan plus
//                        the candidate log (with dispositions) and the memo
//                        lattice the search built.
//   --search-json FILE   write the per-query search traces (scopes,
//                        candidates, memo lattice) as a JSON array.
//   --fixpoint-json FILE execute each query and write the per-round
//                        fixpoint telemetry (delta cardinality, derivation
//                        count, wall time per iteration per recursion
//                        method) as a JSON array.
//   --dot FILE           write the first query's memo lattice as a
//                        Graphviz digraph, winning subplans highlighted.
//   --prune              enable the semantic pre-optimization passes:
//                        dead-rule elimination and adornment-reachability
//                        pruning (statically unreachable (predicate,
//                        adornment) pairs skip memoization; they show as
//                        pruned-unreachable in EXPLAIN OPTIMIZE).
//   --budget-bytes N     per-query cap on peak derived-storage bytes; a
//                        query over budget aborts with ResourceExhausted.
//   --budget-tuples N    per-query cap on tuples examined.
//   --deadline-ms X      per-query wall-clock deadline (DeadlineExceeded).
//   --threads N          evaluate fixpoints with the hash-partitioned
//                        parallel engine at N worker threads (default 1 =
//                        the sequential code path; answers are identical
//                        at every N, see DESIGN.md section 16).
//   --query-log FILE     execute each query through the instrumented
//                        lifecycle path and append one structured JSONL
//                        record per query (replayable with ldl_replay).
//   --stats-port N       serve GET /metrics (Prometheus text exposition),
//                        /healthz, /statusz, and /stats on 127.0.0.1:N for
//                        the lifetime of the run; N=0 binds an ephemeral
//                        port. The bound port is printed on stdout. Starts
//                        the time-series sampler feeding /statusz
//                        sparklines.
//   --feedback           plan in feedback mode: execute each query, fold
//                        its measured cardinalities into a statistics
//                        catalog, and let the cost model consult the
//                        catalog as a blended measured-over-estimated
//                        overlay. Runs the drift detector after every
//                        harvest. Prints a `feedback:` summary line.
//   --stats-export FILE  write the feedback statistics catalog as JSON
//                        after the run (implies the feedback loop, not
//                        feedback planning).
//   --stats-import FILE  seed the feedback statistics catalog from a
//                        previously exported JSON file before the run
//                        (decay-merged into anything already harvested).
//   --sample-ms X        time-series sampling period (default 200).
//   --repeat K           execute the query set K times (EXPLAIN output is
//                        printed once); keeps a --stats-port run alive and
//                        busy long enough to scrape.
//
// Exit status: 0 success, 1 any query failed (parse, optimize, unsafe plan,
// or execution error — details on stderr), 2 usage error.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/strings.h"
#include "ldl/ldl.h"
#include "net/stats_server.h"
#include "obs/context.h"
#include "obs/feedback.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "obs/search_trace.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace {

struct CliOptions {
  bool analyze = false;
  bool print_metrics = false;
  bool explain_optimize = false;
  bool prune = false;
  uint64_t budget_bytes = 0;
  uint64_t budget_tuples = 0;
  double deadline_ms = 0;
  size_t threads = 1;
  int stats_port = -1;  ///< -1 = no server; 0 = ephemeral
  int sample_ms = 200;
  int repeat = 1;
  bool feedback = false;
  std::string stats_export;
  std::string stats_import;
  std::string query_log;
  std::string trace_json;
  std::string metrics_json;
  std::string calibration_json;
  std::string search_json;
  std::string fixpoint_json;
  std::string dot_file;
  std::vector<std::string> queries;
  std::string file;
};

int Usage() {
  std::cerr << "usage: ldl_profile [--analyze] [--explain-optimize] "
               "[--query GOAL]... "
               "[--trace-json FILE] [--metrics-json FILE] [--metrics] "
               "[--calibration-json FILE] [--search-json FILE] "
               "[--fixpoint-json FILE] [--dot FILE] [--prune] "
               "[--budget-bytes N] [--budget-tuples N] [--deadline-ms X] "
               "[--threads N] "
               "[--query-log FILE] [--stats-port N] [--sample-ms X] "
               "[--repeat K] [--feedback] [--stats-export FILE] "
               "[--stats-import FILE] file.ldl | -\n";
  return 2;
}

bool ReadInput(const std::string& name, std::string* out) {
  if (name == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream in(name);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--analyze") {
      cli.analyze = true;
    } else if (arg == "--metrics") {
      cli.print_metrics = true;
    } else if (arg == "--query" && i + 1 < argc) {
      cli.queries.push_back(argv[++i]);
    } else if (arg == "--trace-json" && i + 1 < argc) {
      cli.trace_json = argv[++i];
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      cli.metrics_json = argv[++i];
    } else if (arg == "--calibration-json" && i + 1 < argc) {
      cli.calibration_json = argv[++i];
    } else if (arg == "--explain-optimize") {
      cli.explain_optimize = true;
    } else if (arg == "--search-json" && i + 1 < argc) {
      cli.search_json = argv[++i];
    } else if (arg == "--fixpoint-json" && i + 1 < argc) {
      cli.fixpoint_json = argv[++i];
    } else if (arg == "--dot" && i + 1 < argc) {
      cli.dot_file = argv[++i];
    } else if (arg == "--prune") {
      cli.prune = true;
    } else if (arg == "--budget-bytes" && i + 1 < argc) {
      cli.budget_bytes = std::stoull(argv[++i]);
    } else if (arg == "--budget-tuples" && i + 1 < argc) {
      cli.budget_tuples = std::stoull(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      cli.deadline_ms = std::stod(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      cli.threads = std::stoull(argv[++i]);
      if (cli.threads == 0 || cli.threads > 64) {
        std::cerr << "ldl_profile: --threads must be in 1..64\n";
        return 2;
      }
    } else if (arg == "--query-log" && i + 1 < argc) {
      cli.query_log = argv[++i];
    } else if (arg == "--stats-port" && i + 1 < argc) {
      cli.stats_port = std::stoi(argv[++i]);
    } else if (arg == "--sample-ms" && i + 1 < argc) {
      cli.sample_ms = std::stoi(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      cli.repeat = std::stoi(argv[++i]);
    } else if (arg == "--feedback") {
      cli.feedback = true;
    } else if (arg == "--stats-export" && i + 1 < argc) {
      cli.stats_export = argv[++i];
    } else if (arg == "--stats-import" && i + 1 < argc) {
      cli.stats_import = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ldl_profile: unknown option " << arg << "\n";
      return Usage();
    } else if (cli.file.empty()) {
      cli.file = arg;
    } else {
      std::cerr << "ldl_profile: more than one input file\n";
      return Usage();
    }
  }
  if (cli.file.empty()) return Usage();
  if (cli.repeat < 1 || cli.sample_ms < 1) {
    std::cerr << "ldl_profile: --repeat and --sample-ms must be >= 1\n";
    return 2;
  }
  if (!cli.calibration_json.empty() && !cli.analyze) {
    std::cerr << "ldl_profile: --calibration-json requires --analyze "
                 "(calibration pairs estimates with measured actuals)\n";
    return 2;
  }

  std::string text;
  if (!ReadInput(cli.file, &text)) {
    std::cerr << "ldl_profile: cannot read " << cli.file << "\n";
    return 1;
  }

  ldl::Tracer tracer;
  tracer.set_enabled(true);
  ldl::MetricsRegistry metrics;
  ldl::ProcessMetricsSource process_metrics(&metrics);
  ldl::SearchTracer search_tracer;
  ldl::OptimizerOptions options;
  options.trace.tracer = &tracer;
  options.trace.metrics = &metrics;
  const bool want_search = !cli.search_json.empty() ||
                           !cli.dot_file.empty() || cli.explain_optimize;
  if (want_search) options.trace.search = &search_tracer;
  options.record_fixpoint_iterations = !cli.fixpoint_json.empty();
  if (cli.prune) {
    options.analyze_reachability = true;
    options.eliminate_dead_rules = true;
  }
  options.engine.num_threads = cli.threads;
  options.limits.budget_bytes = cli.budget_bytes;
  options.limits.budget_tuples = cli.budget_tuples;
  options.limits.deadline_ms = cli.deadline_ms;
  const bool use_feedback = cli.feedback || !cli.stats_export.empty() ||
                            !cli.stats_import.empty();
  options.feedback = cli.feedback;

  ldl::LdlSystem sys(options);
  ldl::StatisticsCatalog catalog;
  ldl::DriftDetector detector;
  if (use_feedback) {
    sys.set_feedback(&catalog, &detector);
    if (!cli.stats_import.empty()) {
      ldl::Status imported = catalog.ImportFile(cli.stats_import);
      if (!imported.ok()) {
        std::cerr << "ldl_profile: " << cli.stats_import << ": "
                  << imported.ToString() << "\n";
        return 1;
      }
    }
  }
  ldl::QueryLog query_log;
  if (!cli.query_log.empty()) {
    ldl::Status opened = query_log.Open(cli.query_log);
    if (!opened.ok()) {
      std::cerr << "ldl_profile: " << cli.query_log << ": "
                << opened.ToString() << "\n";
      return 1;
    }
    query_log.set_default_program(cli.file);
    sys.set_query_log(&query_log);
  }
  ldl::Status load = sys.LoadProgram(text);
  if (!load.ok()) {
    std::cerr << "ldl_profile: " << cli.file << ": " << load.ToString()
              << "\n";
    return 1;
  }

  std::vector<std::string> goals = cli.queries;
  if (goals.empty()) {
    for (const ldl::QueryForm& query : sys.pending_queries()) {
      goals.push_back(query.goal.ToString());
    }
  }
  if (goals.empty()) {
    std::cout << cli.file << ": no queries to profile (embed `goal?` forms "
                             "or pass --query)\n";
  }

  // Telemetry surfaces: the background sampler feeds /statusz sparklines,
  // the stats server exposes /metrics, /healthz, /statusz until exit.
  ldl::TimeSeriesOptions sampler_options;
  sampler_options.period = std::chrono::milliseconds(cli.sample_ms);
  sampler_options.metrics = &metrics;
  ldl::TimeSeriesSampler sampler(sampler_options);
  ldl::StatsServerOptions server_options;
  server_options.port = cli.stats_port < 0 ? 0 : cli.stats_port;
  server_options.metrics = &metrics;
  server_options.sampler = &sampler;
  server_options.process = &process_metrics;
  server_options.refresh = [&process_metrics] { process_metrics.Refresh(); };
  if (!cli.query_log.empty()) server_options.query_log = &query_log;
  server_options.statistics = &sys.statistics();
  if (use_feedback) {
    server_options.feedback = &catalog;
    server_options.drift = &detector;
  }
  ldl::StatsServer server(server_options);
  if (cli.stats_port >= 0) {
    sampler.Start();
    ldl::Status started = server.Start();
    if (!started.ok()) {
      std::cerr << "ldl_profile: " << started.ToString() << "\n";
      return 1;
    }
    std::cout << "stats server listening on 127.0.0.1:" << server.port()
              << std::endl;
  }

  bool failed = false;
  std::vector<ldl::CalibrationReport> reports;
  std::vector<std::string> search_entries;  // one JSON object per goal
  std::vector<std::string> fixpoint_entries;
  std::string dot;
  const bool execute_queries = !cli.fixpoint_json.empty() ||
                               !cli.query_log.empty() ||
                               options.limits.any() || cli.repeat > 1 ||
                               cli.stats_port >= 0 || use_feedback;
  for (int rep = 0; rep < cli.repeat; ++rep) {
    // Only the first pass prints; later passes re-execute the queries so a
    // --stats-port scrape sees a live, moving workload.
    const bool verbose = rep == 0;
    for (const std::string& goal : goals) {
    if (verbose) {
      std::cout << "== " << (cli.analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ")
                << goal << "? ==\n";
    }
    // Execute first when asked to: LdlSystem::Query is the instrumented
    // lifecycle path — it enforces the limits, appends the query-log
    // record (on success and on typed failure), and carries the
    // per-round fixpoint telemetry.
    if (execute_queries) {
      auto answer = sys.Query(goal);
      if (!answer.ok()) {
        std::cerr << "ldl_profile: " << goal << ": "
                  << answer.status().ToString() << "\n";
        failed = true;
      } else if (verbose) {
        if (!cli.query_log.empty()) {
          std::cout << "lifecycle: " << answer->answers.size()
                    << " answers, peak " << answer->peak_bytes
                    << " bytes, " << answer->tuples_examined
                    << " tuples examined, " << answer->fixpoint_rounds
                    << " rounds, " << answer->cancel_checks
                    << " cancel checks\n";
        }
        if (!cli.fixpoint_json.empty()) {
          std::ostringstream entry;
          entry << "{\"goal\": \"" << ldl::JsonEscape(goal)
                << "\", \"method\": \""
                << ldl::RecursionMethodToString(answer->plan.top_method)
                << "\", \"iterations\": "
                << answer->exec_stats.iterations << ", \"rounds\": ";
          answer->exec_stats.WriteIterationsJson(entry);
          entry << "}";
          fixpoint_entries.push_back(entry.str());
        }
      }
    }
    if (!verbose) continue;
    // The plan summary (and, via Optimize, the optimizer.* metrics). One
    // shared tracer, cleared per goal; the trace is captured right after
    // this call, before --analyze's regret re-runs pollute it.
    if (want_search) search_tracer.Clear();
    auto plan = cli.explain_optimize ? sys.ExplainOptimize(goal)
                                     : sys.Explain(goal);
    if (!plan.ok()) {
      std::cerr << "ldl_profile: " << goal << ": " << plan.status().ToString()
                << "\n";
      failed = true;
      continue;
    }
    std::cout << *plan << "\n";
    if (!cli.search_json.empty()) {
      std::ostringstream entry;
      entry << "{\"goal\": \"" << ldl::JsonEscape(goal) << "\", \"search\": ";
      search_tracer.WriteJson(entry);
      entry << "}";
      search_entries.push_back(entry.str());
    }
    if (!cli.dot_file.empty() && dot.empty()) {
      std::ostringstream d;
      search_tracer.WriteDot(d);
      dot = d.str();
    }
    if (cli.analyze) {
      auto analyzed = sys.AnalyzeCalibrated(goal);
      if (!analyzed.ok()) {
        std::cerr << "ldl_profile: " << goal << ": "
                  << analyzed.status().ToString() << "\n";
        failed = true;
        continue;
      }
      std::cout << analyzed->text << "\n";
      reports.push_back(std::move(analyzed->report));
    } else {
      auto rendered = sys.ExplainTree(goal);
      if (!rendered.ok()) {
        std::cerr << "ldl_profile: " << goal << ": "
                  << rendered.status().ToString() << "\n";
        failed = true;
        continue;
      }
      std::cout << *rendered << "\n";
    }
    }
  }

  if (cli.stats_port >= 0) {
    // Final sample + graceful teardown before the dumps below, so
    // --metrics-json written after a server run reflects the whole
    // workload (statsserver.* counters included).
    sampler.SampleOnce();
    server.Stop();
    sampler.Stop();
  }

  if (use_feedback) {
    // One greppable line for CI and operators; the full catalog goes to
    // --stats-export.
    std::cout << "feedback: entries=" << catalog.size()
              << " observations=" << catalog.total_observations()
              << " drift_events=" << detector.drift_events()
              << " stats_epoch=" << sys.statistics().epoch() << "\n";
    if (!cli.stats_export.empty()) {
      ldl::Status exported = catalog.ExportFile(cli.stats_export);
      if (!exported.ok()) {
        std::cerr << "ldl_profile: " << cli.stats_export << ": "
                  << exported.ToString() << "\n";
        return 1;
      }
    }
    sys.set_feedback(nullptr, nullptr);
  }

  if (!cli.calibration_json.empty()) {
    std::ofstream out(cli.calibration_json);
    if (!out) {
      std::cerr << "ldl_profile: cannot write " << cli.calibration_json
                << "\n";
      return 1;
    }
    out << '[';
    for (size_t i = 0; i < reports.size(); ++i) {
      if (i) out << ',';
      reports[i].WriteJson(out);
    }
    out << "]\n";
  }

  if (!cli.search_json.empty()) {
    std::ofstream out(cli.search_json);
    if (!out) {
      std::cerr << "ldl_profile: cannot write " << cli.search_json << "\n";
      return 1;
    }
    out << '[';
    for (size_t i = 0; i < search_entries.size(); ++i) {
      if (i) out << ',';
      out << '\n' << search_entries[i];
    }
    out << "]\n";
  }
  if (!cli.fixpoint_json.empty()) {
    std::ofstream out(cli.fixpoint_json);
    if (!out) {
      std::cerr << "ldl_profile: cannot write " << cli.fixpoint_json << "\n";
      return 1;
    }
    out << '[';
    for (size_t i = 0; i < fixpoint_entries.size(); ++i) {
      if (i) out << ',';
      out << '\n' << fixpoint_entries[i];
    }
    out << "]\n";
  }
  if (!cli.dot_file.empty()) {
    std::ofstream out(cli.dot_file);
    if (!out) {
      std::cerr << "ldl_profile: cannot write " << cli.dot_file << "\n";
      return 1;
    }
    out << dot;
  }
  process_metrics.Refresh();  // current uptime/RSS in the dumps below
  if (cli.print_metrics) std::cout << metrics.ToString();
  if (!cli.metrics_json.empty()) {
    std::ofstream out(cli.metrics_json);
    if (!out) {
      std::cerr << "ldl_profile: cannot write " << cli.metrics_json << "\n";
      return 1;
    }
    metrics.WriteJson(out);
  }
  if (!cli.trace_json.empty()) {
    std::ofstream out(cli.trace_json);
    if (!out) {
      std::cerr << "ldl_profile: cannot write " << cli.trace_json << "\n";
      return 1;
    }
    tracer.WriteChromeTrace(out);
  }
  return failed ? 1 : 0;
}
