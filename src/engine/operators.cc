#include "engine/operators.h"

#include <algorithm>

namespace ldl {

namespace {

Tuple Concat(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

bool KeysMatch(const Tuple& l, const Tuple& r, const JoinKeys& keys) {
  for (const auto& [lc, rc] : keys) {
    if (!(l[lc] == r[rc])) return false;
  }
  return true;
}

}  // namespace

Relation Select(const Relation& rel, size_t col, const Term& value,
                EvalCounters* counters) {
  Relation out(rel.name(), rel.arity());
  for (const Tuple& t : rel.tuples()) {
    counters->tuples_examined++;
    if (t[col] == value) out.Insert(t);
  }
  return out;
}

Relation Project(const Relation& rel, const std::vector<size_t>& cols,
                 EvalCounters* counters) {
  Relation out(rel.name(), cols.size());
  for (const Tuple& t : rel.tuples()) {
    counters->tuples_examined++;
    Tuple p;
    p.reserve(cols.size());
    for (size_t c : cols) p.push_back(t[c]);
    out.Insert(std::move(p));
  }
  return out;
}

Relation NestedLoopJoin(const Relation& left, const Relation& right,
                        const JoinKeys& keys, EvalCounters* counters) {
  Relation out(left.name() + "*" + right.name(),
               left.arity() + right.arity());
  for (const Tuple& l : left.tuples()) {
    for (const Tuple& r : right.tuples()) {
      counters->tuples_examined++;
      if (KeysMatch(l, r, keys)) {
        counters->derivations++;
        out.Insert(Concat(l, r));
      }
    }
  }
  return out;
}

Relation HashJoin(Relation& left, Relation& right, const JoinKeys& keys,
                  EvalCounters* counters) {
  Relation out(left.name() + "*" + right.name(),
               left.arity() + right.arity());
  if (keys.empty()) return NestedLoopJoin(left, right, keys, counters);

  // Probe with the larger side, build (index) on the smaller.
  const bool left_builds = left.size() <= right.size();
  Relation& build = left_builds ? left : right;
  Relation& probe = left_builds ? right : left;
  std::vector<int> build_cols;
  std::vector<size_t> probe_cols;
  for (const auto& [lc, rc] : keys) {
    build_cols.push_back(static_cast<int>(left_builds ? lc : rc));
    probe_cols.push_back(left_builds ? rc : lc);
  }
  // Relation's lazy index is exactly a hash build over build_cols.
  std::vector<int> sorted_build = build_cols;
  std::sort(sorted_build.begin(), sorted_build.end());
  if (std::adjacent_find(sorted_build.begin(), sorted_build.end()) !=
      sorted_build.end()) {
    // A build column referenced by several keys: the index key cannot
    // express the conjunction; fall back.
    return NestedLoopJoin(left, right, keys, counters);
  }
  for (const Tuple& p : probe.tuples()) {
    counters->tuples_examined++;
    Tuple key(sorted_build.size(), Term());
    // Key values must line up with the sorted build columns.
    for (size_t k = 0; k < build_cols.size(); ++k) {
      size_t slot = std::lower_bound(sorted_build.begin(), sorted_build.end(),
                                     build_cols[k]) -
                    sorted_build.begin();
      key[slot] = p[probe_cols[k]];
    }
    for (uint32_t id : build.Lookup(sorted_build, key)) {
      counters->tuples_examined++;
      counters->derivations++;
      const Tuple& b = build.tuple(id);
      out.Insert(left_builds ? Concat(b, p) : Concat(p, b));
    }
  }
  return out;
}

Relation Union(const Relation& a, const Relation& b, EvalCounters* counters) {
  Relation out(a.name(), a.arity());
  for (const Tuple& t : a.tuples()) {
    counters->tuples_examined++;
    out.Insert(t);
  }
  for (const Tuple& t : b.tuples()) {
    counters->tuples_examined++;
    out.Insert(t);
  }
  return out;
}

Relation Difference(const Relation& a, const Relation& b,
                    EvalCounters* counters) {
  Relation out(a.name(), a.arity());
  for (const Tuple& t : a.tuples()) {
    counters->tuples_examined++;
    if (!b.Contains(t)) out.Insert(t);
  }
  return out;
}

Relation SemiJoin(Relation& left, Relation& right, const JoinKeys& keys,
                  EvalCounters* counters) {
  Relation out(left.name(), left.arity());
  std::vector<int> right_cols;
  for (const auto& [lc, rc] : keys) {
    (void)lc;
    right_cols.push_back(static_cast<int>(rc));
  }
  std::sort(right_cols.begin(), right_cols.end());
  if (std::adjacent_find(right_cols.begin(), right_cols.end()) !=
      right_cols.end()) {
    // Duplicate right column: test matches tuple-by-tuple instead.
    Relation out_slow(left.name(), left.arity());
    for (const Tuple& l : left.tuples()) {
      counters->tuples_examined++;
      for (const Tuple& r : right.tuples()) {
        counters->tuples_examined++;
        if (KeysMatch(l, r, keys)) {
          out_slow.Insert(l);
          break;
        }
      }
    }
    return out_slow;
  }
  for (const Tuple& l : left.tuples()) {
    counters->tuples_examined++;
    if (keys.empty()) {
      if (!right.empty()) out.Insert(l);
      continue;
    }
    Tuple key(right_cols.size(), Term());
    for (size_t k = 0; k < keys.size(); ++k) {
      size_t slot = std::lower_bound(right_cols.begin(), right_cols.end(),
                                     static_cast<int>(keys[k].second)) -
                    right_cols.begin();
      key[slot] = l[keys[k].first];
    }
    if (!right.Lookup(right_cols, key).empty()) out.Insert(l);
  }
  return out;
}

std::vector<Relation> HashPartition(const Relation& rel, size_t parts,
                                    EvalCounters* counters) {
  if (counters != nullptr) counters->tuples_examined += rel.size();
  return HashPartitionRelation(rel, parts);
}

}  // namespace ldl
