#include "safety/safety.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "base/strings.h"
#include "engine/builtins.h"
#include "graph/adornment.h"

namespace ldl {

namespace {

// Whether `lit` can be evaluated now, given `bound`.
bool Placeable(const Literal& lit, const BoundVars& bound) {
  if (lit.IsBuiltin()) {
    return BuiltinComputable(lit, bound.IsTermBound(lit.args()[0]),
                             bound.IsTermBound(lit.args()[1]));
  }
  if (lit.negated()) {
    for (const Term& a : lit.args()) {
      if (!bound.IsTermBound(a)) return false;
    }
    return true;
  }
  return true;  // positive literals enumerate their relation
}

Status HeadRangeRestricted(const Rule& rule, const Adornment& head_adn,
                           const BoundVars& bound) {
  for (size_t i = 0; i < rule.head().arity(); ++i) {
    if (i < head_adn.size() && head_adn.IsBound(i)) continue;  // input
    if (!bound.IsTermBound(rule.head().args()[i])) {
      return Status::Unsafe(
          StrCat("head argument ", i + 1, " of ", rule.head().ToString(),
                 " is not bound by the body (rule not range-restricted)"));
    }
  }
  return Status::OK();
}

}  // namespace

Status CheckRuleEc(const Rule& rule, const std::vector<size_t>& order,
                   const Adornment& head_adornment) {
  BoundVars bound;
  BindHeadVariables(rule.head(), head_adornment, &bound);
  for (size_t pos : order) {
    const Literal& lit = rule.body()[pos];
    if (!Placeable(lit, bound)) {
      return Status::Unsafe(
          StrCat("literal ", lit.ToString(), " of rule ", rule.ToString(),
                 " is not effectively computable at its position (",
                 lit.IsBuiltin() ? "insufficiently bound builtin"
                                 : "negated literal with unbound variables",
                 ")"));
    }
    PropagateBindings(lit, &bound);
  }
  return HeadRangeRestricted(rule, head_adornment, bound);
}

std::optional<std::vector<size_t>> FindEcOrder(
    const Rule& rule, const Adornment& head_adornment) {
  BoundVars bound;
  BindHeadVariables(rule.head(), head_adornment, &bound);
  std::vector<size_t> order;
  std::vector<bool> placed(rule.body().size(), false);
  // Greedy placement; prefer already-computable builtins (cheap filters)
  // then positive literals. Completeness: placing a literal never removes
  // bindings, so a literal placeable now stays placeable.
  for (size_t round = 0; round < rule.body().size(); ++round) {
    int pick = -1;
    // First a placeable builtin/negation, else a positive literal.
    for (size_t i = 0; i < rule.body().size(); ++i) {
      if (placed[i]) continue;
      const Literal& lit = rule.body()[i];
      if ((lit.IsBuiltin() || lit.negated()) && Placeable(lit, bound)) {
        pick = static_cast<int>(i);
        break;
      }
    }
    if (pick < 0) {
      for (size_t i = 0; i < rule.body().size(); ++i) {
        if (placed[i]) continue;
        const Literal& lit = rule.body()[i];
        if (!lit.IsBuiltin() && !lit.negated()) {
          pick = static_cast<int>(i);
          break;
        }
      }
    }
    if (pick < 0) return std::nullopt;  // only unplaceable literals remain
    placed[pick] = true;
    order.push_back(pick);
    PropagateBindings(rule.body()[pick], &bound);
  }
  if (!HeadRangeRestricted(rule, head_adornment, bound).ok()) {
    return std::nullopt;
  }
  return order;
}

namespace {

// True when the clique can only derive terms over the constants already in
// the database: no head argument builds a function term, and no `=` builtin
// computes arithmetic into a variable that reaches a head argument.
bool CliqueIsTermBounded(const Program& program,
                         const RecursiveClique& clique) {
  std::vector<size_t> all_rules = clique.exit_rules;
  all_rules.insert(all_rules.end(), clique.recursive_rules.begin(),
                   clique.recursive_rules.end());
  for (size_t rule_index : all_rules) {
    const Rule& rule = program.rules()[rule_index];
    for (const Term& arg : rule.head().args()) {
      if (arg.IsFunction()) return false;
    }
    for (const Literal& lit : rule.body()) {
      if (lit.builtin() == BuiltinKind::kEq &&
          (ContainsArithmetic(lit.args()[0]) ||
           ContainsArithmetic(lit.args()[1]))) {
        // Arithmetic can generate unboundedly many new constants.
        return false;
      }
    }
  }
  return true;
}

// Sufficient monotonicity condition for arithmetic recursion ([KRS 87]
// style): every arithmetic assignment in the rule is a fixed-step
// progression V = B + k / V = B - k (k a positive integer constant), and
// each such V is bounded by a ground comparison in the direction of growth
// (V < c for +k, V > c for -k). Each chain of generated values then moves
// monotonically toward a fixed bound, so only finitely many new constants
// arise.
bool RuleHasBoundedProgression(const Rule& rule) {
  for (const Term& a : rule.head().args()) {
    if (a.IsFunction()) return false;  // structural growth: not our case
  }
  for (const Literal& lit : rule.body()) {
    if (lit.builtin() != BuiltinKind::kEq) continue;
    const Term& lhs = lit.args()[0];
    const Term& rhs = lit.args()[1];
    if (!ContainsArithmetic(lhs) && !ContainsArithmetic(rhs)) continue;
    // Recognize V = B + k | V = B - k | V = k + B.
    if (lhs.kind() != TermKind::kVariable || !rhs.IsFunction()) return false;
    const std::string& op = rhs.text();
    if ((op != "+" && op != "-") || rhs.arity() != 2) return false;
    const Term& a0 = rhs.args()[0];
    const Term& a1 = rhs.args()[1];
    int direction = 0;
    if (a0.kind() == TermKind::kVariable && a1.kind() == TermKind::kInt &&
        a1.int_value() > 0) {
      direction = op == "+" ? 1 : -1;
    } else if (op == "+" && a0.kind() == TermKind::kInt &&
               a0.int_value() > 0 && a1.kind() == TermKind::kVariable) {
      direction = 1;
    } else {
      return false;
    }
    const std::string& v = lhs.text();
    bool bounded = false;
    for (const Literal& cmp : rule.body()) {
      if (!cmp.IsBuiltin()) continue;
      const Term& x = cmp.args()[0];
      const Term& y = cmp.args()[1];
      auto is_v = [&v](const Term& t) {
        return t.kind() == TermKind::kVariable && t.text() == v;
      };
      switch (cmp.builtin()) {
        case BuiltinKind::kLt:
        case BuiltinKind::kLe:
          if (direction > 0 && is_v(x) && y.IsGround()) bounded = true;
          if (direction < 0 && is_v(y) && x.IsGround()) bounded = true;
          break;
        case BuiltinKind::kGt:
        case BuiltinKind::kGe:
          if (direction > 0 && is_v(y) && x.IsGround()) bounded = true;
          if (direction < 0 && is_v(x) && y.IsGround()) bounded = true;
          break;
        default:
          break;
      }
    }
    if (!bounded) return false;
  }
  return true;
}

}  // namespace

Status CheckWellFounded(const Program& program, const RecursiveClique& clique,
                        const PredicateId& queried,
                        const Adornment& query_adornment) {
  if (CliqueIsTermBounded(program, clique)) return Status::OK();

  // Term-generating clique: require a decreasing bound argument in every
  // recursive rule whose head is the queried predicate; other cliques'
  // rules (mutual recursion with term growth) are conservatively rejected.
  for (size_t rule_index : clique.recursive_rules) {
    const Rule& rule = program.rules()[rule_index];
    if (!(rule.head().predicate() == queried)) {
      return Status::Unsafe(
          StrCat("clique ", clique.ToString(),
                 " builds new terms through mutual recursion; no "
                 "well-founded order can be established"));
    }
    bool decreasing = false;
    for (const Literal& lit : rule.body()) {
      if (lit.IsBuiltin() || lit.negated() ||
          !clique.Contains(lit.predicate())) {
        continue;
      }
      for (size_t i = 0; i < lit.arity() && i < query_adornment.size(); ++i) {
        if (!query_adornment.IsBound(i)) continue;
        // Bound argument of the recursive call strictly inside the bound
        // head argument: each recursive descent consumes structure.
        if (rule.head().args()[i].HasStrictSubterm(lit.args()[i])) {
          decreasing = true;
        }
      }
    }
    if (!decreasing && RuleHasBoundedProgression(rule)) {
      // Monotone fixed-step arithmetic capped by a ground comparison: the
      // iteration is well-founded even without structural descent.
      decreasing = true;
    }
    if (!decreasing) {
      return Status::Unsafe(StrCat(
          "recursive rule ", rule.ToString(),
          " builds new terms but has no monotonically decreasing bound "
          "argument under binding ", query_adornment.ToString(),
          "; no well-founded order (paper section 8.1)"));
    }
  }
  return Status::OK();
}

std::string SafetyReport::ToString() const {
  if (safe) return "SAFE";
  std::ostringstream os;
  os << "UNSAFE:";
  for (const std::string& p : problems) os << "\n  - " << p;
  return os.str();
}

SafetyReport AnalyzeQuerySafety(const Program& program, const Literal& goal) {
  SafetyReport report;
  if (!program.IsDerived(goal.predicate())) return report;

  // Adorn with greedy-EC SIPs so rules are checked under realistic orders.
  auto adorned = AdornProgramForQuery(program, goal, SipStrategy());
  if (!adorned.ok()) {
    report.safe = false;
    report.problems.push_back(adorned.status().ToString());
    return report;
  }
  std::set<std::pair<size_t, std::string>> checked;
  for (const AdornedRule& ar : adorned->rules) {
    if (!checked
             .insert({ar.rule_index, ar.head_adornment.ToString()})
             .second) {
      continue;
    }
    const Rule& rule = program.rules()[ar.rule_index];
    if (!FindEcOrder(rule, ar.head_adornment).has_value()) {
      report.safe = false;
      report.problems.push_back(
          StrCat("no effectively computable order exists for rule ",
                 rule.ToString(), " under binding ",
                 ar.head_adornment.ToString()));
    }
  }

  DependencyGraph graph = DependencyGraph::Build(program);
  std::set<int> checked_cliques;
  for (const AdornedPredicate& ap : adorned->predicates) {
    int ci = graph.CliqueIndex(ap.pred);
    if (ci < 0 || !checked_cliques.insert(ci).second) continue;
    Status wf = CheckWellFounded(program, graph.cliques()[ci], ap.pred,
                                 ap.adornment);
    if (!wf.ok()) {
      report.safe = false;
      report.problems.push_back(wf.message());
    }
  }
  return report;
}

}  // namespace ldl
