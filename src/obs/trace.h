#ifndef LDLOPT_OBS_TRACE_H_
#define LDLOPT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ldl {

/// One completed span, in microseconds relative to the tracer's epoch.
/// Maps 1:1 onto a Chrome trace_event "complete" event (ph = "X").
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t thread_id = 0;
  /// Free-form annotations rendered into the event's "args" object.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe sink of completed spans with a monotonic-clock epoch.
///
/// The tracer is cheap to carry around disabled: Span construction against a
/// null or disabled tracer performs one branch and no allocation, so
/// instrumentation can stay compiled into hot paths (the bench_* regression
/// budget for the disabled path is < 2%).
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since the tracer was created (monotonic).
  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void Record(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= max_events_) {
      // Keep the oldest spans: the head of a trace (setup, optimize, first
      // rounds) is what explains a runaway query; the tail repeats.
      ++dropped_events_;
      return;
    }
    events_.push_back(std::move(event));
  }

  size_t event_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  /// Buffer cap; once reached, further events are counted, not stored, so a
  /// looping workload cannot grow the tracer unboundedly.
  void set_max_events(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    max_events_ = n;
  }
  size_t max_events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_events_;
  }

  /// Events rejected because the buffer was full (reset by Clear()).
  uint64_t dropped_events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_events_;
  }

  std::vector<TraceEvent> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    dropped_events_ = 0;
  }

  /// Writes the collected spans as Chrome trace_event JSON — an object with
  /// a "traceEvents" array of complete ("X") events — loadable in
  /// about:tracing and Perfetto.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  static constexpr size_t kDefaultMaxEvents = 64 * 1024;

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t max_events_ = kDefaultMaxEvents;
  uint64_t dropped_events_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records one TraceEvent covering its own lifetime. Spans nest
/// naturally (inner spans are contained in the outer span's time range,
/// which is how trace viewers reconstruct the stack). Move-only.
///
/// Constructed against a null or disabled tracer the span is inert: no
/// clock read, no allocation, destructor is a single branch.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string_view name,
       std::string_view category = "ldl") {
    if (tracer == nullptr || !tracer->enabled()) return;
    tracer_ = tracer;
    event_.name.assign(name.data(), name.size());
    event_.category.assign(category.data(), category.size());
    event_.thread_id = CurrentThreadId();
    event_.start_us = tracer->NowMicros();
  }

  Span(Span&& other) noexcept
      : tracer_(other.tracer_), event_(std::move(other.event_)) {
    other.tracer_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      Finish();
      tracer_ = other.tracer_;
      event_ = std::move(other.event_);
      other.tracer_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { Finish(); }

  /// True when the span is actually recording (tracer present and enabled
  /// at construction time).
  bool active() const { return tracer_ != nullptr; }

  /// Attaches a key/value annotation; no-op on an inert span.
  void AddArg(std::string_view key, std::string_view value) {
    if (tracer_ == nullptr) return;
    event_.args.emplace_back(std::string(key), std::string(value));
  }

  /// Ends the span early (before destruction).
  void Finish() {
    if (tracer_ == nullptr) return;
    event_.duration_us = tracer_->NowMicros() - event_.start_us;
    tracer_->Record(std::move(event_));
    tracer_ = nullptr;
  }

 private:
  /// Dense per-process thread ids (Chrome trace "tid" wants small ints).
  static uint32_t CurrentThreadId();

  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

}  // namespace ldl

#endif  // LDLOPT_OBS_TRACE_H_
