#include "obs/metrics.h"

#include <cmath>
#include <sstream>

#include "base/strings.h"

namespace ldl {

void Histogram::Record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  count_++;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  size_t b = 0;
  if (v >= 1) {
    b = static_cast<size_t>(std::log2(v)) + 1;
    if (b >= kBuckets) b = kBuckets - 1;
  }
  buckets_[b]++;
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 1) return max_;
  const double target = p * static_cast<double>(count_);
  double cum = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double next = cum + static_cast<double>(buckets_[b]);
    if (target <= next) {
      // Bucket 0 holds [0, 1); bucket b >= 1 holds [2^(b-1), 2^b).
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(b));
      const double frac =
          (target - cum) / static_cast<double>(buckets_[b]);
      const double v = lo + frac * (hi - lo);
      return std::min(std::max(v, min_), max_);
    }
    cum = next;
  }
  return max_;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

/// JSON number formatting: finite doubles only (JSON has no inf/nan).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << JsonNumber(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"count\":" << h->count()
       << ",\"sum\":" << JsonNumber(h->sum())
       << ",\"min\":" << JsonNumber(h->min())
       << ",\"max\":" << JsonNumber(h->max())
       << ",\"p50\":" << JsonNumber(h->percentile(0.50))
       << ",\"p95\":" << JsonNumber(h->percentile(0.95))
       << ",\"p99\":" << JsonNumber(h->percentile(0.99)) << "}";
  }
  os << "}}\n";
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " = {count=" << h->count() << " sum=" << h->sum()
       << " min=" << h->min() << " max=" << h->max()
       << " mean=" << h->mean() << " p50=" << h->percentile(0.50)
       << " p95=" << h->percentile(0.95) << " p99=" << h->percentile(0.99)
       << "}\n";
  }
  return os.str();
}

}  // namespace ldl
