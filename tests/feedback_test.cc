// Tests for the feedback loop (src/obs/feedback.h): the decayed-mean merge
// math of the StatisticsCatalog, the blend ramp of the planning overlay,
// the schema-stable JSON export (byte-identical round trip, pinned against
// tests/golden/stats_catalog.golden.json), import validation, the drift
// gate's trip/bump/dedup behavior, and the end-to-end LdlSystem wiring
// (harvest on Query, answers unchanged under feedback planning).

#include "obs/feedback.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "ast/parser.h"
#include "ldl/ldl.h"
#include "obs/metrics.h"
#include "storage/statistics.h"

#ifndef LDLOPT_SOURCE_DIR
#error "tests/CMakeLists.txt must define LDLOPT_SOURCE_DIR"
#endif

namespace ldl {
namespace {

PredicateId Pred(const std::string& literal) {
  return ParseLiteral(literal)->predicate();
}

TEST(StatisticsCatalogTest, ObserveAndLookup) {
  StatisticsCatalog catalog;
  EXPECT_TRUE(catalog.empty());
  catalog.Observe(Pred("par(X, Y)"), Adornment::AllFree(2), 8, 1);

  CatalogEntry entry;
  ASSERT_TRUE(catalog.Lookup(Pred("par(X, Y)"), Adornment::AllFree(2),
                             &entry));
  EXPECT_DOUBLE_EQ(entry.card, 8);
  EXPECT_DOUBLE_EQ(entry.weight, 1);
  EXPECT_EQ(entry.observations, 1u);
  EXPECT_EQ(entry.first_epoch, 1u);
  EXPECT_EQ(entry.last_epoch, 1u);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.total_observations(), 1u);
  EXPECT_FALSE(catalog.Lookup(Pred("par(X, Y)"), Adornment::AllBound(2),
                              &entry));
  EXPECT_FALSE(catalog.Lookup(Pred("anc(X, Y)"), Adornment::AllFree(2),
                              &entry));
}

TEST(StatisticsCatalogTest, DecayedRunningMean) {
  StatisticsCatalog catalog;  // decay = 0.9
  const PredicateId p = Pred("p(X)");
  catalog.Observe(p, Adornment::AllFree(1), 10, 1);
  catalog.Observe(p, Adornment::AllFree(1), 20, 2);

  CatalogEntry entry;
  ASSERT_TRUE(catalog.Lookup(p, Adornment::AllFree(1), &entry));
  // aged = 0.9 * 1; card = (0.9 * 10 + 20) / 1.9; weight = 1.9.
  EXPECT_DOUBLE_EQ(entry.weight, 1.9);
  EXPECT_DOUBLE_EQ(entry.card, 29.0 / 1.9);
  EXPECT_EQ(entry.observations, 2u);
  EXPECT_EQ(entry.first_epoch, 1u);
  EXPECT_EQ(entry.last_epoch, 2u);

  // Weight converges toward 1 / (1 - decay) = 10, never past it.
  for (int i = 0; i < 200; ++i) {
    catalog.Observe(p, Adornment::AllFree(1), 20, 3);
  }
  ASSERT_TRUE(catalog.Lookup(p, Adornment::AllFree(1), &entry));
  EXPECT_LT(entry.weight, 10.0);
  EXPECT_GT(entry.weight, 9.9);
  // The stale 10 has decayed to irrelevance; the mean sits at 20.
  EXPECT_NEAR(entry.card, 20.0, 1e-6);
}

TEST(StatisticsCatalogTest, RejectsNonFiniteAndNegativeObservations) {
  StatisticsCatalog catalog;
  const PredicateId p = Pred("p(X)");
  catalog.Observe(p, Adornment::AllFree(1), -1, 1);
  catalog.Observe(p, Adornment::AllFree(1),
                  std::numeric_limits<double>::quiet_NaN(), 1);
  catalog.Observe(p, Adornment::AllFree(1),
                  std::numeric_limits<double>::infinity(), 1);
  EXPECT_TRUE(catalog.empty());
  catalog.Observe(p, Adornment::AllFree(1), 0, 1);  // zero rows is real data
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(StatisticsCatalogTest, MaxEntriesCapDropsNewKeysOnly) {
  FeedbackOptions options;
  options.max_entries = 1;
  StatisticsCatalog catalog(options);
  catalog.Observe(Pred("a(X)"), Adornment::AllFree(1), 1, 1);
  catalog.Observe(Pred("b(X)"), Adornment::AllFree(1), 2, 1);  // dropped
  catalog.Observe(Pred("a(X)"), Adornment::AllFree(1), 3, 1);  // merged
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.dropped_observations(), 1u);
  EXPECT_EQ(catalog.total_observations(), 2u);

  CatalogEntry entry;
  ASSERT_TRUE(catalog.Lookup(Pred("a(X)"), Adornment::AllFree(1), &entry));
  EXPECT_EQ(entry.observations, 2u);
}

TEST(StatisticsCatalogTest, BlendedOverlayRampsTowardMeasured) {
  Statistics stats;
  stats.Set(Pred("base(X, Y)"), RelationStats{100, {100, 100}});

  StatisticsCatalog catalog;  // blend_weight = 2
  catalog.Observe(Pred("base(X, Y)"), Adornment::AllFree(2), 10, 1);

  MeasuredStatistics overlay = catalog.BlendedOverlay(stats);
  const double* blended =
      overlay.Find(Pred("base(X, Y)"), Adornment::AllFree(2));
  ASSERT_NE(blended, nullptr);
  // One observation: blend = 1 / (1 + 2) = 1/3 measured, 2/3 estimate.
  EXPECT_NEAR(*blended, (1.0 / 3) * 10 + (2.0 / 3) * 100, 1e-9);

  // More observations shift the blend toward the measurement.
  for (int i = 0; i < 50; ++i) {
    catalog.Observe(Pred("base(X, Y)"), Adornment::AllFree(2), 10, 1);
  }
  overlay = catalog.BlendedOverlay(stats);
  blended = overlay.Find(Pred("base(X, Y)"), Adornment::AllFree(2));
  ASSERT_NE(blended, nullptr);
  EXPECT_LT(*blended, 30);
  EXPECT_GT(*blended, 10);
}

TEST(StatisticsCatalogTest, BlendedOverlayMeasuredOnlyForDerivedAndAdorned) {
  Statistics stats;
  stats.Set(Pred("base(X, Y)"), RelationStats{100, {100, 100}});

  StatisticsCatalog catalog;
  // Derived predicate: stats has no row count, so no estimate to blend.
  catalog.Observe(Pred("anc(X, Y)"), Adornment::AllFree(2), 42, 1);
  // Adorned binding of a known base predicate: also measured-only.
  Adornment bf(2);
  bf.SetBound(0, true);
  catalog.Observe(Pred("base(X, Y)"), bf, 7, 1);

  MeasuredStatistics overlay = catalog.BlendedOverlay(stats);
  const double* anc = overlay.Find(Pred("anc(X, Y)"), Adornment::AllFree(2));
  ASSERT_NE(anc, nullptr);
  EXPECT_DOUBLE_EQ(*anc, 42);
  const double* bound = overlay.Find(Pred("base(X, Y)"), bf);
  ASSERT_NE(bound, nullptr);
  EXPECT_DOUBLE_EQ(*bound, 7);
  // Never-observed predicates are absent: the cost model falls back to its
  // estimate.
  EXPECT_EQ(overlay.Find(Pred("other(X)"), Adornment::AllFree(1)), nullptr);
}

TEST(StatisticsCatalogTest, BlendedOverlaySkipsEntriesBelowMinWeight) {
  FeedbackOptions options;
  options.min_weight = 5.0;  // unreachable with one observation
  StatisticsCatalog catalog(options);
  Statistics stats;
  catalog.Observe(Pred("anc(X, Y)"), Adornment::AllFree(2), 42, 1);
  MeasuredStatistics overlay = catalog.BlendedOverlay(stats);
  EXPECT_EQ(overlay.Find(Pred("anc(X, Y)"), Adornment::AllFree(2)), nullptr);
}

void FillGoldenCatalog(StatisticsCatalog* catalog) {
  catalog->Observe(Pred("par(X, Y)"), Adornment::AllFree(2), 8, 1);
  catalog->Observe(Pred("par(X, Y)"), Adornment::AllFree(2), 10, 2);
  Adornment bf(2);
  bf.SetBound(0, true);
  catalog->Observe(Pred("anc(X, Y)"), bf, 3, 2);
  catalog->Observe(Pred("anc(X, Y)"), Adornment::AllFree(2), 12.5, 2);
}

TEST(StatisticsCatalogTest, JsonExportMatchesGolden) {
  const std::string path =
      std::string(LDLOPT_SOURCE_DIR) + "/tests/golden/stats_catalog.golden.json";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string golden = buffer.str();
  // Tolerate a trailing newline in the checked-in file.
  while (!golden.empty() && golden.back() == '\n') golden.pop_back();

  StatisticsCatalog catalog;
  FillGoldenCatalog(&catalog);
  EXPECT_EQ(catalog.ToJson(), golden)
      << "catalog export schema drifted; update the golden deliberately";
}

TEST(StatisticsCatalogTest, JsonRoundTripIsByteIdentical) {
  StatisticsCatalog original;
  FillGoldenCatalog(&original);
  const std::string exported = original.ToJson();
  StatisticsCatalog imported;
  ASSERT_TRUE(imported.MergeJson(exported).ok());
  EXPECT_EQ(imported.ToJson(), exported);
  // Counts survive the trip.
  EXPECT_EQ(imported.size(), original.size());
  EXPECT_EQ(imported.total_observations(), original.total_observations());
}

TEST(StatisticsCatalogTest, MergeJsonDecayMergesIntoExistingEntries) {
  StatisticsCatalog catalog;  // decay = 0.9
  const PredicateId p = Pred("p(X)");
  catalog.Observe(p, Adornment::AllFree(1), 10, 1);

  StatisticsCatalog other;
  other.Observe(p, Adornment::AllFree(1), 30, 4);
  ASSERT_TRUE(catalog.MergeJson(other.ToJson()).ok());

  CatalogEntry entry;
  ASSERT_TRUE(catalog.Lookup(p, Adornment::AllFree(1), &entry));
  // total = 0.9 * 1 + 1 = 1.9; card = (0.9 * 10 + 1 * 30) / 1.9.
  EXPECT_DOUBLE_EQ(entry.weight, 1.9);
  EXPECT_DOUBLE_EQ(entry.card, 39.0 / 1.9);
  EXPECT_EQ(entry.observations, 2u);
  EXPECT_EQ(entry.first_epoch, 1u);
  EXPECT_EQ(entry.last_epoch, 4u);
}

TEST(StatisticsCatalogTest, MergeJsonRejectsBadInputsWithoutMutating) {
  StatisticsCatalog catalog;
  catalog.Observe(Pred("keep(X)"), Adornment::AllFree(1), 1, 1);
  const std::string before = catalog.ToJson();

  // Future schema version.
  EXPECT_FALSE(catalog.MergeJson("{\"version\":2,\"entries\":[]}").ok());
  // Adornment length disagrees with arity.
  EXPECT_FALSE(
      catalog
          .MergeJson("{\"version\":1,\"entries\":[{\"predicate\":\"p\","
                     "\"arity\":2,\"adornment\":\"f\",\"card\":1,"
                     "\"weight\":1,\"observations\":1}]}")
          .ok());
  // Non-finite cardinality.
  EXPECT_FALSE(
      catalog
          .MergeJson("{\"version\":1,\"entries\":[{\"predicate\":\"p\","
                     "\"arity\":1,\"adornment\":\"f\",\"card\":nan,"
                     "\"weight\":1,\"observations\":1}]}")
          .ok());
  // Not JSON at all.
  EXPECT_FALSE(catalog.MergeJson("plainly not json").ok());
  // A bad document must not partially apply.
  EXPECT_FALSE(
      catalog
          .MergeJson("{\"version\":1,\"entries\":[{\"predicate\":\"ok\","
                     "\"arity\":1,\"adornment\":\"f\",\"card\":1,"
                     "\"weight\":1,\"observations\":1},{\"predicate\":\"\","
                     "\"arity\":1,\"adornment\":\"f\",\"card\":1,"
                     "\"weight\":1,\"observations\":1}]}")
          .ok());
  EXPECT_EQ(catalog.ToJson(), before);

  // Unknown keys are ignored (forward compatibility).
  EXPECT_TRUE(
      catalog
          .MergeJson("{\"version\":1,\"future\":true,\"entries\":["
                     "{\"predicate\":\"q\",\"arity\":1,\"adornment\":\"f\","
                     "\"card\":2,\"weight\":1,\"observations\":1,"
                     "\"novel_field\":\"x\"}]}")
          .ok());
  CatalogEntry entry;
  EXPECT_TRUE(catalog.Lookup(Pred("q(X)"), Adornment::AllFree(1), &entry));
}

TEST(StatisticsCatalogTest, ExportToSetsGauges) {
  MetricsRegistry metrics;
  StatisticsCatalog catalog;
  catalog.Observe(Pred("p(X)"), Adornment::AllFree(1), 5, 1);
  catalog.ExportTo(&metrics);
  EXPECT_DOUBLE_EQ(metrics.gauge("feedback.catalog_entries")->value(), 1);
  EXPECT_DOUBLE_EQ(metrics.gauge("feedback.observations")->value(), 1);
  EXPECT_DOUBLE_EQ(metrics.gauge("feedback.dropped_observations")->value(), 0);
  catalog.ExportTo(nullptr);  // must be a no-op, not a crash
}

TEST(DriftDetectorTest, TripsBumpsEpochOnceAndDedupsPerEpoch) {
  Statistics stats;
  stats.Set(Pred("par(X, Y)"), RelationStats{10, {10, 10}});
  stats.Set(Pred("emp(X, Y)"), RelationStats{20, {20, 20}});
  stats.set_epoch(1);

  StatisticsCatalog catalog;
  // Two keys diverge past the default threshold 4.
  catalog.Observe(Pred("par(X, Y)"), Adornment::AllFree(2), 1000, 1);
  catalog.Observe(Pred("emp(X, Y)"), Adornment::AllFree(2), 400, 1);

  MetricsRegistry metrics;
  DriftDetector detector;
  EXPECT_EQ(detector.Check(catalog, &stats, &metrics), 2u);
  // One epoch bump no matter how many keys tripped.
  EXPECT_EQ(stats.epoch(), 2u);
  EXPECT_EQ(detector.drift_events(), 2u);
  EXPECT_DOUBLE_EQ(detector.last_max_q_error(), 100.0);
  EXPECT_EQ(metrics.counter("feedback.drift_events")->value(), 2u);

  // Same epoch, same divergence: deduplicated, no second bump.
  EXPECT_EQ(detector.Check(catalog, &stats, &metrics), 0u);
  EXPECT_EQ(stats.epoch(), 2u);

  // Statistics refreshed to the measured truth: the gate stays quiet.
  stats.Set(Pred("par(X, Y)"), RelationStats{1000, {1000, 1000}});
  stats.Set(Pred("emp(X, Y)"), RelationStats{400, {400, 400}});
  stats.set_epoch(3);
  EXPECT_EQ(detector.Check(catalog, &stats, &metrics), 0u);
  EXPECT_EQ(stats.epoch(), 3u);

  // A fresh divergence at the new epoch trips again.
  stats.Set(Pred("par(X, Y)"), RelationStats{2, {2, 2}});
  EXPECT_EQ(detector.Check(catalog, &stats, &metrics), 1u);
  EXPECT_EQ(stats.epoch(), 4u);
  EXPECT_EQ(detector.drift_events(), 3u);

  const std::vector<DriftEvent> history = detector.history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history.back().old_epoch, 3u);
  EXPECT_EQ(history.back().new_epoch, 4u);
  EXPECT_DOUBLE_EQ(history.back().measured, 1000);
  EXPECT_DOUBLE_EQ(history.back().estimated, 2);
}

TEST(DriftDetectorTest, IgnoresColdAdornedAndStatlessEntries) {
  Statistics stats;
  stats.Set(Pred("base(X, Y)"), RelationStats{10, {10, 10}});
  stats.set_epoch(1);

  FeedbackOptions options;
  options.hot_observations = 2;
  StatisticsCatalog catalog(options);
  DriftDetector detector(options);

  // Cold: only one observation against hot_observations = 2.
  catalog.Observe(Pred("base(X, Y)"), Adornment::AllFree(2), 1000, 1);
  // Adorned: divergence under a binding is not a statistics defect.
  Adornment bf(2);
  bf.SetBound(0, true);
  catalog.Observe(Pred("base(X, Y)"), bf, 1000, 1);
  catalog.Observe(Pred("base(X, Y)"), bf, 1000, 1);
  // Derived predicate: stats has no row for it (default-stats placeholder).
  catalog.Observe(Pred("anc(X, Y)"), Adornment::AllFree(2), 1000, 1);
  catalog.Observe(Pred("anc(X, Y)"), Adornment::AllFree(2), 1000, 1);

  EXPECT_EQ(detector.Check(catalog, &stats, nullptr), 0u);
  EXPECT_EQ(stats.epoch(), 1u);

  // The second observation makes the all-free entry hot: now it trips.
  catalog.Observe(Pred("base(X, Y)"), Adornment::AllFree(2), 1000, 1);
  EXPECT_EQ(detector.Check(catalog, &stats, nullptr), 1u);
  EXPECT_EQ(stats.epoch(), 2u);
}

TEST(RenderStatsJsonTest, RendersCatalogDriftAndCoverage) {
  Statistics stats;
  stats.Set(Pred("par(X, Y)"), RelationStats{10, {10, 10}});
  stats.Set(Pred("unseen(X)"), RelationStats{5, {5}});
  stats.set_epoch(1);

  StatisticsCatalog catalog;
  catalog.Observe(Pred("par(X, Y)"), Adornment::AllFree(2), 1000, 1);
  DriftDetector detector;
  detector.Check(catalog, &stats, nullptr);

  const std::string json = RenderStatsJson(&catalog, &detector, &stats);
  EXPECT_NE(json.find("\"stats_epoch\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"drift_events\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"predicate\":\"par\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"q_error\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unobserved\":[{\"predicate\":\"unseen\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"drift_history\":["), std::string::npos) << json;

  // Null pointers degrade gracefully to an empty-ish document.
  const std::string empty = RenderStatsJson(nullptr, nullptr, nullptr);
  EXPECT_EQ(empty.front(), '{');
  EXPECT_EQ(empty.back(), '}');
}

// End-to-end: a query under an attached catalog harvests the goal's answer
// count and (for full bottom-up evaluation) derived fixpoint sizes, and
// feedback-mode planning returns the same answers.
TEST(FeedbackIntegrationTest, QueryHarvestsAndFeedbackPreservesAnswers) {
  const std::string program =
      "par(a, b). par(b, c). par(c, d).\n"
      "anc(X, Y) <- par(X, Y).\n"
      "anc(X, Y) <- par(X, Z), anc(Z, Y).\n";

  OptimizerOptions options;
  LdlSystem sys(options);
  ASSERT_TRUE(sys.LoadProgram(program).ok());

  StatisticsCatalog catalog;
  DriftDetector detector;
  sys.set_feedback(&catalog, &detector);

  auto baseline = sys.Query("anc(X, Y)");
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->answers.size(), 6u);
  EXPECT_FALSE(catalog.empty());
  CatalogEntry entry;
  EXPECT_TRUE(catalog.Lookup(Pred("anc(X, Y)"), Adornment::AllFree(2),
                             &entry));

  options.feedback = true;
  options.verify_plans = true;
  sys.set_options(options);
  auto fed = sys.Query("anc(X, Y)");
  ASSERT_TRUE(fed.ok());
  EXPECT_EQ(fed->answers.size(), baseline->answers.size());
  sys.set_feedback(nullptr, nullptr);
}

}  // namespace
}  // namespace ldl
