#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <utility>

#include "base/strings.h"
#include "engine/builtins.h"
#include "engine/unify.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "storage/statistics.h"

namespace ldl {

namespace {

/// Cardinality cap: the widening target for recursive cliques and the
/// ceiling for body products (avoids double overflow).
constexpr double kCardCap = 1e18;

/// Comparison bands in the engine's term order (TermKind order with the
/// numeric kinds merged — EvalBuiltin compares numerics by value).
enum Band : int {
  kBandNumeric = 0,
  kBandString = 1,
  kBandSymbol = 2,
  kBandFunction = 3,
};

constexpr struct {
  uint8_t bit;
  Band band;
  const char* name;
} kBands[] = {
    {TypeSet::kNumeric, kBandNumeric, "num"},
    {TypeSet::kString, kBandString, "str"},
    {TypeSet::kSymbol, kBandSymbol, "sym"},
    {TypeSet::kFunction, kBandFunction, "fn"},
};

bool IsArithmeticFunctor(const std::string& f) {
  return f == "+" || f == "-" || f == "*" || f == "/" || f == "mod";
}

/// Sort of the value a rule-body expression evaluates to: arithmetic
/// function terms fold to numbers, other function terms are constructors.
TypeSet ExprType(const Term& t) {
  if (t.IsVariable()) return TypeSet::Any();
  if (t.IsFunction()) {
    return IsArithmeticFunctor(t.text()) ? TypeSet(TypeSet::kNumeric)
                                         : TypeSet(TypeSet::kFunction);
  }
  return TypeSet::Of(t);
}

/// Variables that must be numeric because they occur under an arithmetic
/// functor (at any depth of nested arithmetic).
void CollectArithmeticVars(const Term& t, std::vector<std::string>* out) {
  if (!t.IsFunction()) return;
  const bool arith = IsArithmeticFunctor(t.text());
  for (const Term& arg : t.args()) {
    if (arith && arg.IsVariable()) out->push_back(arg.text());
    CollectArithmeticVars(arg, out);
  }
}

/// Could `x <op> y` hold for some x with a sort in `lhs` and y with a sort
/// in `rhs`? Within a band values are unknown (assume possible); across
/// bands the engine's term order decides ordered comparisons.
bool ComparisonPossible(BuiltinKind kind, TypeSet lhs, TypeSet rhs) {
  if (lhs.empty() || rhs.empty()) return true;  // no information: no claim
  switch (kind) {
    case BuiltinKind::kEq:
      return lhs.CompatibleWith(rhs);
    case BuiltinKind::kNe:
      return true;  // distinct values exist in any nonempty sort pair
    case BuiltinKind::kLt:
    case BuiltinKind::kLe:
    case BuiltinKind::kGt:
    case BuiltinKind::kGe:
      break;
    case BuiltinKind::kNone:
      return true;
  }
  const bool less = kind == BuiltinKind::kLt || kind == BuiltinKind::kLe;
  for (const auto& a : kBands) {
    if (!(lhs.bits() & a.bit)) continue;
    for (const auto& b : kBands) {
      if (!(rhs.bits() & b.bit)) continue;
      if (a.band == b.band) return true;  // same band: value-dependent
      if (less ? a.band < b.band : a.band > b.band) return true;
    }
  }
  return false;
}

/// Per-variable sort constraints within one rule, with the provenance of
/// each constraint for diagnostics.
struct VarConstraint {
  TypeSet type = TypeSet::Any();
  std::vector<std::string> sources;  // diagnosis mode only
};

using VarTypes = std::map<std::string, VarConstraint>;

/// Recomputes the per-variable sorts of `rule` from the current predicate
/// types. In inference mode empty position types flow through (least
/// fixpoint over not-yet-derived predicates); in diagnosis mode empty
/// restrictions are skipped — a variable ending empty then means genuinely
/// incompatible nonempty constraints (L013), and provenance is recorded.
VarTypes SolveRuleVarTypes(
    const Rule& rule,
    const std::unordered_map<PredicateId, std::vector<TypeSet>,
                             PredicateIdHash>& pred_types,
    bool diagnosis) {
  VarTypes vars;
  auto restrict_var = [&](const std::string& name, TypeSet t,
                          const std::string& source) -> bool {
    if (diagnosis && t.empty()) return false;
    VarConstraint& c = vars[name];
    TypeSet met = c.type.Meet(t);
    if (diagnosis && !t.IsAny()) {
      c.sources.push_back(StrCat(source, " ", t.ToString()));
    }
    if (met == c.type) return false;
    c.type = met;
    return true;
  };

  bool changed = true;
  for (int pass = 0; pass < 4 && changed; ++pass) {
    changed = false;
    for (const Literal& lit : rule.body()) {
      if (lit.IsBuiltin()) {
        const Term& lhs = lit.args()[0];
        const Term& rhs = lit.args()[1];
        std::vector<std::string> arith;
        CollectArithmeticVars(lhs, &arith);
        CollectArithmeticVars(rhs, &arith);
        for (const std::string& v : arith) {
          changed |= restrict_var(v, TypeSet(TypeSet::kNumeric),
                                  "arithmetic in " + lit.ToString());
        }
        if (lit.builtin() != BuiltinKind::kEq) continue;
        if (lhs.IsVariable() && rhs.IsVariable()) {
          TypeSet met = vars[lhs.text()].type.Meet(vars[rhs.text()].type);
          if (!diagnosis || !met.empty()) {
            changed |= restrict_var(lhs.text(), met, lit.ToString());
            changed |= restrict_var(rhs.text(), met, lit.ToString());
          }
        } else if (lhs.IsVariable()) {
          changed |= restrict_var(lhs.text(), ExprType(rhs), lit.ToString());
        } else if (rhs.IsVariable()) {
          changed |= restrict_var(rhs.text(), ExprType(lhs), lit.ToString());
        }
        continue;
      }
      if (lit.negated()) continue;  // absence does not constrain sorts
      auto it = pred_types.find(lit.predicate());
      if (it == pred_types.end()) continue;  // unknown predicate: Any
      const std::vector<TypeSet>& cols = it->second;
      for (size_t i = 0; i < lit.args().size() && i < cols.size(); ++i) {
        const Term& arg = lit.args()[i];
        if (!arg.IsVariable()) continue;
        changed |= restrict_var(
            arg.text(), cols[i],
            StrCat("argument ", i + 1, " of ", lit.predicate().ToString()));
      }
    }
  }
  return vars;
}

/// theta-subsumption term matching: binds pattern variables to target
/// terms. `sigma` is copied at each choice point by the caller.
bool MatchTerm(const Term& pattern, const Term& target,
               std::map<std::string, Term>* sigma) {
  if (pattern.IsVariable()) {
    auto it = sigma->find(pattern.text());
    if (it != sigma->end()) return it->second == target;
    sigma->emplace(pattern.text(), target);
    return true;
  }
  if (pattern.IsFunction()) {
    if (!target.IsFunction() || pattern.text() != target.text() ||
        pattern.arity() != target.arity()) {
      return false;
    }
    for (size_t i = 0; i < pattern.arity(); ++i) {
      if (!MatchTerm(pattern.args()[i], target.args()[i], sigma)) return false;
    }
    return true;
  }
  return pattern == target;
}

bool MatchLiteral(const Literal& pattern, const Literal& target,
                  std::map<std::string, Term>* sigma) {
  if (pattern.negated() != target.negated()) return false;
  if (pattern.builtin() != target.builtin()) return false;
  if (!pattern.IsBuiltin() && pattern.predicate() != target.predicate()) {
    return false;
  }
  if (pattern.args().size() != target.args().size()) return false;
  for (size_t i = 0; i < pattern.args().size(); ++i) {
    if (!MatchTerm(pattern.args()[i], target.args()[i], sigma)) return false;
  }
  return true;
}

/// Maps body literal `i` of the subsumer (and the rest) into the subsumee's
/// body under a consistent sigma; several subsumer literals may map to the
/// same subsumee literal (theta-subsumption).
bool MatchBodyFrom(const std::vector<Literal>& pattern,
                   const std::vector<Literal>& target, size_t i,
                   const std::map<std::string, Term>& sigma) {
  if (i == pattern.size()) return true;
  for (const Literal& candidate : target) {
    std::map<std::string, Term> next = sigma;
    if (MatchLiteral(pattern[i], candidate, &next) &&
        MatchBodyFrom(pattern, target, i + 1, next)) {
      return true;
    }
  }
  return false;
}

/// True iff `subsumer` theta-subsumes `subsumee`: some substitution maps
/// the subsumer's head onto the subsumee's head and its body into a subset
/// of the subsumee's body. Every tuple the subsumee derives, the subsumer
/// derives too.
bool Subsumes(const Rule& subsumer, const Rule& subsumee) {
  std::map<std::string, Term> sigma;
  if (!MatchLiteral(subsumer.head(), subsumee.head(), &sigma)) return false;
  return MatchBodyFrom(subsumer.body(), subsumee.body(), 0, sigma);
}

}  // namespace

TypeSet TypeSet::Of(const Term& t) {
  switch (t.kind()) {
    case TermKind::kVariable:
      return Any();
    case TermKind::kInt:
    case TermKind::kReal:
      return TypeSet(kNumeric);
    case TermKind::kString:
      return TypeSet(kString);
    case TermKind::kSymbol:
      return TypeSet(kSymbol);
    case TermKind::kFunction:
      return TypeSet(kFunction);
  }
  return Any();
}

std::string TypeSet::ToString() const {
  if (IsAny()) return "{any}";
  std::string out = "{";
  for (const auto& band : kBands) {
    if (!(bits_ & band.bit)) continue;
    StrAppend(&out, out.size() > 1 ? "," : "", band.name);
  }
  return out + "}";
}

bool ProgramAnalysis::AdornmentReachable(const AdornedPredicate& ap) const {
  if (!has_goal_ || !reachability_complete_) return true;
  if (!derived_.count(ap.pred)) return true;
  auto it = reachable_.find(ap.pred);
  return it != reachable_.end() && it->second.count(ap.adornment) > 0;
}

size_t ProgramAnalysis::reachable_pair_count() const {
  size_t n = 0;
  for (const auto& [pred, adns] : reachable_) n += adns.size();
  return n;
}

const std::vector<TypeSet>& ProgramAnalysis::TypesOf(
    const PredicateId& pred) const {
  static const std::vector<TypeSet> kEmpty;
  auto it = types_.find(pred);
  return it == types_.end() ? kEmpty : it->second;
}

double ProgramAnalysis::CardinalityBound(const PredicateId& pred) const {
  auto it = cards_.find(pred);
  return it == cards_.end() ? default_card_ : it->second;
}

bool ProgramAnalysis::RuleUnsatisfiable(size_t rule_index) const {
  return rule_index < rule_unsatisfiable_.size() &&
         rule_unsatisfiable_[rule_index] != 0;
}

bool ProgramAnalysis::RuleSubsumed(size_t rule_index) const {
  return rule_index < rule_subsumed_.size() && rule_subsumed_[rule_index] != 0;
}

bool ProgramAnalysis::RuleReachable(size_t rule_index) const {
  if (!has_goal_ || !reachability_complete_) return true;
  return rule_index < rule_reachable_.size() &&
         rule_reachable_[rule_index] != 0;
}

void ProgramAnalysis::ExportTo(MetricsRegistry* metrics) const {
  metrics->counter("analysis.reachable_adornments")
      ->Increment(reachable_pair_count());
  metrics->counter("analysis.dead_rules")->Increment(dead_rules_.size());
  metrics->counter("analysis.findings")->Increment(findings_.size());
  metrics->counter("analysis.dataflow_visits")
      ->Increment(type_stats_.visits + reach_stats_.visits +
                  card_stats_.visits);
  metrics->counter("analysis.widenings")->Increment(card_stats_.widenings);
}

std::string ProgramAnalysis::ToString() const {
  std::string out;
  StrAppend(&out, "types:\n");
  std::map<PredicateId, const std::vector<TypeSet>*> sorted_types;
  for (const auto& [pred, cols] : types_) sorted_types[pred] = &cols;
  for (const auto& [pred, cols] : sorted_types) {
    StrAppend(&out, "  ", pred.ToString(), ": (",
              StrJoin(*cols, ", ", [](TypeSet t) { return t.ToString(); }),
              ")\n");
  }
  if (has_goal_) {
    StrAppend(&out, "reachable (", reachability_complete_ ? "" : "in",
              "complete):");
    std::set<AdornedPredicate> sorted;
    for (const auto& [pred, adns] : reachable_) {
      for (const Adornment& adn : adns) sorted.insert({pred, adn});
    }
    for (const AdornedPredicate& ap : sorted) {
      StrAppend(&out, " ", ap.ToString());
    }
    StrAppend(&out, "\n");
  }
  for (const DeadRule& dead : dead_rules_) {
    StrAppend(&out, "dead rule ", dead.rule_index, ": ", dead.reason, "\n");
  }
  for (const Diagnostic& d : findings_) StrAppend(&out, d.ToString(), "\n");
  return out;
}

ProgramAnalyzer::ProgramAnalyzer(const Program& program,
                                 AnalyzerOptions options)
    : program_(program),
      options_(options),
      graph_(DependencyGraph::Build(program)) {}

ProgramAnalysis ProgramAnalyzer::Analyze(const Literal& goal) const {
  ProgramAnalysis a = AnalyzeProgram();
  a.has_goal_ = true;
  ComputeReachability(goal, &a);
  a.dead_rules_.clear();
  CollectDeadRules(&goal, &a);
  return a;
}

ProgramAnalysis ProgramAnalyzer::AnalyzeProgram() const {
  ProgramAnalysis a;
  for (const PredicateId& pred : program_.DerivedPredicates()) {
    a.derived_.insert(pred);
  }
  a.rule_unsatisfiable_.assign(program_.rules().size(), 0);
  a.rule_subsumed_.assign(program_.rules().size(), 0);
  a.rule_reachable_.assign(program_.rules().size(), 1);
  if (options_.statistics) {
    a.default_card_ = options_.statistics->default_stats().cardinality;
  }
  InferTypes(&a);
  if (options_.check_types) CheckRules(&a);
  if (options_.check_subsumption) DetectSubsumption(&a);
  SketchCardinalities(&a);
  CollectDeadRules(nullptr, &a);
  return a;
}

void ProgramAnalyzer::Lint(DiagnosticSink* sink) const {
  ProgramAnalysis a = AnalyzeProgram();
  for (const Diagnostic& d : a.findings()) sink->Report(d);
}

std::vector<TypeSet> ProgramAnalyzer::BaseTypes(const PredicateId& pred) const {
  std::vector<TypeSet> cols(pred.arity, TypeSet::None());
  bool any_data = false;
  for (const Literal& fact : program_.facts()) {
    if (fact.predicate() != pred) continue;
    any_data = true;
    for (size_t i = 0; i < cols.size(); ++i) {
      cols[i] = cols[i].Join(TypeSet::Of(fact.args()[i]));
    }
  }
  if (options_.database) {
    const Relation* rel = options_.database->Find(pred);
    if (rel && !rel->empty()) {
      any_data = true;
      if (rel->size() > options_.max_type_seed_scan) {
        return std::vector<TypeSet>(pred.arity, TypeSet::Any());
      }
      for (const Tuple& t : rel->tuples()) {
        for (size_t i = 0; i < cols.size(); ++i) {
          cols[i] = cols[i].Join(TypeSet::Of(t[i]));
        }
      }
    }
    return cols;  // no data with a database present: statically empty
  }
  if (!any_data) return std::vector<TypeSet>(pred.arity, TypeSet::Any());
  return cols;
}

void ProgramAnalyzer::InferTypes(ProgramAnalysis* a) const {
  for (const PredicateId& pred : program_.BasePredicates()) {
    a->types_[pred] = BaseTypes(pred);
  }
  for (const PredicateId& pred : program_.DerivedPredicates()) {
    a->types_[pred].assign(pred.arity, TypeSet::None());
  }

  DataflowFramework framework(program_, graph_);
  a->type_stats_ = framework.Run(
      DataflowDirection::kBottomUp, [&](const PredicateId& pred) {
        std::vector<TypeSet> value(pred.arity, TypeSet::None());
        for (size_t ri : program_.RulesFor(pred)) {
          const Rule& rule = program_.rules()[ri];
          VarTypes vars =
              SolveRuleVarTypes(rule, a->types_, /*diagnosis=*/false);
          std::vector<TypeSet> contribution(pred.arity);
          bool satisfiable = true;
          for (size_t j = 0; j < pred.arity; ++j) {
            const Term& arg = rule.head().args()[j];
            TypeSet t = arg.IsVariable() ? vars[arg.text()].type
                                         : ExprType(arg);
            if (t.empty()) {
              satisfiable = false;
              break;
            }
            contribution[j] = t;
          }
          if (!satisfiable) continue;
          for (size_t j = 0; j < pred.arity; ++j) {
            value[j] = value[j].Join(contribution[j]);
          }
        }
        std::vector<TypeSet>& current = a->types_[pred];
        bool changed = false;
        for (size_t j = 0; j < pred.arity; ++j) {
          TypeSet joined = current[j].Join(value[j]);
          if (joined != current[j]) {
            current[j] = joined;
            changed = true;
          }
        }
        return changed;
      });
}

void ProgramAnalyzer::CheckRules(ProgramAnalysis* a) const {
  for (size_t ri = 0; ri < program_.rules().size(); ++ri) {
    const Rule& rule = program_.rules()[ri];
    SourceLocation loc = SourceLocation::ForRule(ri, rule.ToString());
    bool unsat = false;

    VarTypes vars = SolveRuleVarTypes(rule, a->types_, /*diagnosis=*/true);
    for (const auto& [name, constraint] : vars) {
      if (!constraint.type.empty() || constraint.sources.size() < 2) continue;
      a->findings_.push_back(
          {"L013", Severity::kWarning,
           StrCat("variable ", name,
                  " has no possible value: incompatible sort constraints ",
                  StrJoin(constraint.sources, " vs ")),
           loc});
      unsat = true;
    }

    for (const Literal& lit : rule.body()) {
      if (lit.IsBuiltin() || lit.negated()) continue;
      const std::vector<TypeSet>& cols = a->TypesOf(lit.predicate());
      if (cols.empty()) continue;
      for (size_t i = 0; i < lit.args().size() && i < cols.size(); ++i) {
        const Term& arg = lit.args()[i];
        if (arg.IsVariable() || cols[i].empty()) continue;
        TypeSet at = TypeSet::Of(arg);
        if (at.CompatibleWith(cols[i])) continue;
        a->findings_.push_back(
            {"L011", Severity::kWarning,
             StrCat("argument ", i + 1, " of ", lit.ToString(), " has sort ",
                    at.ToString(), " but ", lit.predicate().ToString(),
                    " only ever holds ", cols[i].ToString(),
                    " there; the literal can never match"),
             loc});
        unsat = true;
      }
    }

    for (const Literal& lit : rule.body()) {
      if (!lit.IsBuiltin()) continue;
      const Term& lhs = lit.args()[0];
      const Term& rhs = lit.args()[1];
      if (lhs.IsGround() && rhs.IsGround()) {
        Substitution subst;
        if (EvalBuiltin(lit, &subst) == BuiltinOutcome::kFailed) {
          a->findings_.push_back({"L012", Severity::kWarning,
                                  StrCat("comparison ", lit.ToString(),
                                         " is always false"),
                                  loc});
          unsat = true;
        }
        continue;
      }
      auto side_type = [&](const Term& t) {
        return t.IsVariable() ? vars[t.text()].type : ExprType(t);
      };
      TypeSet lt = side_type(lhs);
      TypeSet rt = side_type(rhs);
      if (!ComparisonPossible(lit.builtin(), lt, rt)) {
        a->findings_.push_back(
            {"L012", Severity::kWarning,
             StrCat("comparison ", lit.ToString(),
                    " is always false: left side has sort ", lt.ToString(),
                    ", right side ", rt.ToString()),
             loc});
        unsat = true;
      }
    }

    if (unsat) a->rule_unsatisfiable_[ri] = 1;
  }
}

void ProgramAnalyzer::DetectSubsumption(ProgramAnalysis* a) const {
  const std::vector<Rule>& rules = program_.rules();
  for (size_t j = 0; j < rules.size(); ++j) {
    if (rules[j].body().size() > options_.max_subsumption_body) continue;
    for (size_t i = 0; i < rules.size(); ++i) {
      if (i == j || a->rule_subsumed_[i]) continue;
      if (rules[i].head().predicate() != rules[j].head().predicate()) continue;
      if (rules[i].body().size() > options_.max_subsumption_body) continue;
      if (!Subsumes(rules[i], rules[j])) continue;
      // Mutually subsuming rules (variants) keep the textually earlier one.
      if (Subsumes(rules[j], rules[i]) && j < i) continue;
      a->rule_subsumed_[j] = 1;
      a->findings_.push_back(
          {"L014", Severity::kWarning,
           StrCat("rule is subsumed by rule ", i, " (",
                  rules[i].ToString(),
                  "): every tuple it derives is already derived"),
           SourceLocation::ForRule(j, rules[j].ToString())});
      break;
    }
  }
}

void ProgramAnalyzer::ComputeReachability(const Literal& goal,
                                          ProgramAnalysis* a) const {
  a->reachability_complete_ = true;
  const PredicateId goal_pred = goal.predicate();
  if (!program_.IsDerived(goal_pred)) {
    a->reachability_complete_ = false;  // nothing to analyze: no pruning
    return;
  }
  for (const Rule& rule : program_.rules()) {
    if (rule.body().size() > options_.max_body_literals) {
      a->reachability_complete_ = false;  // 2^n enumeration too large
      return;
    }
  }

  a->reachable_[goal_pred].insert(Adornment::FromGoal(goal));

  // Per (rule, head adornment): the adorned predicates its body can request
  // under ANY sideways-information-passing order. Enumerating every subset
  // of body literals and closing the bindings over it covers every
  // sequential prefix any join order can produce (the closure of the
  // literals actually evaluated so far), so the optimizer never asks for an
  // adornment outside this set.
  std::map<std::pair<size_t, Adornment>, std::vector<AdornedPredicate>> cache;
  auto requests_of = [&](size_t ri, const Adornment& head_adn)
      -> const std::vector<AdornedPredicate>& {
    auto key = std::make_pair(ri, head_adn);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    const Rule& rule = program_.rules()[ri];
    const std::vector<Literal>& body = rule.body();
    std::vector<AdornedPredicate> out;
    std::set<AdornedPredicate> seen;
    const size_t n = body.size();
    for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
      BoundVars bound;
      BindHeadVariables(rule.head(), head_adn, &bound);
      bool grew = true;
      while (grew) {
        grew = false;
        for (size_t i = 0; i < n; ++i) {
          if (!(mask >> i & 1)) continue;
          size_t before = bound.size();
          PropagateBindings(body[i], &bound);
          if (bound.size() != before) grew = true;
        }
      }
      for (size_t j = 0; j < n; ++j) {
        const Literal& lit = body[j];
        if (lit.IsBuiltin() || !program_.IsDerived(lit.predicate())) continue;
        AdornedPredicate ap{lit.predicate(), AdornLiteral(lit, bound)};
        if (seen.insert(ap).second) out.push_back(ap);
        if (lit.negated()) {
          AdornedPredicate ff{lit.predicate(),
                              Adornment::AllFree(lit.arity())};
          if (seen.insert(ff).second) out.push_back(ff);
        }
      }
    }
    return cache.emplace(std::move(key), std::move(out)).first->second;
  };

  DataflowFramework framework(program_, graph_);
  a->reach_stats_ = framework.Run(
      DataflowDirection::kTopDown, [&](const PredicateId& pred) {
        std::set<Adornment>& mine = a->reachable_[pred];
        const size_t before = mine.size();
        std::set<PredicateId> heads(graph_.DependentsOf(pred).begin(),
                                    graph_.DependentsOf(pred).end());
        for (const PredicateId& head : heads) {
          auto hit = a->reachable_.find(head);
          if (hit == a->reachable_.end() || hit->second.empty()) continue;
          // Copy: requests_of may add to `mine`, which aliases hit->second
          // when a rule is self-recursive.
          std::vector<Adornment> head_adns(hit->second.begin(),
                                           hit->second.end());
          for (const Adornment& head_adn : head_adns) {
            for (size_t ri : program_.RulesFor(head)) {
              for (const AdornedPredicate& req : requests_of(ri, head_adn)) {
                if (req.pred == pred) mine.insert(req.adornment);
              }
            }
          }
        }
        // Any predicate of a reached recursive clique may be evaluated in
        // full-fixpoint context (semi-naive computes whole cliques, and
        // delta-driven costing probes members free), so seed all-free for
        // every member once the clique is entered at any adornment.
        if (graph_.IsRecursive(pred)) {
          const RecursiveClique& clique =
              graph_.cliques()[graph_.CliqueIndex(pred)];
          bool entered = false;
          for (const PredicateId& member : clique.predicates) {
            auto mit = a->reachable_.find(member);
            if (mit != a->reachable_.end() && !mit->second.empty()) {
              entered = true;
              break;
            }
          }
          if (entered) mine.insert(Adornment::AllFree(pred.arity));
        }
        return mine.size() != before;
      });

  for (size_t ri = 0; ri < program_.rules().size(); ++ri) {
    auto it = a->reachable_.find(program_.rules()[ri].head().predicate());
    a->rule_reachable_[ri] =
        it != a->reachable_.end() && !it->second.empty() ? 1 : 0;
  }
}

void ProgramAnalyzer::SketchCardinalities(ProgramAnalysis* a) const {
  for (const PredicateId& pred : program_.BasePredicates()) {
    double card = a->default_card_;
    if (options_.statistics && options_.statistics->Has(pred)) {
      card = options_.statistics->Get(pred).cardinality;
    } else if (options_.database) {
      const Relation* rel = options_.database->Find(pred);
      card = rel ? static_cast<double>(rel->size()) : 0.0;
    }
    a->cards_[pred] = card;
  }
  DataflowFramework framework(program_, graph_);
  a->card_stats_ = framework.Run(
      DataflowDirection::kBottomUp,
      [&](const PredicateId& pred) {
        double value = 0;
        for (size_t ri : program_.RulesFor(pred)) {
          if (a->RuleUnsatisfiable(ri)) continue;
          double product = 1;
          for (const Literal& lit : program_.rules()[ri].body()) {
            if (lit.IsBuiltin() || lit.negated()) continue;
            auto it = a->cards_.find(lit.predicate());
            double card = it == a->cards_.end() ? a->default_card_
                                                : it->second;
            product = std::min(kCardCap, product * std::max(1.0, card));
          }
          value = std::min(kCardCap, value + product);
        }
        double& current = a->cards_[pred];
        if (value > current) {
          current = value;
          return true;
        }
        return false;
      },
      [&](const PredicateId& pred) { a->cards_[pred] = kCardCap; });
}

void ProgramAnalyzer::CollectDeadRules(const Literal* goal,
                                       ProgramAnalysis* a) const {
  for (size_t ri = 0; ri < program_.rules().size(); ++ri) {
    const Rule& rule = program_.rules()[ri];
    std::string reason;
    if (goal != nullptr && a->reachability_complete_ &&
        !a->rule_reachable_[ri]) {
      reason = StrCat("unreachable from ", goal->predicate().ToString());
    } else if (a->RuleUnsatisfiable(ri)) {
      reason = "body is statically unsatisfiable (sort conflict)";
    } else if (a->RuleSubsumed(ri)) {
      reason = "subsumed by another rule";
    } else {
      for (const Literal& lit : rule.body()) {
        if (lit.IsBuiltin() || lit.negated()) continue;
        const std::vector<TypeSet>& cols = a->TypesOf(lit.predicate());
        if (cols.empty()) continue;
        bool empty_col = false;
        for (TypeSet col : cols) {
          if (col.empty()) {
            empty_col = true;
            break;
          }
        }
        if (empty_col) {
          reason = StrCat("positive occurrence of statically empty ",
                          lit.predicate().ToString());
          break;
        }
      }
    }
    if (!reason.empty()) a->dead_rules_.push_back({ri, std::move(reason)});
  }
}

DeadRuleElimination EliminateDeadRules(const Program& program,
                                       const ProgramAnalysis& analysis) {
  DeadRuleElimination result;
  std::unordered_set<size_t> dead;
  for (const DeadRule& d : analysis.dead_rules()) {
    dead.insert(d.rule_index);
    result.removed_rules.push_back(d.rule_index);
    result.reasons.push_back(d.reason);
  }
  for (size_t ri = 0; ri < program.rules().size(); ++ri) {
    if (!dead.count(ri)) result.program.AddRule(program.rules()[ri]);
  }
  for (const Literal& fact : program.facts()) result.program.AddFact(fact);
  for (const QueryForm& query : program.queries()) {
    result.program.AddQuery(query);
  }
  return result;
}

}  // namespace ldl
