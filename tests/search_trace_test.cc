// Integration tests for search introspection: the optimizer threading of
// SearchTracer (candidate events, scopes, the memo lattice, the clique
// method race), EXPLAIN OPTIMIZE rendering through LdlSystem, and the
// trace's invariance properties (tracing must never change the plan).

#include <gtest/gtest.h>

#include <sstream>

#include "ast/parser.h"
#include "ldl/ldl.h"
#include "obs/search_trace.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

constexpr const char* kChainRules =
    "q(X, W) <- r1(X, Y), r2(Y, Z), r3(Z, W).";

Statistics ChainStats() {
  Statistics stats;
  stats.Set({"r1", 2}, {10000.0, {5000.0, 400.0}});
  stats.Set({"r2", 2}, {50.0, {50.0, 50.0}});
  stats.Set({"r3", 2}, {3000.0, {600.0, 3000.0}});
  return stats;
}

TEST(SearchTraceIntegrationTest, TracerDoesNotChangeThePlan) {
  Program p = P(kChainRules);
  Statistics stats = ChainStats();
  Optimizer plain(p, stats, {});
  auto untraced = plain.Optimize(L("q(1, W)"));
  ASSERT_TRUE(untraced.ok()) << untraced.status();

  SearchTracer tracer;
  OptimizerOptions options;
  options.trace.search = &tracer;
  Optimizer traced_opt(p, stats, options);
  auto traced = traced_opt.Optimize(L("q(1, W)"));
  ASSERT_TRUE(traced.ok()) << traced.status();

  EXPECT_EQ(traced->rule_orders.at(0), untraced->rule_orders.at(0));
  EXPECT_DOUBLE_EQ(traced->TotalCost(), untraced->TotalCost());
  EXPECT_FALSE(tracer.candidates().empty());
}

TEST(SearchTraceIntegrationTest, ExhaustiveAndDpAgreeOnWinnerNotOnWork) {
  // Same optimum through different searches: the traces must agree on the
  // winning order but show different candidate sets (B&B explores
  // permutation prefixes, DP explores subsets).
  Program p = P(kChainRules);
  Statistics stats = ChainStats();

  SearchTracer ex_trace;
  OptimizerOptions ex_options;
  ex_options.strategy = SearchStrategy::kExhaustive;
  ex_options.trace.search = &ex_trace;
  Optimizer ex_opt(p, stats, ex_options);
  auto ex_plan = ex_opt.Optimize(L("q(1, W)"));
  ASSERT_TRUE(ex_plan.ok()) << ex_plan.status();

  SearchTracer dp_trace;
  OptimizerOptions dp_options;
  dp_options.strategy = SearchStrategy::kDynamicProgramming;
  dp_options.trace.search = &dp_trace;
  Optimizer dp_opt(p, stats, dp_options);
  auto dp_plan = dp_opt.Optimize(L("q(1, W)"));
  ASSERT_TRUE(dp_plan.ok()) << dp_plan.status();

  EXPECT_EQ(ex_plan->rule_orders.at(0), dp_plan->rule_orders.at(0));
  EXPECT_DOUBLE_EQ(ex_plan->TotalCost(), dp_plan->TotalCost());
  EXPECT_FALSE(ex_trace.candidates().empty());
  EXPECT_FALSE(dp_trace.candidates().empty());
  EXPECT_NE(ex_trace.candidates().size(), dp_trace.candidates().size());
}

TEST(SearchTraceIntegrationTest, MemoLatticeMarksWinningClosure) {
  SearchTracer tracer;
  OptimizerOptions options;
  options.trace.search = &tracer;
  Program p = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )");
  Statistics stats;
  stats.Set({"par", 2}, {1000.0, {700.0, 500.0}});
  Optimizer opt(p, stats, options);
  auto plan = opt.Optimize(L("anc(1, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->safe) << plan->unsafe_reason;

  ASSERT_FALSE(tracer.memo().empty());
  bool winning_anc = false;
  for (const MemoNodeInfo& node : tracer.memo()) {
    if (node.key.rfind("anc.", 0) == 0 && node.winning) {
      winning_anc = true;
      // Recursive winner carries the method that won the race.
      EXPECT_FALSE(node.method.empty());
    }
  }
  EXPECT_TRUE(winning_anc);
  // The clique's method race leaves one kept candidate; any alternative
  // methods it beat show as dominated in the same trace.
  EXPECT_GE(tracer.CountDisposition(CandidateDisposition::kKept), 1u);
}

TEST(SearchTraceIntegrationTest, MemoHitsRecordStringFreeAndResolve) {
  // The diamond forces d to be reached twice under the same adornment: the
  // second reach is a memo hit whose event must resolve to the memo key.
  SearchTracer tracer;
  OptimizerOptions options;
  options.trace.search = &tracer;
  Program p = P(R"(
    left(X, Y) <- d(X, Y).
    right(X, Y) <- d(X, Y).
    top(X, Y) <- left(X, Z), right(Z, Y).
    d(X, Y) <- base(X, Y).
  )");
  Statistics stats;
  stats.Set({"base", 2}, {100.0, {50.0, 50.0}});
  Optimizer opt(p, stats, options);
  auto plan = opt.Optimize(L("top(1, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();

  size_t hits_with_key = 0;
  for (const SearchCandidate& c : tracer.candidates()) {
    if (c.disposition != CandidateDisposition::kMemoHit) continue;
    EXPECT_NE(c.memo_node, UINT32_MAX);
    if (tracer.DetailOf(c).rfind("d.", 0) == 0) ++hits_with_key;
  }
  EXPECT_GE(hits_with_key, 1u);
}

TEST(SearchTraceIntegrationTest, StaleMemoEntriesFallBackAfterClear) {
  // An optimizer whose memo outlives a tracer Clear() must still produce
  // readable memo-hit events (via the key fallback), never dangling node
  // indices into the new trace.
  SearchTracer tracer;
  OptimizerOptions options;
  options.trace.search = &tracer;
  Program p = P("q(X, Y) <- base(X, Y).");
  Statistics stats;
  stats.Set({"base", 2}, {100.0, {50.0, 50.0}});
  Optimizer opt(p, stats, options);
  ASSERT_TRUE(opt.Optimize(L("q(1, Y)")).ok());
  tracer.Clear();
  ASSERT_TRUE(opt.Optimize(L("q(1, Y)")).ok());  // fully memoized
  ASSERT_FALSE(tracer.candidates().empty());
  for (const SearchCandidate& c : tracer.candidates()) {
    if (c.disposition == CandidateDisposition::kMemoHit) {
      EXPECT_EQ(c.memo_node, UINT32_MAX);  // stale id not reused
      EXPECT_EQ(tracer.DetailOf(c).rfind("q.", 0), 0u);
    }
  }
}

TEST(SearchTraceIntegrationTest, ExplainOptimizeListsRejectedCandidates) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    par(1, 2). par(2, 3). par(3, 4). par(1, 5).
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )").ok());
  auto text = sys.ExplainOptimize("anc(1, Y)");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("SEARCH OPTIMIZE"), std::string::npos);
  EXPECT_NE(text->find("MEMO LATTICE"), std::string::npos);
  // At least two rejected candidates with their dispositions: the clique
  // method race alone dominates several methods, and the two-literal
  // recursive body costs both orders.
  size_t rejected = 0;
  for (const char* needle : {"[dominated]", "[pruned-bound]",
                             "[pruned-unsafe]"}) {
    for (size_t at = text->find(needle); at != std::string::npos;
         at = text->find(needle, at + 1)) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 2u) << *text;
  // The winning memo entries are starred.
  EXPECT_NE(text->find("* anc."), std::string::npos) << *text;
}

TEST(SearchTraceIntegrationTest, RenderSummarizesTailBeyondLineCap) {
  SearchTracer tracer;
  tracer.BeginScope("p q.ff/1");
  for (int i = 0; i < 10; ++i) {
    tracer.RecordCandidate({0}, 1.0, CandidateDisposition::kDominated);
  }
  std::string text = RenderExplainOptimize(tracer, /*max_candidate_lines=*/3);
  EXPECT_NE(text.find("more candidates not shown"), std::string::npos);
}

}  // namespace
}  // namespace ldl
