#include "obs/query_log.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"

namespace ldl {

namespace {

/// Shortest representation that parses back to the same double (%.17g is
/// always exact; try %.15g first so common values stay readable).
std::string RoundTripDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void AppendField(std::string* out, const char* key, const std::string& v) {
  StrAppend(out, "\"", key, "\":\"", JsonEscape(v), "\",");
}
void AppendField(std::string* out, const char* key, uint64_t v) {
  StrAppend(out, "\"", key, "\":", std::to_string(v), ",");
}
void AppendField(std::string* out, const char* key, double v) {
  StrAppend(out, "\"", key, "\":", RoundTripDouble(v), ",");
}
void AppendField(std::string* out, const char* key, bool v) {
  StrAppend(out, "\"", key, "\":", v ? "true" : "false", ",");
}

/// Minimal parser for the flat JSON objects ToJson emits: string, number,
/// and boolean values only (no nesting, no arrays). Positioned after '{'.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  Status Fail(const std::string& why) const {
    return Status::InvalidArgument(
        StrCat("query log line: ", why, " at offset ", pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  Status ParseString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // JsonEscape only emits \u00XX for control bytes.
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  /// Raw value token: number / true / false (anything up to , or }).
  Status ParseScalarToken(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}') {
      ++pos_;
    }
    *out = std::string(
        StripWhitespace(std::string_view(text_).substr(start, pos_ - start)));
    if (out->empty()) return Fail("expected value");
    return Status::OK();
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string QueryLogRecord::ToJson() const {
  std::string out = "{";
  AppendField(&out, "program", program);
  AppendField(&out, "query", query);
  AppendField(&out, "adornment", adornment);
  AppendField(&out, "method", method);
  AppendField(&out, "plan_fingerprint", plan_fingerprint);
  AppendField(&out, "stats_epoch", stats_epoch);
  AppendField(&out, "prune", prune);
  AppendField(&out, "outcome", outcome);
  AppendField(&out, "error", error);
  AppendField(&out, "answer_fingerprint", answer_fingerprint);
  AppendField(&out, "answers", answers);
  AppendField(&out, "budget_bytes", budget_bytes);
  AppendField(&out, "deadline_ms", deadline_ms);
  AppendField(&out, "peak_bytes", peak_bytes);
  AppendField(&out, "tuples_examined", tuples_examined);
  AppendField(&out, "tuples_derived", tuples_derived);
  AppendField(&out, "fixpoint_rounds", fixpoint_rounds);
  AppendField(&out, "rule_firings", rule_firings);
  AppendField(&out, "cancel_checks", cancel_checks);
  AppendField(&out, "optimize_ms", optimize_ms);
  AppendField(&out, "execute_ms", execute_ms);
  AppendField(&out, "total_ms", total_ms);
  out.back() = '}';  // replace the trailing comma
  return out;
}

Result<QueryLogRecord> QueryLogRecord::FromJson(const std::string& line) {
  QueryLogRecord rec;
  FlatJsonParser p(line);
  if (!p.Consume('{')) return p.Fail("expected '{'");
  if (p.Consume('}')) return rec;
  while (true) {
    std::string key;
    LDL_RETURN_NOT_OK(p.ParseString(&key));
    if (!p.Consume(':')) return p.Fail("expected ':'");

    if (p.Peek('"')) {
      // String value: lex with escape handling (an unknown key's string
      // could contain commas/braces that would desync a raw scan).
      std::string value;
      LDL_RETURN_NOT_OK(p.ParseString(&value));
      if (key == "program") rec.program = std::move(value);
      else if (key == "query") rec.query = std::move(value);
      else if (key == "adornment") rec.adornment = std::move(value);
      else if (key == "method") rec.method = std::move(value);
      else if (key == "plan_fingerprint") rec.plan_fingerprint = std::move(value);
      else if (key == "outcome") rec.outcome = std::move(value);
      else if (key == "error") rec.error = std::move(value);
      else if (key == "answer_fingerprint") rec.answer_fingerprint = std::move(value);
      // else: unknown string key — ignored for forward compatibility.
    } else {
      std::string token;
      LDL_RETURN_NOT_OK(p.ParseScalarToken(&token));
      auto u64 = [&]() { return std::strtoull(token.c_str(), nullptr, 10); };
      auto f64 = [&]() { return std::strtod(token.c_str(), nullptr); };
      if (key == "stats_epoch") rec.stats_epoch = u64();
      else if (key == "prune") rec.prune = (token == "true" || token == "1");
      else if (key == "answers") rec.answers = u64();
      else if (key == "budget_bytes") rec.budget_bytes = u64();
      else if (key == "deadline_ms") rec.deadline_ms = f64();
      else if (key == "peak_bytes") rec.peak_bytes = u64();
      else if (key == "tuples_examined") rec.tuples_examined = u64();
      else if (key == "tuples_derived") rec.tuples_derived = u64();
      else if (key == "fixpoint_rounds") rec.fixpoint_rounds = u64();
      else if (key == "rule_firings") rec.rule_firings = u64();
      else if (key == "cancel_checks") rec.cancel_checks = u64();
      else if (key == "optimize_ms") rec.optimize_ms = f64();
      else if (key == "execute_ms") rec.execute_ms = f64();
      else if (key == "total_ms") rec.total_ms = f64();
      // else: unknown scalar key — ignored for forward compatibility.
    }
    if (p.Consume('}')) break;
    if (!p.Consume(',')) return p.Fail("expected ',' or '}'");
  }
  if (!p.AtEnd()) return p.Fail("trailing content");
  return rec;
}

bool QueryLogRecord::operator==(const QueryLogRecord& other) const {
  return program == other.program && query == other.query &&
         adornment == other.adornment && method == other.method &&
         plan_fingerprint == other.plan_fingerprint &&
         stats_epoch == other.stats_epoch && prune == other.prune &&
         outcome == other.outcome && error == other.error &&
         answer_fingerprint == other.answer_fingerprint &&
         answers == other.answers && budget_bytes == other.budget_bytes &&
         deadline_ms == other.deadline_ms && peak_bytes == other.peak_bytes &&
         tuples_examined == other.tuples_examined &&
         tuples_derived == other.tuples_derived &&
         fixpoint_rounds == other.fixpoint_rounds &&
         rule_firings == other.rule_firings &&
         cancel_checks == other.cancel_checks &&
         optimize_ms == other.optimize_ms && execute_ms == other.execute_ms &&
         total_ms == other.total_ms;
}

Status QueryLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  out_.open(path, std::ios::out | std::ios::app);
  if (!out_.is_open()) {
    return Status::InvalidArgument(
        StrCat("cannot open query log for append: ", path));
  }
  return Status::OK();
}

void QueryLog::Append(QueryLogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.program.empty()) record.program = default_program_;
  if (out_.is_open()) {
    out_ << record.ToJson() << "\n";
    out_.flush();
  }
  records_.push_back(std::move(record));
}

size_t QueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<QueryLogRecord> QueryLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

Result<std::vector<QueryLogRecord>> QueryLog::ReadFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open query log: ", path));
  }
  std::vector<QueryLogRecord> out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (StripWhitespace(line).empty()) continue;
    auto rec = QueryLogRecord::FromJson(line);
    if (!rec.ok()) {
      return Status::InvalidArgument(StrCat(path, ":", lineno, ": ",
                                            rec.status().message()));
    }
    out.push_back(std::move(rec).value());
  }
  return out;
}

}  // namespace ldl
