file(REMOVE_RECURSE
  "CMakeFiles/ldl_shell.dir/ldl_shell.cpp.o"
  "CMakeFiles/ldl_shell.dir/ldl_shell.cpp.o.d"
  "ldl_shell"
  "ldl_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
