// Safety (paper section 8): unsafe executions are an extreme case of poor
// executions. The optimizer prices EC violations and non-well-founded
// recursion at infinite cost; if no finite-cost plan exists the query is
// rejected at compile time with a diagnostic — no run-time freezing.
//
// Build & run:  ./build/examples/safety_demo

#include <cstdio>

#include "ldl/ldl.h"

namespace {

void Try(ldl::LdlSystem* sys, const char* query) {
  std::printf("?- %s\n", query);
  auto answer = sys->Query(query);
  if (answer.ok()) {
    std::printf("   SAFE: %zu answers", answer->answers.size());
    for (size_t i = 0; i < answer->answers.size() && i < 3; ++i) {
      std::printf("  %s",
                  ldl::TupleToString(answer->answers.tuples()[i]).c_str());
    }
    std::printf("\n\n");
  } else {
    std::printf("   %s\n\n", answer.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  ldl::LdlSystem sys;
  ldl::Status st = sys.LoadProgram(R"(
    price(widget, 5).
    price(gadget, 50).

    % Textually unsafe (Y = P * 2 precedes the binding of P), but a safe
    % permutation exists: the optimizer reorders silently.
    doubled(X, Y) <- Y = P * 2, price(X, P).

    % An open comparison: safe only for bound query forms.
    bigger(X, Y) <- X > Y.

    % Arithmetic recursion: no well-founded order; never safe.
    nat(X) <- zero(X).
    nat(Y) <- nat(X), Y = X + 1.
    zero(0).

    % List recursion: safe when the list argument is bound (structural
    % descent), unsafe when free (bottom-up term growth).
    member(X, [X | T]).
    member(X, [H | T]) <- member(X, T).

    % The paper's section 8.3 example: the answer is finite (<3, 6, 18>)
    % but no permutation of goals computes it; only flattening would.
    p(X, Y, Z) <- X = 3, Z = X + Y.
  )");
  if (!st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("=== safe after reordering ===\n");
  Try(&sys, "doubled(widget, Y)");

  std::printf("=== query-form specific safety ===\n");
  Try(&sys, "bigger(7, 3)");   // bb: computable
  Try(&sys, "bigger(X, 3)");   // fb: infinite relation -> rejected

  std::printf("=== recursion safety ===\n");
  Try(&sys, "nat(N)");                  // rejected: not well-founded
  Try(&sys, "member(X, [1, 2, 3])");    // bound list: structural descent
  Try(&sys, "member(1, L)");            // free list: rejected

  std::printf("=== the section 8.3 limitation ===\n");
  Try(&sys, "p(X, Y, Z)");

  // The standalone analyzer pinpoints the problems without optimizing.
  std::printf("=== safety report for nat(N)? ===\n%s\n",
              sys.CheckSafety("nat(N)").ToString().c_str());
  return 0;
}
