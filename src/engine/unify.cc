#include "engine/unify.h"

#include <sstream>

namespace ldl {

const Term* Substitution::Lookup(const std::string& var) const {
  auto it = map_.find(var);
  return it == map_.end() ? nullptr : &it->second;
}

void Substitution::Bind(const std::string& var, Term value) {
  map_.emplace(var, std::move(value));
  trail_.push_back(var);
}

void Substitution::UndoTo(size_t mark) {
  while (trail_.size() > mark) {
    map_.erase(trail_.back());
    trail_.pop_back();
  }
}

Term Substitution::Apply(const Term& t) const {
  switch (t.kind()) {
    case TermKind::kVariable: {
      const Term* bound = Lookup(t.text());
      if (bound == nullptr) return t;
      // Dereference chains (X -> Y -> 3).
      return Apply(*bound);
    }
    case TermKind::kFunction: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      bool changed = false;
      for (const Term& a : t.args()) {
        Term applied = Apply(a);
        changed = changed || !(applied == a);
        args.push_back(std::move(applied));
      }
      if (!changed) return t;
      return Term::MakeFunction(t.text(), std::move(args));
    }
    default:
      return t;
  }
}

Literal Substitution::Apply(const Literal& lit) const {
  std::vector<Term> args;
  args.reserve(lit.args().size());
  for (const Term& a : lit.args()) args.push_back(Apply(a));
  return lit.WithArgs(std::move(args));
}

std::string Substitution::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [var, term] : map_) {
    if (!first) os << ", ";
    first = false;
    os << var << " -> " << term;
  }
  os << '}';
  return os.str();
}

namespace {

// Dereferences a variable term through the substitution until it reaches a
// non-variable term or an unbound variable.
const Term* Deref(const Term* t, const Substitution& subst) {
  while (t->kind() == TermKind::kVariable) {
    const Term* bound = subst.Lookup(t->text());
    if (bound == nullptr) return t;
    t = bound;
  }
  return t;
}

bool UnifyImpl(const Term& a, const Term& b, Substitution* subst) {
  const Term* da = Deref(&a, *subst);
  const Term* db = Deref(&b, *subst);
  if (da->kind() == TermKind::kVariable) {
    if (db->kind() == TermKind::kVariable && da->text() == db->text()) {
      return true;
    }
    subst->Bind(da->text(), *db);
    return true;
  }
  if (db->kind() == TermKind::kVariable) {
    subst->Bind(db->text(), *da);
    return true;
  }
  if (da->kind() != db->kind()) {
    // Numeric cross-kind equality (1 == 1.0) is resolved by value.
    if (da->IsNumeric() && db->IsNumeric()) {
      return da->AsDouble() == db->AsDouble();
    }
    return false;
  }
  switch (da->kind()) {
    case TermKind::kInt:
      return da->int_value() == db->int_value();
    case TermKind::kReal:
      return da->real_value() == db->real_value();
    case TermKind::kString:
    case TermKind::kSymbol:
      return da->text() == db->text();
    case TermKind::kFunction: {
      if (da->text() != db->text() || da->arity() != db->arity()) return false;
      for (size_t i = 0; i < da->arity(); ++i) {
        if (!UnifyImpl(da->args()[i], db->args()[i], subst)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

bool Unify(const Term& a, const Term& b, Substitution* subst) {
  size_t mark = subst->Mark();
  if (UnifyImpl(a, b, subst)) return true;
  subst->UndoTo(mark);
  return false;
}

bool Match(const Term& pattern, const Term& value, Substitution* subst) {
  // With a ground `value`, Unify never binds variables of `value`.
  return Unify(pattern, value, subst);
}

}  // namespace ldl
