#ifndef LDLOPT_ENGINE_OPERATORS_H_
#define LDLOPT_ENGINE_OPERATORS_H_

#include <utility>
#include <vector>

#include "engine/rule_eval.h"
#include "storage/relation.h"

namespace ldl {

/// Whole-relation operators of the extended relational algebra that the
/// paper's target language is built on (section 4). The rule evaluator
/// implements the pipelined/tuple-at-a-time path; these materialized
/// operators implement the EL labels an optimizer can choose for square
/// (materialized) nodes — in particular "hash-join".
///
/// All operators use set semantics (duplicates eliminated by Relation).

/// sigma: tuples of `rel` whose column `col` equals `value`.
Relation Select(const Relation& rel, size_t col, const Term& value,
                EvalCounters* counters);

/// pi: projection onto `cols` (in the given order; may repeat/reorder).
Relation Project(const Relation& rel, const std::vector<size_t>& cols,
                 EvalCounters* counters);

/// Equi-join condition: left column i must equal right column j.
using JoinKeys = std::vector<std::pair<size_t, size_t>>;

/// Nested-loop equi-join; result schema = left columns ++ right columns.
Relation NestedLoopJoin(const Relation& left, const Relation& right,
                        const JoinKeys& keys, EvalCounters* counters);

/// Hash equi-join (builds on the smaller input); same result as
/// NestedLoopJoin.
Relation HashJoin(Relation& left, Relation& right, const JoinKeys& keys,
                  EvalCounters* counters);

/// Set union (arity must match).
Relation Union(const Relation& a, const Relation& b, EvalCounters* counters);

/// Set difference a - b.
Relation Difference(const Relation& a, const Relation& b,
                    EvalCounters* counters);

/// Left semi-join: tuples of `left` with at least one match in `right`.
Relation SemiJoin(Relation& left, Relation& right, const JoinKeys& keys,
                  EvalCounters* counters);

/// Hash partition for the parallel engine: splits `rel` into `parts`
/// relations by TupleHash modulo. Together with the sharded merge barrier
/// this is the exchange operator of the partitioned semi-naive loop; every
/// tuple lands in exactly one partition, and partition order is a pure
/// function of contents (schedule-independent).
std::vector<Relation> HashPartition(const Relation& rel, size_t parts,
                                    EvalCounters* counters);

}  // namespace ldl

#endif  // LDLOPT_ENGINE_OPERATORS_H_
