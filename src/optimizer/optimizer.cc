#include "optimizer/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "analysis/analyzer.h"
#include "analysis/plan_verifier.h"
#include "base/hash.h"
#include "base/strings.h"
#include "engine/counting.h"
#include "obs/search_trace.h"
#include "safety/safety.h"

namespace ldl {

void PlanSearchStats::ExportTo(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->counter("optimizer.cost_evaluations")->Increment(cost_evaluations);
  metrics->counter("optimizer.subplans_optimized")
      ->Increment(subplans_optimized);
  metrics->counter("optimizer.memo_hits")->Increment(memo_hits);
  metrics->counter("optimizer.memo_misses")->Increment(memo_misses);
  metrics->counter("optimizer.prunes_unsafe")->Increment(prunes_unsafe);
  metrics->counter("optimizer.prunes_unreachable")
      ->Increment(prunes_unreachable);
  metrics->histogram("optimizer.search_wall_ms")->Record(search_wall_ms);
}

namespace {

/// Full-body order for a recursive rule given the chosen order of the
/// non-delta items: the delta occurrence leads, followed by the remaining
/// literals in their chosen order.
std::vector<size_t> DeltaFirstOrder(size_t delta_pos,
                                    const std::vector<size_t>& item_positions,
                                    const std::vector<size_t>& item_order) {
  std::vector<size_t> order;
  order.reserve(item_positions.size() + 1);
  order.push_back(delta_pos);
  for (size_t idx : item_order) order.push_back(item_positions[idx]);
  return order;
}

}  // namespace

Optimizer::Optimizer(const Program& program, const Statistics& stats,
                     OptimizerOptions options)
    : program_(program),
      stats_(stats),
      options_(std::move(options)),
      graph_(DependencyGraph::Build(program)),
      model_(options_.cost),
      strategy_(MakeStrategy(options_.strategy, options_.strategy_options)) {}

Optimizer::~Optimizer() {
  if (options_.trace.accountant != nullptr && memo_charged_bytes_ != 0) {
    options_.trace.accountant->ReleaseBytes(memo_charged_bytes_);
  }
}

bool Optimizer::Aborted() {
  if (!aborted_status_.ok()) return true;
  if (options_.trace.cancel == nullptr) return false;
  Status st = options_.trace.cancel->Check();
  if (st.ok()) return false;
  aborted_status_ = std::move(st);
  return true;
}

Optimizer::Subplan Optimizer::AbortedSubplan() const {
  // Cheap, safe, never memoized: only exists so the in-flight recursion
  // unwinds without tripping estimation paths; Optimize() discards the
  // whole plan and returns aborted_status_.
  Subplan sub;
  sub.est.safe = true;
  sub.est.card = 1;
  sub.note = "optimization aborted";
  return sub;
}

uint64_t Optimizer::ApproxSubplanBytes(const Subplan& sub) const {
  uint64_t n = sizeof(AdornedPredicate) + sizeof(Subplan);
  for (const auto& [rule_index, order] : sub.orders) {
    n += sizeof(rule_index) + order.capacity() * sizeof(size_t) +
         sizeof(order);
  }
  n += (sub.children.capacity() + sub.materialized_children.capacity()) *
       sizeof(AdornedPredicate);
  n += sub.note.size();
  return n;
}

SearchTracer* Optimizer::Tracing() const {
  SearchTracer* st = options_.trace.search;
  return (st != nullptr && st->enabled()) ? st : nullptr;
}

bool Optimizer::Unreachable(const AdornedPredicate& ap) const {
  return options_.analysis != nullptr &&
         !options_.analysis->AdornmentReachable(ap);
}

Optimizer::Subplan Optimizer::PrunedSubplan(const AdornedPredicate& ap) {
  // Safe and costless on purpose: these placeholders only ever answer
  // estimation probes (the KBZ parameter / materialization all-free
  // lookups); the reachability closure guarantees no winning plan path
  // consumes one. The cardinality comes from the analysis sketch so the
  // probe still sees a plausible magnitude.
  Subplan sub;
  sub.est.safe = true;
  sub.est.card = options_.analysis->CardinalityBound(ap.pred);
  sub.note = "statically unreachable adornment";
  return sub;
}

void Optimizer::TraceMemoNode(std::string_view key,
                              const AdornedPredicate& ap, Subplan* sub) {
  SearchTracer* st = Tracing();
  if (st == nullptr) return;
  const uint32_t node = st->InternMemoNode(key);
  st->SetMemoNode(node, sub->est.setup + sub->est.per_binding, sub->est.card,
                  sub->est.safe,
                  graph_.CliqueIndex(ap.pred) >= 0
                      ? RecursionMethodToString(sub->method)
                      : std::string_view(),
                  sub->note);
  for (const AdornedPredicate& child : sub->children) {
    st->AddMemoEdge(node, st->InternMemoNode(child.ToString()));
  }
  // Remembered in the memoized subplan so later hits on this entry can
  // record against the node index without rebuilding the key string.
  sub->trace_node = node;
  sub->trace_gen = st->generation();
}

OrderResult Optimizer::TimedFindOrder(const std::vector<ConjunctItem>& items,
                                      const BoundVars& initial) {
  // The search tracer rides along either way; only the clock reads are
  // gated on the span/metrics context.
  if (!options_.trace.active()) {
    return strategy_->FindOrder(items, initial, model_, options_.trace.search);
  }
  // Per-strategy wall time: one histogram per strategy name, so mixed-
  // strategy experiments can compare effort directly.
  auto start = std::chrono::steady_clock::now();
  OrderResult result =
      strategy_->FindOrder(items, initial, model_, options_.trace.search);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  options_.trace.Observe(StrCat("optimizer.find_order_ms.", strategy_->name()),
                         ms);
  return result;
}

ConjunctItem Optimizer::MakeItem(const Literal& lit, Subplan* parent) {
  if (lit.IsBuiltin()) {
    ConjunctItem item;
    item.literal = lit;
    return item;  // ApplyStep computes builtins without an estimate
  }
  if (!program_.IsDerived(lit.predicate())) {
    ConjunctItem item = MakeBaseItem(lit, stats_, options_.cost);
    // Hindsight overlay: measured truth into the catalog item.
    if (options_.measured != nullptr) options_.measured->AdjustBaseItem(&item);
    return item;
  }

  // Derived literal: back the estimate with the (predicate, binding) memo.
  // MP: the estimate picks pipelined vs materialized per outer cardinality.
  const PredicateId pred = lit.predicate();
  // When the static analysis proved the all-free adornment unreachable the
  // lattice edge is dropped too: the memoized plan never evaluates this
  // child free, so the dependency would be fictitious.
  const bool free_reachable =
      !Unreachable({pred, Adornment::AllFree(pred.arity)});
  if (parent != nullptr && free_reachable) {
    parent->children.push_back({pred, Adornment::AllFree(pred.arity)});
  }
  const bool consider_mat = options_.consider_materialization;
  const CostModelOptions cost = options_.cost;
  ConjunctItem item;
  item.literal = lit;
  // KBZ graph parameters from the all-free subplan.
  {
    Subplan full = OptimizePredicate({pred, Adornment::AllFree(pred.arity)});
    item.base_cardinality = std::max(1.0, full.est.card);
    item.distinct.assign(pred.arity,
                         std::max(1.0, std::pow(full.est.card, 0.8)));
  }
  item.estimate = [this, pred, consider_mat, free_reachable, cost](
                      const Adornment& adn, double outer_card) {
    Subplan pipelined = OptimizePredicate({pred, adn});
    PlanEstimate best = pipelined.est;
    // The materialized alternative computes the child's FULL extension;
    // when the free adornment is statically unreachable its subplan is a
    // costless placeholder that must not be allowed to win (it would drive
    // an un-analyzed — possibly unsafe — free fixpoint at execution).
    if (consider_mat && free_reachable && adn.BoundCount() > 0) {
      Subplan full =
          OptimizePredicate({pred, Adornment::AllFree(pred.arity)});
      if (full.est.safe) {
        PlanEstimate mat;
        mat.setup = full.est.setup + full.est.per_binding +
                    full.est.card * cost.materialize_cost;
        mat.per_binding = cost.index_probe_cost +
                          std::max(pipelined.est.card, 0.0) * cost.tuple_cost;
        mat.card = pipelined.est.safe ? pipelined.est.card
                                      : full.est.card;  // fallback estimate
        mat.safe = true;
        double outer = std::max(outer_card, 1.0);
        double pipe_total =
            pipelined.est.safe
                ? pipelined.est.setup + outer * pipelined.est.per_binding
                : kInfiniteCost;
        double mat_total = mat.setup + outer * mat.per_binding;
        if (mat_total < pipe_total) best = mat;
      }
    }
    return best;
  };
  return item;
}

Optimizer::Subplan Optimizer::OptimizePredicate(const AdornedPredicate& ap) {
  // Cooperative abort: every subplan optimization is a check-point, so a
  // deadline or budget violation stops the search within one subplan's
  // worth of work instead of finishing an exponential enumeration.
  if (Aborted()) return AbortedSubplan();
  // Static pruning (analysis/analyzer.h): adornments outside the query's
  // reachable closure are answered with a placeholder instead of being
  // optimized — and deliberately NOT memoized, so the memo lattice (and
  // Figure 7-1's per-binding table) shrinks by exactly these entries.
  if (Unreachable(ap)) {
    search_stats_.prunes_unreachable++;
    if (SearchTracer* st = Tracing()) {
      st->RecordCandidate({}, 0.0, CandidateDisposition::kPrunedUnreachable,
                          ap.ToString());
    }
    return PrunedSubplan(ap);
  }
  if (options_.memoize) {
    auto it = memo_.find(ap);
    if (it != memo_.end()) {
      search_stats_.memo_hits++;
      if (SearchTracer* st = Tracing()) {
        const Subplan& sub = it->second;
        const double cost = sub.est.setup + sub.est.per_binding;
        if (sub.trace_node != UINT32_MAX &&
            sub.trace_gen == st->generation()) {
          // Hot path: one per cost evaluation that touches a derived item,
          // so no strings — the memo entry remembers its lattice node.
          st->RecordMemoHit(sub.trace_node, cost);
        } else {
          // The entry predates this trace (tracer cleared or attached
          // mid-stream): fall back to recording the key.
          st->RecordCandidate({}, cost, CandidateDisposition::kMemoHit,
                              ap.ToString());
        }
      }
      return it->second;
    }
    search_stats_.memo_misses++;
  }
  search_stats_.subplans_optimized++;
  SearchTracer* const st = Tracing();
  const std::string trace_key = st == nullptr ? std::string() : ap.ToString();
  SearchScope trace_scope(st, st == nullptr ? std::string()
                                            : StrCat("p ", trace_key));

  Subplan result;
  int clique_index = graph_.CliqueIndex(ap.pred);
  if (clique_index >= 0) {
    result = OptimizeClique(clique_index, ap);
  } else {
    // OR node: optimize each AND child (rule) for this binding; the union's
    // cost is the sum, its cardinality the sum of the children's.
    result.est.safe = true;
    result.est.card = 0;
    for (size_t rule_index : program_.RulesFor(ap.pred)) {
      Subplan rule_plan = OptimizeRule(rule_index, ap.adornment);
      if (!rule_plan.est.safe) {
        result.est = PlanEstimate::Unsafe();
        search_stats_.prunes_unsafe++;
        result.note = rule_plan.note;
        break;
      }
      result.est.setup += rule_plan.est.setup;
      result.est.per_binding += rule_plan.est.per_binding;
      result.est.card += rule_plan.est.card;
      for (auto& [ri, order] : rule_plan.orders) {
        result.orders[ri] = std::move(order);
      }
      result.children.insert(result.children.end(),
                             rule_plan.children.begin(),
                             rule_plan.children.end());
      result.materialized_children.insert(
          result.materialized_children.end(),
          rule_plan.materialized_children.begin(),
          rule_plan.materialized_children.end());
    }
  }

  // Hindsight overlay: when this (predicate, binding) was actually
  // executed, the measured per-binding cardinality replaces the estimate —
  // so every parent costing that consumes this subplan sees the truth.
  if (options_.measured != nullptr && result.est.safe) {
    if (const double* card = options_.measured->Find(ap.pred, ap.adornment)) {
      result.est.card = std::max(*card, 1e-9);
    }
  }

  // A result computed after an abort latched may be built from placeholder
  // children — never memoize it (it would poison later Optimize calls).
  if (!aborted_status_.ok()) return AbortedSubplan();
  TraceMemoNode(trace_key, ap, &result);
  if (options_.memoize) {
    memo_[ap] = result;
    if (options_.trace.accountant != nullptr) {
      const uint64_t entry_bytes = ApproxSubplanBytes(result);
      memo_charged_bytes_ += entry_bytes;
      options_.trace.accountant->AddBytes(entry_bytes);
    }
  }
  return result;
}

Optimizer::Subplan Optimizer::OptimizeRule(size_t rule_index,
                                           const Adornment& head_adn) {
  const Rule& rule = program_.rules()[rule_index];
  Subplan plan;
  SearchTracer* const st = Tracing();
  SearchScope trace_scope(
      st, st == nullptr
              ? std::string()
              : StrCat("rule ", rule_index, " [", head_adn.ToString(), "]"));

  std::vector<ConjunctItem> items;
  items.reserve(rule.body().size());
  for (const Literal& lit : rule.body()) {
    items.push_back(MakeItem(lit, &plan));
  }
  BoundVars initial;
  BindHeadVariables(rule.head(), head_adn, &initial);

  OrderResult best;
  bool pinned_order = false;
  if (options_.pinned != nullptr) {
    // Plan pinning: cost the chosen order instead of searching. Falls back
    // to the search when the pinned order is unsafe under this adornment
    // (best-effort, see PlanConstraints).
    auto it = options_.pinned->rule_orders.find(rule_index);
    if (it != options_.pinned->rule_orders.end() &&
        it->second.size() == rule.body().size()) {
      SequenceCost cost = model_.CostSequence(items, it->second, initial);
      search_stats_.cost_evaluations++;
      if (cost.safe && CheckRuleEc(rule, it->second, head_adn).ok()) {
        best.order = it->second;
        best.cost = cost.cost;
        best.out_card = cost.out_card;
        best.safe = true;
        pinned_order = true;
      }
    }
  }
  if (!pinned_order) {
    best = TimedFindOrder(items, initial);
    search_stats_.cost_evaluations += best.cost_evaluations;
  }

  if (!best.safe) {
    plan.est = PlanEstimate::Unsafe();
    search_stats_.prunes_unsafe++;
    plan.note = StrCat("no safe order for rule ", rule.ToString(),
                       " under binding ", head_adn.ToString());
    if (st != nullptr) {
      st->RecordCandidate(best.order, kInfiniteCost,
                          CandidateDisposition::kPrunedUnsafe, plan.note);
    }
    return plan;
  }
  // Range restriction of the head under this binding.
  Status ec = CheckRuleEc(rule, best.order, head_adn);
  if (!ec.ok()) {
    plan.est = PlanEstimate::Unsafe();
    search_stats_.prunes_unsafe++;
    plan.note = ec.message();
    if (st != nullptr) {
      st->RecordCandidate(best.order, kInfiniteCost,
                          CandidateDisposition::kPrunedUnsafe, plan.note);
    }
    return plan;
  }

  plan.est.setup = 0;
  plan.est.per_binding = best.cost;
  plan.est.card = std::max(best.out_card, 0.0);
  plan.est.safe = true;
  plan.orders[rule_index] = best.order;

  // Record which derived children the chosen order materializes.
  {
    StepState state;
    state.bound = initial;
    for (size_t idx : best.order) {
      const Literal& lit = rule.body()[idx];
      if (!lit.IsBuiltin() && !lit.negated() &&
          program_.IsDerived(lit.predicate())) {
        Adornment adn = AdornLiteral(lit, state.bound);
        plan.children.push_back({lit.predicate(), adn});
        // Same gate as MakeItem's estimate: a statically-unreachable free
        // adornment must not be materialized (its subplan is a placeholder).
        if (options_.consider_materialization && adn.BoundCount() > 0 &&
            !Unreachable({lit.predicate(), Adornment::AllFree(lit.arity())})) {
          Subplan pipelined = OptimizePredicate({lit.predicate(), adn});
          Subplan full = OptimizePredicate(
              {lit.predicate(), Adornment::AllFree(lit.arity())});
          double outer = std::max(state.card, 1.0);
          double pipe_total =
              pipelined.est.safe
                  ? pipelined.est.setup + outer * pipelined.est.per_binding
                  : kInfiniteCost;
          double mat_total =
              full.est.safe
                  ? full.est.setup + full.est.per_binding +
                        outer * options_.cost.index_probe_cost
                  : kInfiniteCost;
          if (mat_total < pipe_total) {
            plan.materialized_children.push_back({lit.predicate(), adn});
          }
        }
      }
      model_.ApplyStep(items[idx], &state);
      if (!state.safe) break;
    }
  }
  return plan;
}

Optimizer::Subplan Optimizer::OptimizeClique(int clique_index,
                                             const AdornedPredicate& ap) {
  const RecursiveClique& clique = graph_.cliques()[clique_index];
  Span span = options_.trace.StartSpan("optimize-clique", "optimizer");
  if (span.active()) span.AddArg("subquery", ap.ToString());
  SearchTracer* const st = Tracing();
  SearchScope trace_scope(
      st, st == nullptr
              ? std::string()
              : StrCat("clique #", clique_index, " ", ap.ToString()));
  Subplan plan;

  // Safety first: a non-well-founded clique has no finite execution under
  // this binding — infinite cost, section 8.2.
  Status wf = CheckWellFounded(program_, clique, ap.pred, ap.adornment);
  if (!wf.ok()) {
    plan.est = PlanEstimate::Unsafe();
    search_stats_.prunes_unsafe++;
    plan.note = wf.message();
    if (st != nullptr) {
      st->RecordCandidate({}, kInfiniteCost,
                          CandidateDisposition::kPrunedUnsafe, plan.note);
    }
    return plan;
  }

  const double D = options_.cost.assumed_recursion_depth;

  // Universe estimate: the largest distinct count among base columns used
  // by the clique (bounds how many constants recursion can reach).
  double universe = 2.0;
  {
    std::vector<size_t> all_rules = clique.exit_rules;
    all_rules.insert(all_rules.end(), clique.recursive_rules.begin(),
                     clique.recursive_rules.end());
    for (size_t rule_index : all_rules) {
      for (const Literal& lit : program_.rules()[rule_index].body()) {
        if (lit.IsBuiltin() || program_.IsDerived(lit.predicate())) continue;
        const RelationStats& rs = stats_.Get(lit.predicate());
        for (double d : rs.distinct) universe = std::max(universe, d);
        universe = std::max(universe, std::sqrt(rs.cardinality));
      }
    }
  }

  // --- Exit rules: free and bound variants. ---
  double exit_card_ff = 0, exit_cost_ff = 0, exit_cost_b = 0;
  bool exit_safe_ff = true, exit_safe_b = true;
  for (size_t rule_index : clique.exit_rules) {
    const Rule& rule = program_.rules()[rule_index];
    std::vector<ConjunctItem> items;
    for (const Literal& lit : rule.body()) items.push_back(MakeItem(lit, &plan));

    OrderResult free_run = TimedFindOrder(items, BoundVars());
    search_stats_.cost_evaluations += free_run.cost_evaluations;
    exit_safe_ff = exit_safe_ff && free_run.safe &&
                   CheckRuleEc(rule, free_run.order, Adornment()).ok();
    if (free_run.safe) {
      exit_card_ff += free_run.out_card;
      exit_cost_ff += free_run.cost;
    }

    BoundVars bound_init;
    Adornment head_adn = rule.head().predicate() == ap.pred
                             ? ap.adornment
                             : Adornment::AllFree(rule.head().arity());
    BindHeadVariables(rule.head(), head_adn, &bound_init);
    OrderResult bound_run = TimedFindOrder(items, bound_init);
    search_stats_.cost_evaluations += bound_run.cost_evaluations;
    exit_safe_b = exit_safe_b && bound_run.safe &&
                  CheckRuleEc(rule, bound_run.order, head_adn).ok();
    if (bound_run.safe) exit_cost_b += bound_run.cost;

    // Record: the free order drives seminaive evaluation; the bound order
    // is the SIP for the magic rewrite.
    if (free_run.safe) plan.orders[rule_index] = free_run.order;
  }
  exit_card_ff = std::max(exit_card_ff, 1.0);

  // --- Recursive rules: delta-driven cost + growth factor, and a bound
  // SIP order for magic. ---
  double rec_cost = 0;  // per delta tuple, summed over recursive rules
  double growth = 0;    // expected new tuples per delta tuple
  bool rec_safe_ff = true;  // delta-driven orders EC-safe with free head
  bool rec_safe_b = true;   // SIP orders EC-safe under the query binding
  bool magic_rec_bound = ap.adornment.BoundCount() > 0;
  std::map<size_t, std::vector<size_t>> magic_sips;
  for (size_t rule_index : clique.recursive_rules) {
    const Rule& rule = program_.rules()[rule_index];
    // Locate the first clique occurrence (the delta driver).
    size_t delta_pos = SIZE_MAX;
    for (size_t i = 0; i < rule.body().size(); ++i) {
      const Literal& lit = rule.body()[i];
      if (!lit.IsBuiltin() && !lit.negated() &&
          clique.Contains(lit.predicate())) {
        delta_pos = i;
        break;
      }
    }
    if (delta_pos == SIZE_MAX) {
      rec_safe_ff = false;
      rec_safe_b = false;
      continue;
    }

    // Items for everything except the delta occurrence; further clique
    // occurrences become probe items over the (being computed) fixpoint.
    std::vector<ConjunctItem> items;
    std::vector<size_t> item_positions;
    const double clique_card_guess = exit_card_ff * std::max(1.0, D);
    for (size_t i = 0; i < rule.body().size(); ++i) {
      if (i == delta_pos) continue;
      const Literal& lit = rule.body()[i];
      if (!lit.IsBuiltin() && !lit.negated() &&
          clique.Contains(lit.predicate())) {
        // Further occurrences of clique predicates probe the fixpoint
        // being computed; model them as catalog items over its estimated
        // extent so the search prices bound probes far below full scans.
        ConjunctItem item;
        item.literal = lit;
        item.use_catalog = true;
        item.base_cardinality = clique_card_guess;
        item.distinct.assign(
            lit.arity(),
            std::max(2.0, std::min(clique_card_guess, universe)));
        items.push_back(std::move(item));
      } else {
        items.push_back(MakeItem(lit, &plan));
      }
      item_positions.push_back(i);
    }

    BoundVars delta_bound;
    for (const Term& t : rule.body()[delta_pos].args()) {
      delta_bound.BindTerm(t);
    }
    OrderResult rec_run = TimedFindOrder(items, delta_bound);
    search_stats_.cost_evaluations += rec_run.cost_evaluations;
    std::vector<size_t> full_order;
    if (rec_run.safe) {
      full_order = DeltaFirstOrder(delta_pos, item_positions, rec_run.order);
    }
    bool this_rule_ff_safe =
        rec_run.safe && !full_order.empty() &&
        CheckRuleEc(rule, full_order, Adornment()).ok();
    rec_safe_ff = rec_safe_ff && this_rule_ff_safe;
    if (rec_run.safe) {
      rec_cost += rec_run.cost;
      growth += rec_run.out_card;
      if (this_rule_ff_safe) plan.orders[rule_index] = full_order;
    }

    // SIP for magic: order the FULL body under the head binding.
    if (magic_rec_bound) {
      std::vector<ConjunctItem> full_items;
      for (size_t i = 0; i < rule.body().size(); ++i) {
        const Literal& lit = rule.body()[i];
        if (!lit.IsBuiltin() && !lit.negated() &&
            clique.Contains(lit.predicate())) {
          // Self-reference inside the SIP: a catalog item over the clique's
          // estimated extent. An unbound recursive call then prices as a
          // full pass over the fixpoint, so the search keeps it after the
          // binding-producing literals — exactly the SIPs magic wants.
          ConjunctItem item;
          item.literal = lit;
          item.use_catalog = true;
          item.base_cardinality = clique_card_guess;
          item.distinct.assign(
              lit.arity(),
              std::max(2.0, std::min(clique_card_guess, universe)));
          full_items.push_back(std::move(item));
        } else {
          full_items.push_back(MakeItem(lit, &plan));
        }
      }
      BoundVars head_bound;
      Adornment head_adn = rule.head().predicate() == ap.pred
                               ? ap.adornment
                               : Adornment::AllFree(rule.head().arity());
      BindHeadVariables(rule.head(), head_adn, &head_bound);
      OrderResult sip_run = TimedFindOrder(full_items, head_bound);
      search_stats_.cost_evaluations += sip_run.cost_evaluations;
      if (sip_run.safe &&
          CheckRuleEc(rule, sip_run.order, head_adn).ok()) {
        magic_sips[rule_index] = sip_run.order;
        // Stable binding: the recursive occurrence must be reached with at
        // least one bound argument, else magic degenerates.
        BoundVars walk = head_bound;
        for (size_t idx : sip_run.order) {
          const Literal& lit = rule.body()[idx];
          if (!lit.IsBuiltin() && !lit.negated() &&
              clique.Contains(lit.predicate())) {
            if (AdornLiteral(lit, walk).BoundCount() == 0) {
              magic_rec_bound = false;
            }
          }
          PropagateBindings(lit, &walk);
        }
      } else {
        magic_rec_bound = false;
        rec_safe_b = false;
      }
    }
  }

  const bool semi_safe = rec_safe_ff && exit_safe_ff;
  const bool magic_safe = ap.adornment.BoundCount() > 0 && exit_safe_b &&
                          rec_safe_b;
  if (!semi_safe && !magic_safe) {
    // No evaluation discipline makes every clique rule effectively
    // computable: prune with infinite cost (section 8.2).
    plan.est = PlanEstimate::Unsafe();
    search_stats_.prunes_unsafe++;
    plan.note = StrCat("no safe evaluation order for clique ",
                       clique.ToString(), " under binding ",
                       ap.adornment.ToString(), " (section 8.2 pruning)");
    if (st != nullptr) {
      st->RecordCandidate({}, kInfiniteCost,
                          CandidateDisposition::kPrunedUnsafe, plan.note);
    }
    return plan;
  }

  // --- Size and per-method cost estimation. ---
  double geom;
  if (growth > 1.001) {
    geom = (std::pow(growth, D + 1) - 1) / (growth - 1);
  } else if (growth < 0.999) {
    geom = 1.0 / (1.0 - growth);
  } else {
    geom = D + 1;
  }
  double arity_cap = std::pow(
      universe, std::min<double>(static_cast<double>(ap.pred.arity), 3.0));
  double total_card = std::min(exit_card_ff * geom, arity_cap);
  total_card = std::max(total_card, exit_card_ff);

  double sel_b = 1.0;
  for (size_t i = 0; i < ap.adornment.size(); ++i) {
    if (ap.adornment.IsBound(i)) {
      sel_b /= std::max(2.0, std::min(total_card, universe));
    }
  }
  double per_binding_card = std::max(total_card * sel_b, 1e-6);

  const CostModelOptions& cost = options_.cost;
  double fixpoint_work = exit_cost_ff + total_card * std::max(rec_cost, 1e-3) +
                         total_card * cost.materialize_cost;

  struct Candidate {
    RecursionMethod method;
    PlanEstimate est;
  };
  std::vector<Candidate> candidates;

  if (semi_safe) {
    PlanEstimate semi;
    semi.setup = fixpoint_work;
    semi.per_binding = cost.index_probe_cost +
                       per_binding_card * cost.tuple_cost;
    semi.card = per_binding_card;
    semi.safe = true;
    candidates.push_back({RecursionMethod::kSemiNaive, semi});

    PlanEstimate naive = semi;
    naive.setup *= 1.0 + D * cost.naive_rederivation_factor;
    candidates.push_back({RecursionMethod::kNaive, naive});
  }

  if (options_.enable_magic && magic_safe) {
    double restriction = magic_rec_bound ? sel_b : 1.0;
    PlanEstimate magic;
    magic.setup = 0;
    magic.per_binding = cost.magic_overhead * restriction * fixpoint_work +
                        cost.index_probe_cost;
    magic.card = per_binding_card;
    magic.safe = true;
    candidates.push_back({RecursionMethod::kMagic, magic});

    if (options_.enable_counting && magic_rec_bound) {
      // Applicability via the actual rewrite machinery on a proxy goal.
      Program clique_program;
      for (size_t rule_index : clique.exit_rules) {
        clique_program.AddRule(program_.rules()[rule_index]);
      }
      for (size_t rule_index : clique.recursive_rules) {
        clique_program.AddRule(program_.rules()[rule_index]);
      }
      std::vector<Term> proxy_args;
      for (size_t i = 0; i < ap.adornment.size(); ++i) {
        proxy_args.push_back(ap.adornment.IsBound(i)
                                 ? Term::MakeInt(0)
                                 : Term::MakeVariable(StrCat("_F", i)));
      }
      Literal proxy = Literal::Make(ap.pred.name, std::move(proxy_args));
      if (CountingRewrite(clique_program, proxy).ok()) {
        PlanEstimate counting = candidates.back().est;
        counting.per_binding *= cost.counting_discount;
        candidates.push_back({RecursionMethod::kCounting, counting});
      }
    }
  }

  // Plan pinning: keep only the chosen method's candidate when it is still
  // applicable under this run's safety analysis (best-effort).
  if (options_.pinned != nullptr) {
    auto it = options_.pinned->clique_methods.find(clique_index);
    if (it != options_.pinned->clique_methods.end()) {
      std::vector<Candidate> matching;
      for (const Candidate& c : candidates) {
        if (c.method == it->second && c.est.safe) matching.push_back(c);
      }
      if (!matching.empty()) candidates = std::move(matching);
    }
  }

  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    if (!c.est.safe) continue;
    if (best == nullptr ||
        c.est.setup + c.est.per_binding <
            best->est.setup + best->est.per_binding) {
      best = &c;
    }
  }
  if (best == nullptr) {
    plan.est = PlanEstimate::Unsafe();
    search_stats_.prunes_unsafe++;
    plan.note = "no applicable recursive method";
    if (st != nullptr) {
      st->RecordCandidate({}, kInfiniteCost,
                          CandidateDisposition::kPrunedUnsafe, plan.note);
    }
    return plan;
  }
  if (st != nullptr) {
    // The PA method race: one candidate event per applicable recursive
    // method, the winner kept.
    for (const Candidate& c : candidates) {
      st->RecordCandidate({}, c.est.setup + c.est.per_binding,
                          &c == best ? CandidateDisposition::kKept
                                     : CandidateDisposition::kDominated,
                          RecursionMethodToString(c.method));
    }
  }
  plan.est = best->est;
  plan.method = best->method;
  // PA choice per clique: which recursive method won the cost race.
  if (options_.trace.metrics != nullptr) {
    options_.trace.Count(StrCat("optimizer.pa_choice.",
                                RecursionMethodToString(best->method)));
  }
  if (span.active()) {
    span.AddArg("method", RecursionMethodToString(best->method));
  }
  if (best->method == RecursionMethod::kMagic ||
      best->method == RecursionMethod::kCounting) {
    // Magic executes the SIP orders; override the seminaive ones.
    for (auto& [rule_index, order] : magic_sips) {
      plan.orders[rule_index] = order;
    }
  }
  return plan;
}

void Optimizer::CollectPlan(const AdornedPredicate& ap, QueryPlan* plan,
                            std::set<std::string>* visited) {
  if (!visited->insert(ap.ToString()).second) return;
  auto it = memo_.find(ap);
  if (it == memo_.end()) return;
  // Everything CollectPlan reaches is part of the chosen plan: highlight it
  // in the memo lattice.
  if (SearchTracer* st = Tracing()) st->MarkWinning(ap.ToString());
  const Subplan& sub = it->second;
  for (const auto& [rule_index, order] : sub.orders) {
    plan->rule_orders.emplace(rule_index, order);
    plan->sips.SetOrderForAdornment(rule_index, ap.adornment, order);
    plan->sips.SetOrder(rule_index, order);
  }
  int ci = graph_.CliqueIndex(ap.pred);
  if (ci >= 0) plan->clique_methods[ci] = sub.method;
  for (const AdornedPredicate& child : sub.materialized_children) {
    plan->materialized.push_back(child.ToString());
  }
  for (const AdornedPredicate& child : sub.children) {
    CollectPlan(child, plan, visited);
    CollectPlan({child.pred, Adornment::AllFree(child.pred.arity)}, plan,
                visited);
  }
}

Result<QueryPlan> Optimizer::Optimize(const Literal& goal) {
  if (!program_.IsDerived(goal.predicate())) {
    return Status::InvalidArgument(
        StrCat("query predicate ", goal.predicate().ToString(),
               " is not defined by any rule"));
  }
  Span span = options_.trace.StartSpan("optimize", "optimizer");
  if (span.active()) {
    span.AddArg("goal", goal.ToString());
    span.AddArg("strategy", strategy_->name());
  }
  // Per-call accounting: a single Optimizer can serve several Optimize
  // calls (with the memo persisting across them), but the stats describe
  // one call, not the instance's lifetime.
  search_stats_ = PlanSearchStats{};
  aborted_status_ = Status::OK();
  const auto wall_start = std::chrono::steady_clock::now();

  QueryPlan plan;
  plan.goal = goal;
  plan.adornment = Adornment::FromGoal(goal);

  AdornedPredicate ap{goal.predicate(), plan.adornment};
  Subplan sub = OptimizePredicate(ap);
  if (!aborted_status_.ok()) return aborted_status_;
  plan.estimate = sub.est;
  plan.safe = sub.est.safe;
  if (!plan.safe) {
    plan.unsafe_reason = sub.note.empty()
                             ? AnalyzeQuerySafety(program_, goal).ToString()
                             : sub.note;
  }

  std::set<std::string> visited;
  CollectPlan(ap, &plan, &visited);

  int ci = graph_.CliqueIndex(goal.predicate());
  if (ci >= 0) {
    plan.top_method = sub.method;
  } else {
    plan.top_method = (plan.adornment.BoundCount() > 0 && options_.enable_magic)
                          ? RecursionMethod::kMagic
                          : RecursionMethod::kSemiNaive;
  }
  search_stats_.search_wall_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  plan.search_stats = search_stats_;

  // The stats already cover exactly this call (reset above), so repeated
  // queries don't double-count in the registry.
  search_stats_.ExportTo(options_.trace.metrics);

  // verify_plans: materialize the decisions into a processing tree and
  // check the §4/§5 invariants held through the search. Unsafe plans carry
  // no executable decisions to verify.
  if (options_.verify_plans && plan.safe) {
    LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> tree,
                         BuildProcessingTree(program_, goal));
    LDL_RETURN_NOT_OK(AnnotateTree(tree.get()));
  }
  return plan;
}

std::string QueryPlan::Explain(const Program& program) const {
  std::ostringstream os;
  os << "QUERY   " << goal.ToString() << "?  [binding " << adornment.ToString()
     << "]\n";
  if (!safe) {
    os << "UNSAFE  " << unsafe_reason << "\n";
    return os.str();
  }
  os << "COST    " << TotalCost() << " (setup " << estimate.setup
     << " + per-binding " << estimate.per_binding << "), est. cardinality "
     << estimate.card << "\n";
  os << "METHOD  " << RecursionMethodToString(top_method) << "\n";
  for (const auto& [ci, method] : clique_methods) {
    os << "CLIQUE  #" << ci << " via " << RecursionMethodToString(method)
       << "\n";
  }
  for (const auto& [rule_index, order] : rule_orders) {
    const Rule& rule = program.rules()[rule_index];
    os << "RULE " << rule_index << "  " << rule.head().ToString() << " <- ";
    for (size_t i = 0; i < order.size(); ++i) {
      if (i) os << ", ";
      os << rule.body()[order[i]].ToString();
    }
    os << ".\n";
  }
  for (const std::string& m : materialized) {
    os << "MAT     " << m << "\n";
  }
  os << "SEARCH  " << search_stats.cost_evaluations << " cost evaluations, "
     << search_stats.subplans_optimized << " subplans, "
     << search_stats.memo_hits << " memo hits, "
     << search_stats.prunes_unsafe << " unsafe prunes";
  if (search_stats.prunes_unreachable > 0) {
    os << ", " << search_stats.prunes_unreachable << " unreachable prunes";
  }
  os << "\n";
  return os.str();
}

std::string QueryPlan::Fingerprint() const {
  // Decisions only — no costs or wall times, so two runs with different
  // hardware but identical choices fingerprint identically. Unordered
  // containers are folded in sorted order.
  size_t seed = 0;
  HashValue(&seed, goal.predicate().ToString());
  HashValue(&seed, adornment.ToString());
  HashValue(&seed, safe);
  HashValue(&seed, std::string(RecursionMethodToString(top_method)));
  std::vector<std::pair<size_t, std::vector<size_t>>> orders(
      rule_orders.begin(), rule_orders.end());
  std::sort(orders.begin(), orders.end());
  for (const auto& [rule_index, order] : orders) {
    HashValue(&seed, rule_index);
    for (size_t pos : order) HashValue(&seed, pos);
    HashValue(&seed, order.size());
  }
  for (const auto& [clique_index, method] : clique_methods) {
    HashValue(&seed, clique_index);
    HashValue(&seed, std::string(RecursionMethodToString(method)));
  }
  std::vector<std::string> mats = materialized;
  std::sort(mats.begin(), mats.end());
  for (const std::string& m : mats) HashValue(&seed, m);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}


// --- Processing-tree annotation -------------------------------------------

Status Optimizer::AnnotateTree(PlanNode* tree) {
  LDL_RETURN_NOT_OK(AnnotateNode(tree, Adornment::FromGoal(tree->goal)));
  if (options_.verify_plans) {
    PlanVerifierOptions vopts;
    vopts.allow_magic = options_.enable_magic;
    vopts.allow_counting = options_.enable_counting;
    LDL_RETURN_NOT_OK(PlanVerifier(program_, vopts).Verify(*tree));
  }
  return Status::OK();
}

Status Optimizer::AnnotateNode(PlanNode* node, const Adornment& binding) {
  node->binding = binding;
  switch (node->kind) {
    case PlanNodeKind::kScan: {
      ConjunctItem item = MakeBaseItem(node->goal, stats_, options_.cost);
      if (options_.measured != nullptr) {
        options_.measured->AdjustBaseItem(&item);
      }
      PlanEstimate est = item.estimate(binding, 1.0);
      node->est_cost = est.per_binding;
      node->est_cardinality = est.card;
      node->method = binding.BoundCount() > 0 ? "index-scan" : "scan";
      return Status::OK();
    }
    case PlanNodeKind::kBuiltin: {
      node->est_cost = options_.cost.builtin_cost;
      node->est_cardinality = 1;
      return Status::OK();
    }
    case PlanNodeKind::kOr: {
      Subplan sub = OptimizePredicate({node->goal.predicate(), binding});
      node->est_cost = sub.est.setup + sub.est.per_binding;
      node->est_cardinality = sub.est.card;
      for (auto& child : node->children) {
        LDL_RETURN_NOT_OK(AnnotateNode(child.get(), binding));
      }
      return Status::OK();
    }
    case PlanNodeKind::kCc: {
      Subplan sub = OptimizePredicate({node->goal.predicate(), binding});
      node->est_cost = sub.est.setup + sub.est.per_binding;
      node->est_cardinality = sub.est.card;
      node->method = RecursionMethodToString(sub.method);
      // Pipelined methods are triangle nodes; fixpoint materializations are
      // squares (MP label on the CC node).
      node->materialized = sub.method == RecursionMethod::kNaive ||
                           sub.method == RecursionMethod::kSemiNaive;
      // Install the chosen c-permutation (PA).
      for (size_t i = 0; i < node->clique_rules.size(); ++i) {
        auto it = sub.orders.find(node->clique_rules[i]);
        if (it != sub.orders.end() && i < node->clique_orders.size() &&
            it->second.size() == node->clique_orders[i].size()) {
          node->clique_orders[i] = it->second;
        }
      }
      for (auto& child : node->children) {
        LDL_RETURN_NOT_OK(
            AnnotateNode(child.get(),
                         Adornment::AllFree(child->goal.arity())));
      }
      return Status::OK();
    }
    case PlanNodeKind::kAnd: {
      if (node->rule_index >= program_.rules().size()) {
        return Status::Internal(
            StrCat("AND node references rule ", node->rule_index,
                   " of a program with ", program_.rules().size(), " rules"));
      }
      const Rule& rule = program_.rules()[node->rule_index];
      if (node->children.size() != rule.body().size() ||
          node->body_order.size() != rule.body().size()) {
        return Status::Internal(
            StrCat("AND node for rule ", node->rule_index, " has ",
                   node->children.size(), " children / ",
                   node->body_order.size(), " order entries for a body of ",
                   rule.body().size(), " literals"));
      }
      Subplan sub = OptimizeRule(node->rule_index, binding);
      node->est_cost = sub.est.setup + sub.est.per_binding;
      node->est_cardinality = sub.est.card;
      auto it = sub.orders.find(node->rule_index);
      if (it != sub.orders.end()) {
        // PR: reorder the children into the chosen execution order. Resolve
        // every chosen position to a child slot before moving anything, so
        // a mismatched order leaves the node untouched instead of nulling
        // the children it had already moved out.
        const std::vector<size_t>& chosen = it->second;
        std::vector<size_t> slots;
        std::vector<bool> taken(node->children.size(), false);
        slots.reserve(chosen.size());
        for (size_t original : chosen) {
          for (size_t j = 0; j < node->body_order.size(); ++j) {
            if (node->body_order[j] == original && !taken[j] &&
                node->children[j]) {
              slots.push_back(j);
              taken[j] = true;
              break;
            }
          }
        }
        if (slots.size() == node->children.size()) {
          std::vector<std::unique_ptr<PlanNode>> new_children;
          std::vector<size_t> new_order;
          new_children.reserve(slots.size());
          new_order.reserve(slots.size());
          for (size_t j : slots) {
            new_children.push_back(std::move(node->children[j]));
            new_order.push_back(node->body_order[j]);
          }
          node->children = std::move(new_children);
          node->body_order = std::move(new_order);
        }
      }
      // Children bindings via sideways information passing along the
      // chosen order.
      BoundVars bound;
      BindHeadVariables(rule.head(), binding, &bound);
      for (size_t j = 0; j < node->children.size(); ++j) {
        const Literal& lit = rule.body()[node->body_order[j]];
        Adornment child_binding = AdornLiteral(lit, bound);
        LDL_RETURN_NOT_OK(AnnotateNode(node->children[j].get(),
                                       child_binding));
        // MP flag for derived children: pipeline when the binding helps.
        if (node->children[j]->kind == PlanNodeKind::kOr ||
            node->children[j]->kind == PlanNodeKind::kCc) {
          bool materialize = child_binding.BoundCount() == 0;
          for (const AdornedPredicate& m : sub.materialized_children) {
            if (m.pred == lit.predicate()) materialize = true;
          }
          if (node->children[j]->kind == PlanNodeKind::kOr) {
            node->children[j]->materialized = materialize;
          }
        }
        PropagateBindings(lit, &bound);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace ldl
