file(REMOVE_RECURSE
  "CMakeFiles/ldl_safety.dir/safety.cc.o"
  "CMakeFiles/ldl_safety.dir/safety.cc.o.d"
  "libldl_safety.a"
  "libldl_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
