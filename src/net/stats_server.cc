#include "net/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "base/strings.h"
#include "obs/prometheus.h"

namespace ldl {

namespace {

constexpr size_t kMaxRequestBytes = 8 * 1024;

std::string HttpResponse(int code, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  return StrCat("HTTP/1.1 ", code, " ", reason, "\r\n",
                "Content-Type: ", content_type, "\r\n",
                "Content-Length: ", body.size(), "\r\n",
                "Connection: close\r\n\r\n", body);
}

/// First line of an HTTP request -> the request path, or "" when the line
/// is not a GET. Query strings are ignored (no endpoint takes parameters).
std::string ParseRequestPath(const std::string& request) {
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.rfind("GET ", 0) != 0) return "";
  const size_t path_start = 4;
  size_t path_end = line.find(' ', path_start);
  if (path_end == std::string::npos) path_end = line.size();
  std::string path = line.substr(path_start, path_end - path_start);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

}  // namespace

Status StatsServer::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("stats server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::InvalidArgument(
        StrCat("socket() failed: ", std::strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrCat("bind(127.0.0.1:", options_.port, ") failed: ", err));
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(StrCat("listen() failed: ", err));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread(&StatsServer::AcceptLoop, this);
  return Status::OK();
}

void StatsServer::Stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  // Wake the blocking accept(); the loop then sees stop_requested_.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_relaxed);
}

void StatsServer::AcceptLoop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_requested_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;  // Listener is gone; nothing to serve on.
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void StatsServer::HandleConnection(int fd) {
  // A slow or stuck client gets a bounded slice of the accept thread.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[2048];
  while (request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) break;
    if (request.find("\n\n") != std::string::npos) break;
  }
  if (request.empty()) return;

  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = ParseRequestPath(request);

  std::string body;
  std::string content_type;
  std::string response;
  if (path.empty()) {
    response = HttpResponse(405, "Method Not Allowed",
                            "text/plain; charset=utf-8",
                            "only GET is supported\n");
  } else if (HandlePath(path, &body, &content_type)) {
    response = HttpResponse(200, "OK", content_type, body);
  } else {
    response = HttpResponse(
        404, "Not Found", "text/plain; charset=utf-8",
        "not found; try /metrics, /healthz, /statusz, or /stats\n");
  }

  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

bool StatsServer::HandlePath(const std::string& path, std::string* body,
                             std::string* content_type) {
  if (path == "/metrics") {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("statsserver.scrapes")->Increment();
    }
    if (options_.refresh) options_.refresh();
    *body = RenderMetrics();
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (path == "/healthz" || path == "/") {
    *body = "ok\n";
    *content_type = "text/plain; charset=utf-8";
    return true;
  }
  if (path == "/statusz") {
    if (options_.refresh) options_.refresh();
    *body = RenderStatusz();
    *content_type = "application/json; charset=utf-8";
    return true;
  }
  if (path == "/stats") {
    if (options_.refresh) options_.refresh();
    *body = RenderStats();
    *content_type = "application/json; charset=utf-8";
    return true;
  }
  return false;
}

std::string StatsServer::RenderStats() {
  return RenderStatsJson(options_.feedback, options_.drift,
                         options_.statistics);
}

std::string StatsServer::RenderMetrics() {
  if (options_.metrics == nullptr) return "";
  PrometheusOptions prom;
  if (options_.process != nullptr) {
    prom.build_info = &options_.process->build_info();
  }
  return RenderPrometheus(*options_.metrics, prom);
}

std::string StatsServer::RenderStatusz() {
  std::ostringstream os;
  os << "{";
  os << "\"server\":{\"port\":" << port_ << ",\"requests\":"
     << requests_.load(std::memory_order_relaxed) << "}";
  if (options_.process != nullptr) {
    const BuildInfo& info = options_.process->build_info();
    char uptime[40];
    std::snprintf(uptime, sizeof(uptime), "%.3f",
                  options_.process->uptime_seconds());
    os << ",\"uptime_seconds\":" << uptime;
    os << ",\"peak_rss_bytes\":" << ReadPeakRssBytes();
    os << ",\"build\":{"
       << "\"compiler\":\"" << JsonEscape(info.compiler) << "\","
       << "\"standard\":\"" << JsonEscape(info.standard) << "\","
       << "\"build_type\":\"" << JsonEscape(info.build_type) << "\","
       << "\"git\":\"" << JsonEscape(info.git) << "\","
       << "\"sanitizer\":\"" << JsonEscape(info.sanitizer) << "\"}";
  }
  if (options_.statistics != nullptr) {
    os << ",\"stats_epoch\":" << options_.statistics->epoch();
  }
  if (options_.drift != nullptr) {
    char q[40];
    std::snprintf(q, sizeof(q), "%.6g", options_.drift->last_max_q_error());
    os << ",\"feedback\":{\"drift_events\":" << options_.drift->drift_events()
       << ",\"last_max_q_error\":" << q;
    if (options_.feedback != nullptr) {
      os << ",\"catalog_entries\":" << options_.feedback->size()
         << ",\"observations\":" << options_.feedback->total_observations();
    }
    os << "}";
  } else if (options_.feedback != nullptr) {
    os << ",\"feedback\":{\"catalog_entries\":" << options_.feedback->size()
       << ",\"observations\":" << options_.feedback->total_observations()
       << "}";
  }
  if (options_.sampler != nullptr) {
    os << ",\"timeseries\":";
    options_.sampler->WriteJson(os);
  }
  if (options_.query_log != nullptr) {
    const std::vector<QueryLogRecord> records = options_.query_log->snapshot();
    const size_t tail =
        records.size() > options_.log_tail ? options_.log_tail : records.size();
    os << ",\"query_log\":{\"records\":" << records.size() << ",\"tail\":[";
    for (size_t i = records.size() - tail; i < records.size(); ++i) {
      if (i != records.size() - tail) os << ",";
      os << records[i].ToJson();
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

}  // namespace ldl
