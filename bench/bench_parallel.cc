// Experiment E18 — the hash-partitioned parallel semi-naive engine
// (engine/parallel.h, DESIGN.md §16). Heavy recursion shapes (big deltas
// per round, join-dominated work) are the favorable case for partitioned
// rounds; we sweep num_threads over {1, 2, 4} and report wall-clock,
// speedup over the 1-thread parallel configuration, and the num_threads=1
// overhead against the untouched sequential code path (which must stay
// within noise — the default configuration takes the sequential branch,
// so the overhead of the parallel machinery is only paid when asked for).
//
// Answers are asserted identical across every configuration before a row
// is reported: a speedup on wrong answers is not a speedup.
//
// NOTE on machine dependence: speedup columns are meaningful only on
// multi-core hardware. The committed baseline records the shape of the
// numbers on the machine that produced it (see bench/baselines/); on a
// single-core host all thread counts collapse to ~1x, which is itself the
// interesting sanity check (the machinery must not make things slower).

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "ast/parser.h"
#include "bench_util.h"
#include "engine/query_eval.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr const char* kSgRules = R"(
  sg(X, Y) <- flat(X, Y).
  sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
)";

constexpr const char* kAncRules = R"(
  anc(X, Y) <- par(X, Y).
  anc(X, Y) <- par(X, Z), anc(Z, Y).
)";

constexpr const char* kTcRules = R"(
  tc(X, Y) <- edge(X, Y).
  tc(X, Y) <- edge(X, Z), tc(Z, Y).
)";

struct Shape {
  std::string name;
  Program program;
  Database db;
  Literal goal;
};

std::vector<Shape> MakeShapes() {
  std::vector<Shape> shapes;
  {
    Shape s;
    s.name = "sg.ff f=3 d=5";
    s.program = *ParseProgram(kSgRules);
    testing::MakeSameGenerationData(3, 5, &s.db);
    s.goal = Literal::Make(
        "sg", {Term::MakeVariable("X"), Term::MakeVariable("Y")});
    shapes.push_back(std::move(s));
  }
  {
    Shape s;
    s.name = "sg.ff f=4 d=4";
    s.program = *ParseProgram(kSgRules);
    testing::MakeSameGenerationData(4, 4, &s.db);
    s.goal = Literal::Make(
        "sg", {Term::MakeVariable("X"), Term::MakeVariable("Y")});
    shapes.push_back(std::move(s));
  }
  {
    Shape s;
    s.name = "anc.ff f=3 d=7";
    s.program = *ParseProgram(kAncRules);
    testing::MakeTreeParentData(3, 7, &s.db);
    s.goal = Literal::Make(
        "anc", {Term::MakeVariable("X"), Term::MakeVariable("Y")});
    shapes.push_back(std::move(s));
  }
  {
    Shape s;
    s.name = "tc.dag n=400 deg=3";
    s.program = *ParseProgram(kTcRules);
    testing::MakeRandomDag(400, 3, 18, &s.db);
    s.goal = Literal::Make(
        "tc", {Term::MakeVariable("X"), Term::MakeVariable("Y")});
    shapes.push_back(std::move(s));
  }
  return shapes;
}

double MedianMs(const Program& program, Database* db, const Literal& goal,
                const QueryEvalOptions& options, size_t reps,
                std::string* fingerprint) {
  std::vector<double> times;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch watch;
    auto result =
        EvaluateQuery(program, db, goal, RecursionMethod::kSemiNaive, options);
    double ms = watch.ElapsedMs();
    if (!result.ok()) {
      *fingerprint = "ERROR " + result.status().ToString();
      return -1;
    }
    std::string fp = AnswerFingerprint(result->answers);
    if (fingerprint->empty()) {
      *fingerprint = fp;
    } else if (*fingerprint != fp) {
      *fingerprint = "MISMATCH";
      return -1;
    }
    times.push_back(ms);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E18", "hash-partitioned parallel semi-naive: speedup and "
                       "1-thread overhead on heavy recursion shapes");
  Table table({"workload", "answers", "seq ms", "par1 ms", "ovh%", "par2 ms",
               "x2", "par4 ms", "x4", "agree"});
  const size_t reps = 5;
  for (Shape& shape : MakeShapes()) {
    std::string ref_fp;
    QueryEvalOptions seq;
    double seq_ms =
        MedianMs(shape.program, &shape.db, shape.goal, seq, reps, &ref_fp);
    std::string rows = "-";
    {
      auto result = EvaluateQuery(shape.program, &shape.db, shape.goal,
                                  RecursionMethod::kSemiNaive, seq);
      if (result.ok()) rows = std::to_string(result->answers.size());
    }
    bool agree = true;
    auto par_ms = [&](size_t threads) {
      QueryEvalOptions options;
      options.fixpoint.engine.num_threads = threads;
      std::string fp = ref_fp;  // must reproduce the sequential fingerprint
      double ms = MedianMs(shape.program, &shape.db, shape.goal, options,
                           reps, &fp);
      if (fp != ref_fp) agree = false;
      return ms;
    };
    double p1 = par_ms(1);
    double p2 = par_ms(2);
    double p4 = par_ms(4);
    table.AddRow(
        {shape.name, rows, Fmt(seq_ms, "%.2f"), Fmt(p1, "%.2f"),
         Fmt(seq_ms > 0 ? 100.0 * (p1 - seq_ms) / seq_ms : 0, "%+.1f"),
         Fmt(p2, "%.2f"), Fmt(p2 > 0 ? p1 / p2 : 0, "%.2f"),
         Fmt(p4, "%.2f"), Fmt(p4 > 0 ? p1 / p4 : 0, "%.2f"),
         agree ? "yes" : "NO"});
  }
  table.Print();
}

namespace {

void BM_ParallelSg(benchmark::State& state) {
  auto threads = static_cast<size_t>(state.range(0));
  auto program = ParseProgram(kSgRules);
  Database db;
  testing::MakeSameGenerationData(3, 5, &db);
  Literal goal =
      Literal::Make("sg", {Term::MakeVariable("X"), Term::MakeVariable("Y")});
  QueryEvalOptions options;
  options.fixpoint.engine.num_threads = threads;
  for (auto _ : state) {
    auto result = EvaluateQuery(*program, &db, goal,
                                RecursionMethod::kSemiNaive, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelSg)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("parallel");
  return 0;
}
