#include "base/strings.h"

#include <cctype>
#include <cstdio>

namespace ldl {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace ldl
