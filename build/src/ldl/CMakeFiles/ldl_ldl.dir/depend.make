# Empty dependencies file for ldl_ldl.
# This may be replaced when dependencies are built.
