// Experiment E9 (extension) — the [RBK 87] projection-pushing pass the
// paper cites in section 7.3: "In order to push projections we use the
// techniques proposed in [RBK 87], which is used as a pre-processing step
// to the optimizer." Magic sets push selections; this pass eliminates dead
// argument positions so recursion carries narrower tuples.
//
// Workload: reachability wrapped around transitive closure — the classic
// case where the closure's second argument is dead.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "bench_util.h"
#include "engine/query_eval.h"
#include "optimizer/project_pushdown.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr const char* kRules = R"(
  anc(X, Y) <- par(X, Y).
  anc(X, Y) <- par(X, Z), anc(Z, Y).
  has_ancestor(X) <- anc(X, Y).
)";

}  // namespace

void PrintExperiment() {
  bench::Banner("E9", "projection pushdown ([RBK 87] pre-processing): "
                      "derivations with and without dead-argument removal");
  Table table({"tree (fanout, depth)", "variant", "derived tuples",
               "examined", "ms", "answers"});
  for (auto [fanout, depth] : {std::pair<size_t, size_t>{2, 8},
                               std::pair<size_t, size_t>{3, 6},
                               std::pair<size_t, size_t>{4, 5}}) {
    Program p = *ParseProgram(kRules);
    Database db;
    testing::MakeTreeParentData(fanout, depth, &db);
    Literal goal = *ParseLiteral("has_ancestor(X)");

    auto projected = PushProjections(p, goal);
    struct Variant {
      const char* name;
      const Program* program;
    };
    const Variant variants[] = {
        {"original", &p},
        {"projected", projected.ok() ? &projected->rewritten : &p},
    };
    for (const Variant& v : variants) {
      Stopwatch watch;
      auto result =
          EvaluateQuery(*v.program, &db, goal, RecursionMethod::kSemiNaive,
                        {});
      double ms = watch.ElapsedMs();
      if (!result.ok()) continue;
      table.AddRow(
          {Fmt(static_cast<double>(fanout), "%.0f") + ", " +
               Fmt(static_cast<double>(depth), "%.0f"),
           v.name, std::to_string(result->stats.counters.derivations),
           Fmt(static_cast<double>(result->stats.counters.tuples_examined),
               "%.3g"),
           Fmt(ms, "%.2f"), std::to_string(result->answers.size())});
    }
  }
  table.Print();
  std::printf(
      "Expected shape: dropping anc's dead second argument collapses the\n"
      "O(paths) closure into the O(nodes) reachable-set computation.\n\n");
}

namespace {

void BM_WithPushdown(benchmark::State& state) {
  Program p = *ParseProgram(kRules);
  Database db;
  testing::MakeTreeParentData(3, 6, &db);
  Literal goal = *ParseLiteral("has_ancestor(X)");
  auto projected = PushProjections(p, goal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateQuery(
        projected.ok() ? projected->rewritten : p, &db, goal,
        RecursionMethod::kSemiNaive, {}));
  }
}
BENCHMARK(BM_WithPushdown);

void BM_WithoutPushdown(benchmark::State& state) {
  Program p = *ParseProgram(kRules);
  Database db;
  testing::MakeTreeParentData(3, 6, &db);
  Literal goal = *ParseLiteral("has_ancestor(X)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, {}));
  }
}
BENCHMARK(BM_WithoutPushdown);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("projection");
  return 0;
}
