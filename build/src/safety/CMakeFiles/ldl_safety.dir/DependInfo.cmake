
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safety/safety.cc" "src/safety/CMakeFiles/ldl_safety.dir/safety.cc.o" "gcc" "src/safety/CMakeFiles/ldl_safety.dir/safety.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/ldl_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ldl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/ldl_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ldl_base.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ldl_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
