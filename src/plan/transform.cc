#include "plan/transform.h"

#include <algorithm>
#include <set>

#include "base/strings.h"

namespace ldl {

namespace {

bool IsPermutation(const std::vector<size_t>& perm, size_t n) {
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (size_t p : perm) {
    if (p >= n || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

const std::set<std::string>& LabelsFor(PlanNodeKind kind) {
  static const auto* and_labels = new std::set<std::string>{
      "nested-loop", "index-join", "hash-join"};
  static const auto* or_labels = new std::set<std::string>{"union"};
  static const auto* cc_labels = new std::set<std::string>{
      "naive", "seminaive", "magic", "counting"};
  static const auto* scan_labels =
      new std::set<std::string>{"scan", "index-scan"};
  static const auto* builtin_labels = new std::set<std::string>{"builtin"};
  switch (kind) {
    case PlanNodeKind::kAnd:
      return *and_labels;
    case PlanNodeKind::kOr:
      return *or_labels;
    case PlanNodeKind::kCc:
      return *cc_labels;
    case PlanNodeKind::kScan:
      return *scan_labels;
    case PlanNodeKind::kBuiltin:
      return *builtin_labels;
  }
  return *scan_labels;
}

}  // namespace

Status TransformMp(PlanNode* node) {
  node->materialized = !node->materialized;
  return Status::OK();
}

Status TransformPr(PlanNode* and_node,
                   const std::vector<size_t>& permutation) {
  if (and_node->kind != PlanNodeKind::kAnd) {
    return Status::InvalidArgument("PR applies to AND nodes");
  }
  if (!IsPermutation(permutation, and_node->children.size())) {
    return Status::InvalidArgument("PR: not a permutation of the children");
  }
  std::vector<std::unique_ptr<PlanNode>> new_children;
  std::vector<size_t> new_order;
  new_children.reserve(permutation.size());
  new_order.reserve(permutation.size());
  for (size_t p : permutation) {
    new_children.push_back(std::move(and_node->children[p]));
    new_order.push_back(and_node->body_order[p]);
  }
  and_node->children = std::move(new_children);
  and_node->body_order = std::move(new_order);
  return Status::OK();
}

Status TransformPa(PlanNode* cc_node,
                   const std::vector<std::vector<size_t>>& c_permutation,
                   const std::string& method) {
  if (cc_node->kind != PlanNodeKind::kCc) {
    return Status::InvalidArgument("PA applies to CC nodes");
  }
  if (c_permutation.size() != cc_node->clique_rules.size()) {
    return Status::InvalidArgument(
        "PA: need one permutation per clique rule");
  }
  for (size_t i = 0; i < c_permutation.size(); ++i) {
    if (!IsPermutation(c_permutation[i], cc_node->clique_orders[i].size())) {
      return Status::InvalidArgument(
          StrCat("PA: entry ", i, " is not a valid permutation"));
    }
  }
  cc_node->clique_orders = c_permutation;
  return TransformEl(cc_node, method);
}

Status TransformEl(PlanNode* node, const std::string& method) {
  const auto& labels = LabelsFor(node->kind);
  if (!labels.count(method)) {
    return Status::InvalidArgument(
        StrCat("EL: method '", method, "' is not available for ",
               PlanNodeKindToString(node->kind), " nodes"));
  }
  node->method = method;
  return Status::OK();
}

Status TransformPushSelect(PlanNode* node, size_t arg) {
  if (arg >= node->goal.arity()) {
    return Status::InvalidArgument("PS: argument index out of range");
  }
  if (node->binding.size() != node->goal.arity()) {
    node->binding = Adornment(node->goal.arity());
  }
  node->binding.SetBound(arg, true);
  return Status::OK();
}

Status TransformPullSelect(PlanNode* node, size_t arg) {
  if (arg >= node->binding.size()) {
    return Status::InvalidArgument("PS: argument index out of range");
  }
  node->binding.SetBound(arg, false);
  return Status::OK();
}

Status TransformPushProject(PlanNode* node, std::vector<size_t> columns) {
  for (size_t c : columns) {
    if (c >= node->goal.arity()) {
      return Status::InvalidArgument("PP: column out of range");
    }
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  node->projection = std::move(columns);
  return Status::OK();
}

Status TransformPullProject(PlanNode* node) {
  node->projection.clear();
  return Status::OK();
}

Result<std::unique_ptr<PlanNode>> TransformFlatten(const PlanNode& and_node,
                                                   size_t child_pos) {
  if (and_node.kind != PlanNodeKind::kAnd) {
    return Status::InvalidArgument("FU: flatten applies to AND nodes");
  }
  if (child_pos >= and_node.children.size() ||
      and_node.children[child_pos]->kind != PlanNodeKind::kOr) {
    return Status::InvalidArgument("FU: child is not an OR node");
  }
  const PlanNode& or_child = *and_node.children[child_pos];
  auto result = std::make_unique<PlanNode>();
  result->kind = PlanNodeKind::kOr;
  result->method = "union";
  result->goal = and_node.goal;
  result->binding = and_node.binding;
  for (const auto& alternative : or_child.children) {
    auto copy = and_node.Clone();
    copy->children[child_pos] = alternative->Clone();
    result->children.push_back(std::move(copy));
  }
  return result;
}

namespace {

// Structural equality of subtrees, ignoring cost annotations.
bool TreesEqual(const PlanNode& a, const PlanNode& b) {
  if (a.kind != b.kind || a.materialized != b.materialized ||
      a.method != b.method || !(a.goal == b.goal) ||
      a.binding != b.binding || a.rule_index != b.rule_index ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!TreesEqual(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<PlanNode>> TransformUnflatten(const PlanNode& or_node) {
  if (or_node.kind != PlanNodeKind::kOr || or_node.children.size() < 2) {
    return Status::InvalidArgument(
        "FU: unflatten applies to OR nodes with >= 2 children");
  }
  for (const auto& child : or_node.children) {
    if (child->kind != PlanNodeKind::kAnd) {
      return Status::InvalidArgument("FU: unflatten children must be ANDs");
    }
  }
  const PlanNode& first = *or_node.children[0];
  size_t n = first.children.size();
  for (const auto& child : or_node.children) {
    if (child->children.size() != n) {
      return Status::InvalidArgument("FU: AND arities differ");
    }
  }
  // Find the single differing position.
  size_t diff_pos = SIZE_MAX;
  for (size_t j = 0; j < n; ++j) {
    bool all_equal = true;
    for (size_t k = 1; k < or_node.children.size(); ++k) {
      if (!TreesEqual(*first.children[j], *or_node.children[k]->children[j])) {
        all_equal = false;
        break;
      }
    }
    if (!all_equal) {
      if (diff_pos != SIZE_MAX) {
        return Status::InvalidArgument(
            "FU: children differ at more than one position");
      }
      diff_pos = j;
    }
  }
  if (diff_pos == SIZE_MAX) diff_pos = 0;  // identical branches: factor any

  auto result = first.Clone();
  auto merged_or = std::make_unique<PlanNode>();
  merged_or->kind = PlanNodeKind::kOr;
  merged_or->method = "union";
  merged_or->goal = first.children[diff_pos]->goal;
  merged_or->binding = first.children[diff_pos]->binding;
  for (const auto& child : or_node.children) {
    merged_or->children.push_back(child->children[diff_pos]->Clone());
  }
  result->children[diff_pos] = std::move(merged_or);
  return result;
}

}  // namespace ldl
