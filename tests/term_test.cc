#include "ast/term.h"

#include <gtest/gtest.h>

#include <set>

namespace ldl {
namespace {

TEST(TermTest, ScalarConstruction) {
  EXPECT_EQ(Term::MakeInt(42).kind(), TermKind::kInt);
  EXPECT_EQ(Term::MakeInt(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Term::MakeReal(2.5).real_value(), 2.5);
  EXPECT_EQ(Term::MakeSymbol("austin").text(), "austin");
  EXPECT_EQ(Term::MakeString("hi").kind(), TermKind::kString);
  EXPECT_EQ(Term::MakeVariable("X").kind(), TermKind::kVariable);
}

TEST(TermTest, GroundChecks) {
  EXPECT_TRUE(Term::MakeInt(1).IsGround());
  EXPECT_FALSE(Term::MakeVariable("X").IsGround());
  Term f = Term::MakeFunction("f", {Term::MakeInt(1), Term::MakeVariable("X")});
  EXPECT_FALSE(f.IsGround());
  Term g = Term::MakeFunction("f", {Term::MakeInt(1), Term::MakeSymbol("a")});
  EXPECT_TRUE(g.IsGround());
}

TEST(TermTest, EqualityAndHash) {
  Term a = Term::MakeFunction("f", {Term::MakeInt(1), Term::MakeSymbol("x")});
  Term b = Term::MakeFunction("f", {Term::MakeInt(1), Term::MakeSymbol("x")});
  Term c = Term::MakeFunction("f", {Term::MakeInt(2), Term::MakeSymbol("x")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TermTest, NumericKindsCompareDistinctly) {
  // Term equality is structural: 1 (int) != 1.0 (real) as stored values;
  // numeric equality is the builtin layer's job.
  EXPECT_NE(Term::MakeInt(1), Term::MakeReal(1.0));
}

TEST(TermTest, TotalOrderIsStrictWeak) {
  std::set<Term> s;
  s.insert(Term::MakeInt(1));
  s.insert(Term::MakeInt(1));
  s.insert(Term::MakeSymbol("a"));
  s.insert(Term::MakeVariable("X"));
  s.insert(Term::MakeFunction("f", {Term::MakeInt(1)}));
  EXPECT_EQ(s.size(), 4u);
}

TEST(TermTest, ListSugar) {
  Term list = Term::MakeList({Term::MakeInt(1), Term::MakeInt(2)});
  EXPECT_EQ(list.ToString(), "[1, 2]");
  EXPECT_TRUE(list.IsFunction());
  EXPECT_EQ(list.text(), ".");
  Term with_tail =
      Term::MakeList({Term::MakeInt(1)}, Term::MakeVariable("T"));
  EXPECT_EQ(with_tail.ToString(), "[1 | T]");
}

TEST(TermTest, CollectVariables) {
  Term t = Term::MakeFunction(
      "f", {Term::MakeVariable("X"),
            Term::MakeFunction("g", {Term::MakeVariable("Y"),
                                     Term::MakeVariable("X")})});
  std::vector<std::string> vars;
  t.CollectVariables(&vars);
  EXPECT_EQ(vars, (std::vector<std::string>{"X", "Y", "X"}));
  EXPECT_TRUE(t.ContainsVariable("Y"));
  EXPECT_FALSE(t.ContainsVariable("Z"));
}

TEST(TermTest, StrictSubterm) {
  Term x = Term::MakeVariable("X");
  Term fx = Term::MakeFunction("f", {x});
  Term gfx = Term::MakeFunction("g", {fx, Term::MakeInt(0)});
  EXPECT_TRUE(fx.HasStrictSubterm(x));
  EXPECT_TRUE(gfx.HasStrictSubterm(x));
  EXPECT_TRUE(gfx.HasStrictSubterm(fx));
  EXPECT_FALSE(x.HasStrictSubterm(x));
  EXPECT_FALSE(fx.HasStrictSubterm(gfx));
}

TEST(TermTest, SizeAndDepth) {
  Term x = Term::MakeVariable("X");
  EXPECT_EQ(x.Size(), 1u);
  EXPECT_EQ(x.Depth(), 1u);
  Term t = Term::MakeFunction("f", {Term::MakeFunction("g", {x}),
                                    Term::MakeInt(3)});
  EXPECT_EQ(t.Size(), 4u);
  EXPECT_EQ(t.Depth(), 3u);
}

TEST(TermTest, PrintingForms) {
  EXPECT_EQ(Term::MakeString("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Term::MakeFunction("f", {Term::MakeVariable("X")}).ToString(),
            "f(X)");
  EXPECT_EQ(Term::MakeList({}).ToString(), "[]");
}

}  // namespace
}  // namespace ldl
