#include "ldl/ldl.h"

#include <chrono>

#include "analysis/analyzer.h"
#include "base/strings.h"
#include "graph/binding.h"
#include "obs/feedback.h"
#include "obs/search_trace.h"
#include "optimizer/project_pushdown.h"
#include "plan/explain.h"
#include "plan/interpreter.h"

namespace ldl {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// "ResourceExhausted" -> "resource_exhausted": the query log's outcome tag.
std::string OutcomeName(StatusCode code) {
  std::string out;
  for (const char* p = StatusCodeToString(code); *p != '\0'; ++p) {
    if (*p >= 'A' && *p <= 'Z') {
      if (!out.empty()) out.push_back('_');
      out.push_back(static_cast<char>(*p - 'A' + 'a'));
    } else {
      out.push_back(*p);
    }
  }
  return out;
}

}  // namespace

LdlSystem::LdlSystem(OptimizerOptions options)
    : options_(std::move(options)) {}

Status LdlSystem::LoadProgram(std::string_view text) {
  LDL_ASSIGN_OR_RETURN(Program parsed, ParseProgram(text));
  return Ingest(std::move(parsed));
}

Status LdlSystem::AddClause(std::string_view text) {
  return LoadProgram(text);
}

Status LdlSystem::Ingest(Program parsed) {
  for (const Literal& fact : parsed.facts()) {
    LDL_RETURN_NOT_OK(db_.AddFact(fact));
  }
  for (const Rule& rule : parsed.rules()) {
    program_.AddRule(rule);
  }
  for (const QueryForm& query : parsed.queries()) {
    program_.AddQuery(query);
  }
  LDL_RETURN_NOT_OK(program_.Validate());
  stats_dirty_ = true;
  return Status::OK();
}

void LdlSystem::RefreshStatistics() {
  // The epoch survives recollection: it numbers statistics *generations*,
  // so a logged plan can be traced to the catalog state that shaped it.
  const uint64_t next_epoch = stats_.epoch() + 1;
  stats_ = Statistics::Collect(db_);
  stats_.set_epoch(next_epoch);
  stats_dirty_ = false;
}

const Statistics& LdlSystem::statistics() {
  if (stats_dirty_) RefreshStatistics();
  return stats_;
}

Result<QueryPlan> LdlSystem::Plan(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  return Plan(goal);
}

Result<Program> LdlSystem::EffectiveProgram(const Literal& goal) const {
  if (options_.push_projections && program_.IsDerived(goal.predicate())) {
    auto projected = PushProjections(program_, goal);
    if (projected.ok()) return std::move(projected->rewritten);
  }
  return program_;
}

Result<LdlSystem::GoalContext> LdlSystem::PrepareGoal(const Literal& goal) {
  GoalContext ctx;
  ctx.options = options_;
  LDL_ASSIGN_OR_RETURN(ctx.working, EffectiveProgram(goal));
  if (options_.feedback && feedback_catalog_ != nullptr &&
      ctx.options.measured == nullptr) {
    // Feedback planning mode: cost this goal under the catalog's blended
    // measured-over-estimated overlay. Predicates the catalog never saw
    // are absent from the overlay, so their estimates stand untouched.
    auto overlay = std::make_unique<MeasuredStatistics>(
        feedback_catalog_->BlendedOverlay(stats_));
    if (!overlay->empty()) {
      ctx.overlay = std::move(overlay);
      ctx.options.measured = ctx.overlay.get();
    }
  }
  const bool wants_analysis =
      options_.analyze_reachability || options_.eliminate_dead_rules;
  if (!wants_analysis || ctx.options.analysis != nullptr ||
      !program_.IsDerived(goal.predicate())) {
    return ctx;
  }

  AnalyzerOptions aopts;
  aopts.database = &db_;
  aopts.statistics = &stats_;

  if (options_.eliminate_dead_rules) {
    ProgramAnalyzer analyzer(ctx.working, aopts);
    DeadRuleElimination pruned =
        EliminateDeadRules(ctx.working, analyzer.Analyze(goal));
    if (!pruned.removed_rules.empty()) {
      ctx.working = std::move(pruned.program);
    }
  }
  if (options_.analyze_reachability) {
    // Analyze the (possibly pruned) working program so the reachable set
    // and rule indices match what the optimizer actually sees.
    ProgramAnalyzer analyzer(ctx.working, aopts);
    ctx.analysis = std::make_unique<ProgramAnalysis>(analyzer.Analyze(goal));
    ctx.options.analysis = ctx.analysis.get();
    if (ctx.options.trace.metrics != nullptr) {
      ctx.analysis->ExportTo(ctx.options.trace.metrics);
    }
  }
  return ctx;
}

Result<QueryPlan> LdlSystem::Plan(const Literal& goal) {
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  return optimizer.Optimize(goal);
}

Result<QueryAnswer> LdlSystem::Query(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  return Query(goal);
}

Result<QueryAnswer> LdlSystem::Query(const Literal& goal) {
  const auto query_start = std::chrono::steady_clock::now();

  // Per-query lifecycle: a resource meter and a cancellation token chained
  // under whatever session-level accountant/token the caller installed in
  // options_.trace. Metering engages only when a limit is set or a query
  // log wants the resource profile — otherwise the trace passes through
  // untouched and every hot path stays on its no-accountant fast path.
  ResourceAccountant accountant(options_.trace.accountant);
  CancellationToken cancel(options_.trace.cancel);
  TraceContext trace = options_.trace;
  if (options_.limits.any() || query_log_ != nullptr) {
    ResourceBudget budget;
    budget.max_bytes = options_.limits.budget_bytes;
    budget.max_tuples_examined = options_.limits.budget_tuples;
    accountant.set_budget(budget);
    cancel.set_accountant(&accountant);
    if (options_.limits.deadline_ms > 0) {
      cancel.set_deadline_after(std::chrono::duration<double, std::milli>(
          options_.limits.deadline_ms));
    }
    trace.accountant = &accountant;
    trace.cancel = &cancel;
  }

  QueryAnswer answer;
  bool have_plan = false;
  uint64_t rule_firings = 0;
  std::vector<std::pair<PredicateId, uint64_t>> derived_sizes;

  auto run = [&]() -> Status {
    // Base-relation queries bypass optimization.
    if (!program_.IsDerived(goal.predicate())) {
      if (!db_.Exists(goal.predicate())) {
        return Status::NotFound(
            StrCat("unknown predicate ", goal.predicate().ToString()));
      }
      answer.answers = SelectMatching(db_.Find(goal.predicate()), goal);
      answer.plan.goal = goal;
      answer.plan.safe = true;
      have_plan = true;
      return Status::OK();
    }

    // Plan and execute against the same (possibly projection-rewritten,
    // possibly dead-rule-pruned) program: the plan's rule indices refer to
    // it.
    if (stats_dirty_) RefreshStatistics();
    LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
    ctx.options.trace = trace;
    const auto optimize_start = std::chrono::steady_clock::now();
    Optimizer optimizer(ctx.working, stats_, ctx.options);
    Result<QueryPlan> plan = optimizer.Optimize(goal);
    answer.optimize_ms = MsSince(optimize_start);
    LDL_RETURN_NOT_OK(plan.status());
    answer.plan = std::move(plan).value();
    have_plan = true;
    if (!answer.plan.safe) {
      return Status::Unsafe(StrCat("query ", goal.ToString(),
                                   "? has no safe execution: ",
                                   answer.plan.unsafe_reason));
    }

    QueryEvalOptions eval_options;
    eval_options.fixpoint.trace = trace;
    eval_options.fixpoint.record_iterations =
        options_.record_fixpoint_iterations;
    eval_options.fixpoint.engine = options_.engine;
    eval_options.sips = answer.plan.sips;
    eval_options.fixpoint.rule_orders.insert(answer.plan.rule_orders.begin(),
                                             answer.plan.rule_orders.end());
    const auto execute_start = std::chrono::steady_clock::now();
    Result<QueryResult> result = EvaluateQuery(
        ctx.working, &db_, goal, answer.plan.top_method, eval_options);
    answer.execute_ms = MsSince(execute_start);
    LDL_RETURN_NOT_OK(result.status());
    answer.answers = std::move(result->answers);
    answer.exec_stats = result->stats;
    answer.note = result->note;
    derived_sizes = std::move(result->derived_sizes);
    rule_firings = result->stats.counters.rule_firings;
    return Status::OK();
  };
  const Status status = run();

  if (trace.accountant != nullptr) {
    answer.peak_bytes = trace.accountant->peak_bytes();
    answer.tuples_examined = trace.accountant->tuples_examined();
    answer.tuples_derived = trace.accountant->tuples_derived();
    answer.fixpoint_rounds = trace.accountant->fixpoint_rounds();
  }
  if (trace.cancel != nullptr) answer.cancel_checks = trace.cancel->checks();

  if (query_log_ != nullptr) {
    QueryLogRecord rec;
    rec.query = goal.ToString();
    rec.adornment = Adornment::FromGoal(goal).ToString();
    if (have_plan) {
      rec.method = program_.IsDerived(goal.predicate())
                       ? RecursionMethodToString(answer.plan.top_method)
                       : "base";
      rec.plan_fingerprint = answer.plan.Fingerprint();
    }
    rec.stats_epoch = stats_.epoch();
    rec.prune = options_.eliminate_dead_rules;
    if (status.ok()) {
      rec.answers = answer.answers.size();
      rec.answer_fingerprint = AnswerFingerprint(answer.answers);
    } else {
      rec.outcome = OutcomeName(status.code());
      rec.error = status.message();
    }
    rec.budget_bytes = options_.limits.budget_bytes;
    rec.deadline_ms = options_.limits.deadline_ms;
    rec.peak_bytes = answer.peak_bytes;
    rec.tuples_examined = answer.tuples_examined;
    rec.tuples_derived = answer.tuples_derived;
    rec.fixpoint_rounds = answer.fixpoint_rounds;
    rec.rule_firings = rule_firings;
    rec.cancel_checks = answer.cancel_checks;
    rec.optimize_ms = answer.optimize_ms;
    rec.execute_ms = answer.execute_ms;
    rec.total_ms = MsSince(query_start);
    query_log_->Append(std::move(rec));
  }

  // Close the loop after the record is written: the log carries the epoch
  // the plan was made under; a drift bump here shapes the *next* query.
  if (status.ok()) {
    ObserveFeedback(goal, answer.answers.size(), derived_sizes);
  }
  if (options_.trace.metrics != nullptr) {
    options_.trace.metrics->gauge("stats_epoch")
        ->Set(static_cast<double>(stats_.epoch()));
  }

  LDL_RETURN_NOT_OK(status);
  return answer;
}

void LdlSystem::ObserveFeedback(
    const Literal& goal, size_t answer_rows,
    const std::vector<std::pair<PredicateId, uint64_t>>& derived_sizes) {
  if (feedback_catalog_ == nullptr) return;
  const uint64_t epoch = stats_.epoch();
  // The goal's answer count is a per-binding measurement under the goal's
  // own adornment (for an all-free goal: the predicate's total size).
  feedback_catalog_->Observe(goal.predicate(), Adornment::FromGoal(goal),
                             static_cast<double>(answer_rows), epoch);
  for (const auto& [pred, rows] : derived_sizes) {
    feedback_catalog_->Observe(pred, Adornment::AllFree(pred.arity),
                               static_cast<double>(rows), epoch);
  }
  FeedbackDriftCheck();
}

void LdlSystem::FeedbackDriftCheck() {
  if (feedback_catalog_ == nullptr) return;
  if (drift_detector_ != nullptr &&
      drift_detector_->Check(*feedback_catalog_, &stats_,
                             options_.trace.metrics) > 0) {
    // The detector bumped the epoch: mark the statistics dirty so the next
    // query re-collects instead of planning under the drifted generation.
    stats_dirty_ = true;
  }
  feedback_catalog_->ExportTo(options_.trace.metrics);
}

Result<std::string> LdlSystem::Explain(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  LDL_ASSIGN_OR_RETURN(QueryPlan plan, optimizer.Optimize(goal));
  return plan.Explain(ctx.working);
}

Result<std::string> LdlSystem::ExplainOptimize(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  SearchTracer local;
  if (ctx.options.trace.search == nullptr) ctx.options.trace.search = &local;
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  LDL_ASSIGN_OR_RETURN(QueryPlan plan, optimizer.Optimize(goal));
  std::string out = plan.Explain(ctx.working);
  StrAppend(&out, "\n", RenderExplainOptimize(*ctx.options.trace.search));
  return out;
}

Result<std::string> LdlSystem::ExplainTree(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> tree,
                       BuildProcessingTree(ctx.working, goal));
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  LDL_RETURN_NOT_OK(optimizer.AnnotateTree(tree.get()));
  return tree->ToString();
}

Result<std::string> LdlSystem::ExplainAnalyze(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(AnalyzeResult res, AnalyzeCalibrated(goal_text));
  return std::move(res.text);
}

Result<LdlSystem::AnalyzeResult> LdlSystem::AnalyzeCalibrated(
    std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  const Program& working = ctx.working;
  // Optimize first: the chosen QueryPlan feeds the regret analysis, and an
  // unsafe plan must not reach the interpreter (it may not terminate).
  Optimizer optimizer(working, stats_, ctx.options);
  LDL_ASSIGN_OR_RETURN(QueryPlan plan, optimizer.Optimize(goal));
  if (!plan.safe) {
    return Status::Unsafe(StrCat("query ", goal.ToString(),
                                 "? has no safe execution: ",
                                 plan.unsafe_reason));
  }
  LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> tree,
                       BuildProcessingTree(working, goal));
  LDL_RETURN_NOT_OK(optimizer.AnnotateTree(tree.get()));

  TreeInterpreter interpreter(working, &db_);
  interpreter.set_trace(options_.trace);
  LDL_ASSIGN_OR_RETURN(Relation answers,
                       interpreter.Execute(*tree, tree->goal));

  std::string out = RenderExplain(*tree, &interpreter.profile());
  const EvalCounters& c = interpreter.counters();
  StrAppend(&out, "\nAnswers: ", answers.size(), " rows\n");
  StrAppend(&out, "Totals: ", c.tuples_examined, " tuples examined, ",
            c.derivations, " derivations, ", interpreter.memo_hits(),
            " memo hits\n");

  CalibrationReport report = CalibrationReport::Build(
      *tree, interpreter.profile(), goal.ToString());
  MeasuredStatistics measured =
      HarvestMeasuredStatistics(*tree, interpreter.profile());
  report.set_regret(
      ComputePlanRegret(working, stats_, ctx.options, goal, plan, measured));
  report.ExportTo(options_.trace.metrics);
  if (feedback_catalog_ != nullptr) {
    // The analyzed run's full per-(predicate, adornment) harvest — the
    // richest observation stream the catalog gets — then the drift gate.
    feedback_catalog_->ObserveMeasured(measured, stats_.epoch());
    FeedbackDriftCheck();
  }
  StrAppend(&out, "\n", report.ToString());

  AnalyzeResult res;
  res.text = std::move(out);
  res.report = std::move(report);
  return res;
}

SafetyReport LdlSystem::CheckSafety(std::string_view goal_text) {
  auto goal = ParseLiteral(goal_text);
  if (!goal.ok()) {
    SafetyReport report;
    report.safe = false;
    report.problems.push_back(goal.status().ToString());
    return report;
  }
  return AnalyzeQuerySafety(program_, *goal);
}

Result<QueryResult> LdlSystem::EvaluateUnoptimized(const Literal& goal,
                                                   RecursionMethod method) {
  QueryEvalOptions eval_options;
  eval_options.fixpoint.engine = options_.engine;
  return EvaluateQuery(program_, &db_, goal, method, eval_options);
}

}  // namespace ldl
