// ldl_replay — re-execute a structured query log and diff the outcomes.
//
// Usage: ldl_replay [options] log.jsonl
//
//   --check           exit 1 if any record drifted (or could not be
//                     replayed); default is report-only.
//   --program FILE    replay against FILE, overriding the program path
//                     recorded in each record (also the only way to replay
//                     records whose program field is empty).
//   --verbose         print a line for every record, not just drifts.
//   --summary         after replaying, print the workload aggregate table
//                     (per-signature counts, plans, latency percentiles —
//                     the same view ldl_workload prints) for the log.
//
// For every record the replayer loads the record's program (programs and
// prune settings are cached across records), re-runs the query through the
// same instrumented lifecycle path that wrote the log, and compares the
// decisions and results that must be reproducible:
//
//   - outcome        ("ok" / typed failure),
//   - plan fingerprint (the optimizer made the same decisions),
//   - answer count and order-independent answer fingerprint.
//
// Byte budgets are re-applied on replay (peak-bytes accounting is
// deterministic for a deterministic plan); wall-clock deadlines are NOT —
// a slower or faster machine would flip the outcome. Records that failed
// with DeadlineExceeded or Cancelled are therefore skipped (reported, and
// never counted as drift). Resource-profile deviations (peak bytes, tuples
// examined) are reported as informational ratios, not drift: they shift
// legitimately when storage layout changes. A statistics-epoch mismatch is
// likewise informational: the replayed system collects its own statistics
// (epoch restarts at 1), and feedback-driven drift bumps are workload
// history, not a reproducibility defect — but a mismatch tells the reader
// the original plan was chosen under different statistics, so it is
// printed and tallied separately.
//
// Exit status: 0 success, 1 drift or replay error (with --check), 2 usage.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/strings.h"
#include "ldl/ldl.h"
#include "obs/query_log.h"
#include "obs/workload.h"

namespace {

struct CliOptions {
  bool check = false;
  bool verbose = false;
  bool summary = false;
  std::string program_override;
  std::string log_file;
};

int Usage() {
  std::cerr << "usage: ldl_replay [--check] [--program FILE] [--verbose] "
               "[--summary] log.jsonl\n";
  return 2;
}

// One LdlSystem per (program path, prune flag): replaying must see the same
// rule base and the same pre-optimization passes the original run used.
struct SystemCache {
  std::map<std::pair<std::string, bool>, std::unique_ptr<ldl::LdlSystem>>
      systems;

  // Returns nullptr and sets *error on load failure.
  ldl::LdlSystem* Get(const std::string& path, bool prune,
                      const ldl::QueryLimits& limits, std::string* error) {
    auto key = std::make_pair(path, prune);
    auto it = systems.find(key);
    if (it == systems.end()) {
      std::ifstream in(path);
      if (!in) {
        *error = "cannot read program " + path;
        return nullptr;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      ldl::OptimizerOptions options;
      if (prune) {
        options.analyze_reachability = true;
        options.eliminate_dead_rules = true;
      }
      auto sys = std::make_unique<ldl::LdlSystem>(options);
      ldl::Status load = sys->LoadProgram(buffer.str());
      if (!load.ok()) {
        *error = path + ": " + load.ToString();
        return nullptr;
      }
      it = systems.emplace(key, std::move(sys)).first;
    }
    // Limits are per-record; refresh them on the cached system.
    ldl::OptimizerOptions options = it->second->options();
    options.limits = limits;
    it->second->set_options(options);
    return it->second.get();
  }
};

std::string Ratio(uint64_t now, uint64_t then) {
  if (then == 0) return now == 0 ? "1.00x" : "new";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx",
                static_cast<double>(now) / static_cast<double>(then));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      cli.check = true;
    } else if (arg == "--verbose") {
      cli.verbose = true;
    } else if (arg == "--summary") {
      cli.summary = true;
    } else if (arg == "--program" && i + 1 < argc) {
      cli.program_override = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ldl_replay: unknown option " << arg << "\n";
      return Usage();
    } else if (cli.log_file.empty()) {
      cli.log_file = arg;
    } else {
      std::cerr << "ldl_replay: more than one log file\n";
      return Usage();
    }
  }
  if (cli.log_file.empty()) return Usage();

  auto records = ldl::QueryLog::ReadFile(cli.log_file);
  if (!records.ok()) {
    std::cerr << "ldl_replay: " << records.status().ToString() << "\n";
    return 1;
  }

  SystemCache cache;
  size_t matched = 0;
  size_t drifted = 0;
  size_t skipped = 0;
  size_t errors = 0;
  size_t epoch_mismatches = 0;
  for (size_t i = 0; i < records->size(); ++i) {
    const ldl::QueryLogRecord& rec = (*records)[i];
    const std::string tag =
        ldl::StrCat(cli.log_file, ":", i + 1, ": ", rec.query);

    if (rec.outcome == "deadline_exceeded" || rec.outcome == "cancelled") {
      // Wall-clock outcomes are machine-dependent; not reproducible.
      ++skipped;
      if (cli.verbose) {
        std::cout << tag << ": SKIP (" << rec.outcome
                  << " depends on wall-clock)\n";
      }
      continue;
    }

    const std::string program = cli.program_override.empty()
                                    ? rec.program
                                    : cli.program_override;
    if (program.empty()) {
      std::cout << tag << ": ERROR no program recorded "
                   "(pass --program FILE)\n";
      ++errors;
      continue;
    }
    ldl::QueryLimits limits;
    limits.budget_bytes = rec.budget_bytes;
    std::string error;
    ldl::LdlSystem* sys = cache.Get(program, rec.prune, limits, &error);
    if (sys == nullptr) {
      std::cout << tag << ": ERROR " << error << "\n";
      ++errors;
      continue;
    }

    // Re-run through the same lifecycle path that wrote the record, into a
    // throwaway log, so the replayed record is built by the same code.
    ldl::QueryLog replay_log;
    replay_log.set_default_program(program);
    sys->set_query_log(&replay_log);
    auto answer = sys->Query(rec.query);
    sys->set_query_log(nullptr);
    (void)answer;  // outcome is read from the replayed record
    if (replay_log.size() != 1) {
      std::cout << tag << ": ERROR replay produced no record ("
                << (answer.ok() ? "ok" : answer.status().ToString()) << ")\n";
      ++errors;
      continue;
    }
    const ldl::QueryLogRecord now = replay_log.snapshot()[0];

    std::vector<std::string> drift;
    if (now.outcome != rec.outcome) {
      drift.push_back(ldl::StrCat("outcome ", rec.outcome, " -> ",
                                  now.outcome));
    }
    if (now.plan_fingerprint != rec.plan_fingerprint) {
      drift.push_back(ldl::StrCat("plan ", rec.plan_fingerprint, " -> ",
                                  now.plan_fingerprint));
    }
    if (now.answers != rec.answers) {
      drift.push_back(ldl::StrCat("answers ", rec.answers, " -> ",
                                  now.answers));
    }
    if (now.answer_fingerprint != rec.answer_fingerprint) {
      drift.push_back(ldl::StrCat("answer fingerprint ",
                                  rec.answer_fingerprint, " -> ",
                                  now.answer_fingerprint));
    }

    const bool epoch_mismatch = now.stats_epoch != rec.stats_epoch;
    if (epoch_mismatch) ++epoch_mismatches;

    if (!drift.empty()) {
      ++drifted;
      std::cout << tag << ": DRIFT";
      for (const std::string& d : drift) std::cout << " [" << d << "]";
      std::cout << "\n";
    } else if (epoch_mismatch) {
      ++matched;
      std::cout << tag << ": OK (stats epoch " << rec.stats_epoch << " -> "
                << now.stats_epoch << ", informational)\n";
    } else {
      ++matched;
      if (cli.verbose) {
        std::cout << tag << ": OK (peak bytes " << Ratio(now.peak_bytes,
                                                         rec.peak_bytes)
                  << ", tuples examined "
                  << Ratio(now.tuples_examined, rec.tuples_examined)
                  << ")\n";
      }
    }
  }

  std::cout << "ldl_replay: " << records->size() << " records, " << matched
            << " matched, " << drifted << " drifted, " << skipped
            << " skipped, " << errors << " errors";
  if (epoch_mismatches != 0) {
    std::cout << ", " << epoch_mismatches
              << " stats-epoch mismatches (informational)";
  }
  std::cout << "\n";
  if (cli.summary) {
    std::cout << "\n" << ldl::WorkloadReport::Build(*records).ToString();
  }
  if (cli.check && (drifted != 0 || errors != 0)) return 1;
  return 0;
}
