#include "obs/trace.h"

#include "base/strings.h"

namespace ldl {

uint32_t Span::CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
       << JsonEscape(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.start_us
       << ",\"dur\":" << e.duration_us << ",\"pid\":1,\"tid\":" << e.thread_id;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ",";
        os << "\"" << JsonEscape(e.args[i].first) << "\":\""
           << JsonEscape(e.args[i].second) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"droppedEvents\":" << dropped_events_ << "}\n";
}

}  // namespace ldl
