#include "ldl/ldl.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/workloads.h"

namespace ldl {
namespace {

std::vector<Tuple> Sorted(const Relation& r) {
  std::vector<Tuple> out = r.tuples();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LdlSystemTest, QuickstartAncestor) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    par(bart, homer).
    par(lisa, homer).
    par(homer, abe).
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )")
                  .ok());
  auto answer = sys.Query("anc(bart, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->answers.size(), 2u);  // homer, abe
  EXPECT_TRUE(answer->plan.safe);
}

TEST(LdlSystemTest, OptimizedMatchesUnoptimizedAnswers) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )")
                  .ok());
  testing::MakeSameGenerationData(3, 4, sys.database());
  sys.RefreshStatistics();

  auto goal = ParseLiteral("sg(50, Y)");
  ASSERT_TRUE(goal.ok());
  auto optimized = sys.Query(*goal);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  auto baseline = sys.EvaluateUnoptimized(*goal, RecursionMethod::kSemiNaive);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_EQ(Sorted(optimized->answers), Sorted(baseline->answers));
  // The optimizer must not do more execution work than the full fixpoint.
  EXPECT_LE(optimized->exec_stats.counters.tuples_examined,
            baseline->stats.counters.tuples_examined);
}

TEST(LdlSystemTest, BoundQueryGetsFocusedMethodAndDoesLessWork) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )")
                  .ok());
  testing::MakeTreeParentData(3, 7, sys.database());
  sys.RefreshStatistics();

  auto goal = ParseLiteral("anc(7, Y)");
  ASSERT_TRUE(goal.ok());
  auto answer = sys.Query(*goal);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->plan.top_method == RecursionMethod::kMagic ||
              answer->plan.top_method == RecursionMethod::kCounting);
  auto full = sys.EvaluateUnoptimized(*goal, RecursionMethod::kSemiNaive);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(Sorted(answer->answers), Sorted(full->answers));
  EXPECT_LT(answer->exec_stats.counters.tuples_examined,
            full->stats.counters.tuples_examined / 10);
}

TEST(LdlSystemTest, UnsafeQueryRejectedWithDiagnostic) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram("bigger(X, Y) <- X > Y.").ok());
  auto answer = sys.Query("bigger(X, 3)");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnsafe);
  EXPECT_NE(answer.status().message().find("bigger"), std::string::npos);
  // Fully bound form is fine.
  auto bound = sys.Query("bigger(5, 3)");
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->answers.size(), 1u);
}

TEST(LdlSystemTest, ArithmeticAndComparisonQueries) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    item(widget, 5).
    item(gadget, 50).
    item(doodad, 500).
    pricey(X) <- item(X, P), P > 40.
    taxed(X, T) <- item(X, P), T = P * 2.
  )")
                  .ok());
  auto pricey = sys.Query("pricey(X)");
  ASSERT_TRUE(pricey.ok()) << pricey.status();
  EXPECT_EQ(pricey->answers.size(), 2u);
  auto taxed = sys.Query("taxed(widget, T)");
  ASSERT_TRUE(taxed.ok()) << taxed.status();
  ASSERT_EQ(taxed->answers.size(), 1u);
  EXPECT_EQ(taxed->answers.tuples()[0][1].int_value(), 10);
}

TEST(LdlSystemTest, TextualOrderUnsafeButSystemReorders) {
  // The declarative promise: this rule is unusable under Prolog's textual
  // order but the optimizer finds the safe order silently.
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    price(widget, 5).
    doubled(X, Y) <- Y = P * 2, price(X, P).
  )")
                  .ok());
  auto answer = sys.Query("doubled(widget, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->answers.size(), 1u);
  EXPECT_EQ(answer->answers.tuples()[0][1].int_value(), 10);
}

TEST(LdlSystemTest, NegationQueries) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    person(homer). person(ned).
    married(homer).
    bachelor(X) <- person(X), not married(X).
  )")
                  .ok());
  auto answer = sys.Query("bachelor(X)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->answers.size(), 1u);
  EXPECT_EQ(answer->answers.tuples()[0][0].text(), "ned");
}

TEST(LdlSystemTest, ExplainShowsPlan) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )")
                  .ok());
  testing::MakeTreeParentData(2, 4, sys.database());
  auto text = sys.Explain("anc(3, Y)");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("QUERY"), std::string::npos);
  EXPECT_NE(text->find("METHOD"), std::string::npos);
}

TEST(LdlSystemTest, CheckSafetyReportsProblems) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    nat(0).
    nat(Y) <- nat(X), Y = X + 1.
  )")
                  .ok());
  SafetyReport report = sys.CheckSafety("nat(N)");
  EXPECT_FALSE(report.safe);
  EXPECT_FALSE(report.problems.empty());
}

TEST(LdlSystemTest, BaseRelationQuery) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram("edge(1, 2). edge(1, 3).").ok());
  auto answer = sys.Query("edge(1, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->answers.size(), 2u);
  EXPECT_FALSE(sys.Query("nosuch(X)").ok());
}

TEST(LdlSystemTest, PendingQueriesFromProgramText) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    p(1). p(2).
    q(X) <- p(X).
    q(X)?
  )")
                  .ok());
  ASSERT_EQ(sys.pending_queries().size(), 1u);
  auto answer = sys.Query(sys.pending_queries()[0].goal);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->answers.size(), 2u);
}

TEST(LdlSystemTest, ComplexTermsEndToEnd) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    employee(person("alice", 30), dept(eng)).
    employee(person("bob", 40), dept(sales)).
    engineer(N) <- employee(person(N, A), dept(eng)).
  )")
                  .ok());
  auto answer = sys.Query("engineer(N)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->answers.size(), 1u);
  EXPECT_EQ(answer->answers.tuples()[0][0].text(), "alice");
}

TEST(LdlSystemTest, MultipleCliquesAndStrata) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    reach(X, Y) <- edge(X, Y).
    reach(X, Y) <- edge(X, Z), reach(Z, Y).
    same_scc(X, Y) <- reach(X, Y), reach(Y, X).
  )")
                  .ok());
  Relation* edge = sys.database()->GetOrCreate({"edge", 2});
  edge->Insert({Term::MakeInt(1), Term::MakeInt(2)});
  edge->Insert({Term::MakeInt(2), Term::MakeInt(1)});
  edge->Insert({Term::MakeInt(2), Term::MakeInt(3)});
  sys.RefreshStatistics();
  auto answer = sys.Query("same_scc(1, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->answers.size(), 2u);  // 1 and 2
}

}  // namespace
}  // namespace ldl
