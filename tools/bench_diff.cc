// bench_diff — wall-time regression gate over the bench JSON exports.
//
// Usage: bench_diff [options] BASELINE_DIR CURRENT_DIR
//
//   --threshold PCT      fail when a time-like cell grew by more than PCT
//                        percent over its baseline (default 25).
//   --min-baseline MS    ignore comparisons where both sides are below this
//                        floor (default 5.0 ms) — micro-timings are noise.
//   --update-baselines   copy CURRENT_DIR's BENCH_*.json into BASELINE_DIR
//                        instead of comparing (refreshing the committed
//                        baselines after an intentional perf change).
//
// Each bench binary writes BENCH_<name>.json via bench_util's JsonSink:
// {"bench":..., "experiments":[{"id",...,"tables":[{"headers":[...],
// "rows":[[...]]}]}]}. Time-like columns are those whose header mentions
// "ms" or "time"; rows are matched positionally and must agree on their
// first (label) cell — a reshaped table is reported as skipped, not failed,
// so adding a workload does not masquerade as a regression.
//
// Exit status: 0 no regressions, 1 regression found, 2 usage/parse error.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Minimal JSON DOM (RFC 8259 subset the bench exports use). json_check
// validates shape without materializing; this tool needs the values.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!Value(out)) {
      *error = error_;
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing content after JSON value";
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      std::ostringstream os;
      os << "offset " << pos_ << ": " << message;
      error_ = os.str();
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Value(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return Object(out);
      case '[':
        return Array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return String(&out->str);
      case 't':
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = text_[pos_] == 't';
        return Word(out->boolean ? "true" : "false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Word("null");
      default:
        out->kind = JsonValue::Kind::kNumber;
        return Number(&out->number);
    }
  }

  bool Object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return true;
    do {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !String(&key)) {
        return Fail("expected string key");
      }
      if (!Consume(':')) return Fail("expected ':' after key");
      JsonValue value;
      if (!Value(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
    } while (Consume(','));
    if (!Consume('}')) return Fail("expected ',' or '}' in object");
    return true;
  }

  bool Array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return true;
    do {
      JsonValue item;
      if (!Value(&item)) return false;
      out->items.push_back(std::move(item));
    } while (Consume(','));
    if (!Consume(']')) return Fail("expected ',' or ']' in array");
    return true;
  }

  bool String(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char e = text_[pos_];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Label cells never need non-BMP fidelity; keep a placeholder.
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              if (pos_ >= text_.size() || !std::isxdigit(
                      static_cast<unsigned char>(text_[pos_]))) {
                return Fail("invalid \\u escape");
              }
            }
            out->push_back('?');
            break;
          }
          default:
            return Fail("invalid escape character");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(std::string("invalid literal, expected ") + word);
      }
    }
    return true;
  }

  bool Number(double* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    try {
      *out = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("unparseable number");
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Comparison.

struct Options {
  double threshold_pct = 25.0;
  double min_baseline_ms = 5.0;
  bool update_baselines = false;
  std::string baseline_dir;
  std::string current_dir;
};

int Usage() {
  std::cerr << "usage: bench_diff [--threshold PCT] [--min-baseline MS] "
               "[--update-baselines] BASELINE_DIR CURRENT_DIR\n";
  return 2;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool TimeLikeHeader(const std::string& header) {
  std::string h = Lower(header);
  return h.find("ms") != std::string::npos ||
         h.find("time") != std::string::npos;
}

bool ParseCell(const std::string& cell, double* out) {
  if (cell.empty() || cell == "-") return false;
  char* end = nullptr;
  *out = std::strtod(cell.c_str(), &end);
  return end != cell.c_str();
}

/// headers + rows of one table, flattened out of the DOM; empty headers
/// means the table node was malformed.
struct FlatTable {
  std::string id;  ///< "<experiment id>/<table index>"
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

std::vector<FlatTable> ExtractTables(const JsonValue& root) {
  std::vector<FlatTable> tables;
  const JsonValue* experiments = root.Find("experiments");
  if (experiments == nullptr ||
      experiments->kind != JsonValue::Kind::kArray) {
    return tables;
  }
  for (const JsonValue& exp : experiments->items) {
    const JsonValue* id = exp.Find("id");
    const JsonValue* exp_tables = exp.Find("tables");
    if (exp_tables == nullptr ||
        exp_tables->kind != JsonValue::Kind::kArray) {
      continue;
    }
    for (size_t t = 0; t < exp_tables->items.size(); ++t) {
      const JsonValue& table = exp_tables->items[t];
      FlatTable flat;
      flat.id = (id != nullptr ? id->str : "") + "/" + std::to_string(t);
      const JsonValue* headers = table.Find("headers");
      const JsonValue* rows = table.Find("rows");
      if (headers != nullptr) {
        for (const JsonValue& h : headers->items) flat.headers.push_back(h.str);
      }
      if (rows != nullptr) {
        for (const JsonValue& row : rows->items) {
          std::vector<std::string> cells;
          for (const JsonValue& cell : row.items) {
            cells.push_back(cell.kind == JsonValue::Kind::kNumber
                                ? std::to_string(cell.number)
                                : cell.str);
          }
          flat.rows.push_back(std::move(cells));
        }
      }
      tables.push_back(std::move(flat));
    }
  }
  return tables;
}

/// Compares one bench file pair; returns the number of regressions and
/// prints each. `checked` counts the time-cell comparisons actually made.
size_t DiffFile(const std::string& name, const JsonValue& baseline,
                const JsonValue& current, const Options& options,
                size_t* checked) {
  std::vector<FlatTable> base_tables = ExtractTables(baseline);
  std::vector<FlatTable> cur_tables = ExtractTables(current);
  size_t regressions = 0;

  for (const FlatTable& cur : cur_tables) {
    const FlatTable* base = nullptr;
    bool id_seen = false;
    for (const FlatTable& b : base_tables) {
      if (b.id != cur.id) continue;
      id_seen = true;
      if (b.headers == cur.headers) {
        base = &b;
        break;
      }
    }
    if (base == nullptr) {
      // A table the baseline has never seen is expected when a benchmark
      // grows a new experiment — the next --update-baselines records it.
      // Same id with different headers means the table was reshaped; both
      // are skips, not failures.
      std::cout << name << " " << cur.id
                << (id_seen ? ": baseline table has different headers "
                              "(reshaped), skipped\n"
                            : ": new table, skipped\n");
      continue;
    }
    for (size_t c = 0; c < cur.headers.size(); ++c) {
      if (!TimeLikeHeader(cur.headers[c])) continue;
      size_t rows = std::min(cur.rows.size(), base->rows.size());
      for (size_t r = 0; r < rows; ++r) {
        const auto& cur_row = cur.rows[r];
        const auto& base_row = base->rows[r];
        // Positional match must agree on the label cell; a reshaped table
        // is a skip, not a regression.
        if (cur_row.empty() || base_row.empty() ||
            cur_row[0] != base_row[0]) {
          continue;
        }
        double cur_v = 0, base_v = 0;
        if (c >= cur_row.size() || c >= base_row.size() ||
            !ParseCell(cur_row[c], &cur_v) ||
            !ParseCell(base_row[c], &base_v)) {
          continue;
        }
        ++*checked;
        if (std::max(cur_v, base_v) < options.min_baseline_ms) continue;
        double limit = base_v * (1.0 + options.threshold_pct / 100.0);
        if (cur_v > limit) {
          ++regressions;
          double pct = base_v > 0 ? (cur_v / base_v - 1.0) * 100.0 : 0;
          std::printf(
              "%s %s [%s] row \"%s\": %.3f -> %.3f ms (+%.0f%% > %.0f%%)\n",
              name.c_str(), cur.id.c_str(), cur.headers[c].c_str(),
              cur_row[0].c_str(), base_v, cur_v, pct, options.threshold_pct);
        }
      }
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      options.threshold_pct = std::atof(argv[++i]);
    } else if (arg == "--min-baseline" && i + 1 < argc) {
      options.min_baseline_ms = std::atof(argv[++i]);
    } else if (arg == "--update-baselines") {
      options.update_baselines = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "bench_diff: unknown option " << arg << "\n";
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return Usage();
  options.baseline_dir = positional[0];
  options.current_dir = positional[1];

  std::error_code ec;
  std::vector<fs::path> current_files;
  for (const auto& entry :
       fs::directory_iterator(options.current_dir, ec)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) == 0 &&
        file.size() > 5 && file.substr(file.size() - 5) == ".json") {
      current_files.push_back(entry.path());
    }
  }
  if (ec) {
    std::cerr << "bench_diff: cannot read " << options.current_dir << ": "
              << ec.message() << "\n";
    return 2;
  }
  std::sort(current_files.begin(), current_files.end());
  if (current_files.empty()) {
    std::cerr << "bench_diff: no BENCH_*.json in " << options.current_dir
              << "\n";
    return 2;
  }

  if (options.update_baselines) {
    fs::create_directories(options.baseline_dir, ec);
    for (const fs::path& src : current_files) {
      fs::path dst = fs::path(options.baseline_dir) / src.filename();
      fs::copy_file(src, dst, fs::copy_options::overwrite_existing, ec);
      if (ec) {
        std::cerr << "bench_diff: cannot copy " << src << " -> " << dst
                  << ": " << ec.message() << "\n";
        return 2;
      }
      std::cout << "updated " << dst.string() << "\n";
    }
    return 0;
  }

  size_t regressions = 0;
  size_t checked = 0;
  for (const fs::path& cur_path : current_files) {
    const std::string name = cur_path.filename().string();
    fs::path base_path = fs::path(options.baseline_dir) / name;
    std::string base_text, cur_text;
    if (!ReadFile(base_path, &base_text)) {
      std::cout << name << ": no baseline (run with --update-baselines to "
                           "record one), skipped\n";
      continue;
    }
    if (!ReadFile(cur_path, &cur_text)) {
      std::cerr << "bench_diff: cannot read " << cur_path << "\n";
      return 2;
    }
    JsonValue baseline, current;
    std::string error;
    if (!JsonParser(base_text).Parse(&baseline, &error)) {
      std::cerr << "bench_diff: " << base_path.string() << ": " << error
                << "\n";
      return 2;
    }
    if (!JsonParser(cur_text).Parse(&current, &error)) {
      std::cerr << "bench_diff: " << cur_path.string() << ": " << error
                << "\n";
      return 2;
    }
    regressions += DiffFile(name, baseline, current, options, &checked);
  }

  std::printf("bench_diff: %zu time cells checked, %zu regression%s "
              "(threshold %.0f%%, floor %.1f ms)\n",
              checked, regressions, regressions == 1 ? "" : "s",
              options.threshold_pct, options.min_baseline_ms);
  return regressions > 0 ? 1 : 0;
}
