#ifndef LDLOPT_STORAGE_TUPLE_H_
#define LDLOPT_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "ast/term.h"
#include "base/hash.h"

namespace ldl {

/// A stored tuple: a fixed-arity vector of ground terms. Complex terms are
/// first-class column values (the paper's "complex objects").
using Tuple = std::vector<Term>;

/// Hash over all columns.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Term& v : t) HashCombine(&seed, v.Hash());
    return seed;
  }
};

/// "(a, 1, f(b))".
std::string TupleToString(const Tuple& t);

/// Rough in-memory footprint of a term / tuple, used by resource
/// accounting. Deliberately cheap (no heap introspection): object size plus
/// string payload plus recursive function arguments. Consistency matters
/// more than precision — charge and release use the same formula.
size_t ApproxTermBytes(const Term& t);
size_t ApproxTupleBytes(const Tuple& t);

}  // namespace ldl

#endif  // LDLOPT_STORAGE_TUPLE_H_
