file(REMOVE_RECURSE
  "CMakeFiles/ldl_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/ldl_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/ldl_optimizer.dir/join_order.cc.o"
  "CMakeFiles/ldl_optimizer.dir/join_order.cc.o.d"
  "CMakeFiles/ldl_optimizer.dir/kbz.cc.o"
  "CMakeFiles/ldl_optimizer.dir/kbz.cc.o.d"
  "CMakeFiles/ldl_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/ldl_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/ldl_optimizer.dir/project_pushdown.cc.o"
  "CMakeFiles/ldl_optimizer.dir/project_pushdown.cc.o.d"
  "libldl_optimizer.a"
  "libldl_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
