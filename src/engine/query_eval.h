#ifndef LDLOPT_ENGINE_QUERY_EVAL_H_
#define LDLOPT_ENGINE_QUERY_EVAL_H_

#include <string>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "base/status.h"
#include "engine/fixpoint.h"
#include "graph/adornment.h"
#include "storage/database.h"

namespace ldl {

/// The answers to one query plus the work it took to compute them.
struct QueryResult {
  /// One tuple per distinct binding of the goal's arguments (arity =
  /// goal arity; bound positions repeat the constants).
  Relation answers{"answers", 0};
  FixpointStats stats;
  RecursionMethod method_used = RecursionMethod::kSemiNaive;
  /// Human-readable note, e.g. "counting fell back to magic (cyclic data)".
  std::string note;
  /// Fixpoint size of every derived predicate, filled only by the full
  /// bottom-up methods (kNaive/kSemiNaive): those compute each reachable
  /// predicate in its entirety, so the sizes are true all-free
  /// cardinalities. Magic/counting evaluate goal-restricted subsets whose
  /// sizes would poison a statistics catalog, so they leave this empty.
  std::vector<std::pair<PredicateId, uint64_t>> derived_sizes;
};

struct QueryEvalOptions {
  FixpointOptions fixpoint;
  /// SIPs used for adornment when method is kMagic (defaults to textual
  /// left-to-right order).
  SipStrategy sips;
  /// If true, kCounting falls back to kMagic when inapplicable or when the
  /// ascent hits the iteration guard (cyclic data).
  bool counting_fallback = true;
};

/// Evaluates `goal` over `program` + `base` with the given recursion
/// method:
///  - kNaive / kSemiNaive evaluate the reachable part of the program
///    bottom-up in full, then select the matching tuples;
///  - kMagic adorns the program for the goal, applies the magic rewrite and
///    evaluates semi-naively;
///  - kCounting applies the counting rewrite (with optional fallback).
/// `base` is not modified except for lazily built indexes.
Result<QueryResult> EvaluateQuery(const Program& program, Database* base,
                                  const Literal& goal, RecursionMethod method,
                                  const QueryEvalOptions& options = {});

/// Restricts `program` to the rules defining predicates that `goal`
/// depends on (transitively). Avoids evaluating unrelated rule sets.
/// When `index_map` is non-null it receives, for each rule of the result,
/// the index of that rule in `program` (so per-rule options can be
/// remapped).
Program ReachableSubprogram(const Program& program, const Literal& goal,
                            std::vector<size_t>* index_map = nullptr);

/// Selects from `rel` the tuples matching `goal`'s argument pattern and
/// returns them as a relation of the same arity.
Relation SelectMatching(Relation* rel, const Literal& goal);

/// Canonical form of an answer set: the tuples sorted by Term's total
/// order. Two evaluations of the same query are equivalent iff their
/// canonical forms are equal, regardless of derivation order — the
/// comparison primitive of the differential-testing oracle
/// (src/testing/difftest.h) and of the golden result tests.
std::vector<Tuple> CanonicalAnswers(const Relation& answers);

/// Order-independent digest of an answer set: "<rows>:<hex>" where the hex
/// is a commutative hash over the tuples. Cheap to compare and to log;
/// collisions are possible in principle, so mismatch *reports* should
/// re-check with CanonicalAnswers.
std::string AnswerFingerprint(const Relation& answers);

}  // namespace ldl

#endif  // LDLOPT_ENGINE_QUERY_EVAL_H_
