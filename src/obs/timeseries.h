#ifndef LDLOPT_OBS_TIMESERIES_H_
#define LDLOPT_OBS_TIMESERIES_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/resource.h"

namespace ldl {

/// One sampled point: seconds since the sampler started, and the value.
struct TimeSeriesPoint {
  double t_seconds = 0;
  double value = 0;
};

/// Fixed-capacity ring of points: pushing past capacity overwrites the
/// oldest point, so a long-running process holds a bounded sliding window
/// per series. Not thread-safe on its own — the sampler serializes access
/// under its mutex.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    points_.reserve(capacity_);
  }

  void Push(double t_seconds, double value) {
    ++total_pushed_;
    if (points_.size() < capacity_) {
      points_.push_back({t_seconds, value});
      return;
    }
    points_[head_] = {t_seconds, value};
    head_ = (head_ + 1) % capacity_;
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return points_.size(); }
  /// Total Push calls, including overwritten points — size() saturates at
  /// capacity, this does not, so overflow is observable.
  uint64_t total_pushed() const { return total_pushed_; }

  /// Points oldest-first (unwraps the ring).
  std::vector<TimeSeriesPoint> Snapshot() const {
    std::vector<TimeSeriesPoint> out;
    out.reserve(points_.size());
    for (size_t i = 0; i < points_.size(); ++i) {
      out.push_back(points_[(head_ + i) % points_.size()]);
    }
    return out;
  }

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< index of the oldest point once full
  uint64_t total_pushed_ = 0;
  std::vector<TimeSeriesPoint> points_;
};

struct TimeSeriesOptions {
  std::chrono::milliseconds period{1000};  ///< sampling cadence
  size_t capacity = 256;                   ///< points kept per series
  MetricsRegistry* metrics = nullptr;      ///< counters/gauges/histograms
  /// Optional root accountant (a session- or process-level meter): sampled
  /// as resource.current_bytes / peak_bytes / tuples_examined /
  /// tuples_derived series.
  ResourceAccountant* accountant = nullptr;
};

/// Background sampler: a dedicated thread snapshots the metrics registry
/// (counter values, gauge values, histogram count + p50/p99) and the
/// optional accountant into per-series ring buffers every `period`.
///
/// Thread-safety: instrument reads are relaxed atomics (safe against
/// concurrent Record/Increment on query threads — the TSan CI job runs the
/// stats-server test to pin this), registry enumeration takes the registry
/// lock, and the ring map is guarded by the sampler mutex so /statusz can
/// snapshot while the sampler ticks. Start/Stop are idempotent; Stop joins
/// the thread and is prompt (the sleep is a condition-variable wait).
class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(TimeSeriesOptions options)
      : options_(options),
        start_(std::chrono::steady_clock::now()) {}

  ~TimeSeriesSampler() { Stop(); }

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  void Start();
  void Stop();
  bool running() const;

  /// One synchronous sampling pass (the loop body; public for tests and
  /// for callers that want a final sample before rendering).
  void SampleOnce();

  uint64_t samples_taken() const;

  /// Copies of every series, oldest point first.
  std::map<std::string, std::vector<TimeSeriesPoint>> Snapshot() const;

  /// {"period_ms":...,"samples":N,"series":{"name":{"t":[...],"v":[...]}}}
  /// — the sparkline payload /statusz embeds.
  void WriteJson(std::ostream& os) const;

 private:
  void Loop();
  void Record(const std::string& name, double t, double value);

  const TimeSeriesOptions options_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  uint64_t samples_ = 0;
  std::map<std::string, TimeSeriesRing> series_;
  std::thread thread_;
};

}  // namespace ldl

#endif  // LDLOPT_OBS_TIMESERIES_H_
