#ifndef LDLOPT_TESTING_WORKLOADS_H_
#define LDLOPT_TESTING_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "base/rng.h"
#include "storage/database.h"

namespace ldl {
namespace testing {

/// Populates `db` with the classic same-generation substrate:
///   up/2  : a balanced tree of the given fan-out and depth, edges child->parent
///           direction up(x, parent);
///   flat/2: sibling links at the top level;
///   dn/2  : mirror of up (parent, child), i.e. dn(p, c) iff up(c, p).
/// Nodes are integers; node 0.. are assigned level by level. Returns the
/// number of nodes created.
size_t MakeSameGenerationData(size_t fanout, size_t depth, Database* db);

/// Populates `par/2` with a balanced tree: par(child, parent) edges,
/// `fanout^depth` leaves. Returns number of nodes.
size_t MakeTreeParentData(size_t fanout, size_t depth, Database* db);

/// Populates `edge/2` with a random directed acyclic graph of `n` nodes
/// where each node has `out_degree` random successors among higher ids.
void MakeRandomDag(size_t n, size_t out_degree, uint64_t seed, Database* db);

/// Populates `edge/2` with a simple directed cycle of `n` nodes
/// (0 -> 1 -> ... -> n-1 -> 0). Used to exercise counting's divergence
/// guard and fallback.
void MakeCycle(size_t n, Database* db);

/// Populates relation `name`/`arity` with `rows` random tuples drawn from
/// integer domains of size `domain` per column.
void MakeRandomRelation(const std::string& name, size_t arity, size_t rows,
                        size_t domain, uint64_t seed, Database* db);

}  // namespace testing
}  // namespace ldl

#endif  // LDLOPT_TESTING_WORKLOADS_H_
