#include "optimizer/cost_model.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ldl {
namespace {

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Statistics MakeStats() {
  Statistics stats;
  stats.Set({"big", 2}, {10000.0, {100.0, 10000.0}});
  stats.Set({"small", 2}, {10.0, {10.0, 10.0}});
  stats.Set({"mid", 2}, {1000.0, {1000.0, 50.0}});
  return stats;
}

TEST(CostModelTest, BaseItemBoundArgumentReducesCardinality) {
  Statistics stats = MakeStats();
  CostModelOptions options;
  ConjunctItem item = MakeBaseItem(L("big(X, Y)"), stats, options);
  PlanEstimate free_est = item.estimate(Adornment::AllFree(2), 1.0);
  PlanEstimate bound_est = item.estimate(*Adornment::FromString("bf"), 1.0);
  EXPECT_DOUBLE_EQ(free_est.card, 10000.0);
  EXPECT_DOUBLE_EQ(bound_est.card, 100.0);  // 10000 / 100 distinct
  EXPECT_LT(bound_est.per_binding, free_est.per_binding);
}

TEST(CostModelTest, IndexDisabledFallsBackToScan) {
  Statistics stats = MakeStats();
  CostModelOptions options;
  options.enable_index_join = false;
  ConjunctItem item = MakeBaseItem(L("big(X, Y)"), stats, options);
  PlanEstimate bound_est = item.estimate(*Adornment::FromString("bf"), 1.0);
  EXPECT_DOUBLE_EQ(bound_est.per_binding, 10000.0 * options.tuple_cost);
}

TEST(CostModelTest, SelectiveFirstOrderIsCheaper) {
  Statistics stats = MakeStats();
  CostModel model;
  std::vector<ConjunctItem> items = {
      MakeBaseItem(L("big(X, Y)"), stats, model.options()),
      MakeBaseItem(L("small(Y, Z)"), stats, model.options()),
  };
  BoundVars none;
  SequenceCost big_first = model.CostSequence(items, {0, 1}, none);
  SequenceCost small_first = model.CostSequence(items, {1, 0}, none);
  ASSERT_TRUE(big_first.safe && small_first.safe);
  EXPECT_LT(small_first.cost, big_first.cost);
  // Cardinality estimates are order-independent.
  EXPECT_NEAR(big_first.out_card, small_first.out_card,
              1e-6 * big_first.out_card);
}

TEST(CostModelTest, HeadBindingActsAsSelection) {
  Statistics stats = MakeStats();
  CostModel model;
  std::vector<ConjunctItem> items = {
      MakeBaseItem(L("big(X, Y)"), stats, model.options())};
  BoundVars free_init, bound_init;
  bound_init.Bind("X");
  SequenceCost free_cost = model.CostSequence(items, {0}, free_init);
  SequenceCost bound_cost = model.CostSequence(items, {0}, bound_init);
  EXPECT_LT(bound_cost.cost, free_cost.cost);
  EXPECT_LT(bound_cost.out_card, free_cost.out_card);
}

TEST(CostModelTest, UnboundComparisonIsInfinite) {
  CostModel model;
  std::vector<ConjunctItem> items;
  ConjunctItem cmp;
  cmp.literal = Literal::MakeBuiltin(BuiltinKind::kGt, Term::MakeVariable("X"),
                                     Term::MakeInt(3));
  items.push_back(cmp);
  BoundVars none;
  SequenceCost sc = model.CostSequence(items, {0}, none);
  EXPECT_FALSE(sc.safe);
  EXPECT_EQ(sc.cost, kInfiniteCost);
}

TEST(CostModelTest, EqBindsAndComparisonFilters) {
  Statistics stats = MakeStats();
  CostModel model;
  std::vector<ConjunctItem> items = {
      MakeBaseItem(L("big(X, Y)"), stats, model.options())};
  ConjunctItem eq;
  eq.literal = Literal::MakeBuiltin(
      BuiltinKind::kEq, Term::MakeVariable("Z"),
      Term::MakeFunction("+", {Term::MakeVariable("Y"), Term::MakeInt(1)}));
  items.push_back(eq);
  ConjunctItem lt;
  lt.literal = Literal::MakeBuiltin(BuiltinKind::kLt, Term::MakeVariable("Z"),
                                    Term::MakeInt(100));
  items.push_back(lt);
  BoundVars none;
  // Scan, then bind Z = Y+1, then filter Z < 100: safe.
  SequenceCost ok = model.CostSequence(items, {0, 1, 2}, none);
  EXPECT_TRUE(ok.safe);
  EXPECT_LT(ok.out_card, 10000.0);  // comparison selectivity applied
  // Filter before binding: unsafe order.
  SequenceCost bad = model.CostSequence(items, {0, 2, 1}, none);
  EXPECT_FALSE(bad.safe);
}

TEST(CostModelTest, NegationRequiresBoundArgs) {
  Statistics stats = MakeStats();
  CostModel model;
  ConjunctItem pos = MakeBaseItem(L("big(X, Y)"), stats, model.options());
  ConjunctItem neg = MakeBaseItem(L("small(X, Y)"), stats, model.options());
  neg.literal = Literal::MakeNegated(
      "small", {Term::MakeVariable("X"), Term::MakeVariable("Y")});
  std::vector<ConjunctItem> items = {pos, neg};
  BoundVars none;
  EXPECT_TRUE(model.CostSequence(items, {0, 1}, none).safe);
  EXPECT_FALSE(model.CostSequence(items, {1, 0}, none).safe);
}

TEST(CostModelTest, CostIsMonotoneInCardinality) {
  // Larger relations cost at least as much (section 6's monotonicity).
  CostModel model;
  Statistics small_stats, big_stats;
  small_stats.Set({"r", 2}, {100.0, {100.0, 100.0}});
  big_stats.Set({"r", 2}, {100000.0, {100.0, 100000.0}});
  std::vector<ConjunctItem> small_items = {
      MakeBaseItem(L("r(X, Y)"), small_stats, model.options())};
  std::vector<ConjunctItem> big_items = {
      MakeBaseItem(L("r(X, Y)"), big_stats, model.options())};
  BoundVars none;
  EXPECT_LE(model.CostSequence(small_items, {0}, none).cost,
            model.CostSequence(big_items, {0}, none).cost);
}

}  // namespace
}  // namespace ldl
