#ifndef LDLOPT_OBS_CALIBRATION_H_
#define LDLOPT_OBS_CALIBRATION_H_

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/context.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "plan/processing_tree.h"

namespace ldl {

/// Cost-model calibration: pairs the optimizer's per-node estimates with
/// the actuals an ExecutionProfile measured, and quantifies how good the
/// paper's section 6 bet — "a monotone, system-dependent cost model over
/// operand sizes picks good processing trees" — actually was on this run.
///
/// Two instruments:
///
///  * **q-error** per node and per query: max(est/act, act/est) of the
///    cardinality, the standard scale-free estimation-quality measure
///    (>= 1, 1 = perfect). Cardinalities below one row are clamped to 1
///    (the usual q-error floor), so empty results don't produce infinities.
///
///  * **plan regret**: re-optimize with the measured cardinalities injected
///    (MeasuredStatistics overlay) and compare the cost of the plan the
///    optimizer *chose* with the plan it *would have chosen* under perfect
///    estimates — both costed by the hindsight model. A ratio of 1 means
///    the estimation errors didn't change the decision; the paper's
///    optimality claim made measurable.

/// One executed node's estimate-vs-actual pairing.
struct NodeCalibration {
  std::string label;   ///< kind + method + goal + adornment
  std::string kind;    ///< PlanNodeKindToString
  std::string method;  ///< EL/PA label ("scan", "counting", ...)
  size_t depth = 0;    ///< tree depth, for indented rendering
  double est_rows = 0;   ///< optimizer estimate (per binding instance)
  double act_rows = 0;   ///< measured rows per real execution
  size_t executions = 0;
  size_t memo_hits = 0;
  double q_error = 1;
};

/// Chosen-vs-hindsight plan comparison, both costed under the measured
/// overlay. regret == 0 (ratio == 1) when estimation errors were harmless.
struct RegretAnalysis {
  bool computed = false;
  std::string note;  ///< why not computed, when !computed

  double est_cost_chosen = 0;       ///< what the optimizer thought it paid
  double measured_cost_chosen = 0;  ///< chosen plan under measured stats
  double measured_cost_hindsight = 0;  ///< best plan under measured stats

  /// Human-readable decision differences ("clique #0 magic -> counting",
  /// "rule 1 order [0,1] -> [1,0]"). Empty = same plan.
  std::vector<std::string> changes;

  double regret() const {
    double r = measured_cost_chosen - measured_cost_hindsight;
    return r > 0 ? r : 0;
  }
  double ratio() const {
    if (measured_cost_hindsight <= 0) return 1;
    double r = measured_cost_chosen / measured_cost_hindsight;
    return r > 1 ? r : 1;
  }
};

/// q-error = max(est/act, act/est) with both sides clamped to >= 1 row.
double QError(double est_rows, double act_rows);

/// The calibration artifact of one EXPLAIN ANALYZE run.
class CalibrationReport {
 public:
  CalibrationReport() = default;

  /// Walks `tree` pairing est_cardinality with the profile's actuals.
  /// Builtin leaves and never-executed nodes carry no measurement and are
  /// skipped. `query` labels the report in exports.
  static CalibrationReport Build(const PlanNode& tree,
                                 const ExecutionProfile& profile,
                                 std::string query = "");

  const std::string& query() const { return query_; }
  const std::vector<NodeCalibration>& nodes() const { return nodes_; }
  size_t sample_count() const { return sorted_q_.size(); }

  /// Exact percentile over the per-node q-errors (linear interpolation
  /// between order statistics). p in [0, 1]; 1 when there are no samples.
  double QErrorPercentile(double p) const;
  double median_q_error() const { return QErrorPercentile(0.5); }
  double p95_q_error() const { return QErrorPercentile(0.95); }
  double max_q_error() const;

  /// Log2-bucketed q-error distributions (obs::Histogram) keyed by node
  /// kind ("SCAN"/"AND"/"OR"/"CC") and, for CC nodes, by recursion method.
  const std::map<std::string, std::unique_ptr<Histogram>>& by_kind() const {
    return by_kind_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& by_method() const {
    return by_method_;
  }

  void set_regret(RegretAnalysis regret) { regret_ = std::move(regret); }
  const RegretAnalysis& regret() const { return regret_; }

  /// Mirrors the report into a registry: calibration.q_error{,.kind.*,
  /// .method.*} histograms, calibration.nodes counter, regret gauges.
  /// No-op on nullptr.
  void ExportTo(MetricsRegistry* metrics) const;

  /// One JSON object: query, per-node entries, aggregate percentiles,
  /// by_kind / by_method summaries, and the regret section.
  void WriteJson(std::ostream& os) const;

  /// Human-readable table plus aggregate and regret lines (the CALIBRATION
  /// and REGRET sections of EXPLAIN ANALYZE).
  std::string ToString() const;

 private:
  std::string query_;
  std::vector<NodeCalibration> nodes_;
  std::vector<double> sorted_q_;  ///< ascending
  std::map<std::string, std::unique_ptr<Histogram>> by_kind_;
  std::map<std::string, std::unique_ptr<Histogram>> by_method_;
  RegretAnalysis regret_;
};

/// Harvests measured per-(predicate, adornment) cardinalities from an
/// executed tree: every SCAN/OR/CC node that really ran contributes its
/// average rows per execution. Replicated subtrees with the same predicate
/// and binding are pooled. This is the overlay OptimizerOptions::measured
/// consumes.
MeasuredStatistics HarvestMeasuredStatistics(const PlanNode& tree,
                                             const ExecutionProfile& profile);

/// Plan-regret analysis: re-optimizes `goal` under `measured` to find the
/// hindsight-optimal plan, costs `chosen` under the same overlay by pinning
/// its decisions (PlanConstraints), and reports both costs plus the
/// decision diff. `options` should be the options the chosen plan was
/// produced with; its measured/pinned fields are overridden internally.
RegretAnalysis ComputePlanRegret(const Program& program,
                                 const Statistics& stats,
                                 const OptimizerOptions& options,
                                 const Literal& goal, const QueryPlan& chosen,
                                 const MeasuredStatistics& measured);

}  // namespace ldl

#endif  // LDLOPT_OBS_CALIBRATION_H_
