#ifndef LDLOPT_ANALYSIS_DIAGNOSTIC_H_
#define LDLOPT_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/status.h"

namespace ldl {

/// Severity of a diagnostic. Errors make the analyzed artifact unusable
/// (the program is ill-formed / the plan violates an invariant); warnings
/// flag likely mistakes that do not prevent execution; notes carry
/// supplementary context.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

const char* SeverityToString(Severity severity);

/// Where a diagnostic points. The AST carries no text offsets, so locations
/// are structural: a rule index into Program::rules() (or SIZE_MAX when the
/// subject is a fact, query, predicate, or plan node) plus a rendered
/// snippet of the offending construct.
struct SourceLocation {
  size_t rule_index = SIZE_MAX;
  std::string context;  ///< e.g. "anc(X, Y) <- par(X, Z), anc(Z, Y)."

  static SourceLocation ForRule(size_t index, std::string rendered) {
    return {index, std::move(rendered)};
  }
  static SourceLocation For(std::string rendered) {
    return {SIZE_MAX, std::move(rendered)};
  }

  bool empty() const { return rule_index == SIZE_MAX && context.empty(); }
  /// "rule 3: anc(X, Y) <- ..." or just the context.
  std::string ToString() const;
};

/// One finding of a static-analysis pass. `code` is a stable identifier
/// (L001..L999 for the program linter, V001..V999 for the plan verifier)
/// that tests and tooling may match on; the catalog lives in DESIGN.md.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  std::string message;
  SourceLocation location;

  /// "error L001: predicate p used with arities 2 and 3 (rule 1: ...)".
  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Diagnostic& diagnostic);

/// Collects diagnostics from one or more passes, in emission order. Passes
/// take a sink pointer; callers inspect counts or convert to a Status.
class DiagnosticSink {
 public:
  DiagnosticSink() = default;

  void Report(Diagnostic diagnostic);
  void Error(std::string code, std::string message, SourceLocation loc = {});
  void Warning(std::string code, std::string message, SourceLocation loc = {});
  void Note(std::string code, std::string message, SourceLocation loc = {});

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return warning_count_; }
  bool HasErrors() const { return error_count_ > 0; }
  bool empty() const { return diagnostics_.empty(); }

  /// True iff some diagnostic carries `code` (any severity).
  bool Has(const std::string& code) const;
  /// Number of diagnostics carrying `code`.
  size_t Count(const std::string& code) const;

  /// Reorders diagnostics into a deterministic presentation order: by rule
  /// index (rule-less diagnostics last), then by code; emission order is
  /// preserved within ties (stable sort). Passes that iterate hash maps can
  /// emit in any order and let callers normalize before printing.
  void StableSortByLocation();

  /// One diagnostic per line.
  std::string ToString() const;

  /// OK when no errors were reported; otherwise a status of `code` whose
  /// message lists every error (warnings are not included).
  Status ToStatus(StatusCode code = StatusCode::kInvalidArgument) const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
  size_t warning_count_ = 0;
};

}  // namespace ldl

#endif  // LDLOPT_ANALYSIS_DIAGNOSTIC_H_
