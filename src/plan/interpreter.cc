#include "plan/interpreter.h"

#include <chrono>
#include <sstream>

#include "base/strings.h"
#include "engine/operators.h"
#include "engine/query_eval.h"
#include "engine/rule_eval.h"
#include "engine/unify.h"

namespace ldl {

namespace {

/// Standardizes a rule apart: every variable v becomes _r.v so that rule
/// variables can never collide with variables of the instance goal.
Rule StandardizeApart(const Rule& rule) {
  auto rename_term = [](const Term& t) {
    // Rebuild the term with renamed variables.
    struct Renamer {
      Term operator()(const Term& t) const {
        switch (t.kind()) {
          case TermKind::kVariable:
            return Term::MakeVariable("_r." + t.text());
          case TermKind::kFunction: {
            std::vector<Term> args;
            args.reserve(t.args().size());
            for (const Term& a : t.args()) args.push_back((*this)(a));
            return Term::MakeFunction(t.text(), std::move(args));
          }
          default:
            return t;
        }
      }
    };
    return Renamer{}(t);
  };
  auto rename_literal = [&rename_term](const Literal& lit) {
    std::vector<Term> args;
    args.reserve(lit.args().size());
    for (const Term& a : lit.args()) args.push_back(rename_term(a));
    return lit.WithArgs(std::move(args));
  };
  std::vector<Literal> body;
  body.reserve(rule.body().size());
  for (const Literal& lit : rule.body()) body.push_back(rename_literal(lit));
  return Rule(rename_literal(rule.head()), std::move(body));
}

RecursionMethod MethodFromLabel(const std::string& label) {
  if (label == "naive") return RecursionMethod::kNaive;
  if (label == "magic") return RecursionMethod::kMagic;
  if (label == "counting") return RecursionMethod::kCounting;
  return RecursionMethod::kSemiNaive;
}

std::string MemoKey(const PlanNode& node, const Literal& goal) {
  std::ostringstream os;
  os << &node << '|' << goal.ToString();
  return os.str();
}

}  // namespace

Result<Relation> TreeInterpreter::Execute(const PlanNode& tree,
                                          const Literal& goal_instance) {
  LDL_ASSIGN_OR_RETURN(const Relation* rel, ExecuteNode(tree, goal_instance));
  return *rel;  // copy out (memo retains ownership)
}

Result<const Relation*> TreeInterpreter::ExecuteNode(
    const PlanNode& node, const Literal& goal_instance) {
  const std::string key = MemoKey(node, goal_instance);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++memo_hits_;
    profile_.nodes[&node].memo_hits++;
    return it->second.get();
  }
  LDL_RETURN_NOT_OK(trace_.CheckCancel());

  // Per-node actuals for EXPLAIN ANALYZE: wall time and tuples examined are
  // inclusive of the node's subtree (children execute inside this frame).
  Span span = trace_.StartSpan(PlanNodeKindToString(node.kind), "interpreter");
  if (span.active()) span.AddArg("goal", goal_instance.ToString());
  const size_t examined_before = counters_.tuples_examined;
  const auto wall_start = std::chrono::steady_clock::now();

  Result<Relation> result = [&]() -> Result<Relation> {
    switch (node.kind) {
      case PlanNodeKind::kScan:
        return ExecuteScan(node, goal_instance);
      case PlanNodeKind::kOr:
        return ExecuteOr(node, goal_instance);
      case PlanNodeKind::kAnd:
        return ExecuteAnd(node, goal_instance);
      case PlanNodeKind::kCc:
        return ExecuteCc(node, goal_instance);
      case PlanNodeKind::kBuiltin:
        return Status::Internal(
            "builtin nodes are evaluated inline by their AND parent");
    }
    return Status::Internal("unknown node kind");
  }();
  LDL_RETURN_NOT_OK(result.status());

  // Rows are accumulated on real evaluations only; the memo-hit path above
  // bumps memo_hits without re-adding rows (see NodeActuals::out_rows).
  NodeActuals& actuals = profile_.nodes[&node];
  actuals.executions++;
  actuals.out_rows += result->size();
  actuals.tuples_examined += counters_.tuples_examined - examined_before;
  actuals.wall_ms += std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();

  auto stored = std::make_unique<Relation>(std::move(result).value());
  // The memo table holds derived tuples for the query's lifetime; charge it
  // against the query's budget like any other derived storage.
  if (trace_.accountant != nullptr) stored->set_accountant(trace_.accountant);
  const Relation* raw = stored.get();
  memo_[key] = std::move(stored);
  return raw;
}

void TreeInterpreter::RecordScanActuals(const PlanNode& node,
                                        const Relation* rel) {
  // Scans under AND/CC parents are resolved inline (never through
  // ExecuteNode), so their actuals are recorded here: one execution per
  // resolution, rows = the materialized base relation. Selection against
  // the binding happens downstream in the rule evaluator, so a scan's
  // per-execution rows measure the relation's total cardinality.
  NodeActuals& actuals = profile_.nodes[&node];
  actuals.executions++;
  actuals.out_rows += rel == nullptr ? 0 : rel->size();
}

Result<Relation> TreeInterpreter::ExecuteScan(const PlanNode& node,
                                              const Literal& goal) {
  Relation* rel = db_->Find(node.goal.predicate());
  Relation out = SelectMatching(rel, goal);
  counters_.tuples_examined += out.size();
  return out;
}

Result<Relation> TreeInterpreter::ExecuteOr(const PlanNode& node,
                                            const Literal& goal) {
  Relation out(node.goal.predicate_name(), node.goal.arity());
  for (const auto& child : node.children) {
    LDL_ASSIGN_OR_RETURN(const Relation* part, ExecuteNode(*child, goal));
    out.InsertAll(*part);
  }
  return out;
}

Result<Relation> TreeInterpreter::ExecuteAnd(const PlanNode& node,
                                             const Literal& goal) {
  if (node.rule_index >= program_.rules().size()) {
    return Status::Internal("AND node without a valid rule index");
  }
  // Specialize the rule to the instance goal.
  Rule renamed = StandardizeApart(program_.rules()[node.rule_index]);
  Substitution unifier;
  {
    bool ok = true;
    for (size_t i = 0; i < goal.arity(); ++i) {
      if (!Unify(renamed.head().args()[i], goal.args()[i], &unifier)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      return Relation(node.goal.predicate_name(), node.goal.arity());
    }
  }
  // Build the execution-order body (children order); child j corresponds to
  // original body position node.body_order[j].
  std::vector<Literal> exec_body;
  exec_body.reserve(renamed.body().size());
  for (size_t j = 0; j < node.body_order.size(); ++j) {
    exec_body.push_back(
        unifier.Apply(renamed.body()[node.body_order[j]]));
  }
  Rule specialized(unifier.Apply(renamed.head()), std::move(exec_body));

  // EL: an AND node labeled "hash-join" executes through the materialized
  // whole-relation operators instead of the tuple-at-a-time pipeline.
  if (node.method == "hash-join") {
    auto via_hash = TryHashJoin(node, specialized);
    if (via_hash.has_value()) return std::move(*via_hash);
    // Shape not expressible as pure equi-joins: fall through.
  }

  // Resolvers: body position j <-> node.children[j].
  Status child_error = Status::OK();
  RelationResolver resolve = [&](const Literal&, size_t pos) -> Relation* {
    const PlanNode& child = *node.children[pos];
    if (child.kind == PlanNodeKind::kBuiltin) return nullptr;
    if (child.kind == PlanNodeKind::kScan) {
      Relation* base = db_->Find(child.goal.predicate());
      RecordScanActuals(child, base);
      return base;
    }
    // Materialized derived subtree: full result, computed once.
    auto rel = ExecuteNode(child, child.goal);
    if (!rel.ok()) {
      child_error = rel.status();
      return nullptr;
    }
    // Memo owns the relation; safe to hand out a mutable pointer for index
    // building.
    return const_cast<Relation*>(*rel);
  };
  RuleEvalOptions options;
  options.cancel = trace_.cancel;
  options.accountant = trace_.accountant;
  options.pattern_resolver = [&](const Literal& lit, size_t pos,
                                 const std::vector<Term>& patterns)
      -> Relation* {
    const PlanNode& child = *node.children[pos];
    if (child.kind != PlanNodeKind::kOr && child.kind != PlanNodeKind::kCc) {
      return nullptr;  // base/builtin: plain resolution
    }
    if (child.materialized) return nullptr;  // square node: full subtree
    // Triangle node: evaluate the subtree for this binding instance only.
    Literal instance = lit.WithArgs(std::vector<Term>(patterns));
    auto rel = ExecuteNode(child, instance);
    if (!rel.ok()) {
      child_error = rel.status();
      return nullptr;
    }
    return const_cast<Relation*>(*rel);
  };

  Relation out(node.goal.predicate_name(), node.goal.arity());
  auto n = EvaluateRule(specialized, resolve, &out, &counters_, options);
  LDL_RETURN_NOT_OK(n.status());
  LDL_RETURN_NOT_OK(child_error);
  return out;
}

std::optional<Result<Relation>> TreeInterpreter::TryHashJoin(
    const PlanNode& node, const Rule& specialized) {
  // Applicability: every body literal positive, every argument a variable
  // or a constant, head arguments variables/constants.
  for (const Literal& lit : specialized.body()) {
    if (lit.IsBuiltin() || lit.negated()) return std::nullopt;
    for (const Term& a : lit.args()) {
      if (a.kind() == TermKind::kFunction) return std::nullopt;
    }
  }
  for (const Term& a : specialized.head().args()) {
    if (a.kind() == TermKind::kFunction) return std::nullopt;
  }

  // Materialize every child; apply constant selections; track variable ->
  // column positions (first occurrence). Repeated variables within one
  // literal are handled by a same-relation key comparison fallback.
  Relation acc("", 0);
  std::map<std::string, size_t> var_col;
  bool first = true;
  for (size_t j = 0; j < specialized.body().size(); ++j) {
    const Literal& lit = specialized.body()[j];
    const PlanNode& child = *node.children[j];
    Relation input("", 0);
    if (child.kind == PlanNodeKind::kScan) {
      Relation* base = db_->Find(child.goal.predicate());
      RecordScanActuals(child, base);
      input = base == nullptr ? Relation(lit.predicate_name(), lit.arity())
                              : *base;
    } else {
      auto rel = ExecuteNode(child, child.goal);
      if (!rel.ok()) return Result<Relation>(rel.status());
      input = **rel;
    }
    // Constant selections and repeated-variable diagonal filters.
    std::map<std::string, size_t> local_first;
    for (size_t c = 0; c < lit.arity(); ++c) {
      const Term& a = lit.args()[c];
      if (a.kind() != TermKind::kVariable) {
        input = Select(input, c, a, &counters_);
      } else {
        auto [it, inserted] = local_first.emplace(a.text(), c);
        if (!inserted) {
          // diagonal: keep tuples where both columns agree
          Relation filtered(input.name(), input.arity());
          for (const Tuple& t : input.tuples()) {
            counters_.tuples_examined++;
            if (t[it->second] == t[c]) filtered.Insert(t);
          }
          input = std::move(filtered);
        }
      }
    }

    if (first) {
      acc = std::move(input);
      for (const auto& [v, c] : local_first) var_col[v] = c;
      first = false;
      continue;
    }
    JoinKeys keys;
    for (const auto& [v, c] : local_first) {
      auto it = var_col.find(v);
      if (it != var_col.end()) keys.push_back({it->second, c});
    }
    size_t offset = acc.arity();
    acc = HashJoin(acc, input, keys, &counters_);
    for (const auto& [v, c] : local_first) {
      var_col.emplace(v, offset + c);  // keep first occurrence if present
    }
  }

  // Project the head.
  Relation out(node.goal.predicate_name(), node.goal.arity());
  if (first) {
    // Empty body: the head itself (must be ground).
    Tuple t;
    for (const Term& a : specialized.head().args()) {
      if (!a.IsGround()) return Result<Relation>(std::move(out));
      t.push_back(a);
    }
    out.Insert(std::move(t));
    return Result<Relation>(std::move(out));
  }
  for (const Tuple& t : acc.tuples()) {
    counters_.tuples_examined++;
    Tuple h;
    h.reserve(specialized.head().arity());
    bool ok = true;
    for (const Term& a : specialized.head().args()) {
      if (a.kind() == TermKind::kVariable) {
        auto it = var_col.find(a.text());
        if (it == var_col.end()) {
          ok = false;
          break;
        }
        h.push_back(t[it->second]);
      } else {
        h.push_back(a);
      }
    }
    if (ok) {
      counters_.derivations++;
      out.Insert(std::move(h));
    }
  }
  counters_.inserts += out.size();
  return Result<Relation>(std::move(out));
}

Result<Relation> TreeInterpreter::ExecuteCc(const PlanNode& node,
                                            const Literal& goal) {
  // Clique subprogram in clique_rules order.
  Program sub;
  for (size_t rule_index : node.clique_rules) {
    sub.AddRule(program_.rules()[rule_index]);
  }

  // Materialize the CC node's operand subtrees (non-clique derived
  // literals) into a merged database, alongside the base relations the
  // clique reads.
  Database merged;
  merged.set_accountant(trace_.accountant);
  for (const auto& child : node.children) {
    if (child->kind == PlanNodeKind::kBuiltin) continue;
    if (child->kind == PlanNodeKind::kScan) {
      // Read from db_ below; still record the base-relation read so the
      // profile carries true base cardinalities.
      RecordScanActuals(*child, db_->Find(child->goal.predicate()));
      continue;
    }
    LDL_ASSIGN_OR_RETURN(const Relation* rel,
                         ExecuteNode(*child, child->goal));
    merged.GetOrCreate(child->goal.predicate())->InsertAll(*rel);
  }
  for (size_t rule_index : node.clique_rules) {
    for (const Literal& lit : program_.rules()[rule_index].body()) {
      if (lit.IsBuiltin() || sub.IsDerived(lit.predicate())) continue;
      if (merged.Exists(lit.predicate())) continue;
      Relation* base = db_->Find(lit.predicate());
      if (base != nullptr) {
        merged.GetOrCreate(lit.predicate())->InsertAll(*base);
      }
    }
  }

  QueryEvalOptions options;
  options.fixpoint.trace = trace_;
  for (size_t i = 0; i < node.clique_rules.size() &&
                     i < node.clique_orders.size();
       ++i) {
    options.fixpoint.rule_orders[i] = node.clique_orders[i];
    options.sips.SetOrder(i, node.clique_orders[i]);
  }
  LDL_ASSIGN_OR_RETURN(
      QueryResult result,
      EvaluateQuery(sub, &merged, goal, MethodFromLabel(node.method),
                    options));
  counters_.Add(result.stats.counters);
  return std::move(result.answers);
}

}  // namespace ldl
