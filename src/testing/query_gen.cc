#include "testing/query_gen.h"

#include <cmath>

#include "base/strings.h"

namespace ldl {
namespace testing {

const char* QueryShapeToString(QueryShape shape) {
  switch (shape) {
    case QueryShape::kChain:
      return "chain";
    case QueryShape::kStar:
      return "star";
    case QueryShape::kCycle:
      return "cycle";
    case QueryShape::kRandom:
      return "random";
  }
  return "?";
}

namespace {

Term V(size_t i) { return Term::MakeVariable(StrCat("V", i)); }

double LogUniform(Rng* rng, double lo, double hi) {
  double u = rng->UniformDouble();
  return std::exp(std::log(lo) + u * (std::log(hi) - std::log(lo)));
}

}  // namespace

RandomConjunct MakeRandomConjunct(QueryShape shape, size_t n, Rng* rng,
                                  const ConjunctGenOptions& options) {
  RandomConjunct out;
  std::vector<Literal> body;
  for (size_t i = 0; i < n; ++i) {
    size_t a, b;
    switch (shape) {
      case QueryShape::kChain:
        a = i;
        b = i + 1;
        break;
      case QueryShape::kStar:
        a = 0;
        b = i + 1;
        break;
      case QueryShape::kCycle:
        a = i;
        b = (i + 1) % n;  // last edge closes the cycle
        break;
      case QueryShape::kRandom:
      default:
        // Connected: one endpoint among already-used variables. Avoid
        // repeated variables within one literal (r(V, V)), for which subset
        // cardinality becomes order-dependent (see cost_model.h).
        a = i == 0 ? 0 : rng->Uniform(i + 1);
        b = i + 1;
        if (rng->Uniform(4) == 0 && i > 1) {
          b = rng->Uniform(i);  // extra cycle edge
          while (b == a) b = rng->Uniform(i + 2);
        }
        break;
    }
    body.push_back(Literal::Make(StrCat("r", i), {V(a), V(b)}));

    double card = LogUniform(rng, options.min_cardinality,
                             options.max_cardinality);
    RelationStats rs;
    rs.cardinality = card;
    rs.distinct = {
        std::max(1.0, LogUniform(rng, 1.0, card)),
        std::max(1.0, LogUniform(rng, 1.0, card)),
    };
    out.stats.Set({StrCat("r", i), 2}, rs);
  }
  out.rule = Rule(Literal::Make("q", {V(0), V(n)}), body);
  for (const Literal& lit : body) {
    out.items.push_back(MakeBaseItem(lit, out.stats, options.cost));
  }
  return out;
}

}  // namespace testing
}  // namespace ldl
