#ifndef LDLOPT_STORAGE_RELATION_H_
#define LDLOPT_STORAGE_RELATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "storage/tuple.h"

namespace ldl {

/// A set-semantics relation: duplicate-free bag of ground tuples with
/// lazily built, incrementally maintained hash indexes on column subsets.
///
/// Indexes survive inserts (they are extended on next access), which matters
/// because fixpoint evaluation keeps inserting into the relations it reads.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  /// Inserts `t`; returns true iff the tuple was new. CHECK-fails on arity
  /// mismatch in debug builds; silently rejects in release.
  bool Insert(Tuple t);

  /// Inserts every tuple of `other` (arity must match); returns the number
  /// of new tuples.
  size_t InsertAll(const Relation& other);

  bool Contains(const Tuple& t) const;

  void Clear();

  /// Posting list of tuple ids whose values at `cols` equal `key` (same
  /// order). `cols` must be strictly increasing. Builds/extends the index
  /// on demand.
  const std::vector<uint32_t>& Lookup(const std::vector<int>& cols,
                                      const Tuple& key);

  /// Number of distinct values in column `col` (over current contents).
  size_t DistinctCount(size_t col) const;

  std::string ToString(size_t max_tuples = 20) const;

 private:
  struct Index {
    // Key: projected column values. Value: ids of matching tuples.
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> postings;
    size_t built_upto = 0;  // tuples_[0, built_upto) are indexed
  };

  void ExtendIndex(const std::vector<int>& cols, Index* index);

  std::string name_;
  size_t arity_ = 0;
  std::vector<Tuple> tuples_;
  // Dedup structure: hash -> tuple ids with that hash.
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  // Secondary indexes keyed by the (sorted) column list.
  std::map<std::vector<int>, Index> indexes_;
};

}  // namespace ldl

#endif  // LDLOPT_STORAGE_RELATION_H_
