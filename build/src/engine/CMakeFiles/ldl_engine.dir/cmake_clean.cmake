file(REMOVE_RECURSE
  "CMakeFiles/ldl_engine.dir/builtins.cc.o"
  "CMakeFiles/ldl_engine.dir/builtins.cc.o.d"
  "CMakeFiles/ldl_engine.dir/counting.cc.o"
  "CMakeFiles/ldl_engine.dir/counting.cc.o.d"
  "CMakeFiles/ldl_engine.dir/fixpoint.cc.o"
  "CMakeFiles/ldl_engine.dir/fixpoint.cc.o.d"
  "CMakeFiles/ldl_engine.dir/magic.cc.o"
  "CMakeFiles/ldl_engine.dir/magic.cc.o.d"
  "CMakeFiles/ldl_engine.dir/operators.cc.o"
  "CMakeFiles/ldl_engine.dir/operators.cc.o.d"
  "CMakeFiles/ldl_engine.dir/query_eval.cc.o"
  "CMakeFiles/ldl_engine.dir/query_eval.cc.o.d"
  "CMakeFiles/ldl_engine.dir/rule_eval.cc.o"
  "CMakeFiles/ldl_engine.dir/rule_eval.cc.o.d"
  "CMakeFiles/ldl_engine.dir/unify.cc.o"
  "CMakeFiles/ldl_engine.dir/unify.cc.o.d"
  "libldl_engine.a"
  "libldl_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
