file(REMOVE_RECURSE
  "libldl_storage.a"
)
