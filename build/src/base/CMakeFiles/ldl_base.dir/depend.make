# Empty dependencies file for ldl_base.
# This may be replaced when dependencies are built.
