# Empty dependencies file for bench_annealing.
# This may be replaced when dependencies are built.
