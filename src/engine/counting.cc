#include "engine/counting.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "engine/builtins.h"
#include "base/strings.h"
#include "graph/binding.h"
#include "graph/dependency_graph.h"

namespace ldl {

std::string CountingProgram::ToString() const {
  std::ostringstream os;
  os << "% counting rewrite; seed " << seed.ToString() << ", answers in "
     << answer_goal.ToString() << "\n";
  os << rewritten.ToString();
  return os.str();
}

namespace {

std::set<std::string> VarsOf(const Literal& lit) {
  std::vector<std::string> v;
  lit.CollectVariables(&v);
  return {v.begin(), v.end()};
}

std::set<std::string> VarsOfTerms(const std::vector<Term>& terms) {
  std::set<std::string> out;
  for (const Term& t : terms) {
    std::vector<std::string> v;
    t.CollectVariables(&v);
    out.insert(v.begin(), v.end());
  }
  return out;
}

}  // namespace

Result<CountingProgram> CountingRewrite(const Program& program,
                                        const Literal& query_goal) {
  const PredicateId qpred = query_goal.predicate();
  if (!program.IsDerived(qpred)) {
    return Status::InvalidArgument(
        StrCat("query predicate ", qpred.ToString(), " is not derived"));
  }

  DependencyGraph graph = DependencyGraph::Build(program);
  int ci = graph.CliqueIndex(qpred);
  if (ci < 0) {
    return Status::Unsupported("counting: query predicate is not recursive");
  }
  const RecursiveClique& clique = graph.cliques()[ci];
  if (clique.predicates.size() != 1) {
    return Status::Unsupported("counting: mutual recursion not supported");
  }
  if (clique.recursive_rules.size() != 1) {
    return Status::Unsupported(
        "counting: clique must have exactly one recursive rule");
  }
  if (clique.exit_rules.empty()) {
    return Status::Unsupported("counting: clique has no exit rule");
  }

  const Adornment adn = Adornment::FromGoal(query_goal);
  if (adn.BoundCount() == 0) {
    return Status::Unsupported("counting: query has no bound argument");
  }

  const Rule& rec_rule = program.rules()[clique.recursive_rules[0]];
  // Locate the single recursive occurrence; require linearity and that all
  // other body literals are base or builtin.
  int rec_pos = -1;
  for (size_t i = 0; i < rec_rule.body().size(); ++i) {
    const Literal& lit = rec_rule.body()[i];
    if (!lit.IsBuiltin() && lit.predicate() == qpred) {
      if (lit.negated()) {
        return Status::Unsupported("counting: negated recursive literal");
      }
      if (rec_pos >= 0) {
        return Status::Unsupported("counting: nonlinear recursive rule");
      }
      rec_pos = static_cast<int>(i);
    } else if (!lit.IsBuiltin() && program.IsDerived(lit.predicate())) {
      return Status::Unsupported(
          "counting: recursive rule references another derived predicate");
    }
  }
  if (rec_pos < 0) {
    return Status::Internal("counting: recursive occurrence not found");
  }
  const Literal& rec_lit = rec_rule.body()[rec_pos];

  // Split head args into bound/free by the query adornment.
  const Literal& head = rec_rule.head();
  std::vector<Term> head_bound, head_free, rec_bound, rec_free;
  for (size_t i = 0; i < adn.size(); ++i) {
    (adn.IsBound(i) ? head_bound : head_free).push_back(head.args()[i]);
    (adn.IsBound(i) ? rec_bound : rec_free).push_back(rec_lit.args()[i]);
  }

  // Greedy up-part closure from the bound head variables.
  BoundVars bound;
  for (const Term& t : head_bound) bound.BindTerm(t);
  std::vector<bool> in_up(rec_rule.body().size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < rec_rule.body().size(); ++i) {
      if (in_up[i] || static_cast<int>(i) == rec_pos) continue;
      const Literal& lit = rec_rule.body()[i];
      std::set<std::string> vars = VarsOf(lit);
      bool touches = std::any_of(
          vars.begin(), vars.end(),
          [&bound](const std::string& v) { return bound.IsBound(v); });
      // Builtins join the up part only when computable there.
      if (lit.IsBuiltin()) {
        bool lhs_b = bound.IsTermBound(lit.args()[0]);
        bool rhs_b = bound.IsTermBound(lit.args()[1]);
        if (!BuiltinComputable(lit, lhs_b, rhs_b)) continue;
      } else if (!touches) {
        continue;
      }
      in_up[i] = true;
      PropagateBindings(lit, &bound);
      changed = true;
    }
  }

  // The recursive call's bound arguments must be computed by the up part,
  // and the call must repeat the head's adornment.
  for (const Term& t : rec_bound) {
    if (!bound.IsTermBound(t)) {
      return Status::Unsupported(
          "counting: up part does not bind the recursive call's bound "
          "arguments");
    }
  }
  for (const Term& t : rec_free) {
    if (bound.IsTermBound(t) && !t.IsGround()) {
      return Status::Unsupported(
          "counting: recursive call is not reached with the query's "
          "adornment (a free position is bound)");
    }
  }

  // Down part: everything not in the up part (except the recursive call).
  // Separability: its variables must not overlap the up part's variables
  // except through the recursive call's free arguments.
  std::set<std::string> up_vars = VarsOfTerms(head_bound);
  for (size_t i = 0; i < rec_rule.body().size(); ++i) {
    if (in_up[i]) {
      auto v = VarsOf(rec_rule.body()[i]);
      up_vars.insert(v.begin(), v.end());
    }
  }
  std::set<std::string> rec_free_vars = VarsOfTerms(rec_free);
  std::vector<size_t> down_positions;
  std::set<std::string> down_vars = rec_free_vars;
  for (size_t i = 0; i < rec_rule.body().size(); ++i) {
    if (in_up[i] || static_cast<int>(i) == rec_pos) continue;
    std::set<std::string> vars = VarsOf(rec_rule.body()[i]);
    std::set<std::string> overlap;
    for (const auto& v : vars) {
      if (up_vars.count(v) && !rec_free_vars.count(v)) overlap.insert(v);
    }
    if (!overlap.empty()) {
      return Status::Unsupported(StrCat(
          "counting: body is not separable (down literal ",
          rec_rule.body()[i].ToString(), " shares variable '",
          *overlap.begin(), "' with the up part)"));
    }
    down_positions.push_back(i);
    down_vars.insert(vars.begin(), vars.end());
  }
  // Head free arguments must be derivable from the descent.
  {
    std::set<std::string> head_free_vars = VarsOfTerms(head_free);
    for (const auto& v : head_free_vars) {
      if (!down_vars.count(v)) {
        return Status::Unsupported(
            StrCat("counting: head free variable '", v,
                   "' is not produced by the down part"));
      }
    }
  }

  // --- Build the rewritten program. ---
  CountingProgram out;
  const std::string cnt_name = StrCat("cnt.", qpred.name);
  const std::string ans_name = StrCat("ans.", qpred.name);
  const size_t n_free = head_free.size();
  out.answer_pred = {ans_name, 1 + n_free};

  Term var_i = Term::MakeVariable("_CntI");
  Term var_j = Term::MakeVariable("_CntJ");

  // Seed: cnt.p(0, query constants at bound positions).
  {
    std::vector<Term> args;
    args.push_back(Term::MakeInt(0));
    for (size_t i = 0; i < adn.size(); ++i) {
      if (adn.IsBound(i)) args.push_back(query_goal.args()[i]);
    }
    out.seed = Literal::Make(cnt_name, std::move(args));
  }

  // Ascent: cnt.p(J, rb) <- cnt.p(I, hb), up-part, J = I + 1.
  {
    std::vector<Term> head_args;
    head_args.push_back(var_j);
    for (const Term& t : rec_bound) head_args.push_back(t);
    std::vector<Term> cnt_args;
    cnt_args.push_back(var_i);
    for (const Term& t : head_bound) cnt_args.push_back(t);
    std::vector<Literal> body;
    body.push_back(Literal::Make(cnt_name, std::move(cnt_args)));
    for (size_t i = 0; i < rec_rule.body().size(); ++i) {
      if (in_up[i]) body.push_back(rec_rule.body()[i]);
    }
    body.push_back(Literal::MakeBuiltin(
        BuiltinKind::kEq, var_j,
        Term::MakeFunction("+", {var_i, Term::MakeInt(1)})));
    out.rewritten.AddRule(
        Rule(Literal::Make(cnt_name, std::move(head_args)), std::move(body)));
  }

  // Exit rules: ans.p(I, ef) <- cnt.p(I, eb), exit-body.
  for (size_t rule_index : clique.exit_rules) {
    const Rule& exit_rule = program.rules()[rule_index];
    for (const Literal& lit : exit_rule.body()) {
      if (!lit.IsBuiltin() && program.IsDerived(lit.predicate())) {
        return Status::Unsupported(
            "counting: exit rule references a derived predicate");
      }
    }
    std::vector<Term> eb, ef;
    for (size_t i = 0; i < adn.size(); ++i) {
      (adn.IsBound(i) ? eb : ef).push_back(exit_rule.head().args()[i]);
    }
    std::vector<Term> head_args;
    head_args.push_back(var_i);
    for (const Term& t : ef) head_args.push_back(t);
    std::vector<Term> cnt_args;
    cnt_args.push_back(var_i);
    for (const Term& t : eb) cnt_args.push_back(t);
    std::vector<Literal> body;
    body.push_back(Literal::Make(cnt_name, std::move(cnt_args)));
    for (const Literal& lit : exit_rule.body()) body.push_back(lit);
    out.rewritten.AddRule(
        Rule(Literal::Make(ans_name, std::move(head_args)), std::move(body)));
  }

  // Descent: ans.p(I, hf) <- ans.p(J, rf), down-part, I = J - 1, I >= 0.
  {
    std::vector<Term> head_args;
    head_args.push_back(var_i);
    for (const Term& t : head_free) head_args.push_back(t);
    std::vector<Term> ans_args;
    ans_args.push_back(var_j);
    for (const Term& t : rec_free) ans_args.push_back(t);
    std::vector<Literal> body;
    body.push_back(Literal::Make(ans_name, std::move(ans_args)));
    for (size_t i : down_positions) body.push_back(rec_rule.body()[i]);
    body.push_back(Literal::MakeBuiltin(
        BuiltinKind::kEq, var_i,
        Term::MakeFunction("-", {var_j, Term::MakeInt(1)})));
    body.push_back(Literal::MakeBuiltin(BuiltinKind::kGe, var_i,
                                        Term::MakeInt(0)));
    out.rewritten.AddRule(
        Rule(Literal::Make(ans_name, std::move(head_args)), std::move(body)));
  }

  // Answer goal: ans.p(0, free-arg terms of the query).
  {
    std::vector<Term> args;
    args.push_back(Term::MakeInt(0));
    for (size_t i = 0; i < adn.size(); ++i) {
      if (!adn.IsBound(i)) args.push_back(query_goal.args()[i]);
    }
    out.answer_goal = Literal::Make(ans_name, std::move(args));
  }

  return out;
}

}  // namespace ldl
