#ifndef LDLOPT_AST_PROGRAM_H_
#define LDLOPT_AST_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/literal.h"
#include "ast/rule.h"
#include "base/status.h"

namespace ldl {

/// A query goal with an optional name, e.g. `sg(1, Y)?`. The pattern of
/// bound (constant) and unbound (variable) arguments is the *query form* of
/// the paper's section 2: sg(c, Y)? and sg(X, Y)? are optimized separately.
struct QueryForm {
  Literal goal;

  std::string ToString() const { return goal.ToString() + "?"; }
};

/// The rule base: an ordered collection of rules plus any ground facts that
/// appeared inline in the program text. Provides the predicate-level lookup
/// structure the compiler and optimizer need.
class Program {
 public:
  Program() = default;

  void AddRule(Rule rule);
  /// Ground facts that appeared in the program text (head-only ground rules);
  /// LdlSystem loads them into the Database.
  void AddFact(Literal fact);
  void AddQuery(QueryForm query);

  const std::vector<Rule>& rules() const { return rules_; }
  const std::vector<Literal>& facts() const { return facts_; }
  const std::vector<QueryForm>& queries() const { return queries_; }

  /// Indices (into rules()) of the rules whose head is `pred`.
  const std::vector<size_t>& RulesFor(const PredicateId& pred) const;

  /// True iff at least one rule defines `pred`.
  bool IsDerived(const PredicateId& pred) const;

  /// All predicates appearing as some rule head.
  std::vector<PredicateId> DerivedPredicates() const;

  /// All non-builtin predicates appearing in any rule body or fact but
  /// defined by no rule; these must be base relations in the database.
  std::vector<PredicateId> BasePredicates() const;

  /// Structural sanity checks: consistent arity per predicate name, no rule
  /// head that is a builtin, negation not applied to builtins.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
  std::vector<Literal> facts_;
  std::vector<QueryForm> queries_;
  std::unordered_map<PredicateId, std::vector<size_t>, PredicateIdHash>
      rules_by_head_;
};

}  // namespace ldl

#endif  // LDLOPT_AST_PROGRAM_H_
