file(REMOVE_RECURSE
  "CMakeFiles/same_generation.dir/same_generation.cpp.o"
  "CMakeFiles/same_generation.dir/same_generation.cpp.o.d"
  "same_generation"
  "same_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/same_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
