#include "optimizer/project_pushdown.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "base/strings.h"

namespace ldl {

std::string ProjectedProgram::ToString() const {
  std::ostringstream os;
  os << "% projection pushdown: dropped " << positions_dropped
     << " argument positions\n";
  for (const auto& [pred, kept] : kept_positions) {
    os << "%   " << pred.ToString() << " -> kept (";
    for (size_t i = 0; i < kept.size(); ++i) {
      if (i) os << ", ";
      os << kept[i];
    }
    os << ")\n";
  }
  os << rewritten.ToString();
  return os.str();
}

namespace {

using NeededMap = std::map<PredicateId, std::set<size_t>>;

// Variable occurrence counts across a set of literals/terms.
void CountVars(const Term& t, std::map<std::string, size_t>* counts) {
  std::vector<std::string> vars;
  t.CollectVariables(&vars);
  for (const auto& v : vars) (*counts)[v]++;
}

}  // namespace

Result<ProjectedProgram> PushProjections(const Program& program,
                                         const Literal& goal) {
  if (!program.IsDerived(goal.predicate())) {
    return Status::InvalidArgument(
        StrCat("query predicate ", goal.predicate().ToString(),
               " is not derived"));
  }

  // --- Fixpoint: which positions of each derived predicate are needed? ---
  NeededMap needed;
  {
    std::set<size_t> all;
    for (size_t i = 0; i < goal.arity(); ++i) all.insert(i);
    needed[goal.predicate()] = all;
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules()) {
      const PredicateId head_pred = rule.head().predicate();
      const std::set<size_t>& head_needed = needed[head_pred];

      // Variables "consumed" inside this rule: variables of needed head
      // positions, of builtins, of negated literals.
      std::map<std::string, size_t> external;
      for (size_t i = 0; i < rule.head().arity(); ++i) {
        if (head_needed.count(i)) CountVars(rule.head().args()[i], &external);
      }
      for (const Literal& lit : rule.body()) {
        if (lit.IsBuiltin() || lit.negated()) {
          for (const Term& a : lit.args()) CountVars(a, &external);
        }
      }
      // Total occurrence counts across positive body literals.
      std::map<std::string, size_t> body_counts;
      for (const Literal& lit : rule.body()) {
        if (lit.IsBuiltin() || lit.negated()) continue;
        for (const Term& a : lit.args()) CountVars(a, &body_counts);
      }

      for (const Literal& lit : rule.body()) {
        if (lit.IsBuiltin()) continue;
        const PredicateId pred = lit.predicate();
        if (!program.IsDerived(pred)) continue;
        std::set<size_t>& pred_needed = needed[pred];
        for (size_t k = 0; k < lit.arity(); ++k) {
          if (pred_needed.count(k)) continue;
          const Term& t = lit.args()[k];
          bool is_needed = false;
          if (lit.negated()) {
            // Dropping a position under negation changes its meaning.
            is_needed = true;
          } else if (t.kind() != TermKind::kVariable) {
            // Constants select; function terms pattern-match.
            is_needed = true;
          } else {
            const std::string& v = t.text();
            size_t in_this_literal = 0;
            for (const Term& a : lit.args()) {
              if (a.kind() == TermKind::kVariable && a.text() == v) {
                ++in_this_literal;
              }
            }
            if (external.count(v) || in_this_literal > 1 ||
                body_counts[v] > in_this_literal) {
              is_needed = true;
            }
          }
          if (is_needed && pred_needed.insert(k).second) changed = true;
        }
      }
    }
  }

  // --- Rewrite. ---
  ProjectedProgram out;
  out.goal = goal;
  auto reduced_name = [](const PredicateId& pred) {
    return StrCat(pred.name, ".pp");
  };
  auto is_reduced = [&](const PredicateId& pred) {
    if (!program.IsDerived(pred)) return false;
    auto it = needed.find(pred);
    size_t n = it == needed.end() ? 0 : it->second.size();
    return n < pred.arity;
  };
  for (const auto& [pred, keep] : needed) {
    if (!is_reduced(pred)) continue;
    std::vector<size_t> kept(keep.begin(), keep.end());
    out.positions_dropped += pred.arity - kept.size();
    out.kept_positions[pred] = std::move(kept);
  }

  auto rewrite_literal = [&](const Literal& lit) {
    if (lit.IsBuiltin() || !is_reduced(lit.predicate())) return lit;
    const auto& kept = out.kept_positions.at(lit.predicate());
    std::vector<Term> args;
    args.reserve(kept.size());
    for (size_t k : kept) args.push_back(lit.args()[k]);
    Literal renamed = lit.WithArgs(std::move(args));
    return renamed.WithPredicateName(reduced_name(lit.predicate()));
  };

  for (const Rule& rule : program.rules()) {
    Literal new_head = rewrite_literal(rule.head());
    std::vector<Literal> new_body;
    new_body.reserve(rule.body().size());
    for (const Literal& lit : rule.body()) {
      // Negated occurrences of reduced predicates would change meaning;
      // the needed-fixpoint already forced all their positions, so the
      // rewrite below is the identity for them.
      new_body.push_back(rewrite_literal(lit));
    }
    out.rewritten.AddRule(Rule(std::move(new_head), std::move(new_body)));
  }
  return out;
}

}  // namespace ldl
