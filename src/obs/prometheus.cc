#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ldl {

namespace {

/// Shortest decimal that parses back to the same double; Prometheus spells
/// non-finite values Inf/-Inf/NaN (unlike JSON, they are representable).
std::string PromDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void WriteHeader(std::ostream& os, const std::string& exposed,
                 std::string_view original, const char* type) {
  // The HELP line carries the registry-side name, so a scrape can be mapped
  // back to the names --metrics-json and the in-process API use.
  os << "# HELP " << exposed << " ldlopt metric " << original << "\n";
  os << "# TYPE " << exposed << " " << type << "\n";
}

}  // namespace

std::string PromMetricName(std::string_view name, std::string_view prefix) {
  std::string canonical = SanitizeMetricName(name);
  std::string out;
  out.reserve(prefix.size() + canonical.size());
  out.append(prefix);
  for (char c : canonical) out.push_back(c == '.' ? '_' : c);
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string PromLabelEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void WritePrometheus(const MetricsRegistry& registry, std::ostream& os,
                     const PrometheusOptions& options) {
  if (options.build_info != nullptr) {
    const BuildInfo& b = *options.build_info;
    const std::string name = PromMetricName("build_info", options.prefix);
    os << "# HELP " << name << " Build metadata for this ldlopt binary.\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << "{compiler=\"" << PromLabelEscape(b.compiler)
       << "\",standard=\"" << PromLabelEscape(b.standard)
       << "\",build_type=\"" << PromLabelEscape(b.build_type) << "\",git=\""
       << PromLabelEscape(b.git) << "\",sanitizer=\""
       << PromLabelEscape(b.sanitizer) << "\"} 1\n";
  }

  for (const auto& [name, value] : registry.CounterValues()) {
    const std::string exposed = PromMetricName(name, options.prefix);
    WriteHeader(os, exposed, name, "counter");
    os << exposed << " " << value << "\n";
  }

  for (const auto& [name, value] : registry.GaugeValues()) {
    const std::string exposed = PromMetricName(name, options.prefix);
    WriteHeader(os, exposed, name, "gauge");
    os << exposed << " " << PromDouble(value) << "\n";
  }

  for (const auto& [name, hist] : registry.HistogramEntries()) {
    const std::string exposed = PromMetricName(name, options.prefix);
    WriteHeader(os, exposed, name, "histogram");
    // Bucket b of the lock-free histogram holds v in [2^(b-1), 2^b) (b=0:
    // [0,1)), so the cumulative count through bucket b is the count of
    // values < 2^b — emitted as le="2^b". Only buckets up to the highest
    // non-empty one are written; +Inf always closes the family.
    size_t highest = 0;
    bool any = false;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (hist->bucket(b) != 0) {
        highest = b;
        any = true;
      }
    }
    uint64_t cumulative = 0;
    if (any) {
      for (size_t b = 0; b <= highest; ++b) {
        cumulative += hist->bucket(b);
        os << exposed << "_bucket{le=\"" << (1ull << b) << "\"} "
           << cumulative << "\n";
      }
    }
    os << exposed << "_bucket{le=\"+Inf\"} " << hist->count() << "\n";
    os << exposed << "_sum " << PromDouble(hist->sum()) << "\n";
    os << exposed << "_count " << hist->count() << "\n";
  }
}

std::string RenderPrometheus(const MetricsRegistry& registry,
                             const PrometheusOptions& options) {
  std::ostringstream os;
  WritePrometheus(registry, os, options);
  return os.str();
}

}  // namespace ldl
