// Tests for the query-lifecycle layer: per-query resource accounting
// (ResourceAccountant, relation byte charging), cooperative cancellation
// with deadlines and budgets (CancellationToken), and the typed abort
// statuses LdlSystem::Query returns when a limit is hit — including the
// bounded cancellation-check cadence inside the innermost join loop.

#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "base/status.h"
#include "ldl/ldl.h"
#include "obs/query_log.h"
#include "obs/resource.h"
#include "storage/relation.h"
#include "testing/program_gen.h"

namespace ldl {
namespace {

// A chain EDB with a cycle closing edge: tc is quadratic in the chain
// length, so n = 200 derives tens of thousands of tuples — plenty of work
// for budgets to interrupt.
std::string ChainProgram(int n, bool close_cycle) {
  std::string text =
      "tc(X, Y) <- edge(X, Y).\n"
      "tc(X, Y) <- edge(X, Z), tc(Z, Y).\n";
  for (int i = 0; i < n; ++i) {
    text += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
            ").\n";
  }
  if (close_cycle) {
    text += "edge(n" + std::to_string(n) + ", n0).\n";
  }
  return text;
}

TEST(ResourceAccountantTest, TracksCurrentAndPeakBytes) {
  ResourceAccountant acc;
  acc.AddBytes(100);
  acc.AddBytes(50);
  EXPECT_EQ(acc.current_bytes(), 150u);
  EXPECT_EQ(acc.peak_bytes(), 150u);
  acc.ReleaseBytes(120);
  EXPECT_EQ(acc.current_bytes(), 30u);
  EXPECT_EQ(acc.peak_bytes(), 150u);  // peak survives release
  // Saturating release: estimate drift must never wrap.
  acc.ReleaseBytes(1000);
  EXPECT_EQ(acc.current_bytes(), 0u);
}

TEST(ResourceAccountantTest, ChargesRollUpToParent) {
  ResourceAccountant session;
  ResourceAccountant query(&session);
  query.AddBytes(64);
  query.AddTuplesExamined(10);
  query.AddTuplesDerived(5);
  query.AddFixpointRounds(2);
  EXPECT_EQ(session.current_bytes(), 64u);
  EXPECT_EQ(session.tuples_examined(), 10u);
  EXPECT_EQ(session.tuples_derived(), 5u);
  EXPECT_EQ(session.fixpoint_rounds(), 2u);
  query.ReleaseBytes(64);
  EXPECT_EQ(session.current_bytes(), 0u);
}

TEST(ResourceAccountantTest, BudgetViolationIsTyped) {
  ResourceAccountant acc;
  ResourceBudget budget;
  budget.max_bytes = 100;
  acc.set_budget(budget);
  EXPECT_TRUE(acc.CheckBudget().ok());
  acc.AddBytes(101);
  Status st = acc.CheckBudget();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ResourceAccountantTest, AncestorBudgetBindsTheQuery) {
  ResourceAccountant session;
  ResourceBudget session_budget;
  session_budget.max_tuples_examined = 50;
  session.set_budget(session_budget);
  ResourceAccountant query(&session);  // query itself is unlimited
  query.AddTuplesExamined(60);
  EXPECT_TRUE(query.CheckBudget().ok() == false);
  EXPECT_EQ(query.CheckBudget().code(), StatusCode::kResourceExhausted);
}

TEST(CancellationTokenTest, RequestCancelWinsOverEverything) {
  ResourceAccountant acc;
  ResourceBudget budget;
  budget.max_bytes = 1;
  acc.set_budget(budget);
  acc.AddBytes(10);  // over budget
  CancellationToken token;
  token.set_accountant(&acc);
  token.RequestCancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancellationTokenTest, ExpiredDeadlineIsTyped) {
  CancellationToken token;
  token.set_deadline_after(std::chrono::duration<double, std::milli>(-1));
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  token.clear_deadline();
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancellationTokenTest, ParentCancelPropagates) {
  CancellationToken session;
  CancellationToken query(&session);
  EXPECT_TRUE(query.Check().ok());
  session.RequestCancel();
  EXPECT_EQ(query.Check().code(), StatusCode::kCancelled);
}

TEST(CancellationTokenTest, CountsChecks) {
  CancellationToken token;
  for (int i = 0; i < 5; ++i) (void)token.Check();
  EXPECT_EQ(token.checks(), 5u);
}

TEST(RelationAccountingTest, InsertChargesAndClearReleases) {
  ResourceAccountant acc;
  Relation rel("r", 2);
  rel.set_accountant(&acc);
  rel.Insert({Term::MakeSymbol("a"), Term::MakeSymbol("b")});
  rel.Insert({Term::MakeSymbol("c"), Term::MakeSymbol("d")});
  EXPECT_GT(acc.current_bytes(), 0u);
  EXPECT_EQ(acc.current_bytes(), rel.charged_bytes());
  rel.Clear();
  EXPECT_EQ(acc.current_bytes(), 0u);
}

TEST(RelationAccountingTest, DestructorReleasesCharge) {
  ResourceAccountant acc;
  {
    Relation rel("r", 1);
    rel.set_accountant(&acc);
    rel.Insert({Term::MakeSymbol("a")});
    EXPECT_GT(acc.current_bytes(), 0u);
  }
  EXPECT_EQ(acc.current_bytes(), 0u);
}

TEST(RelationAccountingTest, LateAttachChargesExistingContents) {
  ResourceAccountant acc;
  Relation rel("r", 1);
  rel.Insert({Term::MakeSymbol("a")});
  EXPECT_EQ(acc.current_bytes(), 0u);  // unattached inserts are free
  rel.set_accountant(&acc);
  EXPECT_GT(acc.current_bytes(), 0u);
  rel.set_accountant(nullptr);
  EXPECT_EQ(acc.current_bytes(), 0u);
}

// --- LdlSystem-level lifecycle ---

TEST(QueryLifecycleTest, ByteBudgetAbortsWithResourceExhausted) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(200, /*close_cycle=*/false)).ok());
  OptimizerOptions options;
  options.limits.budget_bytes = 64 * 1024;  // far below tc's footprint
  sys.set_options(options);
  auto answer = sys.Query("tc(X, Y)");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
      << answer.status().ToString();
}

TEST(QueryLifecycleTest, TupleBudgetAbortsWithResourceExhausted) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(200, /*close_cycle=*/false)).ok());
  OptimizerOptions options;
  options.limits.budget_tuples = 2048;
  sys.set_options(options);
  auto answer = sys.Query("tc(X, Y)");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
      << answer.status().ToString();
}

TEST(QueryLifecycleTest, ExpiredDeadlineAbortsWithDeadlineExceeded) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(100, /*close_cycle=*/false)).ok());
  OptimizerOptions options;
  // Already expired at the first check-point — deterministic on any
  // machine, unlike a "short" deadline a fast run could beat.
  options.limits.deadline_ms = 1e-9;
  sys.set_options(options);
  auto answer = sys.Query("tc(X, Y)");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded)
      << answer.status().ToString();
}

TEST(QueryLifecycleTest, WithinBudgetQuerySucceedsWithProfile) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(40, /*close_cycle=*/false)).ok());
  OptimizerOptions options;
  options.limits.budget_bytes = 512ull * 1024 * 1024;
  sys.set_options(options);
  auto answer = sys.Query("tc(n0, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->answers.size(), 40u);
  EXPECT_GT(answer->peak_bytes, 0u);
  EXPECT_GT(answer->tuples_examined, 0u);
  EXPECT_GT(answer->fixpoint_rounds, 0u);
  EXPECT_GT(answer->cancel_checks, 0u);
}

TEST(QueryLifecycleTest, ExternalCancelAbortsTheQuery) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(50, /*close_cycle=*/false)).ok());
  CancellationToken session;
  session.RequestCancel();  // cancelled before the query starts
  OptimizerOptions options;
  options.trace.cancel = &session;
  sys.set_options(options);
  auto answer = sys.Query("tc(X, Y)");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled);
}

TEST(QueryLifecycleTest, OptimizerSearchHonorsCancellation) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(10, /*close_cycle=*/false)).ok());
  CancellationToken session;
  session.RequestCancel();
  OptimizerOptions options;
  options.trace.cancel = &session;
  sys.set_options(options);
  auto plan = sys.Plan("tc(X, Y)");  // optimization only, no execution
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kCancelled);
}

TEST(QueryLifecycleTest, SessionAccountantSeesEveryQuery) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(30, /*close_cycle=*/false)).ok());
  ResourceAccountant session;
  OptimizerOptions options;
  options.trace.accountant = &session;
  options.limits.budget_bytes = 1ull << 40;  // engage metering, no real cap
  sys.set_options(options);
  ASSERT_TRUE(sys.Query("tc(n0, Y)").ok());
  ASSERT_TRUE(sys.Query("tc(n1, Y)").ok());
  // Both per-query meters rolled up into the session accountant.
  EXPECT_GT(session.tuples_examined(), 0u);
  EXPECT_GT(session.peak_bytes(), 0u);
  // All per-query storage was released when the queries finished.
  EXPECT_EQ(session.current_bytes(), 0u);
}

// The cancellation-latency bound: inside the innermost join the evaluator
// may run at most kCheckIntervalTuples tuples between checks, so a
// tuple-budget overshoot is bounded by one interval (per concurrent rule
// evaluation; this engine is single-threaded).
TEST(QueryLifecycleTest, TupleBudgetOvershootIsBoundedByCheckInterval) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(200, /*close_cycle=*/false)).ok());
  QueryLog log;
  sys.set_query_log(&log);
  OptimizerOptions options;
  const uint64_t kBudget = 4096;
  options.limits.budget_tuples = kBudget;
  sys.set_options(options);
  auto answer = sys.Query("tc(X, Y)");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
  ASSERT_EQ(log.size(), 1u);
  const QueryLogRecord rec = log.snapshot()[0];
  EXPECT_EQ(rec.outcome, "resource_exhausted");
  EXPECT_GT(rec.tuples_examined, kBudget);
  EXPECT_LE(rec.tuples_examined,
            kBudget + 2 * CancellationToken::kCheckIntervalTuples)
      << "cancellation latency exceeded the documented bound";
}

// The check cadence itself: an externally supplied token (no limits, no
// log — the pass-through path) must still be polled about once per
// kCheckIntervalTuples of join work.
TEST(QueryLifecycleTest, CancellationChecksTrackExaminedTuples) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ChainProgram(120, /*close_cycle=*/false)).ok());
  CancellationToken session;
  OptimizerOptions options;
  options.trace.cancel = &session;
  sys.set_options(options);
  auto answer = sys.Query("tc(X, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  const uint64_t examined = answer->exec_stats.counters.tuples_examined;
  ASSERT_GT(examined, CancellationToken::kCheckIntervalTuples);
  EXPECT_GE(session.checks(),
            examined / CancellationToken::kCheckIntervalTuples)
      << "examined " << examined << " tuples with only " << session.checks()
      << " checks";
}

// Difftest-generated recursion under a small budget and a 10 ms deadline:
// whatever the generator draws, the query must terminate promptly with
// either an answer or one of the typed lifecycle statuses — never an
// untyped error, never a hang (the tier-1 test timeout is the backstop).
TEST(QueryLifecycleTest, GeneratedProgramsTerminateWithTypedStatus) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    testing::ProgramGenOptions gen;
    gen.max_facts = 40;
    gen.domain = 32;
    testing::GeneratedProgram prog = testing::GenerateProgram(&rng, gen);
    LdlSystem sys;
    ASSERT_TRUE(sys.LoadProgram(prog.ToLdl()).ok()) << prog.summary;
    OptimizerOptions options;
    options.limits.budget_bytes = 1 << 20;  // 1 MB
    options.limits.deadline_ms = 10;
    sys.set_options(options);
    auto answer = sys.Query(prog.query);
    if (!answer.ok()) {
      const StatusCode code = answer.status().code();
      EXPECT_TRUE(code == StatusCode::kResourceExhausted ||
                  code == StatusCode::kDeadlineExceeded ||
                  code == StatusCode::kUnsafe)
          << "seed " << seed << " (" << prog.summary
          << "): " << answer.status().ToString();
    }
  }
}

}  // namespace
}  // namespace ldl
