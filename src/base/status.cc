#include "base/status.h"

namespace ldl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsafe:
      return "Unsafe";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ldl
