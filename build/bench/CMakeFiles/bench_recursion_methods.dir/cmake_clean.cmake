file(REMOVE_RECURSE
  "CMakeFiles/bench_recursion_methods.dir/bench_recursion_methods.cc.o"
  "CMakeFiles/bench_recursion_methods.dir/bench_recursion_methods.cc.o.d"
  "bench_recursion_methods"
  "bench_recursion_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recursion_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
