# Empty compiler generated dependencies file for corporate_kb.
# This may be replaced when dependencies are built.
