// Experiment E7 — the OPT algorithm (Figure 7-2) end to end: the optimizer
// is query-form specific (section 2), so sg(c, Y)? and sg(X, Y)? must get
// different CC-node labels — and the chosen label must actually win when
// the plans are executed against real data.
//
// Table 1: plans per query form (method, estimated cost).
// Table 2: executing *every* method for each query form; the optimizer's
//          pick should be (near-)minimal in measured work.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "bench_util.h"
#include "ldl/ldl.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr const char* kSgRules = R"(
  sg(X, Y) <- flat(X, Y).
  sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
)";

}  // namespace

void PrintExperiment() {
  bench::Banner("E7", "OPT (Figure 7-2): query-form-specific plans for the "
                      "same-generation clique");

  LdlSystem sys;
  (void)sys.LoadProgram(kSgRules);
  size_t nodes = testing::MakeSameGenerationData(3, 5, sys.database());
  sys.RefreshStatistics();
  int64_t probe = static_cast<int64_t>(nodes - 1);

  std::vector<std::pair<std::string, Literal>> forms;
  forms.emplace_back(
      "sg(c, Y)?  [bf]",
      Literal::Make("sg", {Term::MakeInt(probe), Term::MakeVariable("Y")}));
  forms.emplace_back(
      "sg(X, Y)?  [ff]",
      Literal::Make("sg",
                    {Term::MakeVariable("X"), Term::MakeVariable("Y")}));
  forms.emplace_back(
      "sg(c, c')? [bb]",
      Literal::Make("sg", {Term::MakeInt(probe), Term::MakeInt(probe - 1)}));

  {
    Table table({"query form", "chosen method", "est. cost",
                 "est. answers"});
    for (const auto& [name, goal] : forms) {
      auto plan = sys.Plan(goal);
      if (!plan.ok()) continue;
      table.AddRow({name, RecursionMethodToString(plan->top_method),
                    Fmt(plan->TotalCost()), Fmt(plan->estimate.card)});
    }
    table.Print();
  }

  {
    Table table(
        {"query form", "method", "examined", "ms", "optimizer's pick?"});
    for (const auto& [name, goal] : forms) {
      auto plan = sys.Plan(goal);
      if (!plan.ok()) continue;
      for (RecursionMethod method :
           {RecursionMethod::kNaive, RecursionMethod::kSemiNaive,
            RecursionMethod::kMagic, RecursionMethod::kCounting}) {
        Stopwatch watch;
        auto result = sys.EvaluateUnoptimized(goal, method);
        double ms = watch.ElapsedMs();
        if (!result.ok()) continue;
        table.AddRow(
            {name, RecursionMethodToString(method),
             Fmt(static_cast<double>(result->stats.counters.tuples_examined),
                 "%.4g"),
             Fmt(ms, "%.2f"),
             method == plan->top_method ? "  <== chosen" : ""});
      }
    }
    table.Print();
    std::printf(
        "Expected shape: bound forms choose counting/magic and those methods\n"
        "measure the least work; the free form chooses seminaive, where\n"
        "magic's overhead buys nothing.\n\n");
  }

  bench::Banner("E7b", "SIP choice matters: optimizer SIP vs worst-case SIP "
                       "for magic on sg.bf");
  {
    Program program = *ParseProgram(kSgRules);
    Database db;
    size_t n2 = testing::MakeSameGenerationData(3, 5, &db);
    Literal goal = Literal::Make(
        "sg", {Term::MakeInt(static_cast<int64_t>(n2 - 1)),
               Term::MakeVariable("Y")});
    Table table({"SIP (recursive rule order)", "examined", "answers"});
    for (auto [name, order] :
         {std::pair<const char*, std::vector<size_t>>{"up, sg, dn (good)",
                                                      {0, 1, 2}},
          std::pair<const char*, std::vector<size_t>>{"dn, sg, up (poor)",
                                                      {2, 1, 0}}}) {
      QueryEvalOptions options;
      options.sips.SetOrder(1, order);
      auto result =
          EvaluateQuery(program, &db, goal, RecursionMethod::kMagic, options);
      if (!result.ok()) continue;
      table.AddRow(
          {name,
           Fmt(static_cast<double>(result->stats.counters.tuples_examined),
               "%.4g"),
           std::to_string(result->answers.size())});
    }
    table.Print();
    std::printf("The c-permutation (PA) chosen at the CC node controls the\n"
                "adornments and thus how much magic restricts.\n\n");
  }
}

namespace {

void BM_OptimizeSg(benchmark::State& state) {
  LdlSystem sys;
  (void)sys.LoadProgram(kSgRules);
  testing::MakeSameGenerationData(3, 4, sys.database());
  sys.RefreshStatistics();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.Plan("sg(1, Y)"));
  }
}
BENCHMARK(BM_OptimizeSg);

void BM_QueryEndToEnd(benchmark::State& state) {
  LdlSystem sys;
  (void)sys.LoadProgram(kSgRules);
  size_t nodes = testing::MakeSameGenerationData(3, 4, sys.database());
  sys.RefreshStatistics();
  Literal goal =
      Literal::Make("sg", {Term::MakeInt(static_cast<int64_t>(nodes - 1)),
                           Term::MakeVariable("Y")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.Query(goal));
  }
}
BENCHMARK(BM_QueryEndToEnd);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("opt_recursive");
  return 0;
}
