file(REMOVE_RECURSE
  "libldl_ldl.a"
)
