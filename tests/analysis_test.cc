// Tests for the static-analysis subsystem: the Diagnostic framework, every
// ProgramLinter code (positive trigger + clean-program negative), and
// PlanVerifier rejection of deliberately corrupted processing trees.

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "analysis/diagnostic.h"
#include "analysis/linter.h"
#include "analysis/plan_verifier.h"
#include "ast/parser.h"
#include "ldl/ldl.h"
#include "optimizer/optimizer.h"
#include "plan/processing_tree.h"
#include "storage/statistics.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

DiagnosticSink LintAll(const Program& program, LintOptions options = {}) {
  DiagnosticSink sink;
  ProgramLinter(program, options).Lint(&sink);
  return sink;
}

// --- Diagnostic framework -------------------------------------------------

TEST(DiagnosticTest, SinkCountsAndRendersBySeverity) {
  DiagnosticSink sink;
  sink.Error("L001", "first", SourceLocation::ForRule(2, "p(X) <- q(X)."));
  sink.Warning("L003", "second");
  sink.Note("L003", "third");
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.warning_count(), 1u);
  EXPECT_TRUE(sink.HasErrors());
  EXPECT_TRUE(sink.Has("L001"));
  EXPECT_EQ(sink.Count("L003"), 2u);
  EXPECT_FALSE(sink.Has("L999"));
  EXPECT_NE(sink.ToString().find("error L001: first"), std::string::npos);
  EXPECT_NE(sink.ToString().find("rule 2: p(X) <- q(X)."), std::string::npos);
  EXPECT_NE(sink.ToString().find("warning L003"), std::string::npos);
}

TEST(DiagnosticTest, ToStatusListsOnlyErrors) {
  DiagnosticSink clean;
  clean.Warning("L003", "just a warning");
  EXPECT_TRUE(clean.ToStatus().ok());

  DiagnosticSink dirty;
  dirty.Error("V001", "broken");
  dirty.Warning("L003", "noise");
  Status st = dirty.ToStatus(StatusCode::kInternal);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("V001: broken"), std::string::npos);
  EXPECT_EQ(st.message().find("L003"), std::string::npos);
}

// --- ProgramLinter: clean programs ----------------------------------------

TEST(LinterTest, CleanProgramHasNoDiagnostics) {
  Program p = P(R"(
    par(bart, homer).
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
    anc(bart, Y)?
  )");
  DiagnosticSink sink = LintAll(p);
  EXPECT_TRUE(sink.empty()) << sink.ToString();
  EXPECT_TRUE(LintProgram(p).ok());
}

TEST(LinterTest, UnderscorePrefixSilencesSingletons) {
  Program p = P(R"(
    emp(ann, 100).
    rich(X) <- emp(X, _Salary).
    rich(X)?
  )");
  EXPECT_TRUE(LintAll(p).empty());
}

// --- ProgramLinter: every code fires --------------------------------------

TEST(LinterTest, L001ArityMismatch) {
  // The parser rejects mixed arities itself, so build the program directly
  // (the linter must also protect programmatically-assembled rule bases).
  Program p;
  p.AddRule(Rule(L("p(X, Y)"), {L("q(X)"), L("q(X, Y)")}));
  DiagnosticSink sink = LintAll(p);
  EXPECT_TRUE(sink.Has("L001")) << sink.ToString();
  EXPECT_TRUE(sink.HasErrors());
  EXPECT_FALSE(LintProgram(p).ok());
}

TEST(LinterTest, L002RangeRestriction) {
  Program p = P("r(X, Y) <- s(X).");
  DiagnosticSink sink = LintAll(p);
  ASSERT_TRUE(sink.Has("L002")) << sink.ToString();
  EXPECT_EQ(sink.Count("L002"), 1u);  // only Y; X is grounded by s(X)
}

TEST(LinterTest, L002HonorsEqualityChains) {
  // Y is grounded through `=` from a grounded variable: no diagnostic.
  Program p = P("r(X, Y) <- s(X), Y = X + 1.");
  EXPECT_FALSE(LintAll(p).Has("L002"));
}

TEST(LinterTest, L003SingletonVariable) {
  Program p = P("r(X) <- s(X, Lonely).");
  DiagnosticSink sink = LintAll(p);
  ASSERT_TRUE(sink.Has("L003")) << sink.ToString();
  EXPECT_FALSE(sink.HasErrors());  // style warning only

  LintOptions no_style;
  no_style.check_singletons = false;
  EXPECT_FALSE(LintAll(p, no_style).Has("L003"));
}

TEST(LinterTest, L004UnstratifiedNegation) {
  Program p = P(R"(
    win(X) <- move(X, Y), not win(Y).
  )");
  DiagnosticSink sink = LintAll(p);
  EXPECT_TRUE(sink.Has("L004")) << sink.ToString();
  EXPECT_FALSE(LintProgram(p).ok());

  // Stratified negation across cliques is fine.
  Program ok = P(R"(
    reach(X, Y) <- edge(X, Y).
    reach(X, Y) <- edge(X, Z), reach(Z, Y).
    cut(X, Y) <- node(X), node(Y), not reach(X, Y).
  )");
  EXPECT_FALSE(LintAll(ok).Has("L004"));
}

TEST(LinterTest, L005UndefinedPredicate) {
  Program p = P("r(X) <- ghost(X).");
  DiagnosticSink sink = LintAll(p);
  EXPECT_TRUE(sink.Has("L005")) << sink.ToString();

  // Facts define the predicate: no warning.
  Program ok = P(R"(
    ghost(1).
    r(X) <- ghost(X).
  )");
  EXPECT_FALSE(LintAll(ok).Has("L005"));
}

TEST(LinterTest, L006UnusedPredicate) {
  Program p = P(R"(
    a(1).
    used(X) <- a(X).
    orphan(X) <- a(X).
    used(X)?
  )");
  DiagnosticSink sink = LintAll(p);
  EXPECT_EQ(sink.Count("L006"), 1u) << sink.ToString();

  // Self-recursive but queried: reachable, no warning. And a query-less
  // program is a library — every head is an entry point.
  Program recursive = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
    anc(X, Y)?
  )");
  EXPECT_FALSE(LintAll(recursive).Has("L006"));
  Program library = P("orphan(X) <- a(X).");
  EXPECT_FALSE(LintAll(library).Has("L006"));
}

TEST(LinterTest, L007DuplicateRule) {
  Program p = P(R"(
    r(X) <- s(X).
    r(X) <- s(X).
  )");
  DiagnosticSink sink = LintAll(p);
  EXPECT_EQ(sink.Count("L007"), 1u) << sink.ToString();
  // Same logic under renamed variables is (deliberately) not flagged.
  Program renamed = P(R"(
    r(X) <- s(X).
    r(Y) <- s(Y).
  )");
  EXPECT_FALSE(LintAll(renamed).Has("L007"));
}

TEST(LinterTest, L008MalformedClause) {
  // Negated head and negated builtin are parser-rejected; assemble directly.
  Program negated_head;
  negated_head.AddRule(Rule(Literal::MakeNegated("p", {Term::MakeVariable("X")}),
                            {L("q(X)")}));
  EXPECT_TRUE(LintAll(negated_head).Has("L008"));

  Program builtin_head;
  builtin_head.AddRule(Rule(
      Literal::MakeBuiltin(BuiltinKind::kLt, Term::MakeVariable("X"),
                           Term::MakeInt(3)),
      {L("q(X)")}));
  EXPECT_TRUE(LintAll(builtin_head).Has("L008"));
}

TEST(LinterTest, L009NonGroundFact) {
  Program p;
  p.AddFact(L("par(bart, Who)"));
  DiagnosticSink sink = LintAll(p);
  EXPECT_TRUE(sink.Has("L009")) << sink.ToString();
}

// --- PlanVerifier ----------------------------------------------------------

constexpr const char* kJoinProgram = "q(X, Z) <- huge(X, Y), tiny(Y, Z).";

constexpr const char* kSgProgram = R"(
  sg(X, Y) <- flat(X, Y).
  sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
)";

Statistics JoinStats() {
  Statistics stats;
  stats.Set({"huge", 2}, {100000.0, {100000.0, 300.0}});
  stats.Set({"tiny", 2}, {10.0, {10.0, 10.0}});
  return stats;
}

Statistics SgStats() {
  Statistics stats;
  stats.Set({"up", 2}, {10000.0, {10000.0, 3333.0}});
  stats.Set({"dn", 2}, {10000.0, {3333.0, 10000.0}});
  stats.Set({"flat", 2}, {1000.0, {1000.0, 1000.0}});
  return stats;
}

std::unique_ptr<PlanNode> Tree(const Program& p, const Literal& goal) {
  auto tree = BuildProcessingTree(p, goal);
  EXPECT_TRUE(tree.ok()) << tree.status();
  return std::move(*tree);
}

std::unique_ptr<PlanNode> AnnotatedTree(const Program& p,
                                        const Statistics& stats,
                                        const Literal& goal) {
  auto tree = Tree(p, goal);
  Optimizer opt(p, stats);
  EXPECT_TRUE(opt.AnnotateTree(tree.get()).ok());
  return tree;
}

TEST(PlanVerifierTest, AcceptsBuilderAndAnnotatedTrees) {
  Program p = P(kJoinProgram);
  PlanVerifier verifier(p);
  auto raw = Tree(p, L("q(X, Z)"));
  EXPECT_TRUE(verifier.Verify(*raw).ok());
  auto annotated = AnnotatedTree(p, JoinStats(), L("q(X, Z)"));
  EXPECT_TRUE(verifier.Verify(*annotated).ok());

  Program sg = P(kSgProgram);
  PlanVerifier sg_verifier(sg);
  auto sg_bound = AnnotatedTree(sg, SgStats(), L("sg(1, Y)"));
  EXPECT_TRUE(sg_verifier.Verify(*sg_bound).ok());
  auto sg_free = AnnotatedTree(sg, SgStats(), L("sg(X, Y)"));
  EXPECT_TRUE(sg_verifier.Verify(*sg_free).ok());
}

TEST(PlanVerifierTest, RejectsShuffledAndChildren) {
  Program p = P(kJoinProgram);
  auto tree = Tree(p, L("q(X, Z)"));
  PlanNode* and_node = tree->children[0].get();
  // Swap the children but not body_order: child j no longer computes the
  // body literal body_order[j] says it does.
  std::swap(and_node->children[0], and_node->children[1]);
  DiagnosticSink sink;
  PlanVerifier verifier(p);
  EXPECT_FALSE(verifier.Verify(*tree, &sink).ok());
  EXPECT_TRUE(sink.Has("V001")) << sink.ToString();
}

TEST(PlanVerifierTest, RejectsDroppedAndChild) {
  Program p = P(kJoinProgram);
  auto tree = Tree(p, L("q(X, Z)"));
  PlanNode* and_node = tree->children[0].get();
  and_node->children.pop_back();
  and_node->body_order.pop_back();
  DiagnosticSink sink;
  PlanVerifier(p).Verify(*tree, &sink);
  EXPECT_TRUE(sink.Has("V001")) << sink.ToString();
}

TEST(PlanVerifierTest, RejectsWrongBindingPattern) {
  Program p = P(kJoinProgram);
  auto tree = AnnotatedTree(p, JoinStats(), L("q(1, Z)"));
  PlanNode* and_node = tree->children[0].get();
  // Corrupt the adornment of the first executed child: claim its first
  // argument is free although the SIP walk binds it (or vice versa).
  Adornment corrupted = and_node->children[0]->binding;
  corrupted.SetBound(0, !corrupted.IsBound(0));
  and_node->children[0]->binding = corrupted;
  DiagnosticSink sink;
  PlanVerifier(p).Verify(*tree, &sink);
  EXPECT_TRUE(sink.Has("V002")) << sink.ToString();
}

TEST(PlanVerifierTest, RejectsNonEcOrder) {
  // Textual order a(X), Y = X + 1 is effectively computable; the reversed
  // order must evaluate the arithmetic with X unbound.
  Program p = P("r(X, Y) <- a(X), Y = X + 1.");
  Statistics stats;
  stats.Set({"a", 1}, {100.0, {100.0}});
  auto tree = AnnotatedTree(p, stats, L("r(X, Y)"));
  PlanNode* and_node = tree->children[0].get();
  ASSERT_EQ(and_node->children.size(), 2u);
  std::swap(and_node->children[0], and_node->children[1]);
  std::swap(and_node->body_order[0], and_node->body_order[1]);
  DiagnosticSink sink;
  PlanVerifier(p).Verify(*tree, &sink);
  EXPECT_TRUE(sink.Has("V003")) << sink.ToString();
}

TEST(PlanVerifierTest, RejectsBogusCcMethod) {
  Program p = P(kSgProgram);
  auto tree = Tree(p, L("sg(1, Y)"));
  ASSERT_EQ(tree->kind, PlanNodeKind::kCc);
  tree->method = "bogus";
  DiagnosticSink sink;
  PlanVerifier(p).Verify(*tree, &sink);
  EXPECT_TRUE(sink.Has("V004")) << sink.ToString();

  // A method the optimizer options exclude is equally invalid.
  tree->method = "magic";
  PlanVerifierOptions no_magic;
  no_magic.allow_magic = false;
  DiagnosticSink sink2;
  PlanVerifier(p, no_magic).Verify(*tree, &sink2);
  EXPECT_TRUE(sink2.Has("V004")) << sink2.ToString();
}

TEST(PlanVerifierTest, RejectsCorruptedCliqueOrders) {
  Program p = P(kSgProgram);
  auto tree = Tree(p, L("sg(1, Y)"));
  ASSERT_FALSE(tree->clique_orders.empty());
  tree->clique_orders[0] = {0, 0};  // not a permutation
  DiagnosticSink sink;
  PlanVerifier(p).Verify(*tree, &sink);
  EXPECT_TRUE(sink.Has("V001")) << sink.ToString();
}

TEST(PlanVerifierTest, RejectsScanOfDerivedPredicate) {
  Program p = P(kJoinProgram);
  auto tree = Tree(p, L("q(X, Z)"));
  auto scan = std::make_unique<PlanNode>();
  scan->kind = PlanNodeKind::kScan;
  scan->method = "scan";
  scan->goal = L("q(X, Z)");
  DiagnosticSink sink;
  PlanVerifier(p).Verify(*scan, &sink);
  EXPECT_TRUE(sink.Has("V005")) << sink.ToString();
}

TEST(PlanVerifierTest, RejectsMalformedShape) {
  Program p = P(kJoinProgram);
  auto tree = Tree(p, L("q(X, Z)"));
  tree->binding = Adornment(1);          // arity-2 goal, size-1 adornment
  tree->projection = {1, 1};             // duplicate columns
  DiagnosticSink sink;
  PlanVerifier(p).Verify(*tree, &sink);
  EXPECT_GE(sink.Count("V006"), 2u) << sink.ToString();
}

// --- verify_plans wiring ---------------------------------------------------

TEST(VerifyPlansTest, OptimizerVerifiesEveryPlanItEmits) {
  Program p = P(kSgProgram);
  Statistics stats = SgStats();
  OptimizerOptions options;
  options.verify_plans = true;
  Optimizer opt(p, stats, options);
  auto plan = opt.Optimize(L("sg(1, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->safe);
}

TEST(VerifyPlansTest, LdlSystemQueriesRunVerified) {
  OptimizerOptions options;
  options.verify_plans = true;
  LdlSystem sys(options);
  ASSERT_TRUE(sys.LoadProgram(R"(
    par(bart, homer).  par(homer, abe).
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )")
                  .ok());
  auto answer = sys.Query("anc(bart, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->answers.size(), 2u);
}

}  // namespace
}  // namespace ldl
