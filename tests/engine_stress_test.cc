// Randomized cross-validation of the evaluation engine: all methods must
// agree on answers across random data shapes, and the engine must be robust
// to empty relations, self-loops, large fan-outs, and deep recursion.

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "engine/query_eval.h"
#include "ldl/ldl.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

std::vector<Tuple> Sorted(const Relation& r) {
  std::vector<Tuple> out = r.tuples();
  std::sort(out.begin(), out.end());
  return out;
}

constexpr const char* kTc = R"(
  tc(X, Y) <- edge(X, Y).
  tc(X, Y) <- edge(X, Z), tc(Z, Y).
)";

// Property: naive == seminaive == magic on random DAGs, for bound and free
// query forms (counting checked separately where applicable).
class RandomDagTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDagTest, MethodsAgreeOnRandomDags) {
  uint64_t seed = GetParam();
  Program p = P(kTc);
  Database db;
  Rng rng(seed);
  size_t n = 20 + rng.Uniform(40);
  size_t degree = 1 + rng.Uniform(3);
  testing::MakeRandomDag(n, degree, seed * 31, &db);

  for (const char* query : {"tc(0, Y)", "tc(X, Y)", "tc(X, 7)"}) {
    Literal goal = L(query);
    QueryEvalOptions options;
    auto naive = EvaluateQuery(p, &db, goal, RecursionMethod::kNaive, options);
    auto semi =
        EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, options);
    auto magic =
        EvaluateQuery(p, &db, goal, RecursionMethod::kMagic, options);
    ASSERT_TRUE(naive.ok() && semi.ok() && magic.ok())
        << query << " seed " << seed;
    EXPECT_EQ(Sorted(naive->answers), Sorted(semi->answers))
        << query << " seed " << seed;
    EXPECT_EQ(Sorted(semi->answers), Sorted(magic->answers))
        << query << " seed " << seed;
    // The hash-partitioned engine must reproduce the sequential answers at
    // every thread count, for every method, on every random shape.
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      QueryEvalOptions par = options;
      par.fixpoint.engine.num_threads = threads;
      par.fixpoint.engine.min_partition_tuples = 1;
      for (RecursionMethod method :
           {RecursionMethod::kSemiNaive, RecursionMethod::kNaive,
            RecursionMethod::kMagic}) {
        auto result = EvaluateQuery(p, &db, goal, method, par);
        ASSERT_TRUE(result.ok()) << query << " seed " << seed << " threads "
                                 << threads << ": " << result.status();
        EXPECT_EQ(Sorted(result->answers), Sorted(semi->answers))
            << query << " seed " << seed << " threads " << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// Property: on cyclic graphs the fixpoint still terminates (set semantics)
// and methods agree.
class RandomCycleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCycleTest, MethodsAgreeOnCycles) {
  uint64_t seed = GetParam();
  Program p = P(kTc);
  Database db;
  testing::MakeCycle(5 + seed * 3, &db);
  // Add a few chords.
  Relation* edge = db.Find({"edge", 2});
  Rng rng(seed);
  for (int i = 0; i < 4; ++i) {
    edge->Insert({Term::MakeInt(static_cast<int64_t>(rng.Uniform(5))),
                  Term::MakeInt(static_cast<int64_t>(rng.Uniform(5)))});
  }
  Literal goal = L("tc(0, Y)");
  auto semi = EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, {});
  auto magic = EvaluateQuery(p, &db, goal, RecursionMethod::kMagic, {});
  ASSERT_TRUE(semi.ok() && magic.ok());
  EXPECT_EQ(Sorted(semi->answers), Sorted(magic->answers));
  // Full cycle: everything reaches everything.
  EXPECT_EQ(semi->answers.size(), 5 + seed * 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCycleTest,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

// Differential: counting structurally applies to a bound query over a
// linear clique, but cyclic data makes its ascent diverge. The evaluator
// must detect this, fall back to magic sets, and the answers delivered by
// the fallback path must match a direct magic evaluation exactly.
class MagicCountingCycleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MagicCountingCycleTest, CountingFallbackMatchesMagicOnCycles) {
  uint64_t seed = GetParam();
  Program p = P(kTc);
  Database db;
  Rng rng(seed * 977);
  size_t n = 8 + rng.Uniform(16);
  testing::MakeCycle(n, &db);
  Relation* edge = db.Find({"edge", 2});
  // Chords (including possible self-loops) keep the graph strongly cyclic
  // whatever the ring size.
  for (int i = 0; i < 3; ++i) {
    edge->Insert(
        {Term::MakeInt(static_cast<int64_t>(rng.Uniform(n))),
         Term::MakeInt(static_cast<int64_t>(rng.Uniform(n)))});
  }
  Literal goal = L("tc(0, Y)");
  auto magic = EvaluateQuery(p, &db, goal, RecursionMethod::kMagic, {});
  auto counting = EvaluateQuery(p, &db, goal, RecursionMethod::kCounting, {});
  ASSERT_TRUE(magic.ok()) << magic.status();
  ASSERT_TRUE(counting.ok()) << counting.status();
  EXPECT_EQ(Sorted(magic->answers), Sorted(counting->answers))
      << "seed " << seed << " n " << n;
  // The result must really have come through the fallback path: cyclic
  // data cannot complete the counting ascent.
  EXPECT_NE(counting->note.find("fell back"), std::string::npos)
      << "note: " << counting->note;
  EXPECT_EQ(counting->method_used, RecursionMethod::kMagic);
  // Everything on the ring reaches everything.
  EXPECT_EQ(magic->answers.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicCountingCycleTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(EngineEdgeTest, EmptyBaseRelation) {
  Program p = P(kTc);
  Database db;
  db.GetOrCreate({"edge", 2});  // empty
  auto result = EvaluateQuery(p, &db, L("tc(0, Y)"),
                              RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answers.empty());
}

TEST(EngineEdgeTest, MissingBaseRelation) {
  Program p = P(kTc);
  Database db;  // no edge relation at all
  auto result = EvaluateQuery(p, &db, L("tc(0, Y)"),
                              RecursionMethod::kMagic, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->answers.empty());
}

TEST(EngineEdgeTest, SelfLoopEdge) {
  Program p = P(kTc);
  Database db;
  (void)db.AddFact(L("edge(3, 3)"));
  auto result = EvaluateQuery(p, &db, L("tc(3, Y)"),
                              RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 1u);  // tc(3, 3) only, no divergence
}

TEST(EngineEdgeTest, DeepChainRecursion) {
  Program p = P(kTc);
  Database db;
  Relation* edge = db.GetOrCreate({"edge", 2});
  const int64_t depth = 500;
  for (int64_t i = 0; i < depth; ++i) {
    edge->Insert({Term::MakeInt(i), Term::MakeInt(i + 1)});
  }
  auto result =
      EvaluateQuery(p, &db, L("tc(0, Y)"), RecursionMethod::kMagic, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), static_cast<size_t>(depth));
}

TEST(EngineEdgeTest, WideFanOut) {
  Program p = P(kTc);
  Database db;
  Relation* edge = db.GetOrCreate({"edge", 2});
  for (int64_t i = 1; i <= 2000; ++i) {
    edge->Insert({Term::MakeInt(0), Term::MakeInt(i)});
  }
  auto result =
      EvaluateQuery(p, &db, L("tc(0, Y)"), RecursionMethod::kCounting, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 2000u);
}

TEST(EngineEdgeTest, GroundQueryOnDerived) {
  Program p = P(kTc);
  Database db;
  (void)db.AddFact(L("edge(1, 2)"));
  (void)db.AddFact(L("edge(2, 3)"));
  auto yes = EvaluateQuery(p, &db, L("tc(1, 3)"),
                           RecursionMethod::kMagic, {});
  auto no = EvaluateQuery(p, &db, L("tc(3, 1)"),
                          RecursionMethod::kMagic, {});
  ASSERT_TRUE(yes.ok() && no.ok());
  EXPECT_EQ(yes->answers.size(), 1u);
  EXPECT_TRUE(no->answers.empty());
}

TEST(EngineEdgeTest, DuplicateRulesAreHarmless) {
  Program p = P(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- edge(X, Z), tc(Z, Y).
  )");
  Database db;
  testing::MakeTreeParentData(2, 3, &db);
  Relation* par = db.Find({"par", 2});
  Relation* edge = db.GetOrCreate({"edge", 2});
  edge->InsertAll(*par);
  auto result = EvaluateQuery(p, &db, L("tc(X, Y)"),
                              RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->answers.size(), 0u);
}

TEST(EngineEdgeTest, LongSingleRuleBody) {
  // 8-way join through a chain; exercises the evaluator's backtracking.
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    q(A, I) <- e(A, B), e(B, C), e(C, D), e(D, E2),
               e(E2, F), e(F, G), e(G, H), e(H, I).
  )")
                  .ok());
  Relation* e = sys.database()->GetOrCreate({"e", 2});
  for (int64_t i = 0; i < 30; ++i) {
    e->Insert({Term::MakeInt(i), Term::MakeInt(i + 1)});
  }
  sys.RefreshStatistics();
  auto answer = sys.Query("q(0, I)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->answers.size(), 1u);
  EXPECT_EQ(answer->answers.tuples()[0][1].int_value(), 8);
}

TEST(EngineEdgeTest, NonLinearFibonacciStyleClique) {
  // Nonlinear recursion: pairs reachable by two tc hops.
  Program p = P(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- tc(X, Z), tc(Z, Y).
  )");
  Database db;
  testing::MakeRandomDag(25, 2, 4, &db);
  auto semi = EvaluateQuery(p, &db, L("tc(X, Y)"),
                            RecursionMethod::kSemiNaive, {});
  auto naive =
      EvaluateQuery(p, &db, L("tc(X, Y)"), RecursionMethod::kNaive, {});
  ASSERT_TRUE(semi.ok() && naive.ok());
  EXPECT_EQ(Sorted(semi->answers), Sorted(naive->answers));
}

TEST(EngineEdgeTest, ArithmeticBoundedRecursionTerminates) {
  // Arithmetic recursion guarded by a comparison is executable when
  // evaluated (the conservative safety analysis would reject it; here we
  // drive the engine directly to confirm the guard bounds the fixpoint).
  Program p = P(R"(
    count_to(N, 0) <- limit(N).
    count_to(N, J) <- count_to(N, I), I < N, J = I + 1.
  )");
  Database db;
  (void)db.AddFact(L("limit(10)"));
  auto result = EvaluateQuery(p, &db, L("count_to(10, X)"),
                              RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 11u);  // 0..10
}

}  // namespace
}  // namespace ldl
