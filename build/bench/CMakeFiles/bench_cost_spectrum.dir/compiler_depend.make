# Empty compiler generated dependencies file for bench_cost_spectrum.
# This may be replaced when dependencies are built.
