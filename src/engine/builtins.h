#ifndef LDLOPT_ENGINE_BUILTINS_H_
#define LDLOPT_ENGINE_BUILTINS_H_

#include "ast/literal.h"
#include "ast/term.h"
#include "base/status.h"
#include "engine/unify.h"

namespace ldl {

// Reentrancy contract: every function in this header is a pure function of
// its arguments plus the passed-in Substitution — no mutable static or
// global state (audited; the only function-local statics in the evaluation
// stack are immutable empty-collection singletons with thread-safe
// initialization, in term.cc and relation.cc). Parallel fixpoint workers
// and concurrently evaluating LdlSystem instances may therefore call these
// from any number of threads, as long as each Substitution is
// thread-private (they always are: one per RuleEvaluator, which is one per
// task). Pinned by tests/parallel_engine_test.cc's concurrent-systems TSan
// case.

/// Outcome of attempting one builtin literal under a substitution.
enum class BuiltinOutcome {
  kSatisfied,      ///< test passed / assignment made (subst may be extended)
  kFailed,         ///< test failed (or arithmetic error); prune this branch
  kNotComputable,  ///< insufficient bindings: the literal is an infinite
                   ///< relation here (paper section 8); evaluation order bug
};

/// Evaluates ground arithmetic inside `t`: function terms with functors
/// + - * / mod over numeric arguments are folded to numeric constants;
/// everything else (data constructors, symbols) is left intact.
/// Returns kInvalidArgument on division by zero.
Result<Term> EvalArithmetic(const Term& t);

/// True iff `t` contains any arithmetic functor (+ - * / mod).
bool ContainsArithmetic(const Term& t);

/// Attempts the builtin comparison literal `lit` under `*subst`:
///  - comparisons (< <= > >= !=) require both sides ground; compares
///    numerically when both sides are numeric, by term order otherwise;
///  - `=` evaluates whichever side is ground (folding arithmetic) and
///    unifies it with the other side, possibly binding variables.
/// On kFailed/kNotComputable the substitution is unchanged.
BuiltinOutcome EvalBuiltin(const Literal& lit, Substitution* subst);

/// Static EC test used by the safety analysis and by the adornment walk:
/// given which argument sides are fully bound, would EvalBuiltin be
/// computable? (paper section 8.1: "patterns of argument bindings that
/// ensure EC are simple to derive for comparison predicates"). This raw
/// form ignores term structure; prefer BuiltinComputable below.
bool BuiltinComputableWith(BuiltinKind kind, bool lhs_bound, bool rhs_bound);

/// Structure-aware EC test for a builtin literal. For `=` the paper's rule
/// is directional: "we are ensured of EC as soon as all the variables in
/// *expression* are instantiated". Evaluating a ground side and unifying it
/// against the other side works only when the unbound side is a pure
/// constructor pattern — an unbound side containing arithmetic (X = Y / 2
/// with Y free) would need equation solving, which the engine does not do.
bool BuiltinComputable(const Literal& lit, bool lhs_bound, bool rhs_bound);

}  // namespace ldl

#endif  // LDLOPT_ENGINE_BUILTINS_H_
