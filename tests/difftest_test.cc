// Tests for the differential-testing subsystem (src/testing/program_gen.h,
// src/testing/difftest.h): generator validity and determinism, the
// printer/parser round trip, the cross-method oracle, answer
// canonicalization, fault injection, and the ddmin shrinker.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "ast/parser.h"
#include "base/rng.h"
#include "engine/query_eval.h"
#include "ldl/ldl.h"
#include "testing/difftest.h"
#include "testing/program_gen.h"

namespace ldl {
namespace testing {
namespace {

// --- generator ------------------------------------------------------------

TEST(ProgramGenTest, GeneratedProgramsAreValidAndEvaluable) {
  Rng rng(101);
  ProgramGenOptions options;
  for (int i = 0; i < 40; ++i) {
    GeneratedProgram prog = GenerateProgram(&rng, options);
    auto program = prog.BuildProgram();
    ASSERT_TRUE(program.ok()) << prog.summary << "\n" << prog.ToLdl();
    Database db;
    ASSERT_TRUE(prog.BuildDatabase(&db).ok()) << prog.summary;
    auto ref = EvaluateQuery(*program, &db, prog.query,
                             RecursionMethod::kSemiNaive, {});
    ASSERT_TRUE(ref.ok()) << prog.summary << ": " << ref.status() << "\n"
                          << prog.ToLdl();
  }
}

TEST(ProgramGenTest, DeterministicBySeed) {
  ProgramGenOptions options;
  Rng a(7), b(7), c(8);
  GeneratedProgram pa = GenerateProgram(&a, options);
  GeneratedProgram pb = GenerateProgram(&b, options);
  GeneratedProgram pc = GenerateProgram(&c, options);
  EXPECT_EQ(pa.ToLdl(), pb.ToLdl());
  EXPECT_NE(pa.ToLdl(), pc.ToLdl());
}

TEST(ProgramGenTest, RoundTripsThroughParser) {
  Rng rng(202);
  ProgramGenOptions options;
  for (int i = 0; i < 25; ++i) {
    GeneratedProgram prog = GenerateProgram(&rng, options);
    LdlSystem sys;
    Status st = sys.LoadProgram(prog.ToLdl());
    ASSERT_TRUE(st.ok()) << prog.summary << ": " << st.ToString() << "\n"
                         << prog.ToLdl();
    // The embedded query form survives the round trip too.
    ASSERT_EQ(sys.pending_queries().size(), 1u) << prog.ToLdl();
    EXPECT_EQ(sys.pending_queries()[0].goal.ToString(),
              prog.query.ToString());
  }
}

TEST(ProgramGenTest, ShapesAreHonored) {
  ProgramGenOptions options;
  for (EdbShape shape : {EdbShape::kChain, EdbShape::kTree, EdbShape::kCycle,
                         EdbShape::kRandom}) {
    options.shape = shape;
    Rng rng(11);
    GeneratedProgram prog = GenerateProgram(&rng, options);
    EXPECT_NE(prog.summary.find(EdbShapeToString(shape)), std::string::npos)
        << prog.summary;
  }
}

// --- canonicalization -----------------------------------------------------

TEST(CanonicalAnswersTest, SortsTuplesAndFingerprintsAreOrderFree) {
  Relation a("r", 2);
  a.Insert({Term::MakeInt(2), Term::MakeInt(1)});
  a.Insert({Term::MakeInt(1), Term::MakeInt(2)});
  Relation b("r", 2);
  b.Insert({Term::MakeInt(1), Term::MakeInt(2)});
  b.Insert({Term::MakeInt(2), Term::MakeInt(1)});
  EXPECT_EQ(CanonicalAnswers(a), CanonicalAnswers(b));
  EXPECT_EQ(AnswerFingerprint(a), AnswerFingerprint(b));
  std::vector<Tuple> canon = CanonicalAnswers(a);
  ASSERT_EQ(canon.size(), 2u);
  EXPECT_LE(canon[0], canon[1]);

  Relation c("r", 2);
  c.Insert({Term::MakeInt(1), Term::MakeInt(3)});
  EXPECT_NE(AnswerFingerprint(a), AnswerFingerprint(c));
  // The fingerprint leads with the cardinality, so size mismatches are
  // visible without decoding the hash.
  EXPECT_EQ(AnswerFingerprint(c).substr(0, 2), "1:");
}

// --- differential oracle --------------------------------------------------

TEST(DiffTestTest, CleanProgramsProduceNoMismatch) {
  Rng rng(303);
  DiffTestOptions options;
  for (int i = 0; i < 10; ++i) {
    GeneratedProgram prog = GenerateProgram(&rng, options.gen);
    DiffOutcome outcome = RunDifferential(prog, options);
    ASSERT_FALSE(outcome.reference_failed) << outcome.detail;
    EXPECT_FALSE(outcome.failed())
        << prog.summary << "\n" << outcome.detail << prog.ToLdl();
    // The matrix really ran: reference + 3 methods + 6 optimizer configs
    // + 2 tree configs.
    EXPECT_GE(outcome.configs.size(), 12u);
    EXPECT_TRUE(outcome.FailureSignatures().empty());
  }
}

// Tier-1 parallel smoke: the par:N axis emits one config per thread count
// per enabled method/strategy, every one agreeing with the sequential
// reference. (The broad sweep lives in the slow soak and in CI's parallel
// leg; this pins the wiring.)
TEST(DiffTestTest, ParallelConfigsAgreeWithReference) {
  Rng rng(404);
  DiffTestOptions options;
  options.run_tree_interpreter = false;
  options.run_metamorphic = false;
  options.run_analysis_pruned = false;
  options.run_feedback = false;
  options.thread_counts = {1, 2, 4};
  for (int i = 0; i < 5; ++i) {
    GeneratedProgram prog = GenerateProgram(&rng, options.gen);
    DiffOutcome outcome = RunDifferential(prog, options);
    ASSERT_FALSE(outcome.reference_failed) << outcome.detail;
    EXPECT_FALSE(outcome.failed())
        << prog.summary << "\n" << outcome.detail << prog.ToLdl();
    size_t par_configs = 0;
    for (const auto& cr : outcome.configs) {
      if (cr.config.rfind("par:", 0) == 0) {
        ++par_configs;
        EXPECT_TRUE(cr.ok) << cr.config << ": " << cr.detail;
        EXPECT_TRUE(cr.agrees) << cr.config;
      }
    }
    // 3 thread counts x (4 methods + 5 strategies).
    EXPECT_EQ(par_configs, 27u) << prog.summary;
  }
}

TEST(DiffTestTest, FlippedJoinIsDetected) {
  // Hand-built asymmetric chain: flipping e(X, Z) in the recursive rule
  // changes the transitive closure.
  GeneratedProgram prog;
  auto parsed = ParseProgram(R"(
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
  )");
  ASSERT_TRUE(parsed.ok());
  prog.rules = parsed->rules();
  for (int i = 0; i < 4; ++i) {
    prog.facts.push_back(Literal::Make(
        "e", {Term::MakeInt(i), Term::MakeInt(i + 1)}));
  }
  auto goal = ParseLiteral("t(0, Y)");
  ASSERT_TRUE(goal.ok());
  prog.query = *goal;
  prog.summary = "hand-built chain";

  GeneratedProgram mutant = ApplyFault(prog, Fault::kFlipJoin);
  EXPECT_NE(mutant.ToLdl(), prog.ToLdl());

  DiffTestOptions options;
  options.fault = Fault::kFlipJoin;
  DiffOutcome outcome = RunDifferential(prog, options);
  ASSERT_FALSE(outcome.reference_failed) << outcome.detail;
  bool fault_flagged = false;
  for (const ConfigResult& cr : outcome.configs) {
    if (cr.config == "fault:flip-join") fault_flagged = !cr.agrees;
  }
  EXPECT_TRUE(fault_flagged) << outcome.detail;
  EXPECT_EQ(outcome.FailureSignatures(),
            (std::vector<std::string>{"neq:fault:flip-join"}));
}

TEST(DiffTestTest, ConfigErrorIsDistinctFromMismatch) {
  // A program whose query predicate has no rules: the direct path answers
  // from the (empty) base relation, the optimizer configs error. That must
  // surface as config_error, not as an answer mismatch — the distinction
  // the shrinker's signature matching is built on.
  GeneratedProgram prog;
  auto goal = ParseLiteral("undefined_pred(X)");
  ASSERT_TRUE(goal.ok());
  prog.query = *goal;
  prog.summary = "no rules";
  DiffTestOptions options;
  options.run_metamorphic = false;
  DiffOutcome outcome = RunDifferential(prog, options);
  ASSERT_FALSE(outcome.reference_failed);
  EXPECT_TRUE(outcome.config_error) << outcome.detail;
  EXPECT_FALSE(outcome.mismatch);
  for (const std::string& sig : outcome.FailureSignatures()) {
    EXPECT_EQ(sig.substr(0, 4), "err:") << sig;
  }
}

// --- shrinker -------------------------------------------------------------

TEST(ShrinkFailureTest, MinimizesInjectedFaultToHandfulOfRules) {
  Rng rng(404);
  DiffTestOptions options;
  options.fault = Fault::kFlipJoin;
  size_t shrunk_checked = 0;
  for (int i = 0; i < 12 && shrunk_checked < 3; ++i) {
    GeneratedProgram prog = GenerateProgram(&rng, options.gen);
    DiffOutcome outcome = RunDifferential(prog, options);
    if (outcome.reference_failed) continue;
    bool fault_flagged = false;
    for (const ConfigResult& cr : outcome.configs) {
      if (cr.config == "fault:flip-join" && (!cr.agrees || !cr.ok)) {
        fault_flagged = true;
      }
    }
    if (!fault_flagged) continue;  // mutation was a no-op on this program

    // Signature-preserving predicate, as the CLI uses: accept a reduction
    // only while its failures are a subset of the original failure modes.
    std::set<std::string> allowed;
    for (const std::string& s : outcome.FailureSignatures()) allowed.insert(s);
    auto still_fails = [&](const GeneratedProgram& candidate) {
      DiffOutcome o = RunDifferential(candidate, options);
      std::vector<std::string> sigs = o.FailureSignatures();
      if (sigs.empty()) return false;
      for (const std::string& s : sigs) {
        if (allowed.count(s) == 0) return false;
      }
      return true;
    };

    ShrinkStats stats;
    GeneratedProgram minimized =
        ShrinkFailure(prog, still_fails, 2000, &stats);
    EXPECT_TRUE(still_fails(minimized)) << minimized.ToLdl();
    EXPECT_LE(minimized.rules.size(), 5u)
        << "shrunk from " << prog.rules.size() << " rules:\n"
        << minimized.ToLdl();
    EXPECT_LE(minimized.rules.size(), prog.rules.size());
    EXPECT_LE(minimized.facts.size(), prog.facts.size());
    EXPECT_GT(stats.evaluations, 0u);
    ++shrunk_checked;
  }
  // The flip must have been effective on at least a few generated programs.
  EXPECT_GE(shrunk_checked, 3u);
}

TEST(ShrinkFailureTest, NeverAcceptsNonFailingCandidates) {
  // Degenerate predicate that only fails on the original: the shrinker must
  // return the original unchanged.
  Rng rng(505);
  ProgramGenOptions gen;
  GeneratedProgram prog = GenerateProgram(&rng, gen);
  std::string original = prog.ToLdl();
  GeneratedProgram minimized = ShrinkFailure(
      prog,
      [&original](const GeneratedProgram& candidate) {
        return candidate.ToLdl() == original;
      },
      500, nullptr);
  EXPECT_EQ(minimized.ToLdl(), original);
}

// --- repro files ----------------------------------------------------------

TEST(WriteReproTest, CreatesDirectoryAndRunnableFile) {
  Rng rng(606);
  ProgramGenOptions gen;
  GeneratedProgram prog = GenerateProgram(&rng, gen);
  std::string dir = ::testing::TempDir() + "/difftest-repros/nested";
  std::string path = WriteRepro(dir, 42, 7, prog, "line one\nline two");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("repro-seed42-i7.ldl"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  EXPECT_NE(text.find("% line one"), std::string::npos);
  EXPECT_NE(text.find("% line two"), std::string::npos);

  // The repro is directly re-loadable (comments and query included).
  LdlSystem sys;
  EXPECT_TRUE(sys.LoadProgram(text).ok()) << text;
  std::filesystem::remove_all(::testing::TempDir() + "/difftest-repros");
}

}  // namespace
}  // namespace testing
}  // namespace ldl
