#ifndef LDLOPT_ANALYSIS_DATAFLOW_H_
#define LDLOPT_ANALYSIS_DATAFLOW_H_

#include <cstddef>
#include <functional>
#include <string>

#include "ast/program.h"
#include "graph/dependency_graph.h"

namespace ldl {

/// Propagation direction over the predicate dependency graph.
///  - kBottomUp: information flows from body predicates to the heads that
///    use them (types, cardinalities). Components are processed in the
///    graph's bottom-up topological order.
///  - kTopDown: information flows from heads to the predicates their rules
///    mention (reachability from a query). Components are processed in
///    reverse topological order.
enum class DataflowDirection {
  kBottomUp,
  kTopDown,
};

const char* DataflowDirectionToString(DataflowDirection direction);

/// Telemetry of one fixpoint run.
struct DataflowStats {
  size_t visits = 0;      ///< transfer-function applications
  size_t rounds = 0;      ///< SCC components processed
  size_t widenings = 0;   ///< widen() calls (visit cap reached)
  bool converged = true;  ///< false iff some predicate hit the cap with no
                          ///< widening operator to force termination

  std::string ToString() const;
};

/// A monotone dataflow framework over the predicate dependency graph.
///
/// The framework owns the *schedule*, clients own the *lattice*: each client
/// keeps its own per-predicate abstract values (a map in the client) and
/// supplies a pull-style transfer function that recomputes the value of one
/// predicate from its graph neighbours, returning whether the value changed.
/// The framework condenses the graph into strongly connected components
/// (already computed by DependencyGraph), processes the components in
/// topological order for the chosen direction, and runs a worklist fixpoint
/// *within* each component — so non-recursive predicates are visited exactly
/// once and iteration is confined to recursive cliques, where the lattices
/// actually need it.
///
/// Termination: for finite-height lattices a monotone transfer converges on
/// its own. Clients with unbounded lattices (e.g. cardinality sketches)
/// supply a widening operator; when a predicate has been visited `visit_cap`
/// times within its component the framework calls widen(pred) — which must
/// jump the value to something that stabilizes (typically top) — and keeps
/// going. With no widening operator the predicate is abandoned and
/// DataflowStats::converged reports false.
class DataflowFramework {
 public:
  /// Recomputes `pred`'s abstract value from its neighbours' current values;
  /// returns true iff the value changed (which schedules the successors).
  using TransferFn = std::function<bool(const PredicateId& pred)>;
  /// Forces `pred`'s value to a stabilizing over-approximation.
  using WidenFn = std::function<void(const PredicateId& pred)>;

  /// Per-component visit cap before widening kicks in. Deep recursive
  /// cliques in generated programs stay well under this.
  static constexpr size_t kDefaultVisitCap = 64;

  /// Both `program` and `graph` must outlive the framework.
  DataflowFramework(const Program& program, const DependencyGraph& graph)
      : program_(program), graph_(graph) {}

  /// Runs the fixpoint: applies `transfer` over every derived predicate
  /// until stable, in SCC-condensation order for `direction`.
  DataflowStats Run(DataflowDirection direction, const TransferFn& transfer,
                    const WidenFn& widen = {},
                    size_t visit_cap = kDefaultVisitCap) const;

  const Program& program() const { return program_; }
  const DependencyGraph& graph() const { return graph_; }

 private:
  const Program& program_;
  const DependencyGraph& graph_;
};

}  // namespace ldl

#endif  // LDLOPT_ANALYSIS_DATAFLOW_H_
