#ifndef LDLOPT_ENGINE_PARALLEL_H_
#define LDLOPT_ENGINE_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "ast/rule.h"

namespace ldl {

/// Knobs for the parallel hash-partitioned fixpoint engine. The default
/// (num_threads = 1) runs the exact sequential code path, byte-for-byte
/// identical to the pre-parallel engine.
struct EngineOptions {
  /// Worker count for fixpoint rounds. 1 = sequential evaluation (the
  /// original tuple-at-a-time loop, unchanged). N > 1 partitions each
  /// round's delta relations by tuple hash across N workers (the calling
  /// thread doubles as worker 0) and merges the per-task outputs through a
  /// sharded deterministic barrier.
  size_t num_threads = 1;

  /// Rounds whose total delta is below this many tuples skip partitioning
  /// and run as a single task — fan-out overhead would exceed the work.
  size_t min_partition_tuples = 64;

  /// Test-only hook invoked by each worker at task boundaries, used by the
  /// schedule-perturbation tests to force different interleavings. Must be
  /// thread-safe. Never set in production.
  std::function<void(size_t worker)> test_yield_hook;
};

/// A fixed pool of persistent worker threads executing batches of
/// independent tasks. The calling thread participates as worker 0, so a
/// pool of `num_threads` uses num_threads - 1 OS threads.
///
/// Run() dispatches tasks by atomic counter (work stealing degenerates to
/// this under uniform task cost) and blocks until every task completed.
/// Tasks must not throw and must synchronize among themselves only through
/// data the caller partitioned up front — the pool provides the
/// fork/join edges (mutex + condition variables), which give the usual
/// happens-before: everything written before Run() is visible to tasks,
/// everything tasks write is visible after Run() returns.
class WorkerPool {
 public:
  /// Creates a pool with `num_threads` total workers (minimum 1; one is the
  /// caller). Threads start idle and park on a condition variable between
  /// rounds.
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_workers() const { return threads_.size() + 1; }

  /// Runs fn(task, worker) for task = 0..num_tasks-1 across the pool and
  /// returns when all calls finished. Not reentrant: one Run at a time.
  void Run(size_t num_tasks, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t worker);
  void DrainTasks(size_t worker);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;     // bumped per Run(); wakes parked workers
  size_t pending_workers_ = 0;  // pool threads still draining this round
  size_t num_tasks_ = 0;
  const std::function<void(size_t, size_t)>* fn_ = nullptr;
  std::atomic<size_t> next_task_{0};
  bool shutdown_ = false;
};

/// Statically predicts the bound-column sets that positive body literals of
/// `rule` will use for index lookups when evaluated in `order` (empty order
/// = textual). Returns (body_pos, bound_cols) pairs, deduplicated; a literal
/// can contribute two entries because builtins may or may not bind their
/// variables by runtime, and both assumptions are simulated.
///
/// The parallel engine calls this on the coordinator thread to PrepareIndex
/// every predicted lookup before a round fans out; a prediction miss is
/// harmless (workers fall back to a scan), a mutation during the round would
/// not be — so workers never build indexes themselves.
std::vector<std::pair<size_t, std::vector<int>>> PredictBoundCols(
    const Rule& rule, const std::vector<size_t>& order);

}  // namespace ldl

#endif  // LDLOPT_ENGINE_PARALLEL_H_
