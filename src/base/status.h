#ifndef LDLOPT_BASE_STATUS_H_
#define LDLOPT_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ldl {

/// Error categories used across the library. The set is deliberately small:
/// callers mostly branch on ok()/!ok() and surface message() to the user.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (parse errors, bad arity, ...).
  kNotFound,          ///< Missing predicate/relation/index.
  kUnsafe,            ///< Query has no safe execution (paper section 8).
  kUnsupported,       ///< Valid LDL we have chosen not to implement.
  kInternal,           ///< Invariant violation inside the library.
  kResourceExhausted,  ///< Iteration/size/memory budget tripped.
  kDeadlineExceeded,   ///< Query ran past its wall-clock deadline.
  kCancelled           ///< Caller requested cancellation mid-query.
};

/// Returns a stable human-readable name ("InvalidArgument", ...) for a code.
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modeled on the Status idiom used by
/// production database codebases (Arrow, RocksDB). Functions that can fail
/// return Status (or Result<T>); exceptions are not used across API
/// boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsafe(std::string msg) {
    return Status(StatusCode::kUnsafe, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error wrapper; the moral equivalent of absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse: `return relation;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression, mirroring the
/// RETURN_NOT_OK idiom used throughout Arrow and RocksDB.
#define LDL_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::ldl::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors and otherwise
/// assigning the unwrapped value to `lhs`.
#define LDL_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                              \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

#define LDL_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define LDL_ASSIGN_OR_RETURN_NAME(a, b) LDL_ASSIGN_OR_RETURN_CONCAT(a, b)
#define LDL_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  LDL_ASSIGN_OR_RETURN_IMPL(LDL_ASSIGN_OR_RETURN_NAME(_res_, __COUNTER__), \
                            lhs, rexpr)

}  // namespace ldl

#endif  // LDLOPT_BASE_STATUS_H_
