#ifndef LDLOPT_BENCH_BENCH_UTIL_H_
#define LDLOPT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "base/strings.h"

namespace ldl {
namespace bench {

/// Process-wide collector mirroring every Banner section and printed Table
/// into machine-readable JSON. Each bench binary calls FlushJson(name) at
/// exit to write BENCH_<name>.json next to the human tables, so runs can be
/// diffed or plotted without scraping stdout.
class JsonSink {
 public:
  static JsonSink& Global() {
    static JsonSink sink;
    return sink;
  }

  void BeginSection(const std::string& id, const std::string& title) {
    sections_.push_back({id, title, {}});
  }

  void AddTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
    if (sections_.empty()) BeginSection("", "");
    sections_.back().tables.push_back({headers, rows});
  }

  /// Writes BENCH_<name>.json into $LDL_BENCH_JSON_DIR (default: the
  /// current directory). Set LDL_BENCH_JSON=0 to disable.
  void Flush(const std::string& name) const {
    const char* toggle = std::getenv("LDL_BENCH_JSON");
    if (toggle != nullptr && std::string(toggle) == "0") return;
    std::string dir;
    if (const char* env = std::getenv("LDL_BENCH_JSON_DIR")) dir = env;
    std::string path =
        (dir.empty() ? "" : dir + "/") + "BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\"bench\":\"" << JsonEscape(name) << "\",\"experiments\":[";
    for (size_t s = 0; s < sections_.size(); ++s) {
      if (s) out << ",";
      const Section& section = sections_[s];
      out << "{\"id\":\"" << JsonEscape(section.id) << "\",\"title\":\""
          << JsonEscape(section.title) << "\",\"tables\":[";
      for (size_t t = 0; t < section.tables.size(); ++t) {
        if (t) out << ",";
        WriteTable(out, section.tables[t]);
      }
      out << "]}";
    }
    out << "]}\n";
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct TableData {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  struct Section {
    std::string id;
    std::string title;
    std::vector<TableData> tables;
  };

  static void WriteStringArray(std::ofstream& out,
                               const std::vector<std::string>& items) {
    out << "[";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i) out << ",";
      out << "\"" << JsonEscape(items[i]) << "\"";
    }
    out << "]";
  }

  static void WriteTable(std::ofstream& out, const TableData& table) {
    out << "{\"headers\":";
    WriteStringArray(out, table.headers);
    out << ",\"rows\":[";
    for (size_t r = 0; r < table.rows.size(); ++r) {
      if (r) out << ",";
      WriteStringArray(out, table.rows[r]);
    }
    out << "]}";
  }

  std::vector<Section> sections_;
};

/// Fixed-width console table, used to print the paper-style result tables
/// that each bench binary regenerates. Print() also registers the table
/// with the JsonSink so FlushJson exports it.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    JsonSink::Global().AddTable(headers_, rows_);
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&widths](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into std::string.
inline std::string Fmt(double v, const char* fmt = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Pct(size_t num, size_t den) {
  if (den == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%",
                100.0 * static_cast<double>(num) / static_cast<double>(den));
  return buf;
}

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Banner(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
  JsonSink::Global().BeginSection(id, title);
}

/// Writes the collected sections/tables as BENCH_<name>.json (see
/// JsonSink::Flush). Call once at the end of main.
inline void FlushJson(const char* name) { JsonSink::Global().Flush(name); }

}  // namespace bench
}  // namespace ldl

#endif  // LDLOPT_BENCH_BENCH_UTIL_H_
