// The concurrency contract of the hash-partitioned parallel engine
// (engine/parallel.h, fixpoint.cc): at every thread count the answers are
// bit-identical to the sequential engine, under any schedule; typed aborts
// (cancel / deadline / budget) surface deterministically mid-round without
// leaking worker state; and independent LdlSystem instances can evaluate
// concurrently from distinct threads (the TSan pin for the static-state
// audit documented in engine/builtins.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ast/parser.h"
#include "engine/query_eval.h"
#include "ldl/ldl.h"
#include "obs/resource.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

std::vector<Tuple> Sorted(const Relation& r) {
  std::vector<Tuple> out = r.tuples();
  std::sort(out.begin(), out.end());
  return out;
}

constexpr const char* kSg = R"(
  sg(X, Y) <- flat(X, Y).
  sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
)";

constexpr const char* kTc = R"(
  tc(X, Y) <- edge(X, Y).
  tc(X, Y) <- edge(X, Z), tc(Z, Y).
)";

QueryEvalOptions ParOptions(size_t threads) {
  QueryEvalOptions options;
  options.fixpoint.engine.num_threads = threads;
  // Partition even tiny deltas so small test workloads still exercise the
  // multi-task path (the production default keeps short rounds sequential).
  options.fixpoint.engine.min_partition_tuples = 1;
  return options;
}

// Every method at every thread count produces the sequential answer set —
// the core acceptance bar of the parallel engine.
TEST(ParallelEquivalenceTest, AllMethodsAllThreadCountsMatchSequential) {
  Program p = P(kSg);
  Database db;
  testing::MakeSameGenerationData(3, 4, &db);
  for (const char* query : {"sg(X, Y)", "sg(0, Y)"}) {
    Literal goal = L(query);
    for (RecursionMethod method :
         {RecursionMethod::kSemiNaive, RecursionMethod::kNaive,
          RecursionMethod::kMagic, RecursionMethod::kCounting}) {
      auto seq = EvaluateQuery(p, &db, goal, method, {});
      ASSERT_TRUE(seq.ok()) << seq.status();
      for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{4}}) {
        auto par = EvaluateQuery(p, &db, goal, method, ParOptions(threads));
        ASSERT_TRUE(par.ok())
            << query << " " << RecursionMethodToString(method) << " threads "
            << threads << ": " << par.status();
        EXPECT_EQ(Sorted(par->answers), Sorted(seq->answers))
            << query << " " << RecursionMethodToString(method) << " threads "
            << threads;
      }
    }
  }
}

// Cyclic data: the counting divergence guard must still trip under
// snapshot-round semantics and fall back to magic with identical answers.
TEST(ParallelEquivalenceTest, CountingFallbackStillCorrectInParallel) {
  Program p = P(kTc);
  Database db;
  testing::MakeCycle(12, &db);
  auto seq = EvaluateQuery(p, &db, L("tc(0, Y)"),
                           RecursionMethod::kCounting, {});
  ASSERT_TRUE(seq.ok()) << seq.status();
  auto par = EvaluateQuery(p, &db, L("tc(0, Y)"), RecursionMethod::kCounting,
                           ParOptions(4));
  ASSERT_TRUE(par.ok()) << par.status();
  EXPECT_EQ(Sorted(par->answers), Sorted(seq->answers));
  EXPECT_EQ(par->answers.size(), 12u);
}

// 64 repeated 4-thread runs produce the identical fingerprint: the sharded
// merge barrier commits in shard order and statuses/counters fold in task
// order, so nothing observable depends on the schedule.
TEST(ParallelDeterminismTest, SixtyFourRunsIdenticalFingerprint) {
  Program p = P(kSg);
  Database db;
  testing::MakeSameGenerationData(3, 4, &db);
  Literal goal = L("sg(X, Y)");
  auto seq = EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(seq.ok());
  const std::string expected = AnswerFingerprint(seq->answers);
  for (int run = 0; run < 64; ++run) {
    auto par =
        EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive,
                      ParOptions(4));
    ASSERT_TRUE(par.ok()) << "run " << run << ": " << par.status();
    EXPECT_EQ(AnswerFingerprint(par->answers), expected) << "run " << run;
  }
}

// Schedule perturbation: a test-only yield hook makes workers surrender the
// processor at pseudo-random points, forcing interleavings a quiet machine
// would never produce. Answers must not move.
TEST(ParallelDeterminismTest, YieldPerturbedSchedulesAgree) {
  Program p = P(kSg);
  Database db;
  testing::MakeSameGenerationData(3, 3, &db);
  Literal goal = L("sg(X, Y)");
  auto seq = EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(seq.ok());
  const std::string expected = AnswerFingerprint(seq->answers);
  std::atomic<uint64_t> calls{0};
  for (int run = 0; run < 16; ++run) {
    QueryEvalOptions options = ParOptions(4);
    // Mixing the run number in decorrelates the yield points across runs.
    options.fixpoint.engine.test_yield_hook = [&calls, run](size_t worker) {
      uint64_t n = calls.fetch_add(1, std::memory_order_relaxed);
      if ((n + worker + static_cast<uint64_t>(run)) % 3 == 0) {
        std::this_thread::yield();
      }
    };
    auto par =
        EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, options);
    ASSERT_TRUE(par.ok()) << "run " << run << ": " << par.status();
    EXPECT_EQ(AnswerFingerprint(par->answers), expected) << "run " << run;
  }
  EXPECT_GT(calls.load(), 0u);  // the hook really ran inside workers
}

// A worker-raised cancellation aborts the round with the typed status and
// leaves the engine reusable: the same database evaluates correctly
// immediately afterwards (no poisoned pool, no half-merged delta visible).
TEST(ParallelAbortTest, WorkerRaisedCancelAbortsMidRoundCleanly) {
  Program p = P(kSg);
  Database db;
  testing::MakeSameGenerationData(3, 4, &db);
  Literal goal = L("sg(X, Y)");

  CancellationToken token;
  std::atomic<uint64_t> hook_calls{0};
  QueryEvalOptions options = ParOptions(4);
  options.fixpoint.trace.cancel = &token;
  // Cancel from inside a worker once tasks are demonstrably in flight —
  // the abort lands mid-parallel-round, not at the setup check-point.
  options.fixpoint.engine.test_yield_hook = [&](size_t /*worker*/) {
    if (hook_calls.fetch_add(1, std::memory_order_relaxed) == 4) {
      token.RequestCancel();
    }
  };
  auto cancelled =
      EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, options);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled)
      << cancelled.status();
  EXPECT_GT(hook_calls.load(), 4u);

  // No worker state leaked: a fresh parallel evaluation over the same
  // inputs succeeds and matches sequential.
  auto seq = EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, {});
  auto retry =
      EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, ParOptions(4));
  ASSERT_TRUE(seq.ok() && retry.ok());
  EXPECT_EQ(Sorted(retry->answers), Sorted(seq->answers));
}

// An expired wall-clock deadline surfaces as kDeadlineExceeded from the
// parallel evaluation, every time.
TEST(ParallelAbortTest, DeadlineExceededIsTyped) {
  Program p = P(kSg);
  Database db;
  testing::MakeSameGenerationData(3, 4, &db);
  for (int run = 0; run < 4; ++run) {
    CancellationToken token;
    token.set_deadline_after(std::chrono::duration<double, std::milli>(0.0));
    QueryEvalOptions options = ParOptions(4);
    options.fixpoint.trace.cancel = &token;
    auto result = EvaluateQuery(p, &db, L("sg(X, Y)"),
                                RecursionMethod::kSemiNaive, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status();
  }
}

// A tuples-examined budget trips kResourceExhausted while four workers are
// charging the same accountant concurrently, and the status is the same on
// every run (workers flush exact counts; the abort is a typed status, not a
// crash or a wrong answer).
TEST(ParallelAbortTest, BudgetAbortIsTypedAndRepeatable) {
  Program p = P(kSg);
  Database db;
  testing::MakeSameGenerationData(3, 4, &db);
  std::set<StatusCode> codes;
  for (int run = 0; run < 8; ++run) {
    ResourceAccountant accountant;
    ResourceBudget budget;
    budget.max_tuples_examined = 50;
    accountant.set_budget(budget);
    CancellationToken token;
    token.set_accountant(&accountant);
    QueryEvalOptions options = ParOptions(4);
    options.fixpoint.trace.accountant = &accountant;
    options.fixpoint.trace.cancel = &token;
    auto result = EvaluateQuery(p, &db, L("sg(X, Y)"),
                                RecursionMethod::kSemiNaive, options);
    ASSERT_FALSE(result.ok()) << "run " << run;
    codes.insert(result.status().code());
    EXPECT_GT(accountant.tuples_examined(), 0u);
  }
  // Deterministic: the same typed abort on every schedule.
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(*codes.begin(), StatusCode::kResourceExhausted);
}

// The per-round derivation cap aborts a parallel round deterministically:
// each task gets the same fixed budget and the post-barrier cumulative
// check re-applies the cap, so the outcome cannot depend on which worker
// ran first.
TEST(ParallelAbortTest, DerivationCapDeterministicAcrossRuns) {
  Program p = P(kSg);
  Database db;
  testing::MakeSameGenerationData(3, 4, &db);
  std::set<std::string> outcomes;
  for (int run = 0; run < 8; ++run) {
    QueryEvalOptions options = ParOptions(4);
    options.fixpoint.max_derivations = 25;
    auto result = EvaluateQuery(p, &db, L("sg(X, Y)"),
                                RecursionMethod::kSemiNaive, options);
    ASSERT_FALSE(result.ok()) << "run " << run;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status();
    outcomes.insert(result.status().ToString());
  }
  EXPECT_EQ(outcomes.size(), 1u) << "abort status varied across schedules";
}

// Two fully independent LdlSystem instances evaluated from two OS threads,
// each running the parallel engine — the TSan pin for the reentrancy
// contract in engine/builtins.h: no mutable static state anywhere on the
// evaluation path.
TEST(ParallelIsolationTest, ConcurrentIndependentSystems) {
  auto worker = [](size_t fanout, size_t* rows, bool* ok) {
    LdlSystem sys;
    *ok = sys.LoadProgram(kSg).ok();
    if (!*ok) return;
    testing::MakeSameGenerationData(fanout, 3, sys.database());
    sys.RefreshStatistics();
    OptimizerOptions o;
    o.engine.num_threads = 2;
    o.engine.min_partition_tuples = 1;
    sys.set_options(o);
    for (int i = 0; i < 8; ++i) {
      auto answer = sys.Query("sg(X, Y)");
      if (!answer.ok() || answer->answers.empty()) {
        *ok = false;
        return;
      }
      *rows = answer->answers.size();
    }
  };
  size_t rows_a = 0;
  size_t rows_b = 0;
  bool ok_a = false;
  bool ok_b = false;
  std::thread ta(worker, 2, &rows_a, &ok_a);
  std::thread tb(worker, 3, &rows_b, &ok_b);
  ta.join();
  tb.join();
  ASSERT_TRUE(ok_a);
  ASSERT_TRUE(ok_b);

  // Cross-check each concurrent result against a quiet single-threaded
  // evaluation of the same workload.
  for (auto [fanout, rows] : {std::pair<size_t, size_t>{2, rows_a},
                              std::pair<size_t, size_t>{3, rows_b}}) {
    Program p = P(kSg);
    Database db;
    testing::MakeSameGenerationData(fanout, 3, &db);
    auto seq =
        EvaluateQuery(p, &db, L("sg(X, Y)"), RecursionMethod::kSemiNaive, {});
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(rows, seq->answers.size()) << "fanout " << fanout;
  }
}

// The optimized path (LdlSystem::Query) honors the forwarded engine
// options: parallel answers equal sequential answers strategy-for-strategy.
TEST(ParallelOptimizedPathTest, StrategiesAgreeAcrossThreadCounts) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kSg).ok());
  testing::MakeSameGenerationData(3, 3, sys.database());
  sys.RefreshStatistics();

  auto fingerprint = [&](size_t threads) {
    OptimizerOptions o;
    o.engine.num_threads = threads;
    o.engine.min_partition_tuples = 1;
    sys.set_options(o);
    auto answer = sys.Query("sg(0, Y)");
    EXPECT_TRUE(answer.ok()) << answer.status();
    return answer.ok() ? AnswerFingerprint(answer->answers) : std::string();
  };
  const std::string seq = fingerprint(1);
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(fingerprint(2), seq);
  EXPECT_EQ(fingerprint(4), seq);
}

}  // namespace
}  // namespace ldl
