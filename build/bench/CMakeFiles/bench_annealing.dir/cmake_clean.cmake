file(REMOVE_RECURSE
  "CMakeFiles/bench_annealing.dir/bench_annealing.cc.o"
  "CMakeFiles/bench_annealing.dir/bench_annealing.cc.o.d"
  "bench_annealing"
  "bench_annealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
