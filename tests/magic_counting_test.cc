#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "engine/counting.h"
#include "engine/magic.h"
#include "engine/query_eval.h"
#include "graph/adornment.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

constexpr const char* kAncestor = R"(
  anc(X, Y) <- par(X, Y).
  anc(X, Y) <- par(X, Z), anc(Z, Y).
)";

TEST(MagicRewriteTest, StructureForBoundTransitiveClosure) {
  Program p = P(kAncestor);
  auto adorned = AdornProgramForQuery(p, L("anc(1, Y)"), SipStrategy());
  ASSERT_TRUE(adorned.ok());
  auto magic = MagicRewrite(*adorned);
  ASSERT_TRUE(magic.ok()) << magic.status();

  // Seed: magic.anc.bf(1).
  EXPECT_EQ(magic->seed.predicate_name(), "magic.anc.bf");
  ASSERT_EQ(magic->seed.arity(), 1u);
  EXPECT_EQ(magic->seed.args()[0].int_value(), 1);
  EXPECT_EQ(magic->answer_pred.ToString(), "anc.bf/2");

  // Rewritten rules: 2 guarded rules + 1 magic rule (from the recursive
  // occurrence).
  ASSERT_EQ(magic->rewritten.rules().size(), 3u);
  size_t guarded = 0, magic_rules = 0;
  for (const Rule& rule : magic->rewritten.rules()) {
    if (rule.head().predicate_name() == "anc.bf") {
      ++guarded;
      // Guard literal first.
      ASSERT_FALSE(rule.body().empty());
      EXPECT_EQ(rule.body()[0].predicate_name(), "magic.anc.bf");
    } else if (rule.head().predicate_name() == "magic.anc.bf") {
      ++magic_rules;
      // magic.anc.bf(Z) <- magic.anc.bf(X), par(X, Z).
      ASSERT_EQ(rule.body().size(), 2u);
      EXPECT_EQ(rule.body()[0].predicate_name(), "magic.anc.bf");
      EXPECT_EQ(rule.body()[1].predicate_name(), "par");
    }
  }
  EXPECT_EQ(guarded, 2u);
  EXPECT_EQ(magic_rules, 1u);
}

TEST(MagicRewriteTest, MagicSetEqualsReachableSet) {
  // The magic set for anc(c, Y)? is exactly the set of nodes reachable
  // from c via par — evaluate and check.
  Program p = P(kAncestor);
  Database db;
  testing::MakeTreeParentData(2, 5, &db);
  auto adorned = AdornProgramForQuery(p, L("anc(10, Y)"), SipStrategy());
  ASSERT_TRUE(adorned.ok());
  auto magic = MagicRewrite(*adorned);
  ASSERT_TRUE(magic.ok());
  Program rewritten = magic->rewritten;
  rewritten.AddRule(Rule(magic->seed, {}));
  Database scratch;
  FixpointStats stats;
  ASSERT_TRUE(EvaluateProgram(rewritten, RecursionMethod::kSemiNaive, &db,
                              &scratch, &stats, {})
                  .ok());
  Relation* magic_rel = scratch.Find({"magic.anc.bf", 1});
  ASSERT_NE(magic_rel, nullptr);
  // The magic set is exactly node 10 plus every ancestor of 10.
  Relation query_answers =
      SelectMatching(scratch.Find({"anc.bf", 2}), L("anc(10, Y)"));
  EXPECT_EQ(magic_rel->size(), query_answers.size() + 1);
  // And it is restricted: far smaller than the full node set (63 nodes).
  EXPECT_LT(magic_rel->size(), 10u);
}

TEST(MagicRewriteTest, NonRecursiveSelectionPushing) {
  // Magic on a non-recursive program implements selection pushing: only
  // the matching group is computed.
  Program p = P(R"(
    dept_total(D, T) <- dept(D), member_of(E, D), salary(E, S), T = S + S.
  )");
  Database db;
  for (int64_t d = 0; d < 50; ++d) {
    (void)db.AddFact(Literal::Make("dept", {Term::MakeInt(d)}));
    (void)db.AddFact(Literal::Make(
        "member_of", {Term::MakeInt(1000 + d), Term::MakeInt(d)}));
    (void)db.AddFact(Literal::Make(
        "salary", {Term::MakeInt(1000 + d), Term::MakeInt(10 * d)}));
  }
  auto bound = EvaluateQuery(p, &db, L("dept_total(7, T)"),
                             RecursionMethod::kMagic, {});
  auto full = EvaluateQuery(p, &db, L("dept_total(7, T)"),
                            RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(bound.ok()) << bound.status();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(bound->answers.size(), 1u);
  EXPECT_EQ(bound->answers.tuples()[0][1].int_value(), 140);
  EXPECT_LT(bound->stats.counters.tuples_examined,
            full->stats.counters.tuples_examined);
}

TEST(MagicRewriteTest, ZeroArityMagicForFreeSubquery) {
  // A derived predicate reached with no bound arguments gets a 0-ary magic
  // "demand flag".
  Program p = P(R"(
    all_pairs(X, Y) <- r(X), s(Y).
    q(X, Y) <- all_pairs(X, Y), t(X).
  )");
  SipStrategy sips;
  auto adorned = AdornProgramForQuery(p, L("q(X, Y)"), sips);
  ASSERT_TRUE(adorned.ok());
  auto magic = MagicRewrite(*adorned);
  ASSERT_TRUE(magic.ok()) << magic.status();
  bool found_zero_ary = false;
  for (const Rule& rule : magic->rewritten.rules()) {
    if (rule.head().predicate_name() == "magic.all_pairs.ff") {
      EXPECT_EQ(rule.head().arity(), 0u);
      found_zero_ary = true;
    }
  }
  EXPECT_TRUE(found_zero_ary);
}

TEST(CountingRewriteTest, StructureForAncestor) {
  Program p = P(kAncestor);
  auto counting = CountingRewrite(p, L("anc(1, Y)"));
  ASSERT_TRUE(counting.ok()) << counting.status();
  EXPECT_EQ(counting->seed.predicate_name(), "cnt.anc");
  EXPECT_EQ(counting->seed.args()[0].int_value(), 0);  // level 0
  EXPECT_EQ(counting->answer_pred.ToString(), "ans.anc/2");
  // Rules: ascent + 1 exit + descent = 3.
  EXPECT_EQ(counting->rewritten.rules().size(), 3u);
}

TEST(CountingRewriteTest, SgSeparability) {
  Program p = P(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )");
  auto counting = CountingRewrite(p, L("sg(1, Y)"));
  ASSERT_TRUE(counting.ok()) << counting.status();
  // up goes to the ascent; dn to the descent.
  bool ascent_has_up = false, descent_has_dn = false;
  for (const Rule& rule : counting->rewritten.rules()) {
    for (const Literal& lit : rule.body()) {
      if (rule.head().predicate_name() == "cnt.sg" &&
          lit.predicate_name() == "up") {
        ascent_has_up = true;
      }
      if (rule.head().predicate_name() == "ans.sg" &&
          lit.predicate_name() == "dn") {
        descent_has_dn = true;
      }
    }
  }
  EXPECT_TRUE(ascent_has_up);
  EXPECT_TRUE(descent_has_dn);
}

TEST(CountingRewriteTest, RejectsNonSeparableBody) {
  // The filter g(X, Y) couples the up variable X with the down variable Y:
  // counting would need to remember X per level.
  Program p = P(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y), g(X, Y).
  )");
  auto counting = CountingRewrite(p, L("sg(1, Y)"));
  ASSERT_FALSE(counting.ok());
  // g(X, Y) pulls the descent variables into the up closure, so either the
  // separability or the stable-adornment test fires; both mean "counting
  // would have to remember per-level bindings" and are Unsupported.
  EXPECT_EQ(counting.status().code(), StatusCode::kUnsupported);
}

TEST(CountingRewriteTest, RejectsFreeQuery) {
  Program p = P(kAncestor);
  EXPECT_EQ(CountingRewrite(p, L("anc(X, Y)")).status().code(),
            StatusCode::kUnsupported);
}

TEST(CountingRewriteTest, RejectsMutualRecursion) {
  Program p = P(R"(
    e(X) <- zero(X).
    e(X) <- s(Y, X), o(Y).
    o(X) <- s(Y, X), e(Y).
  )");
  EXPECT_EQ(CountingRewrite(p, L("e(4)")).status().code(),
            StatusCode::kUnsupported);
}

TEST(CountingRewriteTest, BothArgumentsBound) {
  Program p = P(kAncestor);
  Database db;
  testing::MakeTreeParentData(2, 6, &db);
  // Node 5's parent chain passes through node 2 then 0.
  auto result = EvaluateQuery(p, &db, L("anc(5, 0)"),
                              RecursionMethod::kCounting,
                              {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(CountingRewriteTest, DagDataCountsLevelsCorrectly) {
  // On a DAG a node can be reachable at several levels; counting must not
  // lose or duplicate answers relative to magic.
  Program p = P(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- edge(X, Z), tc(Z, Y).
  )");
  Database db;
  testing::MakeRandomDag(40, 3, 99, &db);
  QueryEvalOptions options;
  options.counting_fallback = false;
  auto counting =
      EvaluateQuery(p, &db, L("tc(0, Y)"), RecursionMethod::kCounting,
                    options);
  auto magic =
      EvaluateQuery(p, &db, L("tc(0, Y)"), RecursionMethod::kMagic, options);
  ASSERT_TRUE(counting.ok()) << counting.status();
  ASSERT_TRUE(magic.ok());
  auto sorted = [](const Relation& r) {
    std::vector<Tuple> t = r.tuples();
    std::sort(t.begin(), t.end());
    return t;
  };
  EXPECT_EQ(sorted(counting->answers), sorted(magic->answers));
}

TEST(AdornmentSipTest, PerAdornmentOrderOverridesGlobal) {
  SipStrategy sips;
  sips.SetOrder(3, {2, 1, 0});
  auto bf = Adornment::FromString("bf");
  ASSERT_TRUE(bf.ok());
  sips.SetOrderForAdornment(3, *bf, {0, 2, 1});
  EXPECT_EQ(sips.OrderFor(3, 3, *bf), (std::vector<size_t>{0, 2, 1}));
  EXPECT_EQ(sips.OrderFor(3, 3, Adornment::AllFree(2)),
            (std::vector<size_t>{2, 1, 0}));
  EXPECT_EQ(sips.OrderFor(4, 2, *bf), (std::vector<size_t>{0, 1}));
}

TEST(MagicRewriteTest, NegatedDerivedLiteralSeesCompleteRelation) {
  // Regression: a magic-restricted `reach` under negation must still be
  // computed in full (0-ary demand flag), or absence tests go vacuously
  // true.
  Program p = P(R"(
    reach(X, Y) <- edge(X, Y).
    reach(X, Y) <- edge(X, Z), reach(Z, Y).
    node(X) <- edge(X, Y).
    node(Y) <- edge(X, Y).
    separated(X, Y) <- node(X), node(Y), not reach(X, Y), X != Y.
  )");
  Database db;
  (void)db.AddFact(L("edge(1, 2)"));
  (void)db.AddFact(L("edge(2, 3)"));
  (void)db.AddFact(L("edge(4, 5)"));
  auto magic = EvaluateQuery(p, &db, L("separated(1, Y)"),
                             RecursionMethod::kMagic, {});
  auto semi = EvaluateQuery(p, &db, L("separated(1, Y)"),
                            RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(magic.ok()) << magic.status();
  ASSERT_TRUE(semi.ok());
  auto sorted = [](const Relation& r) {
    std::vector<Tuple> t = r.tuples();
    std::sort(t.begin(), t.end());
    return t;
  };
  EXPECT_EQ(sorted(magic->answers), sorted(semi->answers));
  EXPECT_EQ(magic->answers.size(), 2u);  // 4 and 5
}

TEST(MagicRewriteTest, AdornmentUsesAllFreeUnderNegation) {
  Program p = P(R"(
    d(X, Y) <- r(X, Y).
    q(X) <- s(X), not d(X, X).
  )");
  auto adorned = AdornProgramForQuery(p, L("q(1)"), SipStrategy());
  ASSERT_TRUE(adorned.ok());
  bool found = false;
  for (const AdornedPredicate& ap : adorned->predicates) {
    if (ap.pred.name == "d") {
      EXPECT_TRUE(ap.adornment.AllArgsFree()) << ap.ToString();
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ldl
