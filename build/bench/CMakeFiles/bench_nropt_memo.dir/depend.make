# Empty dependencies file for bench_nropt_memo.
# This may be replaced when dependencies are built.
