// Tests for the EXPLAIN / EXPLAIN ANALYZE renderer (plan/explain.h) and
// LdlSystem::ExplainAnalyze: golden output for the estimate-only view over
// nonrecursive and recursive (CC) plans, and populated estimate-vs-actual
// columns after execution.

#include "plan/explain.h"

#include <gtest/gtest.h>

#include <memory>

#include "ast/parser.h"
#include "ldl/ldl.h"
#include "obs/context.h"
#include "optimizer/optimizer.h"
#include "plan/interpreter.h"
#include "plan/processing_tree.h"

namespace ldl {
namespace {

constexpr const char* kJoinProgram = R"(
  grandparent(X, Z) <- parent(X, Y), parent(Y, Z).
  parent(abe, homer).
  parent(homer, bart).
  parent(homer, lisa).
  parent(marge, bart).
)";

constexpr const char* kAncestorProgram = R"(
  anc(X, Y) <- par(X, Y).
  anc(X, Y) <- par(X, Z), anc(Z, Y).
  par(bart, homer).
  par(homer, abe).
  par(abe, orville).
)";

/// Builds the annotated processing tree the way LdlSystem::ExplainTree does
/// (minus the projection-pushing rewrite, for byte-stable goldens).
std::unique_ptr<PlanNode> AnnotatedTree(LdlSystem* sys,
                                        const std::string& goal_text) {
  auto goal = ParseLiteral(goal_text);
  EXPECT_TRUE(goal.ok()) << goal.status().ToString();
  auto tree = BuildProcessingTree(sys->program(), *goal);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  Optimizer optimizer(sys->program(), sys->statistics(), {});
  Status annotated = optimizer.AnnotateTree(tree->get());
  EXPECT_TRUE(annotated.ok()) << annotated.ToString();
  return std::move(*tree);
}

TEST(ExplainTest, GoldenNonrecursiveJoin) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kJoinProgram).ok());
  std::unique_ptr<PlanNode> tree = AnnotatedTree(&sys, "grandparent(abe, Z)");
  std::string text = RenderExplain(*tree);
  EXPECT_EQ(text,
            "PLAN                                                    "
            "EST COST  EST ROWS\n"
            "--------------------------------------------------------"
            "------------------\n"
            "OR [mat] union grandparent(abe, Z) :bf                   "
            "6.26667   1.77778\n"
            "  AND [mat] nested-loop grandparent(X, Z) :bf (rule 0)   "
            "6.26667   1.77778\n"
            "    SCAN [mat] index-scan parent(X, Y) :bf               "
            "2.53333   1.33333\n"
            "    SCAN [mat] index-scan parent(Y, Z) :bf               "
            "2.53333   1.33333\n");
}

TEST(ExplainTest, GoldenRecursiveCc) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kAncestorProgram).ok());
  std::unique_ptr<PlanNode> tree = AnnotatedTree(&sys, "anc(bart, Y)");
  std::string text = RenderExplain(*tree);
  EXPECT_EQ(text,
            "PLAN                                         EST COST  EST ROWS\n"
            "---------------------------------------------------------------\n"
            "CC [pipe] counting anc(bart, Y) :bf {anc/2}       9.3         3\n"
            "  SCAN [mat] scan par(X, Y) :ff                     3         3\n"
            "  SCAN [mat] scan par(X, Z) :ff                     3         3\n");
}

TEST(ExplainTest, AnalyzePopulatesActualColumns) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kJoinProgram).ok());
  std::unique_ptr<PlanNode> tree = AnnotatedTree(&sys, "grandparent(abe, Z)");

  TreeInterpreter interpreter(sys.program(), sys.database());
  auto result = interpreter.Execute(*tree, tree->goal);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 2u);  // abe -> homer -> {bart, lisa}

  std::string text = RenderExplain(*tree, &interpreter.profile());
  // Measured columns are present...
  EXPECT_NE(text.find("ROWS"), std::string::npos);
  EXPECT_NE(text.find("TUPLES"), std::string::npos);
  EXPECT_NE(text.find("TIME MS"), std::string::npos);
  EXPECT_NE(text.find("EXEC"), std::string::npos);
  EXPECT_NE(text.find("MEMO"), std::string::npos);

  // ...and populated: the root OR row was executed once and produced the
  // 2 answers, next to its estimates.
  const NodeActuals* root = interpreter.profile().Find(tree.get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->executions, 1u);
  EXPECT_EQ(root->out_rows, 2u);
  EXPECT_GT(root->tuples_examined, 0u);
  EXPECT_GE(root->wall_ms, 0.0);
}

TEST(ExplainTest, AnalyzeRecursiveCcMeasuresFixpoint) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kAncestorProgram).ok());
  std::unique_ptr<PlanNode> tree = AnnotatedTree(&sys, "anc(bart, Y)");
  ASSERT_EQ(tree->kind, PlanNodeKind::kCc);

  TreeInterpreter interpreter(sys.program(), sys.database());
  auto result = interpreter.Execute(*tree, tree->goal);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 3u);  // homer, abe, orville

  const NodeActuals* root = interpreter.profile().Find(tree.get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->executions, 1u);
  EXPECT_EQ(root->out_rows, 3u);
  EXPECT_GT(root->tuples_examined, 0u);
}

TEST(ExplainTest, LdlSystemExplainAnalyzeEndToEnd) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kAncestorProgram).ok());
  auto text = sys.ExplainAnalyze("anc(bart, Y)");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("EST COST"), std::string::npos);
  EXPECT_NE(text->find("TIME MS"), std::string::npos);
  EXPECT_NE(text->find("CC"), std::string::npos);
  EXPECT_NE(text->find("Answers: 3 rows"), std::string::npos);
  EXPECT_NE(text->find("tuples examined"), std::string::npos);
}

TEST(ExplainTest, ExplainAnalyzeRejectsMalformedGoal) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kJoinProgram).ok());
  auto text = sys.ExplainAnalyze("not a goal ((");
  EXPECT_FALSE(text.ok());
}

}  // namespace
}  // namespace ldl
