// Experiment E16 — cost of the serving-grade telemetry layer:
//
// A production ldlopt process runs with the time-series sampler ticking and
// a stats endpoint being scraped; neither may tax the query path. This
// bench pins the contract:
//
//  - sampler overhead: total wall time of a fixed query workload with the
//    background sampler off vs ticking at an aggressive 5 ms period (far
//    faster than the 200 ms-1 s production cadence) stays within a few
//    percent — the sampler only reads relaxed atomics and briefly holds
//    its own ring lock, never an engine lock (target < 5%);
//  - scrape cost: rendering the full Prometheus exposition of a live
//    registry is microseconds — cheap enough that a per-second scrape is
//    invisible (reported as ns/scrape, informational);
//  - sampling cost: one SampleOnce pass over the same registry, the work
//    the sampler does per tick.
//
// The workload tables are exported as BENCH_expose.json and gated by
// bench_diff against bench/baselines/BENCH_expose.json ("ms" columns only;
// the ns tables are informational).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "base/strings.h"
#include "bench_util.h"
#include "ldl/ldl.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/timeseries.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

std::string ChainProgram(int n) {
  std::string text =
      "tc(X, Y) <- edge(X, Y).\n"
      "tc(X, Y) <- edge(X, Z), tc(Z, Y).\n";
  for (int i = 0; i < n; ++i) {
    text += StrCat("edge(n", i, ", n", i + 1, ").\n");
  }
  return text;
}

/// Total wall ms for `queries` bound-closure queries against one system;
/// `sampler_period_ms` == 0 leaves the registry unsampled, otherwise a
/// background sampler ticks at that period throughout.
double RunWorkloadOnceMs(int chain, int queries, int sampler_period_ms) {
  MetricsRegistry metrics;
  OptimizerOptions options;
  options.trace.metrics = &metrics;
  LdlSystem sys(options);
  Status st = sys.LoadProgram(ChainProgram(chain));
  if (!st.ok()) {
    std::fprintf(stderr, "bench_expose: %s\n", st.ToString().c_str());
    std::abort();
  }
  TimeSeriesOptions ts;
  ts.metrics = &metrics;
  ts.period = std::chrono::milliseconds(
      sampler_period_ms == 0 ? 1000 : sampler_period_ms);
  TimeSeriesSampler sampler(ts);
  if (sampler_period_ms > 0) sampler.Start();
  Stopwatch watch;
  for (int q = 0; q < queries; ++q) {
    auto answer = sys.Query("tc(n0, Y)");
    benchmark::DoNotOptimize(answer);
    if (!answer.ok()) {
      std::fprintf(stderr, "bench_expose: %s\n",
                   answer.status().ToString().c_str());
      std::abort();
    }
  }
  const double ms = watch.ElapsedMs();
  sampler.Stop();
  return ms;
}

/// A registry shaped like a live process after a workload: the engine and
/// optimizer counter families, gauges, and a couple of histograms.
void PopulateRegistry(MetricsRegistry* metrics) {
  MetricsRegistry& m = *metrics;
  OptimizerOptions options;
  options.trace.metrics = &m;
  LdlSystem sys(options);
  if (!sys.LoadProgram(ChainProgram(40)).ok()) std::abort();
  for (int i = 0; i < 3; ++i) {
    if (!sys.Query("tc(n0, Y)").ok()) std::abort();
  }
  Histogram* hist = m.histogram("fixpoint.delta_size");
  for (int i = 1; i <= 1000; ++i) hist->Record(static_cast<double>(i));
}

double MeasureRenderNs(const MetricsRegistry& metrics, size_t iterations) {
  Stopwatch watch;
  size_t bytes = 0;
  for (size_t i = 0; i < iterations; ++i) {
    const std::string out = RenderPrometheus(metrics);
    bytes += out.size();
    benchmark::DoNotOptimize(bytes);
  }
  return watch.ElapsedMs() * 1e6 / static_cast<double>(iterations);
}

double MeasureSampleNs(const MetricsRegistry& metrics, size_t iterations) {
  TimeSeriesOptions ts;
  ts.metrics = const_cast<MetricsRegistry*>(&metrics);
  TimeSeriesSampler sampler(ts);
  Stopwatch watch;
  for (size_t i = 0; i < iterations; ++i) sampler.SampleOnce();
  return watch.ElapsedMs() * 1e6 / static_cast<double>(iterations);
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E16", "telemetry exposition overhead: background sampler "
                       "tax on a query workload, ns per /metrics render and "
                       "per sampling pass");

  Table overhead({"workload", "sampler", "workload ms", "overhead %"});
  {
    const int chain = 120;
    const int queries = 60;
    // Paired design: each round brackets one sampled run between two
    // unsampled runs and reads the sampler tax against the bracket average,
    // so the slow clock drift a single-core box shows (several percent
    // between identical sequential blocks — larger than the sampler's real
    // tax) cancels. Medians across rounds reject the odd descheduled round.
    constexpr size_t kRounds = 5;
    std::vector<double> offs, ons, pcts, noises;
    RunWorkloadOnceMs(chain, queries, 0);  // warm-up, discarded
    for (size_t r = 0; r < kRounds; ++r) {
      const double off_a = RunWorkloadOnceMs(chain, queries, 0);
      const double on = RunWorkloadOnceMs(chain, queries, 5);
      const double off_b = RunWorkloadOnceMs(chain, queries, 0);
      const double bracket = (off_a + off_b) / 2.0;
      offs.push_back(bracket);
      ons.push_back(on);
      pcts.push_back((on / bracket - 1.0) * 100.0);
      noises.push_back((off_b / off_a - 1.0) * 100.0);
    }
    auto median = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    const std::string label =
        StrCat("tc chain ", chain, " x", queries, " bound");
    overhead.AddRow({label + " / off", "off", Fmt(median(offs), "%.3f"),
                     "-"});
    overhead.AddRow({label + " / 5ms", "5 ms", Fmt(median(ons), "%.3f"),
                     Fmt(median(pcts), "%.1f")});
    overhead.AddRow({label + " / off (A/A floor)", "off", "-",
                     Fmt(median(noises), "%.1f")});
  }
  overhead.Print();

  Table scrape({"operation", "ns/op", "per-second budget %"});
  {
    MetricsRegistry metrics;
    PopulateRegistry(&metrics);
    const double render_ns = MeasureRenderNs(metrics, 2000);
    const double sample_ns = MeasureSampleNs(metrics, 2000);
    // Share of one second consumed by one op per second — the production
    // scrape/sample cadence.
    scrape.AddRow({"RenderPrometheus (full registry)", Fmt(render_ns, "%.0f"),
                   Fmt(render_ns / 1e9 * 100.0, "%.4f")});
    scrape.AddRow({"TimeSeriesSampler::SampleOnce", Fmt(sample_ns, "%.0f"),
                   Fmt(sample_ns / 1e9 * 100.0, "%.4f")});
  }
  scrape.Print();

  std::printf(
      "Expected shape: the 5 ms-sampled row sits within a few percent of\n"
      "the unsampled row (< 5%% target net of the A/A floor) even though\n"
      "the bench samples 40-200x faster than production would; the sampler\n"
      "reads relaxed atomics and never takes an engine lock. On a\n"
      "single-core host the off-vs-off A/A row shows the scheduling noise\n"
      "floor — read the on-vs-off delta against it. Render and sample cost\n"
      "microseconds per op, a ~0.001%% per-second budget at scrape\n"
      "cadence.\n\n");
}

namespace {

void BM_RenderPrometheus(benchmark::State& state) {
  static MetricsRegistry* metrics = [] {
    auto* m = new MetricsRegistry();
    PopulateRegistry(m);
    return m;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RenderPrometheus(*metrics));
  }
}
BENCHMARK(BM_RenderPrometheus);

void BM_SampleOnce(benchmark::State& state) {
  static MetricsRegistry* metrics = [] {
    auto* m = new MetricsRegistry();
    PopulateRegistry(m);
    return m;
  }();
  TimeSeriesOptions ts;
  ts.metrics = metrics;
  TimeSeriesSampler sampler(ts);
  for (auto _ : state) {
    sampler.SampleOnce();
  }
}
BENCHMARK(BM_SampleOnce);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("expose");
  return 0;
}
