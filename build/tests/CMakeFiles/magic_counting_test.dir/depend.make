# Empty dependencies file for magic_counting_test.
# This may be replaced when dependencies are built.
