// An interactive LDL shell: type clauses to extend the knowledge base,
// queries to run them through the optimizer, and meta-commands to inspect
// what the system is doing.
//
//   ./build/examples/ldl_shell                # interactive
//   ./build/examples/ldl_shell < script.ldl   # batch
//
// Input forms:
//   fact(1, 2).                    add a fact
//   head(X) <- body(X), X > 3.     add a rule
//   head(1, Y)?                    run a query (optimized)
//   .explain goal(1, Y)            show the optimized plan
//   .tree goal(1, Y)               show the annotated processing tree
//   .safety goal(X, Y)             run the safety analysis
//   .program / .db / .stats        inspect state
//   .help / .quit

#include <cstdio>
#include <iostream>
#include <string>

#include "base/strings.h"
#include "ldl/ldl.h"

namespace {

void PrintHelp() {
  std::printf(
      "clauses:  par(bart, homer).        anc(X,Y) <- par(X,Y).\n"
      "queries:  anc(bart, Y)?\n"
      "commands: .explain <goal>   optimized plan\n"
      "          .tree <goal>      annotated processing tree\n"
      "          .safety <goal>    safety report\n"
      "          .program          list rules\n"
      "          .db               list relations\n"
      "          .stats            catalog statistics\n"
      "          .help  .quit\n");
}

void RunQuery(ldl::LdlSystem* sys, const std::string& goal_text) {
  auto answer = sys->Query(goal_text);
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return;
  }
  for (const ldl::Tuple& t : answer->answers.tuples()) {
    std::printf("  %s\n", ldl::TupleToString(t).c_str());
  }
  std::printf("%zu answer(s) via %s; %s\n", answer->answers.size(),
              ldl::RecursionMethodToString(answer->plan.top_method),
              answer->exec_stats.counters.ToString().c_str());
  if (!answer->note.empty()) std::printf("note: %s\n", answer->note.c_str());
}

}  // namespace

int main() {
  ldl::LdlSystem sys;
  std::printf("ldlopt shell — .help for commands\n");
  std::string line;
  while (true) {
    std::printf("ldl> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = ldl::StripWhitespace(line);
    if (trimmed.empty()) continue;

    if (trimmed[0] == '.') {
      size_t space = trimmed.find(' ');
      std::string cmd(trimmed.substr(0, space));
      std::string arg(space == std::string_view::npos
                          ? ""
                          : ldl::StripWhitespace(trimmed.substr(space + 1)));
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        PrintHelp();
      } else if (cmd == ".program") {
        std::printf("%s", sys.program().ToString().c_str());
      } else if (cmd == ".db") {
        std::printf("%s", sys.database()->ToString().c_str());
      } else if (cmd == ".stats") {
        std::printf("%s", sys.statistics().ToString().c_str());
      } else if (cmd == ".explain") {
        auto text = sys.Explain(arg);
        std::printf("%s", text.ok() ? text->c_str()
                                    : (text.status().ToString() + "\n").c_str());
      } else if (cmd == ".tree") {
        auto text = sys.ExplainTree(arg);
        std::printf("%s", text.ok() ? text->c_str()
                                    : (text.status().ToString() + "\n").c_str());
      } else if (cmd == ".safety") {
        std::printf("%s\n", sys.CheckSafety(arg).ToString().c_str());
      } else {
        std::printf("unknown command %s (.help)\n", cmd.c_str());
      }
      continue;
    }

    // Query or clause?
    std::string text(trimmed);
    if (text.back() == '?') {
      RunQuery(&sys, text.substr(0, text.size() - 1));
      continue;
    }
    ldl::Status st = sys.AddClause(text);
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
    } else {
      sys.RefreshStatistics();
      std::printf("ok\n");
    }
  }
  std::printf("\n");
  return 0;
}
