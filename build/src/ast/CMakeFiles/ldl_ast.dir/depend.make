# Empty dependencies file for ldl_ast.
# This may be replaced when dependencies are built.
