// The paper's flagship recursive workload: same-generation. Demonstrates
// how the OPT algorithm (Figure 7-2) labels the contracted clique node with
// different recursive methods depending on the query form, and verifies the
// decision by running every method on real data.
//
// Build & run:  ./build/examples/same_generation

#include <cstdio>

#include "ldl/ldl.h"
#include "testing/workloads.h"

int main() {
  ldl::LdlSystem sys;
  ldl::Status st = sys.LoadProgram(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )");
  if (!st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Synthetic hierarchy: fan-out 3, depth 5 (the up/dn/flat substrate).
  size_t nodes = ldl::testing::MakeSameGenerationData(3, 5, sys.database());
  sys.RefreshStatistics();
  std::printf("database: %zu nodes, %zu tuples\n\n", nodes,
              sys.database()->TotalTuples());

  // Bound query: who is in the same generation as the last leaf?
  ldl::Literal bound_goal = ldl::Literal::Make(
      "sg", {ldl::Term::MakeInt(static_cast<int64_t>(nodes - 1)),
             ldl::Term::MakeVariable("Y")});

  auto answer = sys.Query(bound_goal);
  if (!answer.ok()) {
    std::printf("query failed: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("sg(%zu, Y)? -> %zu answers via %s\n", nodes - 1,
              answer->answers.size(),
              ldl::RecursionMethodToString(answer->plan.top_method));
  std::printf("%s\n", answer->plan.Explain(sys.program()).c_str());

  // Validate the choice: run all four methods and compare actual work.
  std::printf("method comparison (tuples examined):\n");
  for (ldl::RecursionMethod method :
       {ldl::RecursionMethod::kNaive, ldl::RecursionMethod::kSemiNaive,
        ldl::RecursionMethod::kMagic, ldl::RecursionMethod::kCounting}) {
    auto result = sys.EvaluateUnoptimized(bound_goal, method);
    if (!result.ok()) continue;
    std::printf("  %-10s %10zu examined, %6zu answers%s\n",
                ldl::RecursionMethodToString(method),
                result->stats.counters.tuples_examined,
                result->answers.size(),
                method == answer->plan.top_method ? "   <== optimizer's pick"
                                                  : "");
  }

  // The free query form flips the decision to a materialized fixpoint.
  auto free_plan = sys.Plan("sg(X, Y)");
  if (free_plan.ok()) {
    std::printf("\nfree form sg(X, Y)? chooses: %s (est. cost %.3g)\n",
                ldl::RecursionMethodToString(free_plan->top_method),
                free_plan->TotalCost());
  }
  return 0;
}
