file(REMOVE_RECURSE
  "CMakeFiles/ldl_graph.dir/adornment.cc.o"
  "CMakeFiles/ldl_graph.dir/adornment.cc.o.d"
  "CMakeFiles/ldl_graph.dir/binding.cc.o"
  "CMakeFiles/ldl_graph.dir/binding.cc.o.d"
  "CMakeFiles/ldl_graph.dir/dependency_graph.cc.o"
  "CMakeFiles/ldl_graph.dir/dependency_graph.cc.o.d"
  "libldl_graph.a"
  "libldl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
