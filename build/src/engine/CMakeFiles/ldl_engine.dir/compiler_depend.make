# Empty compiler generated dependencies file for ldl_engine.
# This may be replaced when dependencies are built.
