#include "engine/parallel.h"

#include <algorithm>
#include <set>
#include <string>

namespace ldl {

WorkerPool::WorkerPool(size_t num_threads) {
  size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  threads_.reserve(extra);
  for (size_t i = 0; i < extra; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Run(size_t num_tasks,
                     const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  if (threads_.empty() || num_tasks == 1) {
    for (size_t t = 0; t < num_tasks; ++t) fn(t, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    pending_workers_ = threads_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  DrainTasks(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
  fn_ = nullptr;
}

void WorkerPool::DrainTasks(size_t worker) {
  while (true) {
    size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= num_tasks_) return;
    (*fn_)(task, worker);
  }
}

void WorkerPool::WorkerLoop(size_t worker) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    DrainTasks(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_one();
    }
  }
}

namespace {

bool AllVarsBound(const Term& t, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  t.CollectVariables(&vars);
  for (const std::string& v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

void SimulateBindings(const Rule& rule, const std::vector<size_t>& order,
                      bool builtins_bind,
                      std::vector<std::pair<size_t, std::vector<int>>>* out) {
  std::set<std::string> bound;
  for (size_t pos : order) {
    const Literal& lit = rule.body()[pos];
    if (lit.IsBuiltin()) {
      // Whether a builtin binds its variables depends on which side is
      // ground at runtime (X = Y+1 binds X given Y; X < Y binds nothing).
      // The caller simulates both assumptions, so either way the runtime
      // bound set matches one prediction.
      if (builtins_bind) {
        std::vector<std::string> vars;
        lit.CollectVariables(&vars);
        bound.insert(vars.begin(), vars.end());
      }
      continue;
    }
    if (lit.negated()) continue;  // tests absence; binds nothing
    std::vector<int> cols;
    for (size_t i = 0; i < lit.arity(); ++i) {
      if (AllVarsBound(lit.args()[i], bound)) {
        cols.push_back(static_cast<int>(i));
      }
    }
    if (!cols.empty()) out->emplace_back(pos, std::move(cols));
    std::vector<std::string> vars;
    lit.CollectVariables(&vars);
    bound.insert(vars.begin(), vars.end());
  }
}

}  // namespace

std::vector<std::pair<size_t, std::vector<int>>> PredictBoundCols(
    const Rule& rule, const std::vector<size_t>& order) {
  std::vector<size_t> visit = order;
  if (visit.empty()) {
    visit.resize(rule.body().size());
    for (size_t i = 0; i < visit.size(); ++i) visit[i] = i;
  }
  if (visit.size() != rule.body().size()) return {};
  std::vector<std::pair<size_t, std::vector<int>>> out;
  SimulateBindings(rule, visit, /*builtins_bind=*/false, &out);
  SimulateBindings(rule, visit, /*builtins_bind=*/true, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ldl
