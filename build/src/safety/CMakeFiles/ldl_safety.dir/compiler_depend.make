# Empty compiler generated dependencies file for ldl_safety.
# This may be replaced when dependencies are built.
