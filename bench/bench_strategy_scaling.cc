// Experiment E3 — the complexity analysis of the paper's section 7.2:
//
//   exhaustive:  O(N * 2^k * n!)      (practical to n ~ 10-15 joins)
//   DP [Sel 79]: O(N * 2^k * 2^n)
//   KBZ [KBZ 86]: quadratic
//
// We measure optimizer wall-clock per strategy as the conjunct size n
// grows, confirming the feasibility bound the paper quotes from commercial
// systems ("must limit the queries to no more than 10 or 15 joins") and
// the flat profile of the quadratic strategy.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "optimizer/join_order.h"
#include "testing/query_gen.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;
using testing::MakeRandomConjunct;
using testing::QueryShape;

double MeasureMs(SearchStrategy strategy, size_t n, size_t* evals) {
  StrategyOptions options;
  options.exhaustive_limit = 12;
  options.dp_limit = 22;
  CostModel model;
  auto s = MakeStrategy(strategy, options);
  double total_ms = 0;
  *evals = 0;
  const size_t reps = 3;
  for (size_t rep = 0; rep < reps; ++rep) {
    Rng rng(rep * 7919 + n);
    auto q = MakeRandomConjunct(QueryShape::kRandom, n, &rng);
    BoundVars none;
    Stopwatch watch;
    OrderResult r = s->FindOrder(q.items, none, model);
    total_ms += watch.ElapsedMs();
    *evals += r.cost_evaluations;
  }
  *evals /= reps;
  return total_ms / static_cast<double>(reps);
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E3", "optimizer time by strategy and conjunct size "
                      "(ms per optimization, avg of 3 random queries)");
  Table table({"n", "exhaustive ms", "(evals)", "dp ms", "(evals)", "kbz ms",
               "(evals)", "anneal ms", "(evals)"});
  for (size_t n : {2, 4, 6, 8, 10, 12, 14, 16}) {
    std::vector<std::string> row{std::to_string(n)};
    for (SearchStrategy strategy :
         {SearchStrategy::kExhaustive, SearchStrategy::kDynamicProgramming,
          SearchStrategy::kKbz, SearchStrategy::kAnnealing}) {
      if (strategy == SearchStrategy::kExhaustive && n > 10) {
        row.push_back("-");
        row.push_back("-");
        continue;
      }
      if (strategy == SearchStrategy::kDynamicProgramming && n > 16) {
        row.push_back("-");
        row.push_back("-");
        continue;
      }
      size_t evals = 0;
      double ms = MeasureMs(strategy, n, &evals);
      row.push_back(Fmt(ms, "%.3f"));
      row.push_back(Fmt(static_cast<double>(evals), "%.0f"));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "Expected shape: exhaustive explodes combinatorially past n ~ 10;\n"
      "DP grows as 2^n (usable to ~16); KBZ and annealing stay flat.\n"
      "(Past its limit, exhaustive falls back to DP — marked '-'.)\n\n");
}

namespace {

void BM_Strategy(benchmark::State& state) {
  auto strategy = static_cast<SearchStrategy>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  Rng rng(n * 31);
  auto q = MakeRandomConjunct(QueryShape::kRandom, n, &rng);
  StrategyOptions options;
  CostModel model;
  auto s = MakeStrategy(strategy, options);
  BoundVars none;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s->FindOrder(q.items, none, model));
  }
  state.SetLabel(SearchStrategyToString(strategy));
}
BENCHMARK(BM_Strategy)
    ->Args({static_cast<int>(SearchStrategy::kExhaustive), 8})
    ->Args({static_cast<int>(SearchStrategy::kDynamicProgramming), 8})
    ->Args({static_cast<int>(SearchStrategy::kDynamicProgramming), 14})
    ->Args({static_cast<int>(SearchStrategy::kKbz), 8})
    ->Args({static_cast<int>(SearchStrategy::kKbz), 14})
    ->Args({static_cast<int>(SearchStrategy::kAnnealing), 8});

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("strategy_scaling");
  return 0;
}
