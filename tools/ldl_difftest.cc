// ldl_difftest — differential testing of the optimizer/engine matrix over
// randomly generated stratified recursive programs.
//
// Usage: ldl_difftest [options]
//
//   --seed S | A..B      seed, or inclusive seed range (repeatable; default 1)
//   --iters N            programs generated per seed (default 100)
//   --shape SHAPE        EDB graph shape: chain | tree | cycle | random |
//                        mixed (default mixed)
//   --methods LIST       comma-separated subset of naive,magic,counting to
//                        run beyond the semi-naive reference (default all)
//   --no-tree            skip the processing-tree interpreter configurations
//   --no-metamorphic     skip the metamorphic checks
//   --no-analysis        skip the opt:analysis configuration (semantic
//                        pre-optimization: dead-rule elimination +
//                        adornment-reachability pruning) and the injection
//                        of statically dead clauses into generated programs
//   --no-feedback        skip the opt:feedback configuration (planning
//                        under the blended measured-statistics overlay a
//                        warm pass accumulated; see obs/feedback.h)
//   --threads LIST       comma-separated thread counts (e.g. 1,2,4): re-run
//                        every enabled method and strategy configuration
//                        with the hash-partitioned parallel engine at each
//                        count ("par:N:..." configs) against the sequential
//                        reference fingerprint (default: off)
//   --repro-dir DIR      where repro-*.ldl files are written (default ".")
//   --max-shrink-evals N shrinker budget per failure (default 2000)
//   --skip N             generate and discard the first N programs per seed
//                        (fast-forward to a failing iteration)
//   --dump               print each generated program before evaluating it
//   --inject-fault       self-test: flip a join predicate in a shadow
//                        configuration each iteration; the run then FAILS if
//                        any effective fault goes UNDETECTED, and every
//                        detected fault is shrunk and written as a repro
//   --verbose            per-iteration progress on stderr
//
// Exit status: 0 all iterations mismatch-free (or, with --inject-fault,
// every effective fault detected); 1 mismatch/metamorphic violation found
// (repros written); 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/strings.h"
#include "testing/difftest.h"
#include "testing/program_gen.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ldl_difftest [--seed S|A..B]... [--iters N] [--shape SHAPE]\n"
      "                    [--methods naive,magic,counting] [--no-tree]\n"
      "                    [--no-metamorphic] [--no-analysis] "
      "[--no-feedback]\n"
      "                    [--threads 1,2,4] [--repro-dir DIR]\n"
      "                    [--max-shrink-evals N] [--inject-fault] "
      "[--verbose]\n");
  return 2;
}

bool ParseSeeds(const std::string& arg, std::vector<uint64_t>* out) {
  size_t dots = arg.find("..");
  char* end = nullptr;
  if (dots == std::string::npos) {
    uint64_t s = std::strtoull(arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(s);
    return true;
  }
  uint64_t lo = std::strtoull(arg.substr(0, dots).c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  uint64_t hi = std::strtoull(arg.substr(dots + 2).c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || hi < lo || hi - lo > 10000) {
    return false;
  }
  for (uint64_t s = lo; s <= hi; ++s) out->push_back(s);
  return true;
}

// Shrink predicate that preserves the failure mode: a reduction is
// accepted only while every failure it exhibits was already present in
// the original outcome. Reductions may drop failure modes but must never
// introduce new ones — otherwise ddmin happily walks to a degenerate
// program whose only "failure" is an evaluation error the reduction
// itself caused (e.g. "unknown predicate" after removing the query
// predicate's last rule).
std::function<bool(const ldl::testing::GeneratedProgram&)>
SignaturePreservingPredicate(const ldl::testing::DiffTestOptions& options,
                             const ldl::testing::DiffOutcome& original) {
  std::vector<std::string> sigs = original.FailureSignatures();
  std::set<std::string> allowed(sigs.begin(), sigs.end());
  return [options, allowed](const ldl::testing::GeneratedProgram& candidate) {
    ldl::testing::DiffOutcome o =
        ldl::testing::RunDifferential(candidate, options);
    std::vector<std::string> cand = o.FailureSignatures();
    if (cand.empty()) return false;
    for (const std::string& s : cand) {
      if (allowed.count(s) == 0) return false;
    }
    return true;
  };
}

}  // namespace

int main(int argc, char** argv) {
  using ldl::testing::DiffOutcome;
  using ldl::testing::DiffTestOptions;
  using ldl::testing::Fault;
  using ldl::testing::GeneratedProgram;

  std::vector<uint64_t> seeds;
  size_t iters = 100;
  size_t skip = 0;
  bool dump = false;
  size_t max_shrink_evals = 2000;
  std::string repro_dir = ".";
  DiffTestOptions options;
  bool inject_fault = false;
  bool no_analysis = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      if (!ParseSeeds(argv[++i], &seeds)) {
        std::fprintf(stderr, "ldl_difftest: bad --seed %s\n", argv[i]);
        return Usage();
      }
    } else if (arg == "--iters" && i + 1 < argc) {
      iters = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--shape" && i + 1 < argc) {
      if (!ldl::testing::ParseEdbShape(argv[++i], &options.gen.shape)) {
        std::fprintf(stderr, "ldl_difftest: bad --shape %s\n", argv[i]);
        return Usage();
      }
    } else if (arg == "--methods" && i + 1 < argc) {
      options.run_naive = options.run_magic = options.run_counting = false;
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        std::string m = list.substr(pos, comma - pos);
        if (m == "naive") {
          options.run_naive = true;
        } else if (m == "magic") {
          options.run_magic = true;
        } else if (m == "counting") {
          options.run_counting = true;
        } else if (m == "seminaive" || m.empty()) {
          // The reference always runs.
        } else {
          std::fprintf(stderr, "ldl_difftest: bad method %s\n", m.c_str());
          return Usage();
        }
        pos = comma + 1;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      options.thread_counts.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      bool ok = !list.empty();
      while (ok && pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        std::string n = list.substr(pos, comma - pos);
        char* end = nullptr;
        size_t threads =
            static_cast<size_t>(std::strtoull(n.c_str(), &end, 10));
        if (n.empty() || end == nullptr || *end != '\0' || threads == 0 ||
            threads > 64) {
          ok = false;
          break;
        }
        options.thread_counts.push_back(threads);
        pos = comma + 1;
      }
      if (!ok) {
        std::fprintf(stderr, "ldl_difftest: bad --threads %s\n", list.c_str());
        return Usage();
      }
    } else if (arg == "--no-tree") {
      options.run_tree_interpreter = false;
    } else if (arg == "--no-metamorphic") {
      options.run_metamorphic = false;
    } else if (arg == "--no-analysis") {
      no_analysis = true;
    } else if (arg == "--no-feedback") {
      options.run_feedback = false;
    } else if (arg == "--repro-dir" && i + 1 < argc) {
      repro_dir = argv[++i];
    } else if (arg == "--max-shrink-evals" && i + 1 < argc) {
      max_shrink_evals =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--skip" && i + 1 < argc) {
      skip = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--inject-fault") {
      inject_fault = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "ldl_difftest: unknown argument %s\n", arg.c_str());
      return Usage();
    }
  }
  if (seeds.empty()) seeds.push_back(1);
  if (inject_fault) options.fault = Fault::kFlipJoin;
  if (no_analysis) {
    options.run_analysis_pruned = false;
  } else {
    // With the analysis configuration on, also feed it: a quarter of the
    // generated programs carry a statically dead rule and/or an
    // unreachable predicate that elimination must drop answer-neutrally.
    options.gen.dead_rule_probability = 0.25;
    options.gen.unreachable_predicate_probability = 0.25;
  }

  size_t total_iters = 0;
  size_t total_configs = 0;
  size_t mismatches = 0;
  size_t meta_violations = 0;
  size_t generator_failures = 0;
  size_t faults_effective = 0;  // injected fault actually changed answers
  size_t faults_detected = 0;
  std::vector<std::string> repro_paths;
  auto t0 = std::chrono::steady_clock::now();

  for (uint64_t seed : seeds) {
    ldl::Rng rng(seed);
    for (size_t iter = 0; iter < skip; ++iter) {
      (void)ldl::testing::GenerateProgram(&rng, options.gen);
    }
    for (size_t iter = skip; iter < skip + iters; ++iter) {
      ++total_iters;
      GeneratedProgram prog =
          ldl::testing::GenerateProgram(&rng, options.gen);
      if (dump) {
        std::fprintf(stderr, "-- seed %llu iter %zu (%s)\n%s",
                     static_cast<unsigned long long>(seed), iter,
                     prog.summary.c_str(), prog.ToLdl().c_str());
      }
      DiffOutcome outcome = ldl::testing::RunDifferential(prog, options);
      total_configs += outcome.configs.size();
      if (outcome.reference_failed) {
        ++generator_failures;
        std::fprintf(stderr,
                     "ldl_difftest: seed %llu iter %zu: generator produced "
                     "an unevaluable program (%s): %s\n",
                     static_cast<unsigned long long>(seed), iter,
                     prog.summary.c_str(), outcome.detail.c_str());
        continue;
      }

      if (inject_fault) {
        // Self-test mode: the fault:* shadow config must be the only
        // disagreement. A flagged fault is "effective" (the mutation
        // changed the answers); it is then shrunk and must stay small.
        bool fault_flagged = false;
        bool real_failure = outcome.metamorphic_violation;
        for (const auto& cr : outcome.configs) {
          if (cr.config.rfind("fault:", 0) == 0) {
            fault_flagged |= !cr.agrees || !cr.ok;
          } else if (!cr.ok || !cr.agrees) {
            real_failure = true;
          }
        }
        if (real_failure) ++mismatches;
        if (fault_flagged) {
          ++faults_effective;
          auto predicate = SignaturePreservingPredicate(options, outcome);
          ldl::testing::ShrinkStats sstats;
          GeneratedProgram minimized = ldl::testing::ShrinkFailure(
              prog, predicate, max_shrink_evals, &sstats);
          bool still_fails = predicate(minimized);
          if (still_fails && minimized.rules.size() <= 5) {
            ++faults_detected;
          } else {
            std::fprintf(stderr,
                         "ldl_difftest: seed %llu iter %zu: shrink lost the "
                         "fault or left %zu rules\n",
                         static_cast<unsigned long long>(seed), iter,
                         minimized.rules.size());
          }
          std::string path = ldl::testing::WriteRepro(
              repro_dir, seed, iter, minimized, outcome.detail);
          if (verbose && !path.empty()) {
            std::fprintf(stderr,
                         "  fault shrunk to %zu rules / %zu facts in %zu "
                         "evaluations -> %s\n",
                         minimized.rules.size(), minimized.facts.size(),
                         sstats.evaluations, path.c_str());
          }
          if (!path.empty()) repro_paths.push_back(path);
        }
      } else if (outcome.failed()) {
        if (outcome.mismatch) ++mismatches;
        if (outcome.metamorphic_violation) ++meta_violations;
        std::fprintf(stderr,
                     "ldl_difftest: MISMATCH seed %llu iter %zu (%s):\n%s",
                     static_cast<unsigned long long>(seed), iter,
                     prog.summary.c_str(), outcome.detail.c_str());
        ldl::testing::ShrinkStats sstats;
        GeneratedProgram minimized = ldl::testing::ShrinkFailure(
            prog, SignaturePreservingPredicate(options, outcome),
            max_shrink_evals, &sstats);
        std::string path = ldl::testing::WriteRepro(repro_dir, seed, iter,
                                                    minimized, outcome.detail);
        std::fprintf(stderr,
                     "  shrunk to %zu rules / %zu facts in %zu evaluations"
                     "%s%s\n",
                     minimized.rules.size(), minimized.facts.size(),
                     sstats.evaluations, path.empty() ? "" : " -> ",
                     path.c_str());
        if (!path.empty()) repro_paths.push_back(path);
      }
      if (verbose) {
        std::fprintf(stderr, "seed %llu iter %zu: %s: %zu configs %s\n",
                     static_cast<unsigned long long>(seed), iter,
                     prog.summary.c_str(), outcome.configs.size(),
                     outcome.failed() ? "FAIL" : "ok");
      }
    }
  }

  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "ldl_difftest: %zu iterations, %zu config evaluations, "
      "%.1f iters/s\n",
      total_iters, total_configs, secs > 0 ? total_iters / secs : 0.0);
  std::printf("  mismatches: %zu, metamorphic violations: %zu, "
              "generator failures: %zu\n",
              mismatches, meta_violations, generator_failures);
  if (inject_fault) {
    std::printf(
        "  injected faults effective: %zu, caught+shrunk (<=5 rules): %zu\n",
        faults_effective, faults_detected);
    if (faults_effective == 0 || faults_detected < faults_effective) {
      std::fprintf(stderr,
                   "ldl_difftest: self-test FAILED: effective=%zu "
                   "caught+shrunk=%zu\n",
                   faults_effective, faults_detected);
      return 1;
    }
  }
  for (const std::string& path : repro_paths) {
    std::printf("  repro: %s\n", path.c_str());
  }
  bool failed = mismatches > 0 || meta_violations > 0 ||
                generator_failures > 0;
  return failed ? 1 : 0;
}
