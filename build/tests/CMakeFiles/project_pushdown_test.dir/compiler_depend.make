# Empty compiler generated dependencies file for project_pushdown_test.
# This may be replaced when dependencies are built.
