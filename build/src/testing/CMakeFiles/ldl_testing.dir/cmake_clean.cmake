file(REMOVE_RECURSE
  "CMakeFiles/ldl_testing.dir/query_gen.cc.o"
  "CMakeFiles/ldl_testing.dir/query_gen.cc.o.d"
  "CMakeFiles/ldl_testing.dir/workloads.cc.o"
  "CMakeFiles/ldl_testing.dir/workloads.cc.o.d"
  "libldl_testing.a"
  "libldl_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
