#include "engine/operators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Tuple Pair(int64_t a, int64_t b) {
  return {Term::MakeInt(a), Term::MakeInt(b)};
}

std::vector<Tuple> Sorted(const Relation& r) {
  std::vector<Tuple> out = r.tuples();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(OperatorsTest, Select) {
  Relation r("r", 2);
  for (int64_t i = 0; i < 10; ++i) r.Insert(Pair(i % 3, i));
  EvalCounters c;
  Relation sel = Select(r, 0, Term::MakeInt(1), &c);
  EXPECT_EQ(sel.size(), 3u);  // 1, 4, 7
  EXPECT_EQ(c.tuples_examined, 10u);
}

TEST(OperatorsTest, ProjectDeduplicates) {
  Relation r("r", 2);
  for (int64_t i = 0; i < 10; ++i) r.Insert(Pair(i % 3, i));
  EvalCounters c;
  Relation proj = Project(r, {0}, &c);
  EXPECT_EQ(proj.size(), 3u);
  // Reorder/duplicate columns.
  Relation swapped = Project(r, {1, 0, 0}, &c);
  EXPECT_EQ(swapped.arity(), 3u);
  EXPECT_EQ(swapped.size(), 10u);
}

TEST(OperatorsTest, HashJoinEqualsNestedLoop) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Database db;
    testing::MakeRandomRelation("a", 2, 120, 15, trial * 2 + 1, &db);
    testing::MakeRandomRelation("b", 2, 80, 15, trial * 2 + 2, &db);
    Relation& a = *db.Find({"a", 2});
    Relation& b = *db.Find({"b", 2});
    EvalCounters c1, c2;
    Relation nl = NestedLoopJoin(a, b, {{1, 0}}, &c1);
    Relation hj = HashJoin(a, b, {{1, 0}}, &c2);
    EXPECT_EQ(Sorted(nl), Sorted(hj)) << "trial " << trial;
    // Hash join examines far fewer tuple pairs.
    EXPECT_LT(c2.tuples_examined, c1.tuples_examined);
  }
}

TEST(OperatorsTest, MultiKeyJoin) {
  Relation a("a", 2), b("b", 2);
  a.Insert(Pair(1, 2));
  a.Insert(Pair(1, 3));
  b.Insert(Pair(1, 2));
  b.Insert(Pair(2, 2));
  EvalCounters c;
  Relation j = HashJoin(a, b, {{0, 0}, {1, 1}}, &c);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j.tuples()[0], Tuple(
      {Term::MakeInt(1), Term::MakeInt(2), Term::MakeInt(1),
       Term::MakeInt(2)}));
}

TEST(OperatorsTest, CrossProductWhenNoKeys) {
  Relation a("a", 1), b("b", 1);
  a.Insert({Term::MakeInt(1)});
  a.Insert({Term::MakeInt(2)});
  b.Insert({Term::MakeInt(3)});
  EvalCounters c;
  EXPECT_EQ(HashJoin(a, b, {}, &c).size(), 2u);
}

TEST(OperatorsTest, DuplicateBuildColumnFallsBack) {
  // keys (0,0) and (1,0): right column 0 must equal both left columns.
  Relation a("a", 2), b("b", 1);
  a.Insert(Pair(1, 1));
  a.Insert(Pair(1, 2));
  b.Insert({Term::MakeInt(1)});
  EvalCounters c;
  Relation j = HashJoin(a, b, {{0, 0}, {1, 0}}, &c);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j.tuples()[0][1].int_value(), 1);
}

TEST(OperatorsTest, UnionAndDifference) {
  Relation a("a", 1), b("b", 1);
  for (int64_t i = 0; i < 5; ++i) a.Insert({Term::MakeInt(i)});
  for (int64_t i = 3; i < 8; ++i) b.Insert({Term::MakeInt(i)});
  EvalCounters c;
  EXPECT_EQ(Union(a, b, &c).size(), 8u);
  EXPECT_EQ(Difference(a, b, &c).size(), 3u);  // 0,1,2
  EXPECT_EQ(Difference(b, a, &c).size(), 3u);  // 5,6,7
}

TEST(OperatorsTest, SemiJoin) {
  Relation orders("orders", 2), good("good", 1);
  orders.Insert(Pair(1, 10));
  orders.Insert(Pair(2, 20));
  orders.Insert(Pair(3, 10));
  good.Insert({Term::MakeInt(10)});
  EvalCounters c;
  Relation filtered = SemiJoin(orders, good, {{1, 0}}, &c);
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered.arity(), 2u);  // left schema preserved
}

TEST(OperatorsTest, EmptyInputs) {
  Relation empty("e", 2), full("f", 2);
  full.Insert(Pair(1, 2));
  EvalCounters c;
  EXPECT_TRUE(NestedLoopJoin(empty, full, {{0, 0}}, &c).empty());
  EXPECT_TRUE(HashJoin(empty, full, {{0, 0}}, &c).empty());
  EXPECT_TRUE(HashJoin(full, empty, {{0, 0}}, &c).empty());
  EXPECT_EQ(Union(empty, full, &c).size(), 1u);
  EXPECT_EQ(Difference(full, empty, &c).size(), 1u);
}

}  // namespace
}  // namespace ldl
