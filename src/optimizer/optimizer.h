#ifndef LDLOPT_OPTIMIZER_OPTIMIZER_H_
#define LDLOPT_OPTIMIZER_OPTIMIZER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "base/status.h"
#include "engine/fixpoint.h"
#include "graph/adornment.h"
#include "graph/dependency_graph.h"
#include "obs/context.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_order.h"
#include "plan/processing_tree.h"
#include "storage/statistics.h"

namespace ldl {

class ProgramAnalysis;

/// Decisions of a previously chosen plan, pinned so a fresh Optimizer run
/// can *cost* that plan under a different model instead of searching — the
/// mechanism behind plan-regret analysis (obs/calibration.h): cost the
/// chosen plan and the hindsight-optimal plan under the same
/// MeasuredStatistics overlay and compare.
///
/// Pinning is best-effort: a pinned rule order that is unsafe (EC-violating)
/// under some adornment the re-run visits falls back to the normal search
/// for that (rule, adornment), and a pinned clique method that is
/// inapplicable under the re-run's safety analysis falls back to the best
/// applicable one. With identical models on both sides this reproduces the
/// chosen plan's cost exactly.
struct PlanConstraints {
  /// Body order per rule index (QueryPlan::rule_orders of the chosen plan).
  std::unordered_map<size_t, std::vector<size_t>> rule_orders;
  /// Recursive method per clique index (QueryPlan::clique_methods).
  std::map<int, RecursionMethod> clique_methods;
};

/// Knobs of the whole optimizer.
struct OptimizerOptions {
  SearchStrategy strategy = SearchStrategy::kExhaustive;
  StrategyOptions strategy_options;
  CostModelOptions cost;

  /// Recursive methods the CC-node optimization may label a clique with
  /// (the "set of labels is restricted only by the availability of the
  /// techniques in the system", section 4).
  bool enable_magic = true;
  bool enable_counting = true;

  /// MP: consider materializing derived subqueries (compute once, probe per
  /// binding) in addition to pipelining them. Off = pipeline-only (ablation).
  bool consider_materialization = true;

  /// NR-OPT's per-binding memoization of OR subtrees ("each subtree is
  /// optimized exactly ONCE for each binding", Figure 7-1). Off re-optimizes
  /// on every reference (ablation for experiment E6).
  bool memoize = true;

  /// Apply the [RBK 87] projection-pushing rewrite before optimizing
  /// (LdlSystem honors this; see optimizer/project_pushdown.h). The paper
  /// uses it as a pre-processing step because magic/counting only push
  /// selections.
  bool push_projections = true;

  /// Run the PlanVerifier (src/analysis/plan_verifier.h) over the annotated
  /// processing tree of every safe plan Optimize produces, and over every
  /// tree AnnotateTree returns: each transformation the search applied must
  /// leave the §4/§5 structural invariants intact. A violation turns into a
  /// kInternal error instead of a silently wrong plan. On in tests and
  /// debug tooling; off by default to keep production optimization lean.
  bool verify_plans = false;

  /// Observability handle (src/obs/): spans around Optimize/clique search
  /// and per-strategy timings, metrics for search effort. Inert by default;
  /// LdlSystem forwards the same context to the engine so estimates and
  /// measurements land in one registry. trace.search additionally records
  /// every candidate subplan and the memo lattice (obs/search_trace.h).
  /// trace.cancel/trace.accountant make the search itself abortable: every
  /// subplan optimization is a check-point, and memo entries are charged
  /// against the byte budget.
  TraceContext trace;

  /// Per-query resource/deadline limits, honored by LdlSystem::Query (which
  /// builds the accountant + token from them). Zeroes = unlimited.
  QueryLimits limits;

  /// LdlSystem::Query: record per-round fixpoint telemetry into
  /// QueryAnswer::exec_stats.per_iteration (see FixpointOptions). Off by
  /// default — it adds two clock reads per fixpoint round.
  bool record_fixpoint_iterations = false;

  /// Hindsight overlay: measured per-(predicate, adornment) cardinalities
  /// that override the model's estimates wherever available (cost-model
  /// catalog items and derived-subplan cardinalities). Non-owning; must
  /// outlive the optimizer. Used by plan-regret analysis.
  const MeasuredStatistics* measured = nullptr;

  /// Pin the decisions of a previously chosen plan (see PlanConstraints)
  /// so this run costs that plan instead of searching. Non-owning; must
  /// outlive the optimizer.
  const PlanConstraints* pinned = nullptr;

  /// LdlSystem-level switch: run ProgramAnalyzer on the (goal, program)
  /// pair before optimizing and attach the result as `analysis`, so the
  /// search skips memoizing adornments the static pass proved unreachable.
  /// Ignored by the Optimizer itself (it only reads `analysis`).
  bool analyze_reachability = false;

  /// LdlSystem-level switch: strip statically dead rules (unreachable from
  /// the goal, unsatisfiable, subsumed) from the working program before
  /// optimizing. Implies a fresh per-goal analysis; see
  /// analysis/analyzer.h for the answer-preservation argument.
  bool eliminate_dead_rules = false;

  /// LdlSystem-level switch: feedback planning mode. When a feedback
  /// statistics catalog is attached (LdlSystem::set_feedback), each
  /// Plan/Query consults it as a blended measured-over-estimated overlay
  /// (StatisticsCatalog::BlendedOverlay -> `measured`); predicates the
  /// catalog never observed keep their catalog estimates. Ignored by the
  /// Optimizer itself (it only reads `measured`), and inert when an
  /// explicit `measured` overlay is already set.
  bool feedback = false;

  /// Goal-directed static analysis consulted during the search: candidate
  /// (predicate, adornment) pairs outside its reachable set are answered
  /// with a shallow unmemoized subplan (disposition pruned-unreachable)
  /// instead of being optimized. Non-owning; must outlive the optimizer
  /// and describe the SAME program and goal. Normally set by LdlSystem
  /// when analyze_reachability is on.
  const ProgramAnalysis* analysis = nullptr;

  /// Execution-engine knobs, forwarded by LdlSystem into every fixpoint the
  /// chosen plan runs (all recursion methods share the partitioned round
  /// primitive). num_threads = 1 keeps the sequential engine; answers are
  /// identical at any thread count. See engine/parallel.h.
  EngineOptions engine;
};

/// Search-effort accounting, the currency of experiments E2/E3/E6.
struct PlanSearchStats {
  size_t cost_evaluations = 0;  ///< sequence/step costings performed
  size_t subplans_optimized = 0;  ///< (predicate, binding) optimizations run
  size_t memo_hits = 0;
  size_t memo_misses = 0;   ///< memo lookups that had to optimize fresh
  size_t prunes_unsafe = 0;  ///< subplans discarded at infinite cost (§8.2)
  size_t prunes_unreachable = 0;  ///< subplans skipped because the static
                                  ///< analysis proved the adornment
                                  ///< unreachable from the query
  double search_wall_ms = 0;  ///< wall time spent inside Optimize calls

  /// Adds the stats into the registry under the optimizer.* names.
  /// No-op on nullptr.
  void ExportTo(MetricsRegistry* metrics) const;
};

/// The optimizer's output: estimated cost plus every decision needed to
/// execute the query — per-rule body orders (the PR/SIP choices), the
/// recursive method per clique (the PA/EL choices on CC nodes), and the
/// materialize/pipeline decisions (MP).
struct QueryPlan {
  Literal goal;
  Adornment adornment;
  PlanEstimate estimate;
  bool safe = false;
  std::string unsafe_reason;

  /// Execution method for the goal: the clique's chosen method when the
  /// goal predicate is recursive, otherwise magic (bound goal) or
  /// semi-naive (free goal).
  RecursionMethod top_method = RecursionMethod::kSemiNaive;

  /// Chosen SIPs: body order per (rule, head adornment); drives the magic
  /// rewrite.
  SipStrategy sips;
  /// Chosen body order per rule for direct fixpoint evaluation.
  std::unordered_map<size_t, std::vector<size_t>> rule_orders;
  /// Method chosen per clique index.
  std::map<int, RecursionMethod> clique_methods;
  /// Derived body literals the plan decided to materialize (predicate
  /// names, informational).
  std::vector<std::string> materialized;

  PlanSearchStats search_stats;

  double TotalCost() const { return estimate.setup + estimate.per_binding; }

  /// Multi-line human-readable plan summary.
  std::string Explain(const Program& program) const;

  /// Stable 16-hex-digit digest over every plan decision (adornment, top
  /// method, rule orders, clique methods, materialization set). Two runs
  /// that chose the same plan produce the same fingerprint — the query
  /// log's plan identity, and what ldl_replay diffs against.
  std::string Fingerprint() const;
};

/// The LDL query optimizer: implements NR-OPT (Figure 7-1) for the
/// nonrecursive AND/OR structure with per-binding memoization, and OPT
/// (Figure 7-2) for recursive cliques, choosing SIPs and a recursive method
/// per CC node. Safety is folded into the search by the infinite-cost
/// treatment of EC violations and non-well-founded cliques (section 8.2).
class Optimizer {
 public:
  /// `program` and `stats` must outlive the optimizer.
  Optimizer(const Program& program, const Statistics& stats,
            OptimizerOptions options = {});
  /// Releases memo byte charges from the attached accountant (if any).
  ~Optimizer();
  /// Only references are stored; binding them to temporaries dangles (an
  /// AddressSanitizer find — see tests/analysis_test.cc history).
  Optimizer(const Program&&, const Statistics&, OptimizerOptions = {}) = delete;
  Optimizer(const Program&, const Statistics&&, OptimizerOptions = {}) = delete;

  /// Optimizes one query form. Optimization is query-specific: p(c, Y) and
  /// p(X, Y) produce independent plans (section 2).
  Result<QueryPlan> Optimize(const Literal& goal);

  /// Search-effort accounting for the most recent Optimize call (the stats
  /// reset at the start of every call; QueryPlan::search_stats carries the
  /// same per-call values).
  const PlanSearchStats& search_stats() const { return search_stats_; }

  /// Annotates a processing tree (see plan/processing_tree.h) with the
  /// optimizer's cost and cardinality estimates, method labels, chosen
  /// permutations (PR) and materialize/pipeline flags — producing the
  /// fully-labeled execution the paper's figures depict. The tree must have
  /// been built from the same program.
  Status AnnotateTree(PlanNode* tree);

 private:
  Status AnnotateNode(PlanNode* node, const Adornment& binding);
  /// strategy_->FindOrder with per-call timing into the trace context
  /// (clock reads only when tracing/metrics are attached).
  OrderResult TimedFindOrder(const std::vector<ConjunctItem>& items,
                             const BoundVars& initial);
  /// What the memo stores per (predicate, adornment): Figure 7-1's
  /// "cost, cardinality, graph, etc., indexed by the binding".
  struct Subplan {
    PlanEstimate est;
    RecursionMethod method = RecursionMethod::kSemiNaive;
    /// Body order per rule index (this predicate's own rules).
    std::map<size_t, std::vector<size_t>> orders;
    /// Derived predicates this subplan references, with their bindings.
    std::vector<AdornedPredicate> children;
    /// Children chosen to be materialized instead of pipelined.
    std::vector<AdornedPredicate> materialized_children;
    /// Diagnostic when est is unsafe.
    std::string note;
    /// Search-trace bookkeeping: the memo lattice node this subplan was
    /// recorded under, valid while trace_gen matches the tracer's
    /// generation(). Lets memo hits record without rebuilding the key.
    uint32_t trace_node = UINT32_MAX;
    uint32_t trace_gen = 0;
  };

  // OR node / CC dispatch (Figure 7-1 case 2 + Figure 7-2 case 3).
  Subplan OptimizePredicate(const AdornedPredicate& ap);
  // AND node (Figure 7-1/7-2 case 1): order search over one rule body.
  Subplan OptimizeRule(size_t rule_index, const Adornment& head_adn);
  // CC node (Figure 7-2 case 3).
  Subplan OptimizeClique(int clique_index, const AdornedPredicate& ap);

  /// Builds the conjunct item for a body literal: base literals from
  /// statistics; derived literals backed by OptimizePredicate (pipelined)
  /// and, when enabled, the materialized alternative.
  ConjunctItem MakeItem(const Literal& lit, Subplan* parent);

  /// True iff the attached static analysis proved `ap` unreachable from
  /// the query (never true without options_.analysis).
  bool Unreachable(const AdornedPredicate& ap) const;

  /// Cooperative abort inside the search: polls trace.cancel and latches
  /// the first non-OK status into aborted_status_. Once aborted, subplan
  /// optimization returns cheap placeholders (never memoized) so the
  /// recursion unwinds fast; Optimize() surfaces the latched status.
  bool Aborted();
  Subplan AbortedSubplan() const;

  /// Estimated footprint of one memo entry, charged to trace.accountant.
  uint64_t ApproxSubplanBytes(const Subplan& sub) const;
  /// The shallow placeholder subplan returned for pruned-unreachable
  /// adornments: safe, costless, carded from the analysis sketch, never
  /// memoized.
  Subplan PrunedSubplan(const AdornedPredicate& ap);

  /// The attached-and-enabled search tracer, or nullptr. Sites must only
  /// build labels/keys after this returns non-null (disabled tracing must
  /// stay allocation-free).
  SearchTracer* Tracing() const;
  /// Records `ap`'s subplan into the tracer's memo lattice under `key`
  /// (the caller's precomputed ap.ToString()), and stamps the subplan with
  /// the interned node so memo hits can record string-free. No-op when not
  /// tracing.
  void TraceMemoNode(std::string_view key, const AdornedPredicate& ap,
                     Subplan* sub);

  void CollectPlan(const AdornedPredicate& ap, QueryPlan* plan,
                   std::set<std::string>* visited);

  const Program& program_;
  const Statistics& stats_;
  OptimizerOptions options_;
  DependencyGraph graph_;
  CostModel model_;
  std::unique_ptr<JoinOrderStrategy> strategy_;
  std::unordered_map<AdornedPredicate, Subplan, AdornedPredicateHash> memo_;
  PlanSearchStats search_stats_;
  /// First cancel/deadline/budget violation seen during the current
  /// Optimize call (sticky until the next call starts).
  Status aborted_status_;
  /// Bytes charged to trace.accountant for memo_ entries so far.
  uint64_t memo_charged_bytes_ = 0;
};

}  // namespace ldl

#endif  // LDLOPT_OPTIMIZER_OPTIMIZER_H_
