// json_check — validates observability output files.
//
// Usage: json_check [--jsonl | --prom] file [file ...]
//
// Default mode is a minimal recursive-descent JSON checker (RFC 8259
// grammar: objects, arrays, strings with escapes, numbers,
// true/false/null). It validates shape only — no values are materialized —
// so CI can assert that the JSON the observability tools emit (Chrome
// traces, metrics dumps, bench results) will load anywhere, without
// pulling in a JSON library.
//
// With --jsonl, each input is JSON Lines (one JSON value per non-empty
// line — the query-log format); every line is validated independently and
// errors carry the line number.
//
// With --prom, each input is Prometheus text exposition format v0.0.4
// (what /metrics serves): `# HELP`/`# TYPE` comments and sample lines
// `name{label="value",...} value [timestamp]`, with the metric/label name
// charsets and label-value escape rules of the format.
//
// Exit status: 0 all files valid, 1 any invalid/unreadable, 2 usage error.

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True if the whole input is exactly one JSON value (plus whitespace).
  bool Check(std::string* error) {
    if (!Value()) {
      *error = error_;
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = Where("trailing content after JSON value");
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) error_ = Where(message);
    return false;
  }

  std::string Where(const std::string& message) {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "line " << line << " col " << col << ": " << message;
    return os.str();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    if (Consume('}')) return true;
    do {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key");
      }
      if (!String()) return false;
      if (!Consume(':')) return Fail("expected ':' after key");
      if (!Value()) return false;
    } while (Consume(','));
    if (!Consume('}')) return Fail("expected ',' or '}' in object");
    return true;
  }

  bool Array() {
    ++pos_;  // '['
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    if (!Consume(']')) return Fail("expected ',' or ']' in array");
    return true;
  }

  bool String() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return Fail("invalid \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("invalid escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(std::string("invalid literal, expected ") + word);
      }
    }
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// --- Prometheus text exposition (v0.0.4) ---

bool IsPromNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool IsPromNameChar(char c) {
  return IsPromNameStart(c) || (c >= '0' && c <= '9');
}
bool IsPromLabelStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsPromLabelChar(char c) {
  return IsPromLabelStart(c) || (c >= '0' && c <= '9');
}

/// Validates one sample line: name[{label="value",...}] value [timestamp].
bool CheckPromSample(const std::string& line, std::string* error) {
  size_t pos = 0;
  if (pos >= line.size() || !IsPromNameStart(line[pos])) {
    *error = "metric name must start with [a-zA-Z_:]";
    return false;
  }
  while (pos < line.size() && IsPromNameChar(line[pos])) ++pos;

  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      if (!IsPromLabelStart(line[pos])) {
        *error = "label name must start with [a-zA-Z_]";
        return false;
      }
      while (pos < line.size() && IsPromLabelChar(line[pos])) ++pos;
      if (pos >= line.size() || line[pos] != '=') {
        *error = "expected '=' after label name";
        return false;
      }
      ++pos;
      if (pos >= line.size() || line[pos] != '"') {
        *error = "label value must be quoted";
        return false;
      }
      ++pos;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\') {
          ++pos;
          if (pos >= line.size() ||
              (line[pos] != '\\' && line[pos] != '"' && line[pos] != 'n')) {
            *error = "invalid escape in label value (allowed: \\\\ \\\" \\n)";
            return false;
          }
        }
        ++pos;
      }
      if (pos >= line.size()) {
        *error = "unterminated label value";
        return false;
      }
      ++pos;  // closing '"'
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size()) {
      *error = "unterminated label set";
      return false;
    }
    ++pos;  // '}'
  }

  if (pos >= line.size() || line[pos] != ' ') {
    *error = "expected space before sample value";
    return false;
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;

  // Value: a float, +Inf, -Inf, or NaN.
  size_t value_end = line.find(' ', pos);
  const std::string value = line.substr(
      pos, value_end == std::string::npos ? std::string::npos
                                          : value_end - pos);
  if (value.empty()) {
    *error = "missing sample value";
    return false;
  }
  if (value != "+Inf" && value != "-Inf" && value != "NaN" &&
      value != "Inf") {
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == value.c_str()) {
      *error = "sample value is not a number: " + value;
      return false;
    }
  }
  if (value_end == std::string::npos) return true;

  // Optional integer timestamp (milliseconds).
  pos = value_end;
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return true;
  if (line[pos] == '-') ++pos;
  if (pos >= line.size() ||
      !std::isdigit(static_cast<unsigned char>(line[pos]))) {
    *error = "timestamp is not an integer";
    return false;
  }
  while (pos < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos != line.size()) {
    *error = "trailing content after timestamp";
    return false;
  }
  return true;
}

/// Validates one exposition line (sample or comment).
bool CheckPromLine(const std::string& line, std::string* error) {
  if (line.empty()) return true;
  if (line[0] != '#') return CheckPromSample(line, error);

  // "# HELP name text", "# TYPE name kind", or a free-form comment.
  if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
    return true;
  }
  const bool is_type = line.rfind("# TYPE ", 0) == 0;
  size_t pos = 7;
  if (pos >= line.size() || !IsPromNameStart(line[pos])) {
    *error = "HELP/TYPE metric name must start with [a-zA-Z_:]";
    return false;
  }
  size_t name_start = pos;
  while (pos < line.size() && IsPromNameChar(line[pos])) ++pos;
  if (pos == name_start) {
    *error = "missing metric name in HELP/TYPE";
    return false;
  }
  if (is_type) {
    if (pos >= line.size() || line[pos] != ' ') {
      *error = "TYPE line missing kind";
      return false;
    }
    const std::string kind = line.substr(pos + 1);
    if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
        kind != "summary" && kind != "untyped" && kind != "info") {
      *error = "unknown TYPE kind: " + kind;
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false;
  bool prom = false;
  int first_file = 1;
  while (first_file < argc && argv[first_file][0] == '-' &&
         argv[first_file][1] != '\0') {
    const std::string arg = argv[first_file];
    if (arg == "--jsonl") {
      jsonl = true;
    } else if (arg == "--prom") {
      prom = true;
    } else {
      std::cerr << "json_check: unknown option " << arg << "\n";
      return 2;
    }
    ++first_file;
  }
  if (first_file >= argc || (jsonl && prom)) {
    std::cerr << "usage: json_check [--jsonl | --prom] file [file ...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::cerr << argv[i] << ": cannot read file\n";
      ++failures;
      continue;
    }
    if (prom) {
      std::string line;
      size_t lineno = 0;
      size_t samples = 0;
      bool bad = false;
      while (std::getline(in, line)) {
        ++lineno;
        std::string error;
        if (!CheckPromLine(line, &error)) {
          std::cerr << argv[i] << ": line " << lineno
                    << ": invalid exposition: " << error << "\n";
          bad = true;
        } else if (!line.empty() && line[0] != '#') {
          ++samples;
        }
      }
      if (bad) {
        ++failures;
      } else if (samples == 0) {
        std::cerr << argv[i] << ": no samples in exposition\n";
        ++failures;
      } else {
        std::cout << argv[i] << ": ok (" << samples << " samples)\n";
      }
      continue;
    }
    if (jsonl) {
      std::string line;
      size_t lineno = 0;
      size_t values = 0;
      bool bad = false;
      while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string error;
        if (!JsonChecker(line).Check(&error)) {
          std::cerr << argv[i] << ": line " << lineno << ": invalid JSON: "
                    << error << "\n";
          bad = true;
        } else {
          ++values;
        }
      }
      if (bad) {
        ++failures;
      } else {
        std::cout << argv[i] << ": ok (" << values << " values)\n";
      }
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::string error;
    if (!JsonChecker(text).Check(&error)) {
      std::cerr << argv[i] << ": invalid JSON: " << error << "\n";
      ++failures;
    } else {
      std::cout << argv[i] << ": ok\n";
    }
  }
  return failures > 0 ? 1 : 0;
}
