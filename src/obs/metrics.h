#ifndef LDLOPT_OBS_METRICS_H_
#define LDLOPT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ldl {

/// True when `name` is already in the registry's canonical form:
/// `[a-zA-Z_:.][a-zA-Z0-9_:.]*` — the Prometheus identifier grammar plus
/// '.', the separator this codebase uses for metric namespaces
/// ("engine.tuples_examined"). The Prometheus encoder maps '.' to '_' at
/// exposition time.
bool IsCanonicalMetricName(std::string_view name);

/// Canonicalizes an arbitrary string into a valid metric name: every
/// character outside the canonical set becomes '_', a leading digit gets a
/// '_' prefix, and an empty name becomes "_". Idempotent; the identity on
/// names that are already canonical.
std::string SanitizeMetricName(std::string_view name);

/// Monotonically increasing count (tuples examined, memo hits, rounds...).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (current delta size, chosen fanout...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Streaming summary of an observed distribution: count/sum/min/max plus
/// power-of-two buckets, enough to see the shape of per-round delta sizes
/// or per-call optimization times without storing samples.
///
/// Record() is lock-free: it sits on per-tuple paths, and under the future
/// parallel engine a mutex here would serialize every worker. Each field is
/// an independent atomic updated with CAS loops, so concurrent readers see
/// each field exactly but the fields only mutually consistent once writers
/// quiesce — the right trade for monitoring data.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;  ///< bucket i holds v in [2^i-1, 2^i)

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  double max() const {
    return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
  }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0 : sum() / static_cast<double>(n);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Interpolated percentile estimate, `p` in [0, 1]: walks the log2
  /// buckets to the one containing rank p*count and interpolates linearly
  /// inside it (bucket contents assumed uniform). Clamped to the observed
  /// [min, max], so p=0 is exact min and p=1 exact max; intermediate values
  /// are within a factor of 2 of the true order statistic.
  double percentile(double p) const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Named registry of counters/gauges/histograms. Lookup takes a lock;
/// instruments themselves are lock-free (counters/gauges) so hot paths can
/// cache the returned pointer, which stays valid for the registry's
/// lifetime.
///
/// Names are sanitized on every create/lookup path (SanitizeMetricName), so
/// an arbitrary caller-supplied string can never produce a metric that the
/// JSON dump or the Prometheus exposition would misrender: "delta size"
/// and "delta_size" are the same instrument, and every rendered surface
/// shows the canonical spelling.
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Value of a counter, 0 when absent (test/report convenience).
  uint64_t counter_value(std::string_view name) const;
  /// Value of a gauge, 0 when absent.
  double gauge_value(std::string_view name) const;
  /// The histogram, or nullptr when absent.
  const Histogram* find_histogram(std::string_view name) const;

  /// Point-in-time copies for encoders and samplers, sorted by name.
  /// Histogram pointers stay valid for the registry's lifetime and are safe
  /// to read concurrently with Record (all fields are atomics).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, const Histogram*>> HistogramEntries()
      const;

  /// Flat JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void WriteJson(std::ostream& os) const;

  /// Human-readable dump (one metric per line, sorted by name).
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ldl

#endif  // LDLOPT_OBS_METRICS_H_
