file(REMOVE_RECURSE
  "CMakeFiles/corporate_kb.dir/corporate_kb.cpp.o"
  "CMakeFiles/corporate_kb.dir/corporate_kb.cpp.o.d"
  "corporate_kb"
  "corporate_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corporate_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
