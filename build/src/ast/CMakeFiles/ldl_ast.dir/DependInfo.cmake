
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/literal.cc" "src/ast/CMakeFiles/ldl_ast.dir/literal.cc.o" "gcc" "src/ast/CMakeFiles/ldl_ast.dir/literal.cc.o.d"
  "/root/repo/src/ast/parser.cc" "src/ast/CMakeFiles/ldl_ast.dir/parser.cc.o" "gcc" "src/ast/CMakeFiles/ldl_ast.dir/parser.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/ast/CMakeFiles/ldl_ast.dir/program.cc.o" "gcc" "src/ast/CMakeFiles/ldl_ast.dir/program.cc.o.d"
  "/root/repo/src/ast/rule.cc" "src/ast/CMakeFiles/ldl_ast.dir/rule.cc.o" "gcc" "src/ast/CMakeFiles/ldl_ast.dir/rule.cc.o.d"
  "/root/repo/src/ast/term.cc" "src/ast/CMakeFiles/ldl_ast.dir/term.cc.o" "gcc" "src/ast/CMakeFiles/ldl_ast.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ldl_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
