#include "ast/program.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/strings.h"

namespace ldl {

void Program::AddRule(Rule rule) {
  rules_by_head_[rule.head().predicate()].push_back(rules_.size());
  rules_.push_back(std::move(rule));
}

void Program::AddFact(Literal fact) { facts_.push_back(std::move(fact)); }

void Program::AddQuery(QueryForm query) { queries_.push_back(std::move(query)); }

const std::vector<size_t>& Program::RulesFor(const PredicateId& pred) const {
  static const auto* empty = new std::vector<size_t>();
  auto it = rules_by_head_.find(pred);
  return it == rules_by_head_.end() ? *empty : it->second;
}

bool Program::IsDerived(const PredicateId& pred) const {
  return rules_by_head_.count(pred) > 0;
}

std::vector<PredicateId> Program::DerivedPredicates() const {
  std::vector<PredicateId> out;
  out.reserve(rules_by_head_.size());
  for (const auto& [pred, _] : rules_by_head_) out.push_back(pred);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PredicateId> Program::BasePredicates() const {
  std::map<PredicateId, bool> seen;
  for (const Rule& r : rules_) {
    for (const Literal& l : r.body()) {
      if (l.IsBuiltin()) continue;
      if (!IsDerived(l.predicate())) seen[l.predicate()] = true;
    }
  }
  for (const Literal& f : facts_) {
    if (!IsDerived(f.predicate())) seen[f.predicate()] = true;
  }
  std::vector<PredicateId> out;
  for (const auto& [pred, _] : seen) out.push_back(pred);
  return out;
}

Status Program::Validate() const {
  std::map<std::string, size_t> arity_of;
  auto check = [&arity_of](const Literal& l) -> Status {
    if (l.IsBuiltin()) {
      if (l.negated()) {
        return Status::InvalidArgument(
            StrCat("negation applied to builtin: ", l.ToString()));
      }
      return Status::OK();
    }
    auto [it, inserted] = arity_of.emplace(l.predicate_name(), l.arity());
    if (!inserted && it->second != l.arity()) {
      return Status::InvalidArgument(
          StrCat("predicate ", l.predicate_name(), " used with arities ",
                 it->second, " and ", l.arity()));
    }
    return Status::OK();
  };
  for (const Rule& r : rules_) {
    if (r.head().IsBuiltin()) {
      return Status::InvalidArgument(
          StrCat("builtin as rule head: ", r.head().ToString()));
    }
    if (r.head().negated()) {
      return Status::InvalidArgument(
          StrCat("negated rule head: ", r.head().ToString()));
    }
    LDL_RETURN_NOT_OK(check(r.head()));
    for (const Literal& l : r.body()) LDL_RETURN_NOT_OK(check(l));
  }
  for (const Literal& f : facts_) {
    LDL_RETURN_NOT_OK(check(f));
    bool ground = true;
    for (const Term& t : f.args()) ground = ground && t.IsGround();
    if (!ground) {
      return Status::InvalidArgument(
          StrCat("non-ground fact: ", f.ToString()));
    }
  }
  for (const QueryForm& q : queries_) LDL_RETURN_NOT_OK(check(q.goal));
  return Status::OK();
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (const Literal& f : facts_) os << f.ToString() << ".\n";
  for (const Rule& r : rules_) os << r.ToString() << "\n";
  for (const QueryForm& q : queries_) os << q.ToString() << "\n";
  return os.str();
}

}  // namespace ldl
