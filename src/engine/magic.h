#ifndef LDLOPT_ENGINE_MAGIC_H_
#define LDLOPT_ENGINE_MAGIC_H_

#include <string>

#include "ast/program.h"
#include "base/status.h"
#include "graph/adornment.h"

namespace ldl {

/// Result of the Magic Sets rewrite [BMSU 85] applied to an adorned program.
struct MagicProgram {
  /// The rewritten rule base: guarded original rules plus magic rules.
  Program rewritten;
  /// Seed fact: magic.q.a(constants of the query goal).
  Literal seed;
  /// The (renamed) predicate holding the query's answers, e.g. sg.bf/2.
  PredicateId answer_pred;
  /// The query goal re-targeted at answer_pred (same argument terms).
  Literal answer_goal;

  std::string ToString() const;
};

/// Magic-set name for an adorned predicate: magic.sg.bf with one argument
/// per bound position.
PredicateId MagicPredicateId(const AdornedPredicate& ap);

/// Applies the (generalized, supplementary-free) Magic Sets transformation:
/// for each adorned rule `p.a(t) <- l1, ..., ln` (already in SIP order),
/// produce
///   p.a(t) <- magic.p.a(t_bound), l1, ..., ln.
/// and for each positive derived body literal `q.b` at position j
///   magic.q.b(s_bound) <- magic.p.a(t_bound), l1, ..., l_{j-1}.
/// The query's constants seed magic.q0.a0. Evaluating the rewritten program
/// (semi-naively) computes only the facts relevant to the query.
///
/// Negated derived body literals are not given magic rules; they are
/// required to be fully bound at their body position (checked by the safety
/// analysis), so guarding them would be redundant — their predicates are
/// computed in full within their (lower) stratum.
Result<MagicProgram> MagicRewrite(const AdornedProgram& adorned);

}  // namespace ldl

#endif  // LDLOPT_ENGINE_MAGIC_H_
