#ifndef LDLOPT_TESTING_QUERY_GEN_H_
#define LDLOPT_TESTING_QUERY_GEN_H_

#include <vector>

#include "ast/program.h"
#include "base/rng.h"
#include "optimizer/cost_model.h"
#include "storage/statistics.h"

namespace ldl {
namespace testing {

/// Query-graph shapes for the randomly generated conjunctive queries used
/// to reproduce the [Vil 87] evaluation (experiment E1) and the strategy
/// comparisons (E2/E3/E5): "randomly picking queries and states of the
/// database".
enum class QueryShape {
  kChain,   ///< r0(V0,V1), r1(V1,V2), ... — acyclic (KBZ's exact domain)
  kStar,    ///< r_i(V0, V_i) — acyclic, hub-shaped
  kCycle,   ///< chain plus a closing edge — cyclic query graph
  kRandom,  ///< random connected binary joins (may be cyclic)
};

const char* QueryShapeToString(QueryShape shape);

/// One synthetic conjunctive query plus a random database state.
struct RandomConjunct {
  Rule rule;          ///< q(...) <- r0(...), r1(...), ...
  Statistics stats;   ///< random cardinalities/distincts per relation
  std::vector<ConjunctItem> items;  ///< ready for JoinOrderStrategy
};

struct ConjunctGenOptions {
  size_t min_cardinality = 10;
  size_t max_cardinality = 10000;
  CostModelOptions cost;
};

/// Generates a random conjunct of `n` relations with the given shape.
/// Cardinalities are log-uniform in [min, max]; per-column distinct counts
/// are uniform in [1, cardinality].
RandomConjunct MakeRandomConjunct(QueryShape shape, size_t n, Rng* rng,
                                  const ConjunctGenOptions& options = {});

}  // namespace testing
}  // namespace ldl

#endif  // LDLOPT_TESTING_QUERY_GEN_H_
