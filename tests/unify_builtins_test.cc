#include <gtest/gtest.h>

#include "ast/parser.h"
#include "engine/builtins.h"
#include "engine/unify.h"

namespace ldl {
namespace {

Term T(const char* text) {
  auto r = ParseTerm(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(UnifyTest, VariableBindsToConstant) {
  Substitution s;
  EXPECT_TRUE(Unify(T("X"), T("42"), &s));
  EXPECT_EQ(s.Apply(T("X")).int_value(), 42);
}

TEST(UnifyTest, FunctionTermsUnifyStructurally) {
  Substitution s;
  EXPECT_TRUE(Unify(T("f(X, g(Y))"), T("f(1, g(a))"), &s));
  EXPECT_EQ(s.Apply(T("X")).int_value(), 1);
  EXPECT_EQ(s.Apply(T("Y")).text(), "a");
}

TEST(UnifyTest, FunctorMismatchFails) {
  Substitution s;
  EXPECT_FALSE(Unify(T("f(X)"), T("g(1)"), &s));
  EXPECT_TRUE(s.empty());  // failure leaves no residue
}

TEST(UnifyTest, ConflictingBindingFails) {
  Substitution s;
  EXPECT_FALSE(Unify(T("f(X, X)"), T("f(1, 2)"), &s));
  EXPECT_TRUE(s.empty());
}

TEST(UnifyTest, SharedVariableAcrossCalls) {
  Substitution s;
  EXPECT_TRUE(Unify(T("X"), T("7"), &s));
  EXPECT_FALSE(Unify(T("X"), T("8"), &s));
  EXPECT_TRUE(Unify(T("X"), T("7"), &s));
}

TEST(UnifyTest, VariableToVariableAliasing) {
  Substitution s;
  EXPECT_TRUE(Unify(T("X"), T("Y"), &s));
  EXPECT_TRUE(Unify(T("Y"), T("3"), &s));
  EXPECT_EQ(s.Apply(T("X")).int_value(), 3);
}

TEST(UnifyTest, TrailUndoRestoresState) {
  Substitution s;
  size_t mark = s.Mark();
  EXPECT_TRUE(Unify(T("f(X, Y)"), T("f(1, 2)"), &s));
  EXPECT_EQ(s.size(), 2u);
  s.UndoTo(mark);
  EXPECT_TRUE(s.empty());
}

TEST(UnifyTest, ListPatterns) {
  Substitution s;
  EXPECT_TRUE(Unify(T("[H | Rest]"), T("[1, 2, 3]"), &s));
  EXPECT_EQ(s.Apply(T("H")).int_value(), 1);
  EXPECT_EQ(s.Apply(T("Rest")).ToString(), "[2, 3]");
}

TEST(UnifyTest, NumericCrossKindEquality) {
  Substitution s;
  EXPECT_TRUE(Unify(T("1"), T("1.0"), &s));
  EXPECT_FALSE(Unify(T("1"), T("1.5"), &s));
}

TEST(ArithmeticTest, FoldsGroundExpressions) {
  auto r = EvalArithmetic(T("2 + 3 * 4"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->int_value(), 14);
}

TEST(ArithmeticTest, MixedIntRealPromotes) {
  auto r = EvalArithmetic(T("1 + 2.5"));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->real_value(), 3.5);
}

TEST(ArithmeticTest, IntegerDivisionStaysIntWhenExact) {
  auto r = EvalArithmetic(T("6 / 3"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind(), TermKind::kInt);
  EXPECT_EQ(r->int_value(), 2);
  auto q = EvalArithmetic(T("7 / 2"));
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->real_value(), 3.5);
}

TEST(ArithmeticTest, DivisionByZeroIsError) {
  EXPECT_FALSE(EvalArithmetic(T("1 / 0")).ok());
  EXPECT_FALSE(EvalArithmetic(T("1 mod 0")).ok());
}

TEST(ArithmeticTest, DataConstructorsAreNotArithmetic) {
  auto r = EvalArithmetic(T("f(1 + 1, a)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "f(2, a)");  // inner arithmetic folds
  EXPECT_FALSE(ContainsArithmetic(*r));
}

Literal MakeCmp(BuiltinKind k, const char* lhs, const char* rhs) {
  return Literal::MakeBuiltin(k, T(lhs), T(rhs));
}

TEST(BuiltinTest, ComparisonOnGroundValues) {
  Substitution s;
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kLt, "1", "2"), &s),
            BuiltinOutcome::kSatisfied);
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kGe, "1", "2"), &s),
            BuiltinOutcome::kFailed);
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kNe, "a", "b"), &s),
            BuiltinOutcome::kSatisfied);
}

TEST(BuiltinTest, ComparisonWithUnboundVariableNotComputable) {
  Substitution s;
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kLt, "X", "2"), &s),
            BuiltinOutcome::kNotComputable);
}

TEST(BuiltinTest, EqBindsVariableToArithmeticResult) {
  Substitution s;
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kEq, "X", "2 * 21"), &s),
            BuiltinOutcome::kSatisfied);
  EXPECT_EQ(s.Apply(T("X")).int_value(), 42);
}

TEST(BuiltinTest, EqWorksInBothDirections) {
  Substitution s;
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kEq, "3 + 4", "Y"), &s),
            BuiltinOutcome::kSatisfied);
  EXPECT_EQ(s.Apply(T("Y")).int_value(), 7);
}

TEST(BuiltinTest, EqBothUnboundNotComputable) {
  Substitution s;
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kEq, "X", "Y + 1"), &s),
            BuiltinOutcome::kNotComputable);
}

TEST(BuiltinTest, EqStructuralDecomposition) {
  Substitution s;
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kEq, "f(X, 2)", "f(1, 2)"), &s),
            BuiltinOutcome::kSatisfied);
  EXPECT_EQ(s.Apply(T("X")).int_value(), 1);
}

TEST(BuiltinTest, EqGroundMismatchFails) {
  Substitution s;
  EXPECT_EQ(EvalBuiltin(MakeCmp(BuiltinKind::kEq, "1 + 1", "3"), &s),
            BuiltinOutcome::kFailed);
  EXPECT_TRUE(s.empty());
}

TEST(BuiltinTest, ComputabilityTable) {
  // Paper section 8.1: comparisons need all variables bound; equality needs
  // one side bound.
  EXPECT_TRUE(BuiltinComputableWith(BuiltinKind::kEq, true, false));
  EXPECT_TRUE(BuiltinComputableWith(BuiltinKind::kEq, false, true));
  EXPECT_FALSE(BuiltinComputableWith(BuiltinKind::kEq, false, false));
  EXPECT_FALSE(BuiltinComputableWith(BuiltinKind::kLt, true, false));
  EXPECT_TRUE(BuiltinComputableWith(BuiltinKind::kLt, true, true));
}

}  // namespace
}  // namespace ldl
