#include "engine/rule_eval.h"

#include <sstream>

#include "base/strings.h"
#include "engine/builtins.h"
#include "engine/unify.h"

namespace ldl {

void EvalCounters::Add(const EvalCounters& other) {
  tuples_examined += other.tuples_examined;
  derivations += other.derivations;
  inserts += other.inserts;
  rule_firings += other.rule_firings;
}

std::string EvalCounters::ToString() const {
  return StrCat("examined=", tuples_examined, " derivations=", derivations,
                " inserts=", inserts, " firings=", rule_firings);
}

void EvalCounters::ExportTo(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->counter("engine.tuples_examined")->Increment(tuples_examined);
  metrics->counter("engine.derivations")->Increment(derivations);
  metrics->counter("engine.inserts")->Increment(inserts);
  metrics->counter("engine.rule_firings")->Increment(rule_firings);
}

namespace {

/// Backtracking join over the rule body. Holds evaluation state so the
/// recursive walk stays readable. Templated on the output sink: a Relation
/// for sequential evaluation, a TupleBatch for parallel worker tasks (both
/// expose `bool Insert(Tuple)` returning whether the tuple was new).
template <typename Sink>
class RuleEvaluator {
 public:
  RuleEvaluator(const Rule& rule, const RelationResolver& resolve, Sink* out,
                EvalCounters* counters, const RuleEvalOptions& options)
      : rule_(rule),
        resolve_(resolve),
        out_(out),
        counters_(counters),
        options_(options) {}

  Result<size_t> Run() {
    order_ = options_.order;
    if (order_.empty()) {
      order_.resize(rule_.body().size());
      for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    }
    if (order_.size() != rule_.body().size()) {
      return Status::Internal("rule evaluation order has wrong size");
    }
    counters_->rule_firings++;
    LDL_RETURN_NOT_OK(Step(0));
    FlushWork();
    if (options_.accountant != nullptr && inserted_ != 0) {
      options_.accountant->AddTuplesDerived(inserted_);
    }
    return inserted_;
  }

 private:
  /// Counts one examined tuple; every kCheckIntervalTuples of them, flushes
  /// work into the accountant and polls the cancellation token. The
  /// disabled path (no token, no accountant) is the increment + compare.
  Status CountExamined() {
    counters_->tuples_examined++;
    if (++since_check_ < CancellationToken::kCheckIntervalTuples) {
      return Status::OK();
    }
    FlushWork();
    if (options_.cancel != nullptr) {
      LDL_RETURN_NOT_OK(options_.cancel->Check());
    }
    return Status::OK();
  }

  /// Pushes locally accumulated work into the accountant.
  void FlushWork() {
    if (options_.accountant != nullptr && since_check_ != 0) {
      options_.accountant->AddTuplesExamined(since_check_);
    }
    since_check_ = 0;
  }

  Status Step(size_t depth) {
    if (depth == order_.size()) return EmitHead();
    const Literal& lit = rule_.body()[order_[depth]];
    if (lit.IsBuiltin()) return StepBuiltin(lit, depth);
    if (lit.negated()) return StepNegated(lit, depth);
    return StepPositive(lit, depth);
  }

  Status EmitHead() {
    counters_->derivations++;
    if (counters_->derivations > options_.max_derivations) {
      return Status::ResourceExhausted(
          StrCat("rule ", rule_.ToString(), " exceeded ",
                 options_.max_derivations, " derivations"));
    }
    Tuple t;
    t.reserve(rule_.head().arity());
    for (const Term& a : rule_.head().args()) {
      Term v = subst_.Apply(a);
      if (!v.IsGround()) {
        return Status::Unsafe(
            StrCat("non-ground head value ", v.ToString(), " in rule ",
                   rule_.ToString(),
                   " (rule is not range-restricted under this order)"));
      }
      // Fold any arithmetic the head may carry, e.g. p(X+1) <- q(X).
      if (ContainsArithmetic(v)) {
        auto folded = EvalArithmetic(v);
        if (!folded.ok()) return Status::OK();  // arithmetic error: no tuple
        v = std::move(folded).value();
      }
      t.push_back(std::move(v));
    }
    if (out_->Insert(std::move(t))) {
      counters_->inserts++;
      ++inserted_;
    }
    return Status::OK();
  }

  Status StepBuiltin(const Literal& lit, size_t depth) {
    size_t mark = subst_.Mark();
    BuiltinOutcome outcome = EvalBuiltin(lit, &subst_);
    switch (outcome) {
      case BuiltinOutcome::kSatisfied: {
        Status st = Step(depth + 1);
        subst_.UndoTo(mark);
        return st;
      }
      case BuiltinOutcome::kFailed:
        return Status::OK();
      case BuiltinOutcome::kNotComputable:
        return Status::Unsafe(
            StrCat("builtin ", subst_.Apply(lit).ToString(),
                   " is not computable at this point of rule ",
                   rule_.ToString(), " (unsafe literal order)"));
    }
    return Status::Internal("unreachable");
  }

  Status StepNegated(const Literal& lit, size_t depth) {
    Literal grounded = subst_.Apply(lit);
    for (const Term& a : grounded.args()) {
      if (!a.IsGround()) {
        return Status::Unsafe(
            StrCat("negated literal ", grounded.ToString(),
                   " has unbound variables in rule ", rule_.ToString()));
      }
    }
    Relation* rel = resolve_(lit, order_[depth]);
    LDL_RETURN_NOT_OK(CountExamined());
    Tuple key(grounded.args().begin(), grounded.args().end());
    if (rel != nullptr && rel->Contains(key)) return Status::OK();
    return Step(depth + 1);
  }

  Status StepPositive(const Literal& lit, size_t depth) {
    // Determine bound argument positions under the current substitution.
    std::vector<int> bound_cols;
    Tuple key;
    std::vector<Term> patterns(lit.arity());
    for (size_t i = 0; i < lit.arity(); ++i) {
      patterns[i] = subst_.Apply(lit.args()[i]);
      if (patterns[i].IsGround()) {
        bound_cols.push_back(static_cast<int>(i));
        key.push_back(patterns[i]);
      }
    }

    Relation* rel = nullptr;
    if (options_.pattern_resolver) {
      rel = options_.pattern_resolver(lit, order_[depth], patterns);
    }
    if (rel == nullptr) rel = resolve_(lit, order_[depth]);
    if (rel == nullptr) return Status::OK();

    auto try_tuple = [&](const Tuple& t) -> Status {
      LDL_RETURN_NOT_OK(CountExamined());
      size_t mark = subst_.Mark();
      bool ok = true;
      for (size_t i = 0; i < lit.arity(); ++i) {
        if (!Unify(patterns[i], t[i], &subst_)) {
          ok = false;
          break;
        }
      }
      Status st = ok ? Step(depth + 1) : Status::OK();
      subst_.UndoTo(mark);
      return st;
    };

    if (options_.concurrent_reads) {
      // Parallel-round mode: `rel` is frozen, so references are stable and
      // index maintenance is forbidden (it would race with other readers).
      // Use the const lookup path; when no index was pre-built, scan —
      // try_tuple re-checks every column against the bound patterns anyway.
      if (!bound_cols.empty()) {
        const std::vector<uint32_t>* ids = rel->FindPostings(bound_cols, key);
        if (ids != nullptr) {
          for (uint32_t id : *ids) {
            LDL_RETURN_NOT_OK(try_tuple(rel->tuple(id)));
          }
          return Status::OK();
        }
      }
      for (const Tuple& t : rel->tuples()) {
        LDL_RETURN_NOT_OK(try_tuple(t));
      }
      return Status::OK();
    }

    // Copy posting lists / iterate by index: `rel` may be the relation the
    // rule is inserting into (direct recursion), so references into it can
    // be invalidated by inserts made deeper in the recursion.
    if (!bound_cols.empty()) {
      std::vector<uint32_t> ids = rel->Lookup(bound_cols, key);
      for (uint32_t id : ids) {
        Tuple t = rel->tuple(id);
        LDL_RETURN_NOT_OK(try_tuple(t));
      }
      return Status::OK();
    }
    for (size_t i = 0, n = rel->tuples().size(); i < n; ++i) {
      Tuple t = rel->tuple(i);
      LDL_RETURN_NOT_OK(try_tuple(t));
    }
    return Status::OK();
  }

  const Rule& rule_;
  const RelationResolver& resolve_;
  Sink* out_;
  EvalCounters* counters_;
  const RuleEvalOptions& options_;
  std::vector<size_t> order_;
  Substitution subst_;
  size_t inserted_ = 0;
  size_t since_check_ = 0;  ///< examined tuples since the last check-point
};

}  // namespace

Result<size_t> EvaluateRule(const Rule& rule, const RelationResolver& resolve,
                            Relation* out, EvalCounters* counters,
                            const RuleEvalOptions& options) {
  RuleEvaluator<Relation> evaluator(rule, resolve, out, counters, options);
  return evaluator.Run();
}

Result<size_t> EvaluateRule(const Rule& rule, const RelationResolver& resolve,
                            TupleBatch* out, EvalCounters* counters,
                            const RuleEvalOptions& options) {
  RuleEvaluator<TupleBatch> evaluator(rule, resolve, out, counters, options);
  return evaluator.Run();
}

RelationResolver DatabaseResolver(Database* db) {
  return [db](const Literal& lit, size_t) -> Relation* {
    return db->Find(lit.predicate());
  };
}

}  // namespace ldl
