#ifndef LDLOPT_ANALYSIS_ANALYZER_H_
#define LDLOPT_ANALYSIS_ANALYZER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/diagnostic.h"
#include "ast/program.h"
#include "graph/binding.h"
#include "graph/dependency_graph.h"

namespace ldl {

class Database;
class MetricsRegistry;
class Statistics;

/// An abstract set of term sorts: which kinds of constant a column or
/// variable can hold. The lattice is a bitmask over {numeric, string,
/// symbol, function} with set union as join and intersection as meet.
/// Integers and reals form one *numeric band* — the engine compares them by
/// value (1 = 1.0 holds), so the analysis never separates them: Of() maps
/// both kInt and kReal constants to kNumeric.
class TypeSet {
 public:
  enum : uint8_t {
    kNone = 0,
    kNumeric = 1,  ///< int or real (one band, see above)
    kString = 2,
    kSymbol = 4,
    kFunction = 8,  ///< complex (constructor) terms
    kAny = 15,
  };

  TypeSet() = default;
  explicit TypeSet(uint8_t bits) : bits_(bits & kAny) {}

  static TypeSet None() { return TypeSet(kNone); }
  static TypeSet Any() { return TypeSet(kAny); }
  /// Sort of a ground (or constructor) term; variables map to Any.
  static TypeSet Of(const Term& t);

  bool empty() const { return bits_ == 0; }
  bool IsAny() const { return bits_ == kAny; }
  uint8_t bits() const { return bits_; }

  TypeSet Join(TypeSet other) const { return TypeSet(bits_ | other.bits_); }
  TypeSet Meet(TypeSet other) const { return TypeSet(bits_ & other.bits_); }
  bool CompatibleWith(TypeSet other) const { return !Meet(other).empty(); }

  bool operator==(TypeSet other) const { return bits_ == other.bits_; }
  bool operator!=(TypeSet other) const { return bits_ != other.bits_; }

  /// "{num,str}"; "{}" for None, "{any}" for Any.
  std::string ToString() const;

 private:
  uint8_t bits_ = 0;
};

/// One rule the analysis proved can never contribute to the query's answer.
struct DeadRule {
  size_t rule_index = 0;  ///< into Program::rules()
  std::string reason;
};

/// The result of a ProgramAnalyzer run: immutable, self-contained (does not
/// reference the analyzer), safe to hand to the optimizer by pointer.
class ProgramAnalysis {
 public:
  /// True iff the optimizer may be asked to plan `ap` when answering the
  /// analyzed goal. Conservative: returns true for base predicates, for
  /// goal-independent analyses, and whenever reachability was not fully
  /// computed (oversized rule bodies).
  bool AdornmentReachable(const AdornedPredicate& ap) const;

  bool has_goal() const { return has_goal_; }
  bool reachability_complete() const { return reachability_complete_; }
  /// Number of reachable (predicate, adornment) pairs.
  size_t reachable_pair_count() const;

  /// Inferred per-argument sorts of `pred`; empty vector when the predicate
  /// is unknown to the analysis (treat every argument as Any).
  const std::vector<TypeSet>& TypesOf(const PredicateId& pred) const;

  /// Upper bound on the predicate's cardinality from the sketch pass
  /// (recursive cliques widen to a large cap). Default-stat cardinality for
  /// unknown predicates.
  double CardinalityBound(const PredicateId& pred) const;

  bool RuleUnsatisfiable(size_t rule_index) const;
  bool RuleSubsumed(size_t rule_index) const;
  /// False only when a goal-directed analysis proved no query derivation
  /// can use the rule.
  bool RuleReachable(size_t rule_index) const;

  /// Rules provably irrelevant to the goal, ordered by rule index; the
  /// union of the unreachable / unsatisfiable / empty-body-predicate /
  /// subsumed categories.
  const std::vector<DeadRule>& dead_rules() const { return dead_rules_; }

  /// L011..L014 findings, in rule order.
  const std::vector<Diagnostic>& findings() const { return findings_; }

  const DataflowStats& type_stats() const { return type_stats_; }
  const DataflowStats& reachability_stats() const { return reach_stats_; }
  const DataflowStats& cardinality_stats() const { return card_stats_; }

  /// Publishes analysis.* counters/gauges.
  void ExportTo(MetricsRegistry* metrics) const;

  std::string ToString() const;

 private:
  friend class ProgramAnalyzer;

  bool has_goal_ = false;
  bool reachability_complete_ = false;
  std::unordered_set<PredicateId, PredicateIdHash> derived_;
  // Reachable adornments per derived predicate (ordered: deterministic
  // iteration for ToString and tests).
  std::unordered_map<PredicateId, std::set<Adornment>, PredicateIdHash>
      reachable_;
  std::unordered_map<PredicateId, std::vector<TypeSet>, PredicateIdHash>
      types_;
  std::unordered_map<PredicateId, double, PredicateIdHash> cards_;
  std::vector<uint8_t> rule_unsatisfiable_;
  std::vector<uint8_t> rule_subsumed_;
  std::vector<uint8_t> rule_reachable_;
  std::vector<DeadRule> dead_rules_;
  std::vector<Diagnostic> findings_;
  DataflowStats type_stats_;
  DataflowStats reach_stats_;
  DataflowStats card_stats_;
  double default_card_ = 100.0;
};

struct AnalyzerOptions {
  /// Optional: actual relation contents sharpen base-predicate types and
  /// expose statically-empty base relations. Without it base predicates not
  /// covered by inline facts are typed Any and assumed non-empty.
  const Database* database = nullptr;
  /// Optional: cardinalities for the sketch pass (falls back to the
  /// database's relation sizes, then to the 100-tuple default).
  const Statistics* statistics = nullptr;
  /// Emit L011/L012/L013 and use type conflicts for dead-rule detection.
  bool check_types = true;
  /// Emit L014 and use subsumption for dead-rule detection.
  bool check_subsumption = true;
  /// Reachability enumerates binding subsets per rule body (2^n); bodies
  /// longer than this make the reachability result incomplete (no pruning).
  size_t max_body_literals = 12;
  /// Subsumption matching is exponential in the subsuming body's length;
  /// longer rules are not considered as subsumers or subsumees.
  size_t max_subsumption_body = 6;
  /// Relations larger than this are typed Any instead of scanned.
  size_t max_type_seed_scan = 512;
};

/// Static semantic analysis of an LDL program: the three dataflow clients
/// of DESIGN.md section 12 (type/sort inference, adornment reachability,
/// cardinality sketching) plus rule-subsumption detection, packaged for the
/// linter (L011..L014) and the optimizer (search-space pruning, dead-rule
/// elimination).
class ProgramAnalyzer {
 public:
  /// `program` (and the options' database/statistics, when set) must
  /// outlive the analyzer.
  explicit ProgramAnalyzer(const Program& program,
                           AnalyzerOptions options = {});

  /// Goal-directed analysis: everything AnalyzeProgram() computes plus
  /// adornment reachability from `goal` and goal-dependent dead rules.
  ProgramAnalysis Analyze(const Literal& goal) const;

  /// Goal-independent analysis: types, satisfiability, subsumption,
  /// cardinality sketch. AdornmentReachable() is trivially true.
  ProgramAnalysis AnalyzeProgram() const;

  /// Runs the goal-independent analysis and reports its findings
  /// (L011..L014) into `sink`.
  void Lint(DiagnosticSink* sink) const;

  const DependencyGraph& graph() const { return graph_; }

 private:
  void InferTypes(ProgramAnalysis* a) const;
  void CheckRules(ProgramAnalysis* a) const;
  void DetectSubsumption(ProgramAnalysis* a) const;
  void ComputeReachability(const Literal& goal, ProgramAnalysis* a) const;
  void SketchCardinalities(ProgramAnalysis* a) const;
  void CollectDeadRules(const Literal* goal, ProgramAnalysis* a) const;

  std::vector<TypeSet> BaseTypes(const PredicateId& pred) const;

  const Program& program_;
  AnalyzerOptions options_;
  DependencyGraph graph_;
};

/// Result of stripping a program of its dead rules.
struct DeadRuleElimination {
  Program program;                    ///< surviving rules + facts + queries
  std::vector<size_t> removed_rules;  ///< original indices, ascending
  std::vector<std::string> reasons;   ///< parallel to removed_rules
};

/// Removes `analysis.dead_rules()` from `program`. Answer-preserving for
/// the analyzed goal: removed rules are unreachable from it, statically
/// unsatisfiable, or subsumed by a surviving rule. Note that rule indices
/// shift, so index-keyed optimizer inputs (pinned constraints, SIP orders)
/// must refer to the *pruned* program.
DeadRuleElimination EliminateDeadRules(const Program& program,
                                      const ProgramAnalysis& analysis);

}  // namespace ldl

#endif  // LDLOPT_ANALYSIS_ANALYZER_H_
