#include "optimizer/join_order.h"

#include <gtest/gtest.h>

#include "optimizer/kbz.h"
#include "testing/query_gen.h"

namespace ldl {
namespace {

using ::ldl::testing::ConjunctGenOptions;
using ::ldl::testing::MakeRandomConjunct;
using ::ldl::testing::QueryShape;

OrderResult RunStrategy(SearchStrategy strategy,
                const std::vector<ConjunctItem>& items,
                const BoundVars& initial = {}) {
  StrategyOptions options;
  CostModel model;
  return MakeStrategy(strategy, options)->FindOrder(items, initial, model);
}

TEST(JoinOrderTest, SingleItemTrivial) {
  Rng rng(1);
  auto q = MakeRandomConjunct(QueryShape::kChain, 1, &rng);
  for (auto strategy :
       {SearchStrategy::kExhaustive, SearchStrategy::kDynamicProgramming,
        SearchStrategy::kKbz, SearchStrategy::kAnnealing}) {
    OrderResult r = RunStrategy(strategy, q.items);
    EXPECT_TRUE(r.safe) << SearchStrategyToString(strategy);
    EXPECT_EQ(r.order, (std::vector<size_t>{0}));
  }
}

// Property: DP finds exactly the exhaustive optimum (both are exact).
class DpEqualsExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<QueryShape, size_t>> {};

TEST_P(DpEqualsExhaustiveTest, SameOptimalCost) {
  auto [shape, n] = GetParam();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 1000 + n);
    auto q = MakeRandomConjunct(shape, n, &rng);
    OrderResult ex = RunStrategy(SearchStrategy::kExhaustive, q.items);
    OrderResult dp = RunStrategy(SearchStrategy::kDynamicProgramming, q.items);
    ASSERT_TRUE(ex.safe && dp.safe);
    EXPECT_NEAR(ex.cost, dp.cost, 1e-6 * ex.cost)
        << "seed " << seed << " shape "
        << testing::QueryShapeToString(shape);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DpEqualsExhaustiveTest,
    ::testing::Combine(::testing::Values(QueryShape::kChain, QueryShape::kStar,
                                         QueryShape::kCycle,
                                         QueryShape::kRandom),
                       ::testing::Values(size_t{3}, size_t{5}, size_t{7})));

TEST(JoinOrderTest, DpUsesFewerEvaluationsThanExhaustive) {
  Rng rng(7);
  auto q = MakeRandomConjunct(QueryShape::kRandom, 8, &rng);
  OrderResult ex = RunStrategy(SearchStrategy::kExhaustive, q.items);
  OrderResult dp = RunStrategy(SearchStrategy::kDynamicProgramming, q.items);
  // O(n 2^n) well below n! for n=8 without pruning; with pruning exhaustive
  // can be close, so only require DP is not wildly worse.
  EXPECT_LE(dp.cost_evaluations, size_t{8 * 256});
  EXPECT_TRUE(ex.safe);
}

// Property: KBZ is exact on chain queries (acyclic, ASI holds).
class KbzChainTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KbzChainTest, NearOptimalOnChains) {
  size_t n = GetParam();
  size_t optimal = 0, within3 = 0, total = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 77 + n);
    auto q = MakeRandomConjunct(QueryShape::kChain, n, &rng);
    OrderResult ex = RunStrategy(SearchStrategy::kExhaustive, q.items);
    OrderResult kbz = RunStrategy(SearchStrategy::kKbz, q.items);
    ASSERT_TRUE(ex.safe && kbz.safe);
    EXPECT_GE(kbz.cost, ex.cost * (1 - 1e-9));
    ++total;
    if (kbz.cost <= ex.cost * 1.0001) ++optimal;
    if (kbz.cost <= ex.cost * 3.0) ++within3;
  }
  // The paper/[Vil 87] bar: optimal "in most cases", >=90% within 2-3x.
  EXPECT_GE(optimal * 2, total) << "KBZ optimal in fewer than half the runs";
  EXPECT_GE(within3 * 10, total * 9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KbzChainTest,
                         ::testing::Values(size_t{4}, size_t{6}, size_t{8}));

TEST(JoinOrderTest, KbzHandlesCyclicQueriesHeuristically) {
  size_t within3 = 0, total = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    auto q = MakeRandomConjunct(QueryShape::kCycle, 6, &rng);
    OrderResult ex = RunStrategy(SearchStrategy::kExhaustive, q.items);
    OrderResult kbz = RunStrategy(SearchStrategy::kKbz, q.items);
    ASSERT_TRUE(ex.safe && kbz.safe);
    ++total;
    if (kbz.cost <= ex.cost * 3.0) ++within3;
  }
  EXPECT_GE(within3 * 10, total * 7);  // heuristic: most within 3x
}

TEST(JoinOrderTest, AnnealingFindsGoodOrders) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 13);
    auto q = MakeRandomConjunct(QueryShape::kRandom, 7, &rng);
    OrderResult ex = RunStrategy(SearchStrategy::kExhaustive, q.items);
    OrderResult sa = RunStrategy(SearchStrategy::kAnnealing, q.items);
    ASSERT_TRUE(ex.safe && sa.safe);
    EXPECT_LE(sa.cost, ex.cost * 5.0) << "seed " << seed;
    EXPECT_GE(sa.cost, ex.cost * (1 - 1e-9));
  }
}

TEST(JoinOrderTest, LexicographicIsJustTextualOrder) {
  Rng rng(5);
  auto q = MakeRandomConjunct(QueryShape::kChain, 5, &rng);
  OrderResult lex = RunStrategy(SearchStrategy::kLexicographic, q.items);
  ASSERT_TRUE(lex.safe);
  EXPECT_EQ(lex.order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(lex.cost_evaluations, 1u);
}

TEST(JoinOrderTest, StrategiesRespectSafetyConstraints) {
  // big(X, Y), Y > 10, Z = Y * 2, small(Z, W): builtins must come after
  // their variables are bound; every strategy must produce a safe order.
  Statistics stats;
  stats.Set({"big", 2}, {1000.0, {1000.0, 500.0}});
  stats.Set({"small", 2}, {50.0, {50.0, 50.0}});
  CostModelOptions cost;
  std::vector<ConjunctItem> items;
  items.push_back(MakeBaseItem(
      Literal::Make("big", {Term::MakeVariable("X"), Term::MakeVariable("Y")}),
      stats, cost));
  ConjunctItem gt;
  gt.literal = Literal::MakeBuiltin(BuiltinKind::kGt, Term::MakeVariable("Y"),
                                    Term::MakeInt(10));
  items.push_back(gt);
  ConjunctItem eq;
  eq.literal = Literal::MakeBuiltin(
      BuiltinKind::kEq, Term::MakeVariable("Z"),
      Term::MakeFunction("*", {Term::MakeVariable("Y"), Term::MakeInt(2)}));
  items.push_back(eq);
  items.push_back(MakeBaseItem(
      Literal::Make("small",
                    {Term::MakeVariable("Z"), Term::MakeVariable("W")}),
      stats, cost));

  for (auto strategy :
       {SearchStrategy::kExhaustive, SearchStrategy::kDynamicProgramming,
        SearchStrategy::kKbz, SearchStrategy::kAnnealing}) {
    OrderResult r = RunStrategy(strategy, items);
    ASSERT_TRUE(r.safe) << SearchStrategyToString(strategy);
    // Verify the order is actually EC-safe by re-costing it.
    CostModel model;
    EXPECT_TRUE(model.CostSequence(items, r.order, {}).safe)
        << SearchStrategyToString(strategy);
  }
}

TEST(JoinOrderTest, BoundHeadVariablesChangeTheChosenOrder) {
  // With X bound, starting from big(X, ...) becomes attractive.
  Statistics stats;
  stats.Set({"big", 2}, {100000.0, {50000.0, 100.0}});
  stats.Set({"small", 2}, {500.0, {500.0, 100.0}});
  CostModelOptions cost;
  std::vector<ConjunctItem> items = {
      MakeBaseItem(Literal::Make("big", {Term::MakeVariable("X"),
                                         Term::MakeVariable("Y")}),
                   stats, cost),
      MakeBaseItem(Literal::Make("small", {Term::MakeVariable("Z"),
                                           Term::MakeVariable("Y")}),
                   stats, cost),
  };
  BoundVars bound;
  bound.Bind("X");
  OrderResult free_run = RunStrategy(SearchStrategy::kExhaustive, items);
  OrderResult bound_run = RunStrategy(SearchStrategy::kExhaustive, items, bound);
  ASSERT_TRUE(free_run.safe && bound_run.safe);
  EXPECT_EQ(free_run.order.front(), 1u);   // small first when nothing bound
  EXPECT_EQ(bound_run.order.front(), 0u);  // indexed big(X,...) first
}

}  // namespace
}  // namespace ldl
