# Empty compiler generated dependencies file for bench_recursion_methods.
# This may be replaced when dependencies are built.
