# Empty dependencies file for unify_builtins_test.
# This may be replaced when dependencies are built.
