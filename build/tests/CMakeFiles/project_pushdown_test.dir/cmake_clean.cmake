file(REMOVE_RECURSE
  "CMakeFiles/project_pushdown_test.dir/project_pushdown_test.cc.o"
  "CMakeFiles/project_pushdown_test.dir/project_pushdown_test.cc.o.d"
  "project_pushdown_test"
  "project_pushdown_test.pdb"
  "project_pushdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_pushdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
