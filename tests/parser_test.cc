#include "ast/parser.h"

#include <gtest/gtest.h>

namespace ldl {
namespace {

TEST(ParserTest, FactsRulesQueries) {
  auto result = ParseProgram(R"(
    % same generation
    up(1, 2).
    up(2, 3).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
    sg(X, Y) <- flat(X, Y).
    sg(1, Y)?
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  const Program& p = *result;
  EXPECT_EQ(p.facts().size(), 2u);
  EXPECT_EQ(p.rules().size(), 2u);
  EXPECT_EQ(p.queries().size(), 1u);
  EXPECT_TRUE(p.IsDerived({"sg", 2}));
  EXPECT_FALSE(p.IsDerived({"up", 2}));
}

TEST(ParserTest, PrologArrowSynonym) {
  auto result = ParseProgram("a(X) :- b(X).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rules().size(), 1u);
}

TEST(ParserTest, ComparisonsAndArithmetic) {
  auto result = ParseProgram(
      "rich(X) <- owns(X, P), V = P * 2 + 1, V > 100.");
  ASSERT_TRUE(result.ok()) << result.status();
  const Rule& r = result->rules()[0];
  ASSERT_EQ(r.body().size(), 3u);
  EXPECT_FALSE(r.body()[0].IsBuiltin());
  EXPECT_EQ(r.body()[1].builtin(), BuiltinKind::kEq);
  EXPECT_EQ(r.body()[2].builtin(), BuiltinKind::kGt);
  // Precedence: P * 2 + 1 == +(*(P,2),1).
  const Term& rhs = r.body()[1].args()[1];
  EXPECT_EQ(rhs.text(), "+");
  EXPECT_EQ(rhs.args()[0].text(), "*");
}

TEST(ParserTest, Negation) {
  auto result = ParseProgram(
      "bachelor(X) <- person(X), not married(X).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rules()[0].body()[1].negated());
}

TEST(ParserTest, NegatedBuiltinRejected) {
  auto result = ParseProgram("p(X) <- q(X), not X > 3.");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, Lists) {
  auto result = ParseProgram(
      "member(X, [X | T]).\n"
      "member(X, [H | T]) <- member(X, T).");
  ASSERT_TRUE(result.ok()) << result.status();
  // First clause has variables -> parsed as a bodiless rule, not a fact.
  EXPECT_EQ(result->rules().size(), 2u);
  EXPECT_EQ(result->facts().size(), 0u);
}

TEST(ParserTest, ComplexTermsInFacts) {
  auto result = ParseProgram("point(p(1, 2)). addr(\"main st\", 42).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->facts().size(), 2u);
  EXPECT_EQ(result->facts()[0].args()[0].ToString(), "p(1, 2)");
}

TEST(ParserTest, ZeroArityPredicate) {
  auto result = ParseProgram("go <- ready, steady.");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rules()[0].head().arity(), 0u);
}

TEST(ParserTest, ArityMismatchRejected) {
  auto result = ParseProgram("p(1, 2). p(3). ");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, SyntaxErrorsCarryLineNumbers) {
  auto result = ParseProgram("a(1).\nb(2.\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
      << result.status();
}

TEST(ParserTest, UnterminatedString) {
  auto result = ParseProgram("a(\"oops).");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, NonGroundFactBecomesRule) {
  auto result = ParseProgram("p(X, 1).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rules().size(), 1u);
  EXPECT_TRUE(result->facts().empty());
}

TEST(ParserTest, NegativeNumbers) {
  auto result = ParseTerm("-5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->int_value(), -5);
  auto real = ParseTerm("-2.5");
  ASSERT_TRUE(real.ok());
  EXPECT_DOUBLE_EQ(real->real_value(), -2.5);
}

TEST(ParserTest, ParseLiteralHelper) {
  auto lit = ParseLiteral("sg(1, Y)");
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(lit->predicate().ToString(), "sg/2");
  EXPECT_TRUE(lit->args()[0].IsGround());
  EXPECT_FALSE(lit->args()[1].IsGround());
}

TEST(ParserTest, RoundTripPrinting) {
  const char* text = "sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).";
  auto result = ParseProgram(text);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules()[0].ToString(), text);
}

}  // namespace
}  // namespace ldl
