// The monotone dataflow framework (analysis/dataflow.h): SCC-condensed
// scheduling, per-component worklist fixpoints, and widening.

#include "analysis/dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "graph/dependency_graph.h"

namespace ldl {
namespace {

Program Parse(const std::string& text) {
  auto parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return *parsed;
}

// a <- e, b <- a, c <- b: a three-level non-recursive chain.
constexpr const char* kChain = R"(
  a(X) <- e(X).
  b(X) <- a(X).
  c(X) <- b(X).
)";

constexpr const char* kClique = R"(
  t(X, Y) <- e(X, Y).
  t(X, Y) <- e(X, Z), t(Z, Y).
)";

TEST(DataflowFrameworkTest, BottomUpVisitsChainOnceInDependencyOrder) {
  Program program = Parse(kChain);
  DependencyGraph graph = DependencyGraph::Build(program);
  DataflowFramework framework(program, graph);

  std::vector<std::string> visited;
  DataflowStats stats = framework.Run(
      DataflowDirection::kBottomUp, [&](const PredicateId& pred) {
        visited.push_back(pred.name);
        return true;  // "changed" must not reschedule outside the component
      });

  EXPECT_EQ(visited, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(stats.visits, 3u);
  EXPECT_EQ(stats.rounds, 3u);  // one component per predicate
  EXPECT_EQ(stats.widenings, 0u);
  EXPECT_TRUE(stats.converged);
}

TEST(DataflowFrameworkTest, TopDownVisitsChainInReverseOrder) {
  Program program = Parse(kChain);
  DependencyGraph graph = DependencyGraph::Build(program);
  DataflowFramework framework(program, graph);

  std::vector<std::string> visited;
  DataflowStats stats = framework.Run(
      DataflowDirection::kTopDown, [&](const PredicateId& pred) {
        visited.push_back(pred.name);
        return false;
      });

  EXPECT_EQ(visited, (std::vector<std::string>{"c", "b", "a"}));
  EXPECT_TRUE(stats.converged);
}

TEST(DataflowFrameworkTest, CliqueIteratesToFixpoint) {
  Program program = Parse(kClique);
  DependencyGraph graph = DependencyGraph::Build(program);
  DataflowFramework framework(program, graph);

  // A tiny ascending chain: the value climbs to 3 and stabilizes. The
  // framework must revisit t until the transfer stops reporting change.
  std::map<std::string, int> value;
  DataflowStats stats = framework.Run(
      DataflowDirection::kBottomUp, [&](const PredicateId& pred) {
        int& v = value[pred.name];
        if (v >= 3) return false;
        ++v;
        return true;
      });

  EXPECT_EQ(value["t"], 3);
  // Initial visit + 3 changes rescheduling itself + the stable visit.
  EXPECT_GE(stats.visits, 4u);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.widenings, 0u);
}

TEST(DataflowFrameworkTest, MutualRecursionReachesJointFixpoint) {
  Program program = Parse(R"(
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), u(Z, Y).
    u(X, Y) <- e(X, Z), t(Z, Y).
  )");
  DependencyGraph graph = DependencyGraph::Build(program);
  DataflowFramework framework(program, graph);
  ASSERT_EQ(graph.cliques().size(), 1u);

  // max-propagation across the clique: both members must end at the max.
  std::map<std::string, int> value{{"t", 5}, {"u", 0}};
  DataflowStats stats = framework.Run(
      DataflowDirection::kBottomUp, [&](const PredicateId& pred) {
        const std::string other = pred.name == "t" ? "u" : "t";
        int next = std::max(value[pred.name], value[other]);
        if (next == value[pred.name]) return false;
        value[pred.name] = next;
        return true;
      });

  EXPECT_EQ(value["t"], 5);
  EXPECT_EQ(value["u"], 5);
  EXPECT_TRUE(stats.converged);
}

TEST(DataflowFrameworkTest, WideningForcesTermination) {
  Program program = Parse(kClique);
  DependencyGraph graph = DependencyGraph::Build(program);
  DataflowFramework framework(program, graph);

  // An infinite ascending chain, stabilized only by widen().
  std::map<std::string, bool> widened;
  std::map<std::string, int> value;
  DataflowStats stats = framework.Run(
      DataflowDirection::kBottomUp,
      [&](const PredicateId& pred) {
        if (widened[pred.name]) return false;
        ++value[pred.name];
        return true;
      },
      [&](const PredicateId& pred) { widened[pred.name] = true; },
      /*visit_cap=*/8);

  EXPECT_TRUE(widened["t"]);
  EXPECT_GE(stats.widenings, 1u);
  EXPECT_TRUE(stats.converged);
}

TEST(DataflowFrameworkTest, NoWideningReportsNonConvergence) {
  Program program = Parse(kClique);
  DependencyGraph graph = DependencyGraph::Build(program);
  DataflowFramework framework(program, graph);

  DataflowStats stats = framework.Run(
      DataflowDirection::kBottomUp,
      [&](const PredicateId&) { return true; },  // never stabilizes
      /*widen=*/{}, /*visit_cap=*/8);

  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.widenings, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(DataflowFrameworkTest, StatsToStringMentionsConvergence) {
  DataflowStats stats;
  stats.visits = 7;
  stats.rounds = 3;
  EXPECT_NE(stats.ToString().find("7"), std::string::npos);
  stats.converged = false;
  EXPECT_NE(stats.ToString().find("NOT converged"), std::string::npos);
}

}  // namespace
}  // namespace ldl
