// End-to-end scenario tests: realistic knowledge-base applications driven
// through the full stack (parser -> safety -> optimizer -> rewrites ->
// engine), checking answers, not internals.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ldl/ldl.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

std::set<std::string> AnswerSet(const Relation& r) {
  std::set<std::string> out;
  for (const Tuple& t : r.tuples()) out.insert(TupleToString(t));
  return out;
}

/// Every scenario runs with plan verification on: the processing tree of
/// each optimized query is checked against the §4/§5 structural invariants
/// (src/analysis/plan_verifier.h) before execution.
OptimizerOptions Verifying() {
  OptimizerOptions options;
  options.verify_plans = true;
  return options;
}

TEST(ScenarioTest, FlightRoutesWithCosts) {
  LdlSystem sys(Verifying());
  ASSERT_TRUE(sys.LoadProgram(R"(
    flight(sfo, lax, 99).
    flight(lax, jfk, 300).
    flight(sfo, jfk, 450).
    flight(jfk, lhr, 600).
    flight(lax, sfo, 99).

    % reachability: a pure Datalog clique (safe for any data)
    route(A, B) <- flight(A, B, C).
    route(A, B) <- flight(A, M, C), route(M, B).

    % cost arithmetic stays nonrecursive (unbounded accumulation over the
    % sfo <-> lax cycle would be genuinely unsafe, and the analyzer says so)
    onestop(A, B, C) <- flight(A, M, C1), flight(M, B, C2), C = C1 + C2.
    affordable(A, B) <- flight(A, B, C), C < 500.
    affordable(A, B) <- onestop(A, B, C), C < 500.
  )")
                  .ok());
  auto answer = sys.Query("affordable(sfo, B)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  std::set<std::string> cities;
  for (const Tuple& t : answer->answers.tuples()) {
    cities.insert(t[1].ToString());
  }
  // lax (99 direct), jfk (399 one-stop / 450 direct), sfo (198 round trip).
  EXPECT_EQ(cities, (std::set<std::string>{"lax", "jfk", "sfo"}));

  auto reach = sys.Query("route(sfo, B)");
  ASSERT_TRUE(reach.ok()) << reach.status();
  EXPECT_EQ(reach->answers.size(), 4u);  // lax, jfk, lhr, sfo

  // The unbounded accumulating variant is rejected as unsafe.
  ASSERT_TRUE(sys.LoadProgram(R"(
    cost(A, B, C) <- flight(A, B, C).
    cost(A, B, C) <- flight(A, M, C1), cost(M, B, C2), C = C1 + C2.
  )")
                  .ok());
  auto unsafe = sys.Query("cost(sfo, jfk, C)");
  ASSERT_FALSE(unsafe.ok());
  EXPECT_EQ(unsafe.status().code(), StatusCode::kUnsafe);
}

TEST(ScenarioTest, RouteAccumulationTerminatesViaGuard) {
  // Cyclic flights with an unguarded cost accumulator would diverge; the
  // C < 500 guard inside the recursion bounds it.
  LdlSystem sys(Verifying());
  ASSERT_TRUE(sys.LoadProgram(R"(
    hop(a, b). hop(b, c). hop(c, a).
    walk(X, Y, 1) <- hop(X, Y).
    walk(X, Y, N) <- hop(X, M), walk(M, Y, N1), N = N1 + 1, N < 10.
  )")
                  .ok());
  auto answer = sys.Query("walk(a, c, N)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  // Lengths 2, 5, 8 reach c from a on the 3-cycle.
  std::set<int64_t> lengths;
  for (const Tuple& t : answer->answers.tuples()) {
    lengths.insert(t[2].int_value());
  }
  EXPECT_EQ(lengths, (std::set<int64_t>{2, 5, 8}));
}

TEST(ScenarioTest, GenealogyWithListsAndNegation) {
  LdlSystem sys(Verifying());
  ASSERT_TRUE(sys.LoadProgram(R"(
    par(bart, homer). par(homer, abe). par(abe, orville).

    % lineage paths as lists
    lineage(X, Y, [X, Y]) <- par(X, Y).
    lineage(X, Z, [X | P]) <- par(X, Y), lineage(Y, Z, P).

    person(X) <- par(X, Y).
    person(Y) <- par(X, Y).
    has_child(Y) <- par(X, Y).
    leaf(X) <- person(X), not has_child(X).
  )")
                  .ok());
  // lineage builds lists bottom-up: safe on acyclic `par` data but only
  // data-dependently so — the conservative compile-time analysis rejects
  // it, and we drive the engine directly instead (the paper's section 8.1:
  // sufficient conditions "do not necessarily detect all safe executions").
  auto goal = ParseLiteral("lineage(bart, orville, P)");
  ASSERT_TRUE(goal.ok());
  EXPECT_FALSE(sys.Query(*goal).ok());  // conservative rejection
  auto lineage = sys.EvaluateUnoptimized(*goal, RecursionMethod::kSemiNaive);
  ASSERT_TRUE(lineage.ok()) << lineage.status();
  ASSERT_EQ(lineage->answers.size(), 1u);
  EXPECT_EQ(lineage->answers.tuples()[0][2].ToString(),
            "[bart, homer, abe, orville]");

  auto leaves = sys.Query("leaf(X)");
  ASSERT_TRUE(leaves.ok()) << leaves.status();
  EXPECT_EQ(AnswerSet(leaves->answers), (std::set<std::string>{"(bart)"}));
}

TEST(ScenarioTest, ThreeStrataProgram) {
  LdlSystem sys(Verifying());
  ASSERT_TRUE(sys.LoadProgram(R"(
    edge(1, 2). edge(2, 3). edge(4, 5).
    node(X) <- edge(X, Y).
    node(Y) <- edge(X, Y).
    reach(X, Y) <- edge(X, Y).
    reach(X, Y) <- edge(X, Z), reach(Z, Y).
    % stratum 1: negation over reach
    separated(X, Y) <- node(X), node(Y), not reach(X, Y), X != Y.
    % stratum 2: negation over separated
    connected_all(X) <- node(X), not isolated(X).
    isolated(X) <- node(X), separated(X, Y), separated(Y, X).
  )")
                  .ok());
  auto answer = sys.Query("separated(1, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  // From 1 you can reach 2 and 3; 4 and 5 are separated.
  EXPECT_EQ(answer->answers.size(), 2u);
}

TEST(ScenarioTest, BillOfMaterialsCostRollup) {
  LdlSystem sys(Verifying());
  ASSERT_TRUE(sys.LoadProgram(R"(
    assembly(bike, wheel, 2).
    assembly(bike, frame, 1).
    assembly(wheel, spoke, 32).
    assembly(wheel, rim, 1).
    base_cost(spoke, 1).
    base_cost(rim, 20).
    base_cost(frame, 100).

    % every (possibly nested) part needed for a product
    needs(P, S) <- assembly(P, S, N).
    needs(P, S) <- assembly(P, M, N), needs(M, S).
  )")
                  .ok());
  auto parts = sys.Query("needs(bike, S)");
  ASSERT_TRUE(parts.ok()) << parts.status();
  EXPECT_EQ(parts->answers.size(), 4u);  // wheel, frame, spoke, rim
  EXPECT_TRUE(parts->plan.top_method == RecursionMethod::kMagic ||
              parts->plan.top_method == RecursionMethod::kCounting);
}

TEST(ScenarioTest, SameGenerationCousins) {
  LdlSystem sys(Verifying());
  ASSERT_TRUE(sys.LoadProgram(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )")
                  .ok());
  size_t nodes = testing::MakeSameGenerationData(2, 5, sys.database());
  sys.RefreshStatistics();
  // Symmetry check: sg(a, b) answers match sg read in the other direction
  // through its mirrored data.
  Literal g1 = Literal::Make(
      "sg", {Term::MakeInt(static_cast<int64_t>(nodes - 1)),
             Term::MakeVariable("Y")});
  auto a1 = sys.Query(g1);
  ASSERT_TRUE(a1.ok());
  EXPECT_FALSE(a1->answers.empty());
  // Every answer is at the same depth: verify by checking membership of the
  // probe itself (ring flat links make sg reflexive-ish via cycles of ups
  // and downs only at matched depth).
  for (const Tuple& t : a1->answers.tuples()) {
    EXPECT_EQ(t[0].int_value(), static_cast<int64_t>(nodes - 1));
  }
}

TEST(ScenarioTest, QueryAfterIncrementalLoad) {
  LdlSystem sys(Verifying());
  ASSERT_TRUE(sys.LoadProgram("anc(X, Y) <- par(X, Y).").ok());
  ASSERT_TRUE(sys.AddClause("anc(X, Y) <- par(X, Z), anc(Z, Y).").ok());
  ASSERT_TRUE(sys.AddClause("par(a, b).").ok());
  ASSERT_TRUE(sys.AddClause("par(b, c).").ok());
  auto answer = sys.Query("anc(a, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->answers.size(), 2u);
  // Add more facts: statistics refresh and answers update.
  ASSERT_TRUE(sys.AddClause("par(c, d).").ok());
  auto again = sys.Query("anc(a, Y)");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->answers.size(), 3u);
}

TEST(ScenarioTest, StringAndRealValues) {
  LdlSystem sys(Verifying());
  ASSERT_TRUE(sys.LoadProgram(R"(
    product("anvil", 49.99).
    product("rocket skates", 999.5).
    cheap(N) <- product(N, P), P < 100.0.
  )")
                  .ok());
  auto answer = sys.Query("cheap(N)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->answers.size(), 1u);
  EXPECT_EQ(answer->answers.tuples()[0][0].text(), "anvil");
}

}  // namespace
}  // namespace ldl
