#include "storage/relation.h"

#include <cassert>
#include <set>
#include <sstream>

namespace ldl {

std::string TupleToString(const Tuple& t) {
  std::ostringstream os;
  os << '(';
  bool first = true;
  for (const Term& v : t) {
    if (!first) os << ", ";
    first = false;
    os << v;
  }
  os << ')';
  return os.str();
}

bool Relation::Insert(Tuple t) {
  assert(t.size() == arity_ && "tuple arity mismatch");
  if (t.size() != arity_) return false;
  size_t h = TupleHash{}(t);
  auto& bucket = dedup_[h];
  for (uint32_t id : bucket) {
    if (tuples_[id] == t) return false;
  }
  bucket.push_back(static_cast<uint32_t>(tuples_.size()));
  tuples_.push_back(std::move(t));
  return true;
}

size_t Relation::InsertAll(const Relation& other) {
  size_t added = 0;
  for (const Tuple& t : other.tuples()) {
    if (Insert(t)) ++added;
  }
  return added;
}

bool Relation::Contains(const Tuple& t) const {
  size_t h = TupleHash{}(t);
  auto it = dedup_.find(h);
  if (it == dedup_.end()) return false;
  for (uint32_t id : it->second) {
    if (tuples_[id] == t) return true;
  }
  return false;
}

void Relation::Clear() {
  tuples_.clear();
  dedup_.clear();
  indexes_.clear();
}

const std::vector<uint32_t>& Relation::Lookup(const std::vector<int>& cols,
                                              const Tuple& key) {
  static const auto* empty = new std::vector<uint32_t>();
  Index& index = indexes_[cols];
  if (index.built_upto < tuples_.size()) ExtendIndex(cols, &index);
  auto it = index.postings.find(key);
  return it == index.postings.end() ? *empty : it->second;
}

void Relation::ExtendIndex(const std::vector<int>& cols, Index* index) {
  for (size_t id = index->built_upto; id < tuples_.size(); ++id) {
    Tuple key;
    key.reserve(cols.size());
    for (int c : cols) key.push_back(tuples_[id][c]);
    index->postings[std::move(key)].push_back(static_cast<uint32_t>(id));
  }
  index->built_upto = tuples_.size();
}

size_t Relation::DistinctCount(size_t col) const {
  std::set<Term> values;
  for (const Tuple& t : tuples_) values.insert(t[col]);
  return values.size();
}

std::string Relation::ToString(size_t max_tuples) const {
  std::ostringstream os;
  os << name_ << '/' << arity_ << " [" << size() << " tuples]";
  size_t shown = 0;
  for (const Tuple& t : tuples_) {
    if (shown++ >= max_tuples) {
      os << "\n  ...";
      break;
    }
    os << "\n  " << TupleToString(t);
  }
  return os.str();
}

}  // namespace ldl
