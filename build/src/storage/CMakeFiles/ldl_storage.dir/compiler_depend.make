# Empty compiler generated dependencies file for ldl_storage.
# This may be replaced when dependencies are built.
