#ifndef LDLOPT_OPTIMIZER_COST_MODEL_H_
#define LDLOPT_OPTIMIZER_COST_MODEL_H_

#include <functional>
#include <limits>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/literal.h"
#include "graph/binding.h"
#include "storage/statistics.h"

namespace ldl {

/// Unsafe executions are modeled by infinite cost (paper section 6: "the
/// cost function should guarantee an infinite cost if the size approaches
/// infinity", used to encode the unsafe property).
inline constexpr double kInfiniteCost =
    std::numeric_limits<double>::infinity();

/// Tunable constants of the cost model. The paper treats cost formulae as a
/// system-dependent black box; these options let benchmarks ablate the
/// model (e.g. IO-weighted vs CPU-weighted) without touching the search.
struct CostModelOptions {
  double tuple_cost = 1.0;        ///< examining one stored tuple
  double output_cost = 0.2;       ///< producing one result tuple
  double index_probe_cost = 1.2;  ///< initiating one index lookup
  double builtin_cost = 0.05;     ///< evaluating one builtin instance
  double materialize_cost = 0.1;  ///< writing one tuple to a temporary

  /// Selectivity guesses for comparison builtins (System R tradition).
  double comparison_selectivity = 1.0 / 3.0;
  double ne_selectivity = 0.9;
  double negation_selectivity = 0.5;

  /// Recursion estimation (see OptimizeClique): assumed fixpoint depth D.
  double assumed_recursion_depth = 8.0;
  /// Magic sets do roughly (binding selectivity x total) work, times this
  /// bookkeeping overhead.
  double magic_overhead = 2.0;
  /// Counting improves on magic by skipping the supplementary joins.
  double counting_discount = 0.5;
  /// Naive re-derives each round: roughly D/2 redundant passes.
  double naive_rederivation_factor = 0.5;

  bool enable_index_join = true;
};

/// A cost/cardinality estimate for evaluating one subquery (a conjunct
/// item) under a given adornment.
struct PlanEstimate {
  /// One-time cost (materializing a subtree pays its full evaluation here).
  double setup = 0;
  /// Cost per binding instance of the bound arguments.
  double per_binding = 0;
  /// Expected result tuples per binding instance (total size when the
  /// adornment is all-free).
  double card = 1;
  bool safe = true;

  static PlanEstimate Unsafe() {
    PlanEstimate e;
    e.setup = kInfiniteCost;
    e.per_binding = kInfiniteCost;
    e.safe = false;
    return e;
  }
};

/// One literal of a conjunct, with a callback that estimates its evaluation
/// under any adornment. Base literals estimate from catalog statistics;
/// derived literals are backed by the optimizer's (predicate, adornment)
/// memo — which is how NR-OPT's "optimize each subtree once per binding"
/// plugs into conjunct costing.
struct ConjunctItem {
  Literal literal;
  /// Estimate for evaluating the item under `adn`, given that it will be
  /// invoked once per each of `outer_card` bindings. The outer cardinality
  /// lets the estimate resolve the MP (materialize vs pipeline) decision
  /// locally: materialization amortizes setup over the outer bindings.
  std::function<PlanEstimate(const Adornment& adn, double outer_card)>
      estimate;
  /// For KBZ's query graph: all-free cardinality and per-column distinct
  /// counts.
  double base_cardinality = 1;
  std::vector<double> distinct;
  /// True for items whose cardinality math should be computed by the cost
  /// model from base_cardinality/distinct with symmetric join selectivities
  /// (1/max(d1, d2)); set by MakeBaseItem. Derived subqueries instead go
  /// through `estimate`. The symmetric model makes subset cardinalities
  /// order-independent, which is what makes the Selinger DP exact.
  /// (Caveat: a literal with a repeated variable, r(V, V), re-introduces
  /// order dependence; DP is then a near-optimal heuristic.)
  bool use_catalog = false;
};

/// Builds a ConjunctItem for a base-relation literal from statistics.
ConjunctItem MakeBaseItem(const Literal& lit, const Statistics& stats,
                          const CostModelOptions& options);

/// Measured ("hindsight") cardinalities keyed by (predicate, adornment),
/// harvested from an ExecutionProfile after an EXPLAIN ANALYZE run. The
/// optimizer accepts one as an overlay (OptimizerOptions::measured): wherever
/// the cost model would use an estimated cardinality for a (predicate,
/// binding) pair that was actually executed, the measured per-binding row
/// count is injected instead. Re-optimizing under the overlay yields the
/// plan the optimizer *would have chosen* with perfect estimates — the basis
/// of plan-regret analysis (obs/calibration.h).
///
/// Cardinalities are per binding instance, matching PlanEstimate::card: the
/// all-free entry of a predicate is its total measured size.
class MeasuredStatistics {
 public:
  void Set(const PredicateId& pred, const Adornment& adn, double card) {
    cards_[AdornedPredicate{pred, adn}] = card;
  }

  /// Measured per-binding cardinality, or nullptr when that (predicate,
  /// adornment) was never executed.
  const double* Find(const PredicateId& pred, const Adornment& adn) const {
    auto it = cards_.find(AdornedPredicate{pred, adn});
    return it == cards_.end() ? nullptr : &it->second;
  }

  bool empty() const { return cards_.empty(); }
  size_t size() const { return cards_.size(); }

  /// Sorted snapshot of every (key, cardinality) pair — the iteration
  /// surface the feedback statistics catalog (obs/feedback.h) ingests.
  std::vector<std::pair<AdornedPredicate, double>> Entries() const;

  /// Injects the measured truth into a catalog-backed base item: the
  /// all-free measured size replaces base_cardinality (and caps the
  /// per-column distinct counts, since distinct <= cardinality), and the
  /// estimate callback overrides its cardinality for any adornment that was
  /// measured. The overlay must outlive the item.
  void AdjustBaseItem(ConjunctItem* item) const;

  std::string ToString() const;

 private:
  std::unordered_map<AdornedPredicate, double, AdornedPredicateHash> cards_;
};

/// Running state of a left-to-right walk over a conjunct order.
struct StepState {
  double cost = 0;
  double card = 1;  ///< current number of intermediate bindings
  BoundVars bound;
  /// Estimated number of distinct values each bound variable ranges over
  /// (min of the distinct counts of the columns that produced it); drives
  /// the symmetric 1/max(d1, d2) join selectivity.
  std::map<std::string, double> domains;
  bool safe = true;
  size_t steps = 0;
};

/// Folds `item`'s per-column distinct counts into the variable-domain map
/// (min per variable). Order-independent; used by ApplyStep and by the DP
/// strategy when it reconstructs per-subset states.
void AbsorbDomains(const ConjunctItem& item,
                   std::map<std::string, double>* domains);

/// Result of costing one complete order.
struct SequenceCost {
  double cost = kInfiniteCost;
  double out_card = 0;
  bool safe = false;
};

/// The cost model: computes the cost of executing a conjunct (one rule
/// body) in a given order under given initial bindings, choosing the
/// cheapest join method per step (the EL label becomes a local decision,
/// exactly as in section 7.1).
class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {})
      : options_(std::move(options)) {}

  const CostModelOptions& options() const { return options_; }

  /// Applies one item to the running state: checks effective computability
  /// (builtins/negation), adds the method-minimal step cost, updates the
  /// intermediate cardinality and the bound variables. On an EC violation
  /// the state becomes unsafe with infinite cost — the paper's
  /// prune-by-infinity treatment of unsafe permutations (section 8.2).
  void ApplyStep(const ConjunctItem& item, StepState* state) const;

  /// Folds ApplyStep over `order`. `initial` carries the head variables
  /// bound by the caller's adornment.
  SequenceCost CostSequence(const std::vector<ConjunctItem>& items,
                            const std::vector<size_t>& order,
                            const BoundVars& initial) const;

 private:
  CostModelOptions options_;
};

}  // namespace ldl

#endif  // LDLOPT_OPTIMIZER_COST_MODEL_H_
