# Empty compiler generated dependencies file for processing_tree_demo.
# This may be replaced when dependencies are built.
