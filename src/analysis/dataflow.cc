#include "analysis/dataflow.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "base/strings.h"

namespace ldl {

const char* DataflowDirectionToString(DataflowDirection direction) {
  switch (direction) {
    case DataflowDirection::kBottomUp:
      return "bottom-up";
    case DataflowDirection::kTopDown:
      return "top-down";
  }
  return "?";
}

std::string DataflowStats::ToString() const {
  return StrCat("dataflow{", visits, " visits, ", rounds, " components, ",
                widenings, " widenings, ",
                converged ? "converged" : "NOT converged", "}");
}

DataflowStats DataflowFramework::Run(DataflowDirection direction,
                                     const TransferFn& transfer,
                                     const WidenFn& widen,
                                     size_t visit_cap) const {
  DataflowStats stats;
  const std::vector<std::vector<PredicateId>>& components =
      graph_.topological_components();

  // Component index per predicate, so the inner worklist can confine
  // rescheduling to the component being processed: cross-component effects
  // are handled by the outer topological order.
  std::unordered_map<PredicateId, size_t, PredicateIdHash> component_of;
  for (size_t c = 0; c < components.size(); ++c) {
    for (const PredicateId& pred : components[c]) component_of[pred] = c;
  }

  for (size_t step = 0; step < components.size(); ++step) {
    const size_t c = direction == DataflowDirection::kBottomUp
                         ? step
                         : components.size() - 1 - step;
    const std::vector<PredicateId>& members = components[c];
    ++stats.rounds;

    std::deque<PredicateId> worklist(members.begin(), members.end());
    std::unordered_set<PredicateId, PredicateIdHash> queued(members.begin(),
                                                            members.end());
    std::unordered_map<PredicateId, size_t, PredicateIdHash> visit_count;
    while (!worklist.empty()) {
      PredicateId pred = worklist.front();
      worklist.pop_front();
      queued.erase(pred);

      size_t& visits = visit_count[pred];
      if (++visits > visit_cap) {
        if (widen) {
          widen(pred);
          ++stats.widenings;
          visits = 0;  // widened value still flows to successors below
        } else {
          stats.converged = false;
          continue;  // abandon: the client sees a sound but unstable value
        }
      } else {
        ++stats.visits;
        if (!transfer(pred)) continue;
      }

      // The value changed (or was widened): reschedule in-component
      // successors. Bottom-up successors are the heads that use `pred`;
      // top-down successors are the predicates `pred`'s rules mention.
      const std::vector<PredicateId>& successors =
          direction == DataflowDirection::kBottomUp
              ? graph_.DependentsOf(pred)
              : graph_.BodyPredicatesOf(pred);
      for (const PredicateId& next : successors) {
        auto it = component_of.find(next);
        if (it == component_of.end() || it->second != c) continue;
        if (queued.insert(next).second) worklist.push_back(next);
      }
    }
  }
  return stats;
}

}  // namespace ldl
