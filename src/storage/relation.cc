#include "storage/relation.h"

#include <cassert>
#include <set>
#include <sstream>

namespace ldl {

std::string TupleToString(const Tuple& t) {
  std::ostringstream os;
  os << '(';
  bool first = true;
  for (const Term& v : t) {
    if (!first) os << ", ";
    first = false;
    os << v;
  }
  os << ')';
  return os.str();
}

size_t ApproxTermBytes(const Term& t) {
  size_t n = sizeof(Term) + t.text().size();
  if (t.IsFunction()) {
    for (const Term& a : t.args()) n += ApproxTermBytes(a);
  }
  return n;
}

size_t ApproxTupleBytes(const Tuple& t) {
  size_t n = sizeof(Tuple);
  for (const Term& v : t) n += ApproxTermBytes(v);
  return n;
}

namespace {

// Per-tuple overhead of the dedup map entry (hash key + one posting id).
constexpr size_t kDedupEntryBytes = sizeof(size_t) + sizeof(uint32_t);

}  // namespace

uint64_t Relation::EstimateBytes() const {
  uint64_t n = 0;
  for (const Tuple& t : tuples_) n += ApproxTupleBytes(t) + kDedupEntryBytes;
  for (const auto& [cols, index] : indexes_) {
    for (const auto& [key, postings] : index.postings) {
      n += ApproxTupleBytes(key) + postings.size() * sizeof(uint32_t);
    }
  }
  return n;
}

void Relation::set_accountant(ResourceAccountant* accountant) {
  if (accountant == accountant_) return;
  // Release the standing charge from the old accountant, then charge a
  // fresh estimate of current contents against the new one (attachment can
  // happen after the relation was populated un-instrumented).
  if (accountant_ != nullptr && charged_bytes_ != 0) {
    accountant_->ReleaseBytes(charged_bytes_);
  }
  accountant_ = accountant;
  charged_bytes_ = 0;
  if (accountant_ != nullptr) {
    charged_bytes_ = EstimateBytes();
    if (charged_bytes_ != 0) accountant_->AddBytes(charged_bytes_);
  }
}

bool Relation::Insert(Tuple t) {
  assert(t.size() == arity_ && "tuple arity mismatch");
  if (t.size() != arity_) return false;
  size_t h = TupleHash{}(t);
  auto& bucket = dedup_[h];
  for (uint32_t id : bucket) {
    if (tuples_[id] == t) return false;
  }
  bucket.push_back(static_cast<uint32_t>(tuples_.size()));
  if (accountant_ != nullptr) {
    ChargeDelta(ApproxTupleBytes(t) + kDedupEntryBytes, 0);
  }
  tuples_.push_back(std::move(t));
  return true;
}

size_t Relation::InsertAll(const Relation& other) {
  size_t added = 0;
  for (const Tuple& t : other.tuples()) {
    if (Insert(t)) ++added;
  }
  return added;
}

size_t Relation::InsertBatch(std::vector<Tuple> batch) {
  size_t added = 0;
  for (Tuple& t : batch) {
    if (Insert(std::move(t))) ++added;
  }
  return added;
}

void Relation::AppendUnchecked(Tuple t, size_t hash) {
  assert(t.size() == arity_ && "tuple arity mismatch");
  assert(!ContainsHashed(t, hash) && "AppendUnchecked requires a new tuple");
  dedup_[hash].push_back(static_cast<uint32_t>(tuples_.size()));
  if (accountant_ != nullptr) {
    ChargeDelta(ApproxTupleBytes(t) + kDedupEntryBytes, 0);
  }
  tuples_.push_back(std::move(t));
}

bool Relation::Contains(const Tuple& t) const {
  return ContainsHashed(t, TupleHash{}(t));
}

bool Relation::ContainsHashed(const Tuple& t, size_t hash) const {
  auto it = dedup_.find(hash);
  if (it == dedup_.end()) return false;
  for (uint32_t id : it->second) {
    if (tuples_[id] == t) return true;
  }
  return false;
}

void Relation::Clear() {
  ChargeDelta(0, charged_bytes_);
  tuples_.clear();
  dedup_.clear();
  indexes_.clear();
}

namespace {
// Shared "no match" posting list. Immutable after thread-safe static init,
// so concurrent FindPostings callers may all point at it.
const std::vector<uint32_t>& EmptyPostings() {
  static const auto* empty = new std::vector<uint32_t>();
  return *empty;
}
}  // namespace

const std::vector<uint32_t>& Relation::Lookup(const std::vector<int>& cols,
                                              const Tuple& key) {
  Index& index = indexes_[cols];
  if (index.built_upto < tuples_.size()) ExtendIndex(cols, &index);
  auto it = index.postings.find(key);
  return it == index.postings.end() ? EmptyPostings() : it->second;
}

void Relation::PrepareIndex(const std::vector<int>& cols) {
  Index& index = indexes_[cols];
  if (index.built_upto < tuples_.size()) ExtendIndex(cols, &index);
}

const std::vector<uint32_t>* Relation::FindPostings(
    const std::vector<int>& cols, const Tuple& key) const {
  auto it = indexes_.find(cols);
  if (it == indexes_.end() || it->second.built_upto < tuples_.size()) {
    return nullptr;  // no current index; caller must scan
  }
  auto pit = it->second.postings.find(key);
  return pit == it->second.postings.end() ? &EmptyPostings() : &pit->second;
}

void Relation::ExtendIndex(const std::vector<int>& cols, Index* index) {
  uint64_t added_bytes = 0;
  for (size_t id = index->built_upto; id < tuples_.size(); ++id) {
    Tuple key;
    key.reserve(cols.size());
    for (int c : cols) key.push_back(tuples_[id][c]);
    if (accountant_ != nullptr) {
      added_bytes += ApproxTupleBytes(key) + sizeof(uint32_t);
    }
    index->postings[std::move(key)].push_back(static_cast<uint32_t>(id));
  }
  index->built_upto = tuples_.size();
  ChargeDelta(added_bytes, 0);
}

size_t Relation::DistinctCount(size_t col) const {
  std::set<Term> values;
  for (const Tuple& t : tuples_) values.insert(t[col]);
  return values.size();
}

std::string Relation::ToString(size_t max_tuples) const {
  std::ostringstream os;
  os << name_ << '/' << arity_ << " [" << size() << " tuples]";
  size_t shown = 0;
  for (const Tuple& t : tuples_) {
    if (shown++ >= max_tuples) {
      os << "\n  ...";
      break;
    }
    os << "\n  " << TupleToString(t);
  }
  return os.str();
}

}  // namespace ldl
