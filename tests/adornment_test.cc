#include "graph/adornment.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "graph/binding.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(AdornmentTest, FromGoalAndToString) {
  Adornment a = Adornment::FromGoal(L("sg(1, Y)"));
  EXPECT_EQ(a.ToString(), "bf");
  EXPECT_TRUE(a.IsBound(0));
  EXPECT_FALSE(a.IsBound(1));
  EXPECT_EQ(a.BoundCount(), 1u);
}

TEST(AdornmentTest, FromStringRoundTrip) {
  auto a = Adornment::FromString("bfb");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "bfb");
  EXPECT_FALSE(Adornment::FromString("bxf").ok());
}

TEST(AdornmentTest, RenamedIdKeepsOriginalWhenAllFree) {
  AdornedPredicate free_ap{{"sg", 2}, Adornment::AllFree(2)};
  EXPECT_EQ(free_ap.RenamedId().name, "sg");
  AdornedPredicate bf{{"sg", 2}, *Adornment::FromString("bf")};
  EXPECT_EQ(bf.RenamedId().name, "sg.bf");
}

TEST(BoundVarsTest, TermBinding) {
  BoundVars bv;
  EXPECT_TRUE(bv.IsTermBound(Term::MakeInt(3)));  // ground is bound
  Term fx = Term::MakeFunction("f", {Term::MakeVariable("X")});
  EXPECT_FALSE(bv.IsTermBound(fx));
  bv.BindTerm(fx);
  EXPECT_TRUE(bv.IsBound("X"));
  EXPECT_TRUE(bv.IsTermBound(fx));
}

TEST(BoundVarsTest, PropagateThroughEq) {
  BoundVars bv;
  bv.Bind("X");
  // Y = X + 1 binds Y once X is bound.
  Literal eq = Literal::MakeBuiltin(
      BuiltinKind::kEq, Term::MakeVariable("Y"),
      Term::MakeFunction("+", {Term::MakeVariable("X"), Term::MakeInt(1)}));
  PropagateBindings(eq, &bv);
  EXPECT_TRUE(bv.IsBound("Y"));
}

TEST(BoundVarsTest, ComparisonPropagatesNothing) {
  BoundVars bv;
  bv.Bind("X");
  Literal lt = Literal::MakeBuiltin(BuiltinKind::kLt, Term::MakeVariable("X"),
                                    Term::MakeVariable("Y"));
  PropagateBindings(lt, &bv);
  EXPECT_FALSE(bv.IsBound("Y"));
}

// The paper's section 7.3 example: sg(X,Y) <- up(X,X1), sg(Y1,X1), dn(Y1,Y).
// For the query sg.bf with left-to-right SIP, the recursive call is reached
// with its *second* argument bound: sg.fb; and sg.fb's own rule (same SIP)
// re-derives sg.fb. The adorned program stabilizes with {sg.bf, sg.fb}.
TEST(AdornProgramTest, PaperSection73Example) {
  Program p = P(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
  )");
  auto adorned = AdornProgramForQuery(p, L("sg(1, Y)"), SipStrategy());
  ASSERT_TRUE(adorned.ok()) << adorned.status();
  // Predicates generated: sg.bf (query) and sg.fb (recursive call).
  ASSERT_EQ(adorned->predicates.size(), 2u);
  EXPECT_EQ(adorned->predicates[0].ToString(), "sg.bf/2");
  EXPECT_EQ(adorned->predicates[1].ToString(), "sg.fb/2");
  // 2 rules per adorned predicate.
  EXPECT_EQ(adorned->rules.size(), 4u);
  // The recursive rule for sg.bf references sg.fb.
  bool found = false;
  for (const AdornedRule& ar : adorned->rules) {
    if (ar.head_adornment.ToString() == "bf" && ar.renamed.body().size() == 3) {
      EXPECT_EQ(ar.renamed.body()[1].predicate_name(), "sg.fb");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AdornProgramTest, PermutedSipChangesAdornment) {
  Program p = P(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )");
  // Left-to-right: recursive call sg(X1, Y1) seen with X1 bound -> sg.bf.
  auto lr = AdornProgramForQuery(p, L("sg(1, Y)"), SipStrategy());
  ASSERT_TRUE(lr.ok());
  ASSERT_EQ(lr->predicates.size(), 1u);  // sg.bf only: stable adornment
  EXPECT_EQ(lr->predicates[0].ToString(), "sg.bf/2");

  // Perverse SIP: visit the recursive call first -> it is reached with
  // nothing bound: sg.ff appears.
  SipStrategy sips;
  sips.SetOrder(1, {1, 0, 2});
  auto bad = AdornProgramForQuery(p, L("sg(1, Y)"), sips);
  ASSERT_TRUE(bad.ok());
  bool has_ff = false;
  for (const auto& ap : bad->predicates) {
    if (ap.adornment.AllArgsFree()) has_ff = true;
  }
  EXPECT_TRUE(has_ff);
}

TEST(AdornProgramTest, BuiltinEqExtendsBindingsDuringAdornment) {
  Program p = P(R"(
    q(X, Y) <- r(X, Z), Y1 = Z + 1, s(Y1, Y).
    t(A) <- q(1, A).
  )");
  auto adorned = AdornProgramForQuery(p, L("t(A)"), SipStrategy());
  ASSERT_TRUE(adorned.ok()) << adorned.status();
  // q is called as q.bf; inside its rule s is reached with first arg bound
  // because Y1 = Z + 1 propagates Z's binding.
  bool checked = false;
  for (const AdornedRule& ar : adorned->rules) {
    if (ar.head_original.name != "q") continue;
    ASSERT_EQ(ar.body_adornments.size(), 3u);
    EXPECT_EQ(ar.body_adornments[2].ToString(), "bf");
    checked = true;
  }
  EXPECT_TRUE(checked);
}

TEST(AdornProgramTest, NonDerivedQueryRejected) {
  Program p = P("a(X) <- b(X).");
  EXPECT_FALSE(AdornProgramForQuery(p, L("b(1)"), SipStrategy()).ok());
}

TEST(AdornProgramTest, AllFreeQueryKeepsNames) {
  Program p = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )");
  auto adorned = AdornProgramForQuery(p, L("anc(X, Y)"), SipStrategy());
  ASSERT_TRUE(adorned.ok());
  // With an all-free query and left-to-right SIP, the recursive call gets
  // adornment bf (Z bound by par) — so sg-style replication still happens.
  ASSERT_GE(adorned->predicates.size(), 2u);
  EXPECT_EQ(adorned->predicates[0].RenamedId().name, "anc");
}

}  // namespace
}  // namespace ldl
