#ifndef LDLOPT_STORAGE_RELATION_H_
#define LDLOPT_STORAGE_RELATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "obs/resource.h"
#include "storage/tuple.h"

namespace ldl {

/// A set-semantics relation: duplicate-free bag of ground tuples with
/// lazily built, incrementally maintained hash indexes on column subsets.
///
/// Indexes survive inserts (they are extended on next access), which matters
/// because fixpoint evaluation keeps inserting into the relations it reads.
///
/// Relations can carry an optional (non-owning) ResourceAccountant: tuple
/// and index storage is charged as it grows and released when the relation
/// clears or dies, which is how per-query peak-bytes accounting reaches
/// scratch databases and memo tables. The exact amount charged so far is
/// tracked internally so release always balances charge even if the
/// estimation formula evolves.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  ~Relation() { ChargeDelta(0, charged_bytes_); }

  Relation(const Relation& other)
      : name_(other.name_),
        arity_(other.arity_),
        tuples_(other.tuples_),
        dedup_(other.dedup_),
        indexes_(other.indexes_),
        accountant_(other.accountant_) {
    charged_bytes_ = 0;
    ChargeDelta(other.charged_bytes_, 0);
  }
  Relation& operator=(const Relation& other) {
    if (this == &other) return *this;
    ChargeDelta(0, charged_bytes_);
    name_ = other.name_;
    arity_ = other.arity_;
    tuples_ = other.tuples_;
    dedup_ = other.dedup_;
    indexes_ = other.indexes_;
    accountant_ = other.accountant_;
    charged_bytes_ = 0;
    ChargeDelta(other.charged_bytes_, 0);
    return *this;
  }
  Relation(Relation&& other) noexcept
      : name_(std::move(other.name_)),
        arity_(other.arity_),
        tuples_(std::move(other.tuples_)),
        dedup_(std::move(other.dedup_)),
        indexes_(std::move(other.indexes_)),
        accountant_(other.accountant_),
        charged_bytes_(other.charged_bytes_) {
    // The charge moves with the data: the source no longer owes anything.
    other.charged_bytes_ = 0;
    other.tuples_.clear();
    other.dedup_.clear();
    other.indexes_.clear();
  }
  Relation& operator=(Relation&& other) noexcept {
    if (this == &other) return *this;
    ChargeDelta(0, charged_bytes_);
    name_ = std::move(other.name_);
    arity_ = other.arity_;
    tuples_ = std::move(other.tuples_);
    dedup_ = std::move(other.dedup_);
    indexes_ = std::move(other.indexes_);
    accountant_ = other.accountant_;
    charged_bytes_ = other.charged_bytes_;
    other.charged_bytes_ = 0;
    other.tuples_.clear();
    other.dedup_.clear();
    other.indexes_.clear();
    return *this;
  }

  /// Attaches (or detaches, with nullptr) a resource accountant. Current
  /// contents are re-charged against the new accountant and released from
  /// the old one, so attachment order doesn't matter.
  void set_accountant(ResourceAccountant* accountant);
  ResourceAccountant* accountant() const { return accountant_; }

  /// Estimated bytes currently charged for tuple + index storage.
  uint64_t charged_bytes() const { return charged_bytes_; }

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  /// Inserts `t`; returns true iff the tuple was new. CHECK-fails on arity
  /// mismatch in debug builds; silently rejects in release.
  bool Insert(Tuple t);

  /// Inserts every tuple of `other` (arity must match); returns the number
  /// of new tuples.
  size_t InsertAll(const Relation& other);

  /// Batch insert: one call per vector-of-tuples instead of one per tuple.
  /// Returns the number of new tuples.
  size_t InsertBatch(std::vector<Tuple> batch);

  /// Appends a tuple the caller guarantees is NOT already present, with its
  /// precomputed TupleHash. The fast path of the parallel engine's
  /// partition/merge operators: the dedup probe was already done (by a
  /// sharded merge or because the source relation is duplicate-free), so
  /// only the bucket append remains.
  void AppendUnchecked(Tuple t, size_t hash);

  bool Contains(const Tuple& t) const;
  /// Contains with a precomputed TupleHash (batch callers hash once and
  /// reuse it for partitioning, shard routing, and membership).
  bool ContainsHashed(const Tuple& t, size_t hash) const;

  void Clear();

  /// Posting list of tuple ids whose values at `cols` equal `key` (same
  /// order). `cols` must be strictly increasing. Builds/extends the index
  /// on demand.
  const std::vector<uint32_t>& Lookup(const std::vector<int>& cols,
                                      const Tuple& key);

  /// Builds (or catches up) the index on `cols` so that subsequent
  /// FindPostings calls for it succeed. The parallel engine calls this from
  /// the coordinating thread before a round fans out, so workers never
  /// mutate shared index state.
  void PrepareIndex(const std::vector<int>& cols);

  /// Const lookup for concurrent readers: returns the posting list when an
  /// index on `cols` exists AND covers every stored tuple, a pointer to an
  /// empty list when the index is current but has no match, and nullptr
  /// when there is no current index (callers fall back to a scan). Never
  /// builds or extends indexes, so any number of threads may call it
  /// concurrently as long as no thread mutates the relation.
  const std::vector<uint32_t>* FindPostings(const std::vector<int>& cols,
                                            const Tuple& key) const;

  /// Number of distinct values in column `col` (over current contents).
  size_t DistinctCount(size_t col) const;

  std::string ToString(size_t max_tuples = 20) const;

 private:
  struct Index {
    // Key: projected column values. Value: ids of matching tuples.
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> postings;
    size_t built_upto = 0;  // tuples_[0, built_upto) are indexed
  };

  void ExtendIndex(const std::vector<int>& cols, Index* index);

  /// Fresh estimate of tuple + dedup + index storage from current contents.
  uint64_t EstimateBytes() const;

  /// Adjusts charged_bytes_ and forwards the delta to the accountant.
  /// No-op without an accountant: unattached relations track nothing, so
  /// the common (un-instrumented) path costs one branch.
  void ChargeDelta(uint64_t add, uint64_t release) {
    if (accountant_ == nullptr) return;
    charged_bytes_ += add;
    charged_bytes_ = charged_bytes_ >= release ? charged_bytes_ - release : 0;
    if (add != 0) accountant_->AddBytes(add);
    if (release != 0) accountant_->ReleaseBytes(release);
  }

  std::string name_;
  size_t arity_ = 0;
  std::vector<Tuple> tuples_;
  // Dedup structure: hash -> tuple ids with that hash.
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  // Secondary indexes keyed by the (sorted) column list.
  std::map<std::vector<int>, Index> indexes_;
  ResourceAccountant* accountant_ = nullptr;
  uint64_t charged_bytes_ = 0;
};

}  // namespace ldl

#endif  // LDLOPT_STORAGE_RELATION_H_
