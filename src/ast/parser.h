#ifndef LDLOPT_AST_PARSER_H_
#define LDLOPT_AST_PARSER_H_

#include <string>
#include <string_view>

#include "ast/program.h"
#include "base/status.h"

namespace ldl {

/// Parses LDL program text into a Program.
///
/// Syntax (Prolog-flavoured, matching the paper's examples):
///
///   % line comment
///   up(1, 2).                                  // ground fact
///   sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
///   rich(X)  <- owns(X, P), V = P * 2, V > 100.
///   bachelor(X) <- person(X), not married(X).
///   path(X, Y, [X | T]) <- edge(X, Z), path(Z, Y, T).
///   sg(1, Y)?                                  // query form
///
/// `:-` is accepted as a synonym for `<-`. Variables start with an upper
/// case letter or `_`; symbols and predicate names with a lower case letter.
/// Comparisons (`= != < <= > >=`) and arithmetic (`+ - * / mod`, parens)
/// form builtin literals.
Result<Program> ParseProgram(std::string_view text);

/// Parses a single literal such as `sg(1, Y)` (no trailing `.`/`?`).
Result<Literal> ParseLiteral(std::string_view text);

/// Parses a single term such as `f(a, [1, 2], X)`.
Result<Term> ParseTerm(std::string_view text);

}  // namespace ldl

#endif  // LDLOPT_AST_PARSER_H_
