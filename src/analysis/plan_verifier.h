#ifndef LDLOPT_ANALYSIS_PLAN_VERIFIER_H_
#define LDLOPT_ANALYSIS_PLAN_VERIFIER_H_

#include "analysis/diagnostic.h"
#include "ast/program.h"
#include "base/status.h"
#include "graph/dependency_graph.h"
#include "plan/processing_tree.h"

namespace ldl {

/// Knobs for plan verification. The label allowances mirror
/// OptimizerOptions::enable_magic / enable_counting: a plan labeled with a
/// method the optimizer was not allowed to choose is a bug.
struct PlanVerifierOptions {
  bool allow_magic = true;
  bool allow_counting = true;
  /// Run the effective-computability check (CheckRuleEc) on every AND node
  /// that carries an incoming adornment. Off for hand-built trees that were
  /// never meant to execute.
  bool check_ec = true;
};

/// Structural invariant checker for processing trees (paper §4/§5). The
/// optimizer's search only rewrites plans through equivalence-preserving
/// transformations, so every tree it emits must satisfy:
///
///   V001 error  coverage: an AND node's children are exactly its rule's
///               body literals under a valid body_order permutation; an OR
///               node's children are exactly the rules defining its
///               predicate; a CC node carries one valid c-permutation per
///               clique rule
///   V002 error  binding propagation: under an annotated AND node, child
///               adornments equal the left-to-right sideways-information-
///               passing walk of the rule body in execution order; OR nodes
///               pass their binding through to each alternative; a
///               pipelined OR under an all-free binding is inconsistent
///               with its marking
///   V003 error  effective computability: an annotated AND node's chosen
///               body order is EC under its incoming adornment (CheckRuleEc,
///               paper §8.1)
///   V004 error  method labels: every node's method is available for its
///               kind (EL label sets of §5); CC methods are restricted to
///               {naive, seminaive, magic, counting} and to the methods the
///               options allow
///   V005 error  goal/schema consistency: leaves scan base relations only,
///               builtin nodes hold builtin goals, OR/CC goals are derived
///               (and recursive iff CC), child goals match the parent's
///               expectation, CC clique data matches the program's
///               dependency graph
///   V006 error  shape: adornments are empty or goal-arity-sized;
///               projections are sorted, duplicate-free column sets in range
///
/// The verifier checks the non-FU execution space (the space the paper's
/// optimizer searches): trees produced by TransformFlatten inline rule
/// bodies and intentionally fail the V001 coverage check.
class PlanVerifier {
 public:
  /// `program` must be the program the tree was built from, and must
  /// outlive the verifier.
  explicit PlanVerifier(const Program& program,
                        PlanVerifierOptions options = {});

  /// Walks the tree, appending violations to `sink`. Returns OK iff no
  /// errors were reported.
  Status Verify(const PlanNode& root, DiagnosticSink* sink) const;

  /// Convenience: verify without keeping the diagnostics; the status
  /// message aggregates every error.
  Status Verify(const PlanNode& root) const;

 private:
  void VerifyNode(const PlanNode& node, DiagnosticSink* sink) const;
  void VerifyShape(const PlanNode& node, DiagnosticSink* sink) const;
  void VerifyMethod(const PlanNode& node, DiagnosticSink* sink) const;
  void VerifyScan(const PlanNode& node, DiagnosticSink* sink) const;
  void VerifyBuiltin(const PlanNode& node, DiagnosticSink* sink) const;
  void VerifyAnd(const PlanNode& node, DiagnosticSink* sink) const;
  void VerifyOr(const PlanNode& node, DiagnosticSink* sink) const;
  void VerifyCc(const PlanNode& node, DiagnosticSink* sink) const;

  const Program& program_;
  PlanVerifierOptions options_;
  DependencyGraph graph_;
};

}  // namespace ldl

#endif  // LDLOPT_ANALYSIS_PLAN_VERIFIER_H_
