#ifndef LDLOPT_LDL_LDL_H_
#define LDLOPT_LDL_LDL_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ast/parser.h"
#include "ast/program.h"
#include "base/status.h"
#include "engine/query_eval.h"
#include "obs/calibration.h"
#include "obs/query_log.h"
#include "obs/resource.h"
#include "optimizer/optimizer.h"
#include "safety/safety.h"
#include "storage/database.h"
#include "storage/statistics.h"

namespace ldl {

class ProgramAnalysis;
class StatisticsCatalog;
class DriftDetector;

/// Answers plus the plan that produced them and the work it took.
struct QueryAnswer {
  Relation answers{"answers", 0};
  QueryPlan plan;
  FixpointStats exec_stats;
  std::string note;

  // Lifecycle profile, populated by LdlSystem::Query. The resource meters
  // are zero when the query ran unmetered (no limits, no query log, no
  // session accountant installed in options.trace).
  uint64_t peak_bytes = 0;
  uint64_t tuples_examined = 0;
  uint64_t tuples_derived = 0;
  uint64_t fixpoint_rounds = 0;
  uint64_t cancel_checks = 0;
  double optimize_ms = 0;
  double execute_ms = 0;
};

/// The top-level LDL system facade: a knowledge base (rule base + fact
/// base) with a cost-based, safety-checking query optimizer in front of the
/// evaluation engine. This is the declarative promise of the paper's
/// introduction: "the user need only supply a correct query, and the system
/// is expected to devise an efficient execution strategy for it."
///
/// Typical use:
///
///   LdlSystem sys;
///   sys.LoadProgram(R"(
///     anc(X, Y) <- par(X, Y).
///     anc(X, Y) <- par(X, Z), anc(Z, Y).
///     par(bart, homer).  par(homer, abe).
///   )");
///   auto answer = sys.Query("anc(bart, Y)");
///   // answer->plan chose magic sets and a safe, cheap literal order.
class LdlSystem {
 public:
  explicit LdlSystem(OptimizerOptions options = {});

  /// Replaces the optimizer options for subsequent Plan/Query/Explain
  /// calls. The loaded program, fact base, and statistics are untouched, so
  /// one system can be queried under many configurations without
  /// re-parsing — the differential-testing oracle (src/testing/difftest.h)
  /// sweeps the strategy × method matrix this way.
  void set_options(OptimizerOptions options) { options_ = std::move(options); }
  const OptimizerOptions& options() const { return options_; }

  /// Parses LDL text; rules extend the rule base, ground facts the fact
  /// base. Queries embedded in the text are remembered (pending_queries()).
  Status LoadProgram(std::string_view text);

  /// Adds a single clause (rule or fact).
  Status AddClause(std::string_view text);

  const Program& program() const { return program_; }
  Database* database() { return &db_; }
  const std::vector<QueryForm>& pending_queries() const {
    return program_.queries();
  }

  /// Recomputes catalog statistics from the current fact base (bumping the
  /// statistics epoch that query-log records carry). Called automatically
  /// on the first query after loading; call explicitly after bulk updates
  /// through database().
  void RefreshStatistics();
  const Statistics& statistics();

  /// Installs a structured query log: every Query() call appends one
  /// QueryLogRecord (on success AND on typed failure). Also engages
  /// per-query resource metering so records carry real resource profiles.
  /// Pass nullptr to detach. The log must outlive the system or be detached
  /// first.
  void set_query_log(QueryLog* log) { query_log_ = log; }
  QueryLog* query_log() const { return query_log_; }

  /// Attaches the feedback loop (obs/feedback.h). With a catalog attached,
  /// every successful Query() folds its measured cardinalities in — the
  /// goal's answer count under its binding, and for full bottom-up
  /// evaluations every derived predicate's fixpoint size — and
  /// AnalyzeCalibrated contributes its full per-(predicate, adornment)
  /// harvest. With a detector attached too, each harvest is followed by a
  /// drift check: a hot predicate whose measured cardinality diverged from
  /// the current statistics past the q-error threshold bumps the statistics
  /// epoch and schedules a re-collection before the next query. When
  /// options().feedback is also set, planning consults the catalog as a
  /// blended overlay (falling back to estimates for unseen predicates).
  /// Both pointers are non-owning and must outlive the system or be
  /// detached (nullptr) first.
  void set_feedback(StatisticsCatalog* catalog,
                    DriftDetector* detector = nullptr) {
    feedback_catalog_ = catalog;
    drift_detector_ = detector;
  }
  StatisticsCatalog* feedback_catalog() const { return feedback_catalog_; }
  DriftDetector* drift_detector() const { return drift_detector_; }

  /// Optimizes the query form only (no execution).
  Result<QueryPlan> Plan(std::string_view goal_text);
  Result<QueryPlan> Plan(const Literal& goal);

  /// Optimizes and executes. Unsafe queries fail with kUnsafe and a
  /// diagnostic identifying the offending rule — the compile-time
  /// pinpointing the paper advocates over run-time freezing (section 8.3).
  Result<QueryAnswer> Query(std::string_view goal_text);
  Result<QueryAnswer> Query(const Literal& goal);

  /// Human-readable optimized plan.
  Result<std::string> Explain(std::string_view goal_text);

  /// EXPLAIN OPTIMIZE: the plan summary followed by the search that chose
  /// it — per-scope candidate orders with dispositions (kept / dominated /
  /// pruned-bound / pruned-unsafe / memo-hit) and the final
  /// (predicate, adornment) memo lattice with the winning subplans marked
  /// (plan/explain.h). Uses the SearchTracer in options.trace.search when
  /// set (recording into it as-is), else a local one.
  Result<std::string> ExplainOptimize(std::string_view goal_text);

  /// The annotated processing tree (paper section 4 view): AND/OR/CC nodes
  /// with materialize/pipeline flags, method labels, chosen orders, and
  /// cost/cardinality estimates.
  Result<std::string> ExplainTree(std::string_view goal_text);

  /// EXPLAIN ANALYZE: annotates the processing tree with the optimizer's
  /// estimates, executes it through the TreeInterpreter, and renders both
  /// side by side — estimated cost/rows next to measured rows, tuples
  /// examined and wall time per node (plan/explain.h), followed by the
  /// CALIBRATION and REGRET sections (obs/calibration.h). Unsafe plans are
  /// rejected with kUnsafe before execution. Spans and metrics flow into
  /// the TraceContext set in OptimizerOptions, if any.
  Result<std::string> ExplainAnalyze(std::string_view goal_text);

  /// ExplainAnalyze plus the structured calibration artifact: the rendered
  /// text and the CalibrationReport (per-node q-errors, aggregates, regret)
  /// for programmatic consumers (ldl_profile --calibration-json, benches).
  struct AnalyzeResult {
    std::string text;
    CalibrationReport report;
  };
  Result<AnalyzeResult> AnalyzeCalibrated(std::string_view goal_text);

  /// Safety analysis without optimization.
  SafetyReport CheckSafety(std::string_view goal_text);

  /// Baseline evaluation with a fixed method and textual rule order,
  /// bypassing the optimizer (for comparisons).
  Result<QueryResult> EvaluateUnoptimized(const Literal& goal,
                                          RecursionMethod method);

 private:
  Status Ingest(Program parsed);

  /// The program the optimizer and engine actually run: the rule base,
  /// optionally rewritten by the [RBK 87] projection-pushing pass for this
  /// goal (options_.push_projections).
  Result<Program> EffectiveProgram(const Literal& goal) const;

  /// Everything one Plan/Query/Explain call needs: the effective program
  /// (projection-pushed, optionally dead-rule-pruned), the semantic
  /// analysis of that program for this goal when static analysis is
  /// enabled, and a per-call copy of the optimizer options whose `analysis`
  /// pointer refers into this context. The context must outlive the
  /// Optimizer built from it — keep it on the caller's stack.
  struct GoalContext {
    Program working;
    std::unique_ptr<ProgramAnalysis> analysis;
    /// Feedback overlay (StatisticsCatalog::BlendedOverlay) that
    /// options.measured points into when feedback planning is on — heap
    /// storage so the pointer survives the context being moved.
    std::unique_ptr<MeasuredStatistics> overlay;
    OptimizerOptions options;
  };
  Result<GoalContext> PrepareGoal(const Literal& goal);

  /// Post-execution half of the feedback loop: folds the measurements into
  /// the attached catalog, runs the drift check, and mirrors the loop's
  /// gauges (feedback.*, stats_epoch). A tripped drift marks the statistics
  /// dirty so the next query re-collects under the bumped epoch.
  void ObserveFeedback(const Literal& goal, size_t answer_rows,
                       const std::vector<std::pair<PredicateId, uint64_t>>&
                           derived_sizes);

  /// Drift check + gauge mirror shared by Query and AnalyzeCalibrated.
  void FeedbackDriftCheck();

  OptimizerOptions options_;
  Program program_;
  Database db_;
  Statistics stats_;
  bool stats_dirty_ = true;
  QueryLog* query_log_ = nullptr;
  StatisticsCatalog* feedback_catalog_ = nullptr;
  DriftDetector* drift_detector_ = nullptr;
};

}  // namespace ldl

#endif  // LDLOPT_LDL_LDL_H_
