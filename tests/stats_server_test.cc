// Integration tests for the embedded stats endpoint (src/net/stats_server.h):
// an ephemeral-port server scraped over a real socket while queries execute
// on another thread (monotone counters across scrapes; TSan CI runs this),
// the three routes, 404 handling, and graceful Stop.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include "ast/parser.h"
#include "ldl/ldl.h"
#include "net/stats_server.h"
#include "obs/feedback.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "obs/timeseries.h"

namespace ldl {
namespace {

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the full
/// response (status line + headers + body), or "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

TEST(StatsServerTest, ServesHealthMetricsAndStatusz) {
  MetricsRegistry metrics;
  metrics.counter("engine.tuples_examined")->Increment(12);
  ProcessMetricsSource process(&metrics);
  TimeSeriesOptions ts;
  ts.metrics = &metrics;
  TimeSeriesSampler sampler(ts);
  sampler.SampleOnce();

  StatsServerOptions options;
  options.port = 0;  // ephemeral: tests must not collide on a fixed port
  options.metrics = &metrics;
  options.process = &process;
  options.sampler = &sampler;
  StatsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(Body(health), "ok\n");

  const std::string scrape = HttpGet(server.port(), "/metrics");
  EXPECT_NE(scrape.find("200 OK"), std::string::npos);
  EXPECT_NE(scrape.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = Body(scrape);
  EXPECT_NE(body.find("# TYPE ldlopt_engine_tuples_examined counter"),
            std::string::npos);
  EXPECT_NE(body.find("ldlopt_engine_tuples_examined 12"),
            std::string::npos);
  EXPECT_NE(body.find("ldlopt_build_info{compiler="), std::string::npos);
  EXPECT_NE(body.find("ldlopt_process_uptime_seconds"), std::string::npos);

  const std::string statusz = Body(HttpGet(server.port(), "/statusz"));
  EXPECT_NE(statusz.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(statusz.find("\"build\":{"), std::string::npos);
  EXPECT_NE(statusz.find("\"timeseries\":{"), std::string::npos);
  EXPECT_NE(statusz.find("engine.tuples_examined"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  EXPECT_GE(server.requests_served(), 4u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(StatsServerTest, ScrapeCounterAndRefreshHook) {
  MetricsRegistry metrics;
  std::atomic<int> refreshes{0};
  StatsServerOptions options;
  options.port = 0;
  options.metrics = &metrics;
  options.refresh = [&refreshes] { refreshes.fetch_add(1); };
  StatsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  HttpGet(server.port(), "/metrics");
  HttpGet(server.port(), "/healthz");  // not a scrape, no refresh
  HttpGet(server.port(), "/metrics");
  server.Stop();
  EXPECT_EQ(refreshes.load(), 2);
  EXPECT_EQ(metrics.counter_value("statsserver.scrapes"), 2u);
}

// Scrapes race real query execution: counters must be monotone between two
// scrapes taken while another thread drives the engine. This is the test
// the TSan job leans on for the whole telemetry path.
TEST(StatsServerTest, ConcurrentScrapesSeeMonotoneCounters) {
  const char* kProgram =
      "parent(a, b). parent(b, c). parent(c, d). parent(d, e).\n"
      "anc(X, Y) <- parent(X, Y).\n"
      "anc(X, Y) <- parent(X, Z), anc(Z, Y).\n";
  MetricsRegistry metrics;
  OptimizerOptions opt;
  opt.trace.metrics = &metrics;
  LdlSystem sys(opt);
  ASSERT_TRUE(sys.LoadProgram(kProgram).ok());

  TimeSeriesOptions ts;
  ts.metrics = &metrics;
  ts.period = std::chrono::milliseconds(1);
  TimeSeriesSampler sampler(ts);
  sampler.Start();

  StatsServerOptions options;
  options.port = 0;
  options.metrics = &metrics;
  options.sampler = &sampler;
  StatsServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::thread worker([&] {
    for (int i = 0; i < 50; ++i) {
      auto answer = sys.Query("anc(a, Y)");
      EXPECT_TRUE(answer.ok());
    }
    done.store(true);
  });

  auto extract = [](const std::string& body) -> long {
    const std::string key = "\nldlopt_engine_tuples_examined ";
    const size_t pos = body.find(key);
    if (pos == std::string::npos) return -1;
    return std::strtol(body.c_str() + pos + key.size(), nullptr, 10);
  };
  long last = -1;
  while (!done.load()) {
    const long now = extract(Body(HttpGet(server.port(), "/metrics")));
    ASSERT_GE(now, last) << "scraped counter went backwards";
    last = now;
  }
  worker.join();
  const long final_value =
      extract(Body(HttpGet(server.port(), "/metrics")));
  EXPECT_GE(final_value, last);
  EXPECT_GT(final_value, 0);

  server.Stop();
  sampler.Stop();
}

TEST(StatsServerTest, StopIsIdempotentAndRestartable) {
  MetricsRegistry metrics;
  StatsServerOptions options;
  options.port = 0;
  options.metrics = &metrics;
  {
    StatsServer server(options);
    server.Stop();  // safe without Start
    ASSERT_TRUE(server.Start().ok());
    const int port = server.port();
    EXPECT_NE(HttpGet(port, "/healthz").find("200"), std::string::npos);
    server.Stop();
    server.Stop();
    // The port is released: a second server can bind it again.
    StatsServerOptions again = options;
    again.port = port;
    StatsServer second(again);
    ASSERT_TRUE(second.Start().ok());
    EXPECT_EQ(second.port(), port);
    second.Stop();
  }  // destructor Stop on an already-stopped server is a no-op
}

// The feedback surfaces: /stats renders the catalog + drift view, /statusz
// gains the stats epoch and a feedback summary block.
TEST(StatsServerTest, ServesFeedbackCatalogOnStatsRoute) {
  Statistics stats;
  stats.Set(ParseLiteral("par(X, Y)")->predicate(),
            RelationStats{10, {10, 10}});
  stats.set_epoch(1);
  StatisticsCatalog catalog;
  catalog.Observe(ParseLiteral("par(X, Y)")->predicate(),
                  Adornment::AllFree(2), 1000, 1);
  DriftDetector detector;
  detector.Check(catalog, &stats, nullptr);

  StatsServerOptions options;
  options.port = 0;
  options.feedback = &catalog;
  options.drift = &detector;
  options.statistics = &stats;
  StatsServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string response = HttpGet(server.port(), "/stats");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"stats_epoch\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"drift_events\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"predicate\":\"par\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"drift_history\":["), std::string::npos) << body;

  const std::string statusz = Body(HttpGet(server.port(), "/statusz"));
  EXPECT_NE(statusz.find("\"stats_epoch\":2"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("\"feedback\":{\"drift_events\":1"),
            std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("\"catalog_entries\":1"), std::string::npos)
      << statusz;
  server.Stop();
}

// Without the feedback pointers the new route still answers (empty JSON
// object) rather than 404ing: dashboards can probe unconditionally.
TEST(StatsServerTest, StatsRouteDegradesGracefullyWithoutFeedback) {
  StatsServerOptions options;
  options.port = 0;
  StatsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::string response = HttpGet(server.port(), "/stats");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(Body(response), "{}");
  server.Stop();
}

}  // namespace
}  // namespace ldl
