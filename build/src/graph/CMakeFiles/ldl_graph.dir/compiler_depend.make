# Empty compiler generated dependencies file for ldl_graph.
# This may be replaced when dependencies are built.
