#include "graph/dependency_graph.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(DepGraphTest, DirectRecursionFormsClique) {
  Program p = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_TRUE(g.IsRecursive({"anc", 2}));
  ASSERT_EQ(g.cliques().size(), 1u);
  EXPECT_EQ(g.cliques()[0].recursive_rules.size(), 1u);
  EXPECT_EQ(g.cliques()[0].exit_rules.size(), 1u);
}

TEST(DepGraphTest, MutualRecursionOneClique) {
  Program p = P(R"(
    even(X) <- zero(X).
    even(X) <- succ(Y, X), odd(Y).
    odd(X) <- succ(Y, X), even(Y).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  ASSERT_EQ(g.cliques().size(), 1u);
  EXPECT_EQ(g.cliques()[0].predicates.size(), 2u);
  EXPECT_EQ(g.CliqueIndex({"even", 1}), g.CliqueIndex({"odd", 1}));
}

TEST(DepGraphTest, NonRecursiveHasNoCliques) {
  Program p = P(R"(
    grandparent(X, Z) <- par(X, Y), par(Y, Z).
    cousin(X, Y) <- grandparent(X, G), grandparent(Y, G).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_TRUE(g.cliques().empty());
  EXPECT_FALSE(g.IsRecursive({"grandparent", 2}));
}

TEST(DepGraphTest, TopologicalOrderIsBottomUp) {
  Program p = P(R"(
    a(X) <- base(X).
    b(X) <- a(X).
    c(X) <- b(X), a(X).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  const auto& order = g.topological_order();
  auto pos = [&order](const char* name) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i].name == name) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos("a"), pos("b"));
  EXPECT_LT(pos("b"), pos("c"));
  EXPECT_LT(pos("a"), pos("c"));
}

TEST(DepGraphTest, SeparateCliquesFollowOrder) {
  // tc2 is defined on top of tc1's results: tc1's clique precedes tc2's.
  Program p = P(R"(
    tc1(X, Y) <- e1(X, Y).
    tc1(X, Y) <- e1(X, Z), tc1(Z, Y).
    tc2(X, Y) <- tc1(X, Y).
    tc2(X, Y) <- e2(X, Z), tc2(Z, Y).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  ASSERT_EQ(g.cliques().size(), 2u);
  const auto& order = g.topological_order();
  size_t p1 = 0, p2 = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i].name == "tc1") p1 = i;
    if (order[i].name == "tc2") p2 = i;
  }
  EXPECT_LT(p1, p2);
  EXPECT_TRUE(g.DependsOn({"tc2", 2}, {"tc1", 2}));
  EXPECT_FALSE(g.DependsOn({"tc1", 2}, {"tc2", 2}));
}

TEST(DepGraphTest, StratificationAcceptsLayeredNegation) {
  Program p = P(R"(
    reach(X) <- source(X).
    reach(X) <- reach(Y), edge(Y, X).
    unreachable(X) <- node(X), not reach(X).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_TRUE(g.CheckStratified().ok());
  EXPECT_LT(g.Stratum({"reach", 1}), g.Stratum({"unreachable", 1}));
}

TEST(DepGraphTest, StratificationRejectsNegationInClique) {
  Program p = P(R"(
    win(X) <- move(X, Y), not win(Y).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_FALSE(g.CheckStratified().ok());
}

TEST(DepGraphTest, SelfLoopOnlyThroughBuiltinIsNotRecursive) {
  Program p = P("p(X) <- q(X), X > 0.");
  DependencyGraph g = DependencyGraph::Build(p);
  EXPECT_FALSE(g.IsRecursive({"p", 1}));
}

TEST(DepGraphTest, CliqueRulePartition) {
  Program p = P(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )");
  DependencyGraph g = DependencyGraph::Build(p);
  ASSERT_EQ(g.cliques().size(), 1u);
  const RecursiveClique& c = g.cliques()[0];
  ASSERT_EQ(c.exit_rules.size(), 1u);
  ASSERT_EQ(c.recursive_rules.size(), 1u);
  EXPECT_EQ(p.rules()[c.exit_rules[0]].body().size(), 1u);
  EXPECT_EQ(p.rules()[c.recursive_rules[0]].body().size(), 3u);
}

}  // namespace
}  // namespace ldl
