file(REMOVE_RECURSE
  "CMakeFiles/ldl_base.dir/status.cc.o"
  "CMakeFiles/ldl_base.dir/status.cc.o.d"
  "CMakeFiles/ldl_base.dir/strings.cc.o"
  "CMakeFiles/ldl_base.dir/strings.cc.o.d"
  "libldl_base.a"
  "libldl_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
