#include "plan/interpreter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "engine/query_eval.h"
#include "plan/transform.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

std::vector<Tuple> Sorted(const Relation& r) {
  std::vector<Tuple> out = r.tuples();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(InterpreterTest, NonRecursiveJoin) {
  Program p = P("gp(X, Z) <- par(X, Y), par(Y, Z).");
  Database db;
  testing::MakeTreeParentData(2, 3, &db);
  auto tree = BuildProcessingTree(p, L("gp(X, Z)"));
  ASSERT_TRUE(tree.ok());
  TreeInterpreter interp(p, &db);
  auto result = interp.Execute(**tree, L("gp(X, Z)"));
  ASSERT_TRUE(result.ok()) << result.status();
  // Nodes at depth >= 2 have a grandparent: 4 + 8 = 12 in a binary tree of
  // depth 3.
  EXPECT_EQ(result->size(), 12u);
}

TEST(InterpreterTest, BoundInstanceSelects) {
  Program p = P("gp(X, Z) <- par(X, Y), par(Y, Z).");
  Database db;
  testing::MakeTreeParentData(2, 3, &db);
  auto tree = BuildProcessingTree(p, L("gp(X, Z)"));
  ASSERT_TRUE(tree.ok());
  TreeInterpreter interp(p, &db);
  auto result = interp.Execute(**tree, L("gp(7, Z)"));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->tuples()[0][0].int_value(), 7);
}

TEST(InterpreterTest, UnionOfRules) {
  Program p = P(R"(
    rel(X, Y) <- likes(X, Y).
    rel(X, Y) <- knows(X, Y).
  )");
  Database db;
  (void)db.AddFact(L("likes(1, 2)"));
  (void)db.AddFact(L("knows(1, 3)"));
  (void)db.AddFact(L("knows(1, 2)"));  // overlap: set semantics
  auto tree = BuildProcessingTree(p, L("rel(1, Y)"));
  ASSERT_TRUE(tree.ok());
  TreeInterpreter interp(p, &db);
  auto result = interp.Execute(**tree, L("rel(1, Y)"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(InterpreterTest, CcNodeComputesFixpoint) {
  Program p = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )");
  Database db;
  testing::MakeTreeParentData(2, 4, &db);
  auto tree = BuildProcessingTree(p, L("anc(X, Y)"));
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ((*tree)->kind, PlanNodeKind::kCc);

  TreeInterpreter interp(p, &db);
  auto result = interp.Execute(**tree, L("anc(X, Y)"));
  ASSERT_TRUE(result.ok()) << result.status();
  auto reference =
      EvaluateQuery(p, &db, L("anc(X, Y)"), RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Sorted(*result), Sorted(reference->answers));
}

TEST(InterpreterTest, CcMethodLabelsAllAgree) {
  Program p = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )");
  Database db;
  testing::MakeTreeParentData(3, 4, &db);
  auto tree = BuildProcessingTree(p, L("anc(10, Y)"));
  ASSERT_TRUE(tree.ok());

  std::vector<Tuple> reference;
  for (const char* method : {"naive", "seminaive", "magic", "counting"}) {
    auto labeled = (*tree)->Clone();
    ASSERT_TRUE(TransformEl(labeled.get(), method).ok());
    TreeInterpreter interp(p, &db);
    auto result = interp.Execute(*labeled, L("anc(10, Y)"));
    ASSERT_TRUE(result.ok()) << method << ": " << result.status();
    if (reference.empty()) {
      reference = Sorted(*result);
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(Sorted(*result), reference) << method;
    }
  }
}

TEST(InterpreterTest, MaterializedVsPipelinedSameAnswers) {
  // q joins a selective base relation with a derived subquery; pipelined
  // execution of the subquery must give the same answers as materialized.
  Program p = P(R"(
    expensive(X, Y) <- big(X, Z), big(Z, Y).
    q(X, Y) <- sel(X), expensive(X, Y).
  )");
  Database db;
  testing::MakeRandomRelation("big", 2, 300, 40, 5, &db);
  db.GetOrCreate({"sel", 1})->Insert({Term::MakeInt(7)});

  auto tree = BuildProcessingTree(p, L("q(X, Y)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* and_node = (*tree)->children[0].get();
  ASSERT_EQ(and_node->children[1]->goal.predicate_name(), "expensive");

  // Materialized run.
  TreeInterpreter mat_interp(p, &db);
  auto mat = mat_interp.Execute(**tree, L("q(X, Y)"));
  ASSERT_TRUE(mat.ok()) << mat.status();

  // Pipelined run: flip the subquery to a triangle node.
  auto piped_tree = (*tree)->Clone();
  ASSERT_TRUE(TransformMp(piped_tree->children[0]->children[1].get()).ok());
  TreeInterpreter pipe_interp(p, &db);
  auto pipe = pipe_interp.Execute(*piped_tree, L("q(X, Y)"));
  ASSERT_TRUE(pipe.ok()) << pipe.status();

  EXPECT_EQ(Sorted(*mat), Sorted(*pipe));
  // Pipelining computes expensive() only for the bindings sel() produces:
  // strictly less work than materializing it in full.
  EXPECT_LT(pipe_interp.counters().tuples_examined,
            mat_interp.counters().tuples_examined);
}

TEST(InterpreterTest, PipelinedTablingReusesBindings) {
  // Two references to the same pipelined subquery with the same binding:
  // the memo must serve the second.
  Program p = P(R"(
    d(X, Y) <- e(X, Y).
    q(A) <- s(A), d(A, B), d(A, C).
  )");
  Database db;
  (void)db.AddFact(L("s(1)"));
  (void)db.AddFact(L("e(1, 2)"));
  auto tree = BuildProcessingTree(p, L("q(A)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* and_node = (*tree)->children[0].get();
  ASSERT_TRUE(TransformMp(and_node->children[1].get()).ok());
  ASSERT_TRUE(TransformMp(and_node->children[2].get()).ok());
  TreeInterpreter interp(p, &db);
  auto result = interp.Execute(**tree, L("q(A)"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(InterpreterTest, BuiltinsInsideAnd) {
  Program p = P("q(X, Y) <- r(X), Y = X * 2, Y < 10.");
  Database db;
  for (int64_t i = 1; i <= 10; ++i) {
    (void)db.AddFact(Literal::Make("r", {Term::MakeInt(i)}));
  }
  auto tree = BuildProcessingTree(p, L("q(X, Y)"));
  ASSERT_TRUE(tree.ok());
  TreeInterpreter interp(p, &db);
  auto result = interp.Execute(**tree, L("q(X, Y)"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 4u);  // 2,4,6,8
}

TEST(InterpreterTest, AgreesWithEngineOnSgAllForms) {
  Program p = P(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )");
  Database db;
  size_t nodes = testing::MakeSameGenerationData(2, 4, &db);
  auto tree = BuildProcessingTree(p, L("sg(X, Y)"));
  ASSERT_TRUE(tree.ok());

  for (const Literal& goal :
       {L("sg(X, Y)"),
        Literal::Make("sg", {Term::MakeInt(static_cast<int64_t>(nodes - 1)),
                             Term::MakeVariable("Y")})}) {
    TreeInterpreter interp(p, &db);
    auto via_tree = interp.Execute(**tree, goal);
    auto via_engine =
        EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, {});
    ASSERT_TRUE(via_tree.ok()) << via_tree.status();
    ASSERT_TRUE(via_engine.ok());
    EXPECT_EQ(Sorted(*via_tree), Sorted(via_engine->answers))
        << goal.ToString();
  }
}

TEST(InterpreterTest, HashJoinLabelMatchesNestedLoop) {
  Program p = P("q(X, Z) <- a(X, Y), b(Y, Z), c(Z, W).");
  Database db;
  testing::MakeRandomRelation("a", 2, 200, 25, 21, &db);
  testing::MakeRandomRelation("b", 2, 150, 25, 22, &db);
  testing::MakeRandomRelation("c", 2, 100, 25, 23, &db);

  auto tree = BuildProcessingTree(p, L("q(X, Z)"));
  ASSERT_TRUE(tree.ok());
  TreeInterpreter nl_interp(p, &db);
  auto nl = nl_interp.Execute(**tree, L("q(X, Z)"));
  ASSERT_TRUE(nl.ok());

  auto hash_tree = (*tree)->Clone();
  ASSERT_TRUE(TransformEl(hash_tree->children[0].get(), "hash-join").ok());
  TreeInterpreter hj_interp(p, &db);
  auto hj = hj_interp.Execute(*hash_tree, L("q(X, Z)"));
  ASSERT_TRUE(hj.ok()) << hj.status();

  EXPECT_EQ(Sorted(*nl), Sorted(*hj));
}

TEST(InterpreterTest, HashJoinLabelWithConstantsAndRepeatedVars) {
  Program p = P("q(Y) <- a(1, Y), b(Y, Y).");
  Database db;
  (void)db.AddFact(L("a(1, 5)"));
  (void)db.AddFact(L("a(1, 6)"));
  (void)db.AddFact(L("a(2, 5)"));
  (void)db.AddFact(L("b(5, 5)"));
  (void)db.AddFact(L("b(6, 7)"));
  auto tree = BuildProcessingTree(p, L("q(Y)"));
  ASSERT_TRUE(tree.ok());
  auto hash_tree = (*tree)->Clone();
  ASSERT_TRUE(TransformEl(hash_tree->children[0].get(), "hash-join").ok());
  TreeInterpreter interp(p, &db);
  auto result = interp.Execute(*hash_tree, L("q(Y)"));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->tuples()[0][0].int_value(), 5);
}

TEST(InterpreterTest, HashJoinLabelFallsBackOnBuiltins) {
  Program p = P("q(X) <- a(X, Y), Y > 3.");
  Database db;
  (void)db.AddFact(L("a(1, 5)"));
  (void)db.AddFact(L("a(2, 2)"));
  auto tree = BuildProcessingTree(p, L("q(X)"));
  ASSERT_TRUE(tree.ok());
  auto hash_tree = (*tree)->Clone();
  ASSERT_TRUE(TransformEl(hash_tree->children[0].get(), "hash-join").ok());
  TreeInterpreter interp(p, &db);
  auto result = interp.Execute(*hash_tree, L("q(X)"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);  // falls back, still correct
}

}  // namespace
}  // namespace ldl
