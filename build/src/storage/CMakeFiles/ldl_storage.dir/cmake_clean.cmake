file(REMOVE_RECURSE
  "CMakeFiles/ldl_storage.dir/database.cc.o"
  "CMakeFiles/ldl_storage.dir/database.cc.o.d"
  "CMakeFiles/ldl_storage.dir/relation.cc.o"
  "CMakeFiles/ldl_storage.dir/relation.cc.o.d"
  "CMakeFiles/ldl_storage.dir/statistics.cc.o"
  "CMakeFiles/ldl_storage.dir/statistics.cc.o.d"
  "libldl_storage.a"
  "libldl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
