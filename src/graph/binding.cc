#include "graph/binding.h"

#include "base/strings.h"

namespace ldl {

Adornment Adornment::AllBound(size_t arity) {
  Adornment a(arity);
  for (size_t i = 0; i < arity; ++i) a.bound_[i] = true;
  return a;
}

Adornment Adornment::FromGoal(const Literal& goal) {
  Adornment a(goal.arity());
  for (size_t i = 0; i < goal.arity(); ++i) {
    a.bound_[i] = goal.args()[i].IsGround();
  }
  return a;
}

Result<Adornment> Adornment::FromString(const std::string& text) {
  Adornment a(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == 'b') {
      a.bound_[i] = true;
    } else if (text[i] != 'f') {
      return Status::InvalidArgument(
          StrCat("bad adornment '", text, "': expected only 'b'/'f'"));
    }
  }
  return a;
}

size_t Adornment::BoundCount() const {
  size_t n = 0;
  for (bool b : bound_) n += b ? 1 : 0;
  return n;
}

std::string Adornment::ToString() const {
  std::string s;
  s.reserve(bound_.size());
  for (bool b : bound_) s += b ? 'b' : 'f';
  return s;
}

size_t Adornment::Hash() const {
  size_t seed = bound_.size();
  for (bool b : bound_) HashCombine(&seed, b ? 2 : 1);
  return seed;
}

PredicateId AdornedPredicate::RenamedId() const {
  if (adornment.AllArgsFree()) return pred;
  return {StrCat(pred.name, ".", adornment.ToString()), pred.arity};
}

std::string AdornedPredicate::ToString() const {
  return StrCat(pred.name, ".", adornment.ToString(), "/", pred.arity);
}

bool BoundVars::IsTermBound(const Term& t) const {
  std::vector<std::string> vars;
  t.CollectVariables(&vars);
  for (const std::string& v : vars) {
    if (!IsBound(v)) return false;
  }
  return true;
}

void BoundVars::BindTerm(const Term& t) {
  std::vector<std::string> vars;
  t.CollectVariables(&vars);
  for (const std::string& v : vars) Bind(v);
}

Adornment AdornLiteral(const Literal& lit, const BoundVars& bound) {
  Adornment a(lit.arity());
  for (size_t i = 0; i < lit.arity(); ++i) {
    a.SetBound(i, bound.IsTermBound(lit.args()[i]));
  }
  return a;
}

void PropagateBindings(const Literal& lit, BoundVars* bound) {
  if (lit.negated()) return;
  if (!lit.IsBuiltin()) {
    for (const Term& a : lit.args()) bound->BindTerm(a);
    return;
  }
  if (lit.builtin() == BuiltinKind::kEq) {
    const Term& lhs = lit.args()[0];
    const Term& rhs = lit.args()[1];
    if (bound->IsTermBound(rhs)) bound->BindTerm(lhs);
    if (bound->IsTermBound(lhs)) bound->BindTerm(rhs);
  }
  // Other comparisons test values; they produce no bindings.
}

void BindHeadVariables(const Literal& goal, const Adornment& adn,
                       BoundVars* bound) {
  for (size_t i = 0; i < goal.arity() && i < adn.size(); ++i) {
    if (adn.IsBound(i)) bound->BindTerm(goal.args()[i]);
  }
}

}  // namespace ldl
