#ifndef LDLOPT_OPTIMIZER_KBZ_H_
#define LDLOPT_OPTIMIZER_KBZ_H_

#include <memory>

#include "optimizer/join_order.h"

namespace ldl {

/// The quadratic-time join-ordering algorithm of [KBZ 86] (Krishnamurthy,
/// Boral, Zaniolo: "Optimization of Nonrecursive Queries").
///
/// The algorithm is exact for acyclic query graphs under cost functions
/// with the Adjacent Sequence Interchange (ASI) property; following the
/// paper (and [Vil 87]), it is applied as a heuristic elsewhere:
///  - the query graph is built from shared variables, with edge selectivity
///    1/max(d1, d2);
///  - cyclic graphs are reduced to a maximum-selectivity spanning tree;
///  - the ASI rank ordering (rank = (T-1)/C) is computed per candidate
///    root with the classic normalize-and-merge procedure;
///  - each candidate sequence is then evaluated with the *real* cost model
///    and the best is kept — which is exactly the experimental set-up used
///    to validate the heuristic in [Vil 87].
/// Builtin and negated literals do not participate in the tree; they are
/// re-inserted greedily at the earliest position where they are computable.
std::unique_ptr<JoinOrderStrategy> MakeKbzStrategy(
    const StrategyOptions& options);

}  // namespace ldl

#endif  // LDLOPT_OPTIMIZER_KBZ_H_
