# Empty compiler generated dependencies file for ldl_optimizer.
# This may be replaced when dependencies are built.
