# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/term_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/unify_builtins_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/depgraph_test[1]_include.cmake")
include("/root/repo/build/tests/adornment_test[1]_include.cmake")
include("/root/repo/build/tests/fixpoint_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/join_order_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/safety_test[1]_include.cmake")
include("/root/repo/build/tests/plan_tree_test[1]_include.cmake")
include("/root/repo/build/tests/ldl_test[1]_include.cmake")
include("/root/repo/build/tests/magic_counting_test[1]_include.cmake")
include("/root/repo/build/tests/engine_stress_test[1]_include.cmake")
include("/root/repo/build/tests/project_pushdown_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/annotate_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
