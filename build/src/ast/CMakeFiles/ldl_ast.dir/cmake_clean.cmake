file(REMOVE_RECURSE
  "CMakeFiles/ldl_ast.dir/literal.cc.o"
  "CMakeFiles/ldl_ast.dir/literal.cc.o.d"
  "CMakeFiles/ldl_ast.dir/parser.cc.o"
  "CMakeFiles/ldl_ast.dir/parser.cc.o.d"
  "CMakeFiles/ldl_ast.dir/program.cc.o"
  "CMakeFiles/ldl_ast.dir/program.cc.o.d"
  "CMakeFiles/ldl_ast.dir/rule.cc.o"
  "CMakeFiles/ldl_ast.dir/rule.cc.o.d"
  "CMakeFiles/ldl_ast.dir/term.cc.o"
  "CMakeFiles/ldl_ast.dir/term.cc.o.d"
  "libldl_ast.a"
  "libldl_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
