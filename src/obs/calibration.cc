#include "obs/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "base/strings.h"
#include "engine/fixpoint.h"

namespace ldl {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// JSON number: %.17g round-trips doubles; non-finite values (unsafe-plan
/// costs) have no JSON encoding and render as null.
void JsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

/// Same vocabulary as EXPLAIN's node labels (plan/explain.cc), minus the
/// rule/clique suffixes, so the CALIBRATION table reads against the PLAN
/// table line by line.
std::string NodeLabel(const PlanNode& node) {
  std::string label = PlanNodeKindToString(node.kind);
  label += node.materialized ? " [mat]" : " [pipe]";
  if (!node.method.empty()) StrAppend(&label, " ", node.method);
  StrAppend(&label, " ", node.goal.ToString());
  if (node.binding.size() > 0) StrAppend(&label, " :", node.binding.ToString());
  return label;
}

void RecordInto(std::map<std::string, std::unique_ptr<Histogram>>* hists,
                const std::string& key, double v) {
  std::unique_ptr<Histogram>& h = (*hists)[key];
  if (h == nullptr) h = std::make_unique<Histogram>();
  h->Record(v);
}

void WriteHistogramGroup(
    std::ostream& os,
    const std::map<std::string, std::unique_ptr<Histogram>>& hists) {
  os << '{';
  bool first = true;
  for (const auto& [key, h] : hists) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(key) << "\":{\"count\":" << h->count()
       << ",\"p50\":";
    JsonNumber(os, h->percentile(0.5));
    os << ",\"p95\":";
    JsonNumber(os, h->percentile(0.95));
    os << ",\"max\":";
    JsonNumber(os, h->max());
    os << '}';
  }
  os << '}';
}

std::string OrderToString(const std::vector<size_t>& order) {
  return StrCat("[", StrJoin(order, ",", [](size_t i) { return StrCat(i); }),
                "]");
}

}  // namespace

double QError(double est_rows, double act_rows) {
  // Clamp both sides to one row (the customary q-error floor): an estimate
  // of 0.25 rows against an empty actual is "right", not infinitely wrong.
  double est = std::max(est_rows, 1.0);
  double act = std::max(act_rows, 1.0);
  return std::max(est / act, act / est);
}

CalibrationReport CalibrationReport::Build(const PlanNode& tree,
                                           const ExecutionProfile& profile,
                                           std::string query) {
  CalibrationReport report;
  report.query_ = std::move(query);

  struct Frame {
    const PlanNode* node;
    size_t depth;
  };
  std::vector<Frame> stack = {{&tree, 0}};
  // Explicit stack in child order: rebuild pre-order (a vector stack pops
  // last-first, so push children reversed).
  std::vector<Frame> pre;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    pre.push_back(f);
    for (auto it = f.node->children.rbegin(); it != f.node->children.rend();
         ++it) {
      stack.push_back({it->get(), f.depth + 1});
    }
  }

  for (const Frame& f : pre) {
    const PlanNode& node = *f.node;
    if (node.kind == PlanNodeKind::kBuiltin) continue;  // folded into parent
    // A bound scan's estimate is per binding instance, but the interpreter
    // resolves scans as whole-relation reads (selection happens in the rule
    // evaluator), so the two are not comparable; only free scans calibrate.
    if (node.kind == PlanNodeKind::kScan && node.binding.BoundCount() > 0) {
      continue;
    }
    const NodeActuals* a = profile.Find(&node);
    if (a == nullptr || a->executions == 0) continue;  // no measurement

    NodeCalibration nc;
    nc.label = NodeLabel(node);
    nc.kind = PlanNodeKindToString(node.kind);
    nc.method = node.method;
    nc.depth = f.depth;
    nc.est_rows = node.est_cardinality;
    nc.act_rows = a->RowsPerExecution();
    nc.executions = a->executions;
    nc.memo_hits = a->memo_hits;
    nc.q_error = QError(nc.est_rows, nc.act_rows);

    report.sorted_q_.push_back(nc.q_error);
    RecordInto(&report.by_kind_, nc.kind, nc.q_error);
    if (node.kind == PlanNodeKind::kCc && !nc.method.empty()) {
      RecordInto(&report.by_method_, nc.method, nc.q_error);
    }
    report.nodes_.push_back(std::move(nc));
  }
  std::sort(report.sorted_q_.begin(), report.sorted_q_.end());
  return report;
}

double CalibrationReport::QErrorPercentile(double p) const {
  if (sorted_q_.empty()) return 1;
  if (p <= 0) return sorted_q_.front();
  if (p >= 1) return sorted_q_.back();
  // Exact order statistics with linear interpolation between neighbours.
  double rank = p * static_cast<double>(sorted_q_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_q_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_q_[lo] + frac * (sorted_q_[hi] - sorted_q_[lo]);
}

double CalibrationReport::max_q_error() const {
  return sorted_q_.empty() ? 1 : sorted_q_.back();
}

void CalibrationReport::ExportTo(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->counter("calibration.nodes")->Increment(nodes_.size());
  for (const NodeCalibration& nc : nodes_) {
    metrics->histogram("calibration.q_error")->Record(nc.q_error);
    metrics->histogram(StrCat("calibration.q_error.kind.", nc.kind))
        ->Record(nc.q_error);
    if (nc.kind == std::string("CC") && !nc.method.empty()) {
      metrics->histogram(StrCat("calibration.q_error.method.", nc.method))
          ->Record(nc.q_error);
    }
  }
  metrics->gauge("calibration.q_error.median")->Set(median_q_error());
  metrics->gauge("calibration.q_error.p95")->Set(p95_q_error());
  if (regret_.computed) {
    metrics->gauge("calibration.regret")->Set(regret_.regret());
    metrics->gauge("calibration.regret.ratio")->Set(regret_.ratio());
  }
}

void CalibrationReport::WriteJson(std::ostream& os) const {
  os << "{\"query\":\"" << JsonEscape(query_) << "\",\"nodes\":[";
  bool first = true;
  for (const NodeCalibration& nc : nodes_) {
    if (!first) os << ',';
    first = false;
    os << "{\"label\":\"" << JsonEscape(nc.label) << "\",\"kind\":\""
       << JsonEscape(nc.kind) << "\",\"method\":\"" << JsonEscape(nc.method)
       << "\",\"depth\":" << nc.depth << ",\"est_rows\":";
    JsonNumber(os, nc.est_rows);
    os << ",\"act_rows\":";
    JsonNumber(os, nc.act_rows);
    os << ",\"executions\":" << nc.executions
       << ",\"memo_hits\":" << nc.memo_hits << ",\"q_error\":";
    JsonNumber(os, nc.q_error);
    os << '}';
  }
  os << "],\"aggregate\":{\"nodes\":" << nodes_.size()
     << ",\"median_q_error\":";
  JsonNumber(os, median_q_error());
  os << ",\"p95_q_error\":";
  JsonNumber(os, p95_q_error());
  os << ",\"max_q_error\":";
  JsonNumber(os, max_q_error());
  os << "},\"by_kind\":";
  WriteHistogramGroup(os, by_kind_);
  os << ",\"by_method\":";
  WriteHistogramGroup(os, by_method_);
  os << ",\"regret\":{\"computed\":" << (regret_.computed ? "true" : "false")
     << ",\"note\":\"" << JsonEscape(regret_.note)
     << "\",\"est_cost_chosen\":";
  JsonNumber(os, regret_.est_cost_chosen);
  os << ",\"measured_cost_chosen\":";
  JsonNumber(os, regret_.measured_cost_chosen);
  os << ",\"measured_cost_hindsight\":";
  JsonNumber(os, regret_.measured_cost_hindsight);
  os << ",\"regret\":";
  JsonNumber(os, regret_.regret());
  os << ",\"ratio\":";
  JsonNumber(os, regret_.ratio());
  os << ",\"changes\":[";
  first = true;
  for (const std::string& c : regret_.changes) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(c) << '"';
  }
  os << "]}}";
}

std::string CalibrationReport::ToString() const {
  struct Row {
    std::string label;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows;
  for (const NodeCalibration& nc : nodes_) {
    Row row;
    row.label = std::string(nc.depth * 2, ' ') + nc.label;
    row.cells = {FormatDouble(nc.est_rows), FormatDouble(nc.act_rows),
                 StrCat(nc.executions), StrCat(nc.memo_hits),
                 FormatDouble(nc.q_error)};
    rows.push_back(std::move(row));
  }

  const std::vector<std::string> headers = {"EST ROWS", "ACT ROWS", "EXEC",
                                            "MEMO", "Q-ERR"};
  size_t label_width = 11;  // "CALIBRATION"
  for (const Row& row : rows) {
    label_width = std::max(label_width, row.label.size());
  }
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
    for (const Row& row : rows) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::string& label,
                  const std::vector<std::string>& cells) {
    os << label;
    for (size_t i = label.size(); i < label_width; ++i) os << ' ';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << "  ";
      for (size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
      os << cells[c];
    }
    os << '\n';
  };
  emit("CALIBRATION", headers);
  size_t total = label_width;
  for (size_t w : widths) total += 2 + w;
  os << std::string(total, '-') << '\n';
  for (const Row& row : rows) emit(row.label, row.cells);

  os << "aggregate: " << nodes_.size() << " nodes, q-error median "
     << FormatDouble(median_q_error()) << " p95 " << FormatDouble(p95_q_error())
     << " max " << FormatDouble(max_q_error()) << '\n';
  auto emit_group =
      [&](const char* title,
          const std::map<std::string, std::unique_ptr<Histogram>>& hists) {
        if (hists.empty()) return;
        os << title;
        bool first = true;
        for (const auto& [key, h] : hists) {
          if (!first) os << "  |";
          first = false;
          os << ' ' << key << " n=" << h->count()
             << " p50=" << FormatDouble(h->percentile(0.5))
             << " max=" << FormatDouble(h->max());
        }
        os << '\n';
      };
  emit_group("by kind:  ", by_kind_);
  emit_group("by method:", by_method_);

  os << "REGRET\n";
  if (!regret_.computed) {
    os << "  not computed: " << regret_.note << '\n';
  } else {
    os << "  est cost (chosen plan):        "
       << FormatDouble(regret_.est_cost_chosen) << '\n'
       << "  measured cost (chosen plan):   "
       << FormatDouble(regret_.measured_cost_chosen) << '\n'
       << "  measured cost (hindsight-opt): "
       << FormatDouble(regret_.measured_cost_hindsight) << '\n'
       << "  regret: " << FormatDouble(regret_.regret()) << " (ratio "
       << FormatDouble(regret_.ratio()) << ")\n";
    if (regret_.changes.empty()) {
      os << "  hindsight plan: identical decisions\n";
    } else {
      for (const std::string& c : regret_.changes) {
        os << "  hindsight change: " << c << '\n';
      }
    }
  }
  return os.str();
}

MeasuredStatistics HarvestMeasuredStatistics(const PlanNode& tree,
                                             const ExecutionProfile& profile) {
  // Pool replicated subtrees: sum rows and executions per (pred, binding),
  // then store the pooled per-execution average.
  struct Pooled {
    double rows = 0;
    double execs = 0;
  };
  std::unordered_map<AdornedPredicate, Pooled, AdornedPredicateHash> pooled;

  std::vector<const PlanNode*> stack = {&tree};
  while (!stack.empty()) {
    const PlanNode* node = stack.back();
    stack.pop_back();
    for (const auto& child : node->children) stack.push_back(child.get());

    // AND nodes compute per-rule contributions, not the predicate's result;
    // only SCAN/OR/CC nodes measure a (predicate, binding) cardinality.
    if (node->kind != PlanNodeKind::kScan && node->kind != PlanNodeKind::kOr &&
        node->kind != PlanNodeKind::kCc) {
      continue;
    }
    const NodeActuals* a = profile.Find(node);
    if (a == nullptr || a->executions == 0) continue;
    // A scan's recorded rows measure the relation's total cardinality no
    // matter which binding annotates the node (inline resolution returns
    // the whole relation), so file it under the all-free adornment — the
    // key MeasuredStatistics::AdjustBaseItem reads.
    const Adornment adn = node->kind == PlanNodeKind::kScan
                              ? Adornment::AllFree(node->goal.arity())
                              : node->binding;
    Pooled& p = pooled[AdornedPredicate{node->goal.predicate(), adn}];
    p.rows += static_cast<double>(a->out_rows);
    p.execs += static_cast<double>(a->executions);
  }

  MeasuredStatistics measured;
  for (const auto& [ap, p] : pooled) {
    measured.Set(ap.pred, ap.adornment, p.rows / p.execs);
  }
  return measured;
}

RegretAnalysis ComputePlanRegret(const Program& program,
                                 const Statistics& stats,
                                 const OptimizerOptions& options,
                                 const Literal& goal, const QueryPlan& chosen,
                                 const MeasuredStatistics& measured) {
  RegretAnalysis out;
  out.est_cost_chosen = chosen.TotalCost();
  if (!chosen.safe) {
    out.note = "chosen plan is unsafe";
    return out;
  }
  if (measured.empty()) {
    out.note = "no measured statistics (nothing executed)";
    return out;
  }

  OptimizerOptions hind = options;
  hind.measured = &measured;
  hind.pinned = nullptr;
  hind.verify_plans = false;
  hind.trace = TraceContext{};  // hindsight runs are analysis, not workload

  Optimizer hindsight_opt(program, stats, hind);
  Result<QueryPlan> hindsight = hindsight_opt.Optimize(goal);
  if (!hindsight.ok()) {
    out.note = StrCat("hindsight optimization failed: ",
                      hindsight.status().message());
    return out;
  }
  if (!hindsight->safe) {
    out.note = StrCat("hindsight plan unsafe: ", hindsight->unsafe_reason);
    return out;
  }

  // Cost the *chosen* plan under the same measured model by pinning its
  // decisions and re-running. Best-effort pins (see PlanConstraints) make
  // this total even when a pinned order is unsafe under some adornment.
  PlanConstraints pins;
  pins.rule_orders = chosen.rule_orders;
  pins.clique_methods = chosen.clique_methods;
  OptimizerOptions pinned_options = hind;
  pinned_options.pinned = &pins;
  Optimizer pinned_opt(program, stats, pinned_options);
  Result<QueryPlan> pinned = pinned_opt.Optimize(goal);
  if (!pinned.ok()) {
    out.note =
        StrCat("pinned re-costing failed: ", pinned.status().message());
    return out;
  }
  if (!pinned->safe) {
    out.note = StrCat("pinned plan unsafe: ", pinned->unsafe_reason);
    return out;
  }

  out.measured_cost_chosen = pinned->TotalCost();
  out.measured_cost_hindsight = hindsight->TotalCost();
  // The hindsight search minimizes over a space containing the pinned plan;
  // floating-point noise aside it is never worse. Clamp so regret >= 0 holds
  // exactly and identical runs report exactly zero.
  if (out.measured_cost_hindsight > out.measured_cost_chosen) {
    out.measured_cost_hindsight = out.measured_cost_chosen;
  }
  out.computed = true;

  // Decision diff: what perfect estimates would have changed.
  if (hindsight->top_method != chosen.top_method) {
    out.changes.push_back(StrCat("top method ",
                                 RecursionMethodToString(chosen.top_method),
                                 " -> ",
                                 RecursionMethodToString(hindsight->top_method)));
  }
  for (const auto& [clique, method] : hindsight->clique_methods) {
    auto it = chosen.clique_methods.find(clique);
    if (it != chosen.clique_methods.end() && it->second != method) {
      out.changes.push_back(StrCat("clique #", clique, " method ",
                                   RecursionMethodToString(it->second), " -> ",
                                   RecursionMethodToString(method)));
    }
  }
  for (const auto& [rule, order] : hindsight->rule_orders) {
    auto it = chosen.rule_orders.find(rule);
    if (it != chosen.rule_orders.end() && it->second != order) {
      out.changes.push_back(StrCat("rule ", rule, " order ",
                                   OrderToString(it->second), " -> ",
                                   OrderToString(order)));
    }
  }
  return out;
}

}  // namespace ldl
