# Empty dependencies file for ldl_shell.
# This may be replaced when dependencies are built.
