// Experiment E17 — the feedback loop: regret under stale statistics with
// and without the statistics catalog, and the catalog's overhead on the
// metered query path.
//
// The setup models the operational failure the feedback loop exists for:
// statistics are collected once, then the EDB grows behind the optimizer's
// back. Each workload is analyzed twice — first planning on the stale
// estimates (the analyzed run's harvest seeds the catalog), then planning
// in feedback mode under the catalog's blended overlay. The regret ratio
// (measured cost of the chosen plan over the hindsight-optimal plan) must
// move toward 1 wherever the stale estimates had flipped a join order.
// Workloads are one handcrafted skewed join plus seeded program_gen draws,
// so the improvement is demonstrated on generated programs too, not just
// on a fixture tuned to show it.
//
// The second table prices the loop: the same query executed with the
// catalog + drift detector attached and detached. Harvesting is a handful
// of map merges per query, so the overhead target is < 2%.

#include <benchmark/benchmark.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "base/rng.h"
#include "ldl/ldl.h"
#include "obs/feedback.h"
#include "testing/program_gen.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

/// Re-adds the facts of ONE base relation `copies` times with integer
/// constants shifted out of the original domain: `target` grows
/// (copies + 1)x while the rest of the EDB — and the collected statistics
/// — stay put. A uniform skew would scale every estimate by the same
/// factor and never flip a join order; growing a single relation is what
/// actually invalidates the optimizer's relative cost ranking.
size_t SkewDatabase(const testing::GeneratedProgram& prog, Database* db,
                    const PredicateId& target, int copies, int64_t offset) {
  size_t added = 0;
  for (int c = 1; c <= copies; ++c) {
    for (const Literal& fact : prog.facts) {
      if (!(fact.predicate() == target)) continue;
      std::vector<Term> args;
      args.reserve(fact.args().size());
      for (const Term& t : fact.args()) {
        args.push_back(t.kind() == TermKind::kInt
                           ? Term::MakeInt(t.int_value() + offset * c)
                           : t);
      }
      db->AddFact(Literal::Make(fact.predicate().name, std::move(args)));
      ++added;
    }
  }
  return added;
}

struct RegretPair {
  bool ok = false;
  std::string note;
  double regret_off = 0;
  double regret_on = 0;
  double median_q_off = 0;
  double median_q_on = 0;
};

/// Analyzes `goal` on `sys` twice: stale-stats planning (harvest seeds the
/// catalog), then feedback-mode planning under the blended overlay. The
/// catalog is attached without a drift detector — a bumped epoch would
/// re-collect statistics and fix the estimates for both sides.
RegretPair MeasureRegret(LdlSystem* sys, const std::string& goal) {
  RegretPair out;
  StatisticsCatalog catalog;
  sys->set_feedback(&catalog, nullptr);

  auto stale = sys->AnalyzeCalibrated(goal);
  if (!stale.ok()) {
    out.note = stale.status().ToString();
    sys->set_feedback(nullptr, nullptr);
    return out;
  }
  OptimizerOptions options = sys->options();
  options.feedback = true;
  sys->set_options(options);
  auto fed = sys->AnalyzeCalibrated(goal);
  options.feedback = false;
  sys->set_options(options);
  sys->set_feedback(nullptr, nullptr);
  if (!fed.ok()) {
    out.note = fed.status().ToString();
    return out;
  }
  if (!stale->report.regret().computed || !fed->report.regret().computed) {
    out.note = "regret not computed";
    return out;
  }
  out.ok = true;
  out.regret_off = stale->report.regret().ratio();
  out.regret_on = fed->report.regret().ratio();
  out.median_q_off = stale->report.median_q_error();
  out.median_q_on = fed->report.median_q_error();
  return out;
}

void AddRegretRow(Table* table, const std::string& name,
                  const RegretPair& pair, size_t* improved) {
  if (!pair.ok) {
    table->AddRow({name, "-", "-", "-", "-", pair.note.substr(0, 40)});
    return;
  }
  const bool better = pair.regret_on < pair.regret_off;
  if (better) ++*improved;
  table->AddRow({name, Fmt(pair.regret_off, "%.3f"),
                 Fmt(pair.regret_on, "%.3f"),
                 Fmt(pair.median_q_off, "%.3f"),
                 Fmt(pair.median_q_on, "%.3f"),
                 better          ? "yes"
                 : pair.regret_off <= 1.0 ? "no regret"
                                          : "no"});
}

void PrintRegretExperiment() {
  bench::Banner("E17", "feedback loop: hindsight regret with stale "
                       "statistics, catalog off vs on");
  Table table({"workload", "regret off", "regret on", "q50 off", "q50 on",
               "improved"});
  size_t improved = 0;

  {
    // The canonical skew: statistics say r is tiny, the grown EDB says
    // otherwise, and the join order flips once the catalog speaks up.
    LdlSystem sys;
    if (sys.LoadProgram(R"(
          t(A, C) <- r(A, B), s(B, C).
          r(100, 0). r(101, 1).
          s(0, 0). s(1, 1). s(2, 2).
        )")
            .ok()) {
      (void)sys.statistics();  // collect while r has 2 rows
      for (int i = 0; i < 58; ++i) {
        sys.database()->AddFact(
            Literal::Make("r", {Term::MakeInt(i), Term::MakeInt(i % 3)}));
      }
      AddRegretRow(&table, "skewed r30x join",
                   MeasureRegret(&sys, "t(A, C)"), &improved);
    }
  }

  // Generated workloads. The recursive skeletons the generator draws have
  // two-literal bodies whose order is already forced by safety and the
  // recursion structure, so a probe view joining the generated draw's
  // smallest base relation into its largest is appended: the join-order
  // decision the stale statistics get wrong — and the catalog must fix —
  // lives there. The smallest relation is then grown 30x behind the
  // statistics' back.
  testing::ProgramGenOptions gen;
  gen.bound_query_probability = 0;  // free queries keep the full join visible
  gen.negation_probability = 0;
  for (uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    Rng rng(seed);
    testing::GeneratedProgram prog = testing::GenerateProgram(&rng, gen);

    std::map<PredicateId, size_t> edb_counts;
    for (const Literal& fact : prog.facts) ++edb_counts[fact.predicate()];
    if (edb_counts.size() < 2) continue;
    PredicateId small = edb_counts.begin()->first;
    PredicateId large = edb_counts.begin()->first;
    for (const auto& [pred, count] : edb_counts) {
      if (count < edb_counts[small]) small = pred;
      if (count > edb_counts[large]) large = pred;
    }
    if (small == large) continue;

    LdlSystem sys;
    const std::string text = prog.ToLdl() + "\nzz_probe(X, Z) <- " +
                             small.name + "(X, Y), " + large.name +
                             "(Y, Z).\n";
    if (!sys.LoadProgram(text).ok()) continue;
    (void)sys.statistics();  // collect on the generated draw
    SkewDatabase(prog, sys.database(), small, 29, 1000);
    AddRegretRow(&table,
                 "gen seed " + std::to_string(seed) + " probe " +
                     small.name + "*30 (" + prog.summary + ")",
                 MeasureRegret(&sys, "zz_probe(X, Z)"), &improved);
  }

  table.Print();
  std::printf("workloads with strictly reduced regret: %zu\n\n", improved);
}

void PrintOverheadExperiment() {
  bench::Banner("E17b", "catalog overhead on the metered query path");
  Table table({"workload", "reps", "off ms/query", "on ms/query",
               "overhead %"});

  LdlSystem sys;
  if (!sys.LoadProgram(R"(anc(X, Y) <- par(X, Y).
                          anc(X, Y) <- par(X, Z), anc(Z, Y).)")
           .ok()) {
    return;
  }
  testing::MakeTreeParentData(3, 6, sys.database());
  sys.RefreshStatistics();
  // The all-free goal takes the full bottom-up path, so every query
  // harvests the goal cardinality AND every derived fixpoint size — the
  // catalog's worst case.
  const std::string goal = "anc(X, Y)";
  const int reps = 60;

  for (int warm = 0; warm < 5; ++warm) (void)sys.Query(goal);
  Stopwatch off_watch;
  for (int i = 0; i < reps; ++i) (void)sys.Query(goal);
  const double off_ms = off_watch.ElapsedMs() / reps;

  StatisticsCatalog catalog;
  DriftDetector detector;
  sys.set_feedback(&catalog, &detector);
  for (int warm = 0; warm < 5; ++warm) (void)sys.Query(goal);
  Stopwatch on_watch;
  for (int i = 0; i < reps; ++i) (void)sys.Query(goal);
  const double on_ms = on_watch.ElapsedMs() / reps;
  sys.set_feedback(nullptr, nullptr);

  table.AddRow({"anc.ff tree f=3 d=6", std::to_string(reps),
                Fmt(off_ms, "%.3f"), Fmt(on_ms, "%.3f"),
                Fmt((on_ms - off_ms) / off_ms * 100.0, "%.2f")});
  table.Print();
}

void BM_QueryFeedbackOff(benchmark::State& state) {
  LdlSystem sys;
  if (!sys.LoadProgram(R"(anc(X, Y) <- par(X, Y).
                          anc(X, Y) <- par(X, Z), anc(Z, Y).)")
           .ok()) {
    state.SkipWithError("load failed");
    return;
  }
  testing::MakeTreeParentData(3, 6, sys.database());
  sys.RefreshStatistics();
  for (auto _ : state) {
    auto answer = sys.Query("anc(X, Y)");
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_QueryFeedbackOff);

void BM_QueryFeedbackOn(benchmark::State& state) {
  LdlSystem sys;
  if (!sys.LoadProgram(R"(anc(X, Y) <- par(X, Y).
                          anc(X, Y) <- par(X, Z), anc(Z, Y).)")
           .ok()) {
    state.SkipWithError("load failed");
    return;
  }
  testing::MakeTreeParentData(3, 6, sys.database());
  sys.RefreshStatistics();
  StatisticsCatalog catalog;
  DriftDetector detector;
  sys.set_feedback(&catalog, &detector);
  for (auto _ : state) {
    auto answer = sys.Query("anc(X, Y)");
    benchmark::DoNotOptimize(answer);
  }
  sys.set_feedback(nullptr, nullptr);
}
BENCHMARK(BM_QueryFeedbackOn);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintRegretExperiment();
  ldl::PrintOverheadExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("feedback");
  return 0;
}
