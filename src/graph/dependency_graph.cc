#include "graph/dependency_graph.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "base/strings.h"

namespace ldl {

bool RecursiveClique::Contains(const PredicateId& pred) const {
  return std::find(predicates.begin(), predicates.end(), pred) !=
         predicates.end();
}

std::string RecursiveClique::ToString() const {
  return StrCat(
      "clique{",
      StrJoin(predicates, ", ", [](const PredicateId& p) { return p.ToString(); }),
      " | ", recursive_rules.size(), " recursive, ", exit_rules.size(),
      " exit rules}");
}

namespace {

/// Tarjan's strongly-connected-components algorithm over the predicate
/// dependency graph (iterative-friendly sizes here: recursion is fine).
class Tarjan {
 public:
  using Graph =
      std::unordered_map<PredicateId, std::vector<PredicateId>, PredicateIdHash>;

  explicit Tarjan(const Graph& graph) : graph_(graph) {}

  /// Returns components in reverse topological order of the condensation
  /// (i.e., a component is emitted after everything it depends on... Tarjan
  /// emits components such that successors are emitted first). Roots are
  /// visited in the given order, NOT hash order, so component ids (and with
  /// them clique indices and the topological tie-break) are deterministic
  /// across runs and platforms.
  std::vector<std::vector<PredicateId>> Run(
      const std::vector<PredicateId>& roots) {
    for (const PredicateId& node : roots) {
      if (graph_.count(node) && !index_.count(node)) Visit(node);
    }
    return components_;
  }

 private:
  void Visit(const PredicateId& v) {
    index_[v] = lowlink_[v] = counter_++;
    stack_.push_back(v);
    on_stack_.insert(v);
    auto it = graph_.find(v);
    if (it != graph_.end()) {
      for (const PredicateId& w : it->second) {
        if (!graph_.count(w)) continue;  // edge to base predicate: ignore
        if (!index_.count(w)) {
          Visit(w);
          lowlink_[v] = std::min(lowlink_[v], lowlink_[w]);
        } else if (on_stack_.count(w)) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      }
    }
    if (lowlink_[v] == index_[v]) {
      std::vector<PredicateId> component;
      while (true) {
        PredicateId w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        component.push_back(w);
        if (w == v) break;
      }
      components_.push_back(std::move(component));
    }
  }

  const Graph& graph_;
  std::unordered_map<PredicateId, int, PredicateIdHash> index_;
  std::unordered_map<PredicateId, int, PredicateIdHash> lowlink_;
  std::vector<PredicateId> stack_;
  std::set<PredicateId> on_stack_;
  std::vector<std::vector<PredicateId>> components_;
  int counter_ = 0;
};

}  // namespace

DependencyGraph DependencyGraph::Build(const Program& program) {
  DependencyGraph g;
  g.program_ = &program;

  // Edges body-pred -> head-pred, restricted to derived predicates.
  Tarjan::Graph graph;
  for (const PredicateId& pred : program.DerivedPredicates()) {
    graph[pred];  // ensure node exists
  }
  // We also need the reverse direction (head -> body) for stratification and
  // reachability; store rule-derived adjacency head -> body preds.
  std::unordered_map<PredicateId, std::vector<PredicateId>, PredicateIdHash>
      uses;  // head -> derived body predicates
  std::unordered_map<PredicateId, std::vector<PredicateId>, PredicateIdHash>
      uses_negated;  // head -> negated derived body predicates
  for (const Rule& rule : program.rules()) {
    const PredicateId head = rule.head().predicate();
    for (const Literal& lit : rule.body()) {
      if (lit.IsBuiltin()) continue;
      const PredicateId body_pred = lit.predicate();
      if (!program.IsDerived(body_pred)) continue;
      graph[body_pred].push_back(head);
      uses[head].push_back(body_pred);
      if (lit.negated()) uses_negated[head].push_back(body_pred);
    }
  }

  // SCCs. Tarjan emits a component only after all components it can reach
  // (its successors = predicates it is used to define) have been emitted...
  // Actually Tarjan emits components in reverse topological order of the
  // condensation: a component is emitted before any component that can reach
  // it. With edges body->head, the first emitted components are the "top"
  // queries. We therefore reverse to get bottom-up order.
  Tarjan tarjan(graph);
  std::vector<std::vector<PredicateId>> components =
      tarjan.Run(program.DerivedPredicates());  // sorted roots: determinism
  // Determine component ids.
  for (size_t c = 0; c < components.size(); ++c) {
    for (const PredicateId& pred : components[c]) {
      g.nodes_[pred].component = static_cast<int>(c);
    }
  }

  // A component is a recursive clique if it has >1 member or a self-loop.
  g.component_clique_.assign(components.size(), -1);
  for (size_t c = 0; c < components.size(); ++c) {
    bool recursive = components[c].size() > 1;
    if (!recursive) {
      const PredicateId& p = components[c][0];
      auto it = uses.find(p);
      if (it != uses.end() &&
          std::find(it->second.begin(), it->second.end(), p) !=
              it->second.end()) {
        recursive = true;
      }
    }
    if (!recursive) continue;
    RecursiveClique clique;
    clique.predicates = components[c];
    std::sort(clique.predicates.begin(), clique.predicates.end());
    for (size_t ri = 0; ri < program.rules().size(); ++ri) {
      const Rule& rule = program.rules()[ri];
      if (!clique.Contains(rule.head().predicate())) continue;
      bool rec = false;
      for (const Literal& lit : rule.body()) {
        if (!lit.IsBuiltin() && clique.Contains(lit.predicate())) {
          rec = true;
          break;
        }
      }
      (rec ? clique.recursive_rules : clique.exit_rules).push_back(ri);
    }
    g.component_clique_[c] = static_cast<int>(g.cliques_.size());
    g.cliques_.push_back(std::move(clique));
  }

  // Bottom-up topological order: process components in emission order;
  // with body->head edges Tarjan emits sinks of the condensation first,
  // where sinks are the most-derived (query-level) predicates. Hence
  // reversed emission order is NOT bottom-up; verify: edge body->head means
  // head is reachable from body; Tarjan emits a component when its subtree
  // completes, so successors (heads) are emitted before... Successors are
  // emitted first only when discovered from the body. To be robust we
  // compute an explicit Kahn topological sort of the condensation instead.
  {
    size_t nc = components.size();
    std::vector<std::set<int>> cond_edges(nc);  // comp(body) -> comp(head)
    std::vector<int> indegree(nc, 0);
    for (const auto& [body_pred, heads] : graph) {
      int cb = g.nodes_[body_pred].component;
      for (const PredicateId& head : heads) {
        int ch = g.nodes_[head].component;
        if (cb != ch && cond_edges[cb].insert(ch).second) ++indegree[ch];
      }
    }
    std::vector<int> ready;
    for (size_t c = 0; c < nc; ++c) {
      if (indegree[c] == 0) ready.push_back(static_cast<int>(c));
    }
    std::vector<int> order;
    while (!ready.empty()) {
      int c = ready.back();
      ready.pop_back();
      order.push_back(c);
      for (int d : cond_edges[c]) {
        if (--indegree[d] == 0) ready.push_back(d);
      }
    }
    for (int c : order) {
      std::vector<PredicateId> sorted = components[c];
      std::sort(sorted.begin(), sorted.end());
      for (const PredicateId& pred : sorted) g.topo_order_.push_back(pred);
      g.topo_components_.push_back(std::move(sorted));
    }
  }

  // Strata: stratum(head) >= stratum(body), and > for negated bodies.
  // Iterate to fixpoint over the topological order; detect non-stratified
  // programs (negation inside an SCC).
  for (const Rule& rule : program.rules()) {
    const PredicateId head = rule.head().predicate();
    for (const Literal& lit : rule.body()) {
      if (lit.IsBuiltin() || !lit.negated()) continue;
      const PredicateId body_pred = lit.predicate();
      if (!program.IsDerived(body_pred)) continue;
      if (g.nodes_[body_pred].component == g.nodes_[head].component) {
        g.stratified_ = Status::InvalidArgument(
            StrCat("program is not stratified: ", head.ToString(),
                   " depends on the negation of ", body_pred.ToString(),
                   " within the same recursive clique"));
      }
    }
  }
  if (g.stratified_.ok()) {
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 1000) {
      changed = false;
      for (const Rule& rule : program.rules()) {
        const PredicateId head = rule.head().predicate();
        int& hs = g.nodes_[head].stratum;
        for (const Literal& lit : rule.body()) {
          if (lit.IsBuiltin()) continue;
          const PredicateId body_pred = lit.predicate();
          if (!program.IsDerived(body_pred)) continue;
          int bs = g.nodes_[body_pred].stratum;
          int need = lit.negated() ? bs + 1 : bs;
          if (hs < need) {
            hs = need;
            changed = true;
          }
        }
      }
    }
  }

  // Transitive dependencies (derived predicates only) via DFS from each node
  // over head->body edges.
  for (const PredicateId& pred : program.DerivedPredicates()) {
    std::set<PredicateId> visited;
    std::vector<PredicateId> stack{pred};
    while (!stack.empty()) {
      PredicateId cur = stack.back();
      stack.pop_back();
      auto it = uses.find(cur);
      if (it == uses.end()) continue;
      for (const PredicateId& next : it->second) {
        if (visited.insert(next).second) stack.push_back(next);
      }
    }
    g.depends_[pred] = std::vector<PredicateId>(visited.begin(), visited.end());
  }

  // Keep the direct adjacency around for dataflow clients. `graph` holds
  // the body -> head edges (including ensured empty nodes), `uses` the
  // reverse; both were built in deterministic rule order.
  g.uses_ = std::move(uses);
  g.dependents_ = std::move(graph);

  return g;
}

const std::vector<PredicateId>& DependencyGraph::BodyPredicatesOf(
    const PredicateId& head) const {
  static const std::vector<PredicateId> kEmpty;
  auto it = uses_.find(head);
  return it == uses_.end() ? kEmpty : it->second;
}

const std::vector<PredicateId>& DependencyGraph::DependentsOf(
    const PredicateId& body) const {
  static const std::vector<PredicateId> kEmpty;
  auto it = dependents_.find(body);
  return it == dependents_.end() ? kEmpty : it->second;
}

bool DependencyGraph::IsRecursive(const PredicateId& pred) const {
  return CliqueIndex(pred) >= 0;
}

int DependencyGraph::CliqueIndex(const PredicateId& pred) const {
  auto it = nodes_.find(pred);
  if (it == nodes_.end() || it->second.component < 0) return -1;
  return component_clique_[it->second.component];
}

int DependencyGraph::Stratum(const PredicateId& pred) const {
  auto it = nodes_.find(pred);
  return it == nodes_.end() ? 0 : it->second.stratum;
}

Status DependencyGraph::CheckStratified() const { return stratified_; }

bool DependencyGraph::DependsOn(const PredicateId& user,
                                const PredicateId& used) const {
  auto it = depends_.find(user);
  if (it == depends_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), used) !=
         it->second.end();
}

std::string DependencyGraph::ToString() const {
  std::ostringstream os;
  os << "derived (bottom-up):";
  for (const PredicateId& pred : topo_order_) {
    os << ' ' << pred.ToString();
    int ci = CliqueIndex(pred);
    if (ci >= 0) os << "[C" << ci << "]";
  }
  os << "\n";
  for (size_t i = 0; i < cliques_.size(); ++i) {
    os << "C" << i << ": " << cliques_[i].ToString() << "\n";
  }
  return os.str();
}

}  // namespace ldl
