# Empty dependencies file for ldl_testing.
# This may be replaced when dependencies are built.
