// Golden answer sets for the checked-in example programs: every query
// embedded in examples/*.ldl is evaluated through the full optimized path
// and its sorted answers are pinned here. A failure means the engine's
// semantics drifted (or an example changed without updating its golden).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/query_eval.h"
#include "ldl/ldl.h"

#ifndef LDLOPT_SOURCE_DIR
#error "tests/CMakeLists.txt must define LDLOPT_SOURCE_DIR"
#endif

namespace ldl {
namespace {

std::string ReadExample(const std::string& name) {
  std::string path = std::string(LDLOPT_SOURCE_DIR) + "/examples/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Evaluates `goal` over the example and returns the canonical answers as
/// "(a, b)" strings — the same rendering the goldens below are written in.
std::vector<std::string> Answers(LdlSystem* sys, const std::string& goal) {
  auto result = sys->Query(goal);
  EXPECT_TRUE(result.ok()) << goal << ": " << result.status();
  std::vector<std::string> out;
  if (!result.ok()) return out;
  for (const Tuple& t : CanonicalAnswers(result->answers)) {
    std::string row = "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) row += ", ";
      row += t[i].ToString();
    }
    row += ")";
    out.push_back(std::move(row));
  }
  return out;
}

TEST(ExamplesGoldenTest, Ancestor) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ReadExample("ancestor.ldl")).ok());
  EXPECT_EQ(Answers(&sys, "anc(bart, Y)"),
            (std::vector<std::string>{"(bart, abe)", "(bart, homer)",
                                      "(bart, orville)"}));
}

TEST(ExamplesGoldenTest, Corporate) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ReadExample("corporate.ldl")).ok());
  EXPECT_EQ(Answers(&sys, "chain(erin, Y)"),
            (std::vector<std::string>{"(erin, ann)", "(erin, bob)",
                                      "(erin, carol)", "(erin, dave)"}));
  EXPECT_EQ(Answers(&sys, "non_manager(X)"),
            (std::vector<std::string>{"(bob)", "(dave)"}));
  // Every employee above 100 manages someone, so nobody qualifies.
  EXPECT_EQ(Answers(&sys, "overpaid(X)"), std::vector<std::string>{});
  EXPECT_EQ(Answers(&sys, "band(bob, B)"),
            (std::vector<std::string>{"(bob, 9.5)"}));
}

TEST(ExamplesGoldenTest, Assembly) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ReadExample("assembly.ldl")).ok());
  EXPECT_EQ(Answers(&sys, "pricey_source(bike, P, S)"),
            (std::vector<std::string>{"(bike, frame, bolt_co)",
                                      "(bike, wheel, acme)"}));
  // The same answers with the semantic pre-optimization passes on: dead
  // rules pruned (there are none here) and unreachable adornments skipped.
  OptimizerOptions pruned;
  pruned.analyze_reachability = true;
  pruned.eliminate_dead_rules = true;
  sys.set_options(pruned);
  EXPECT_EQ(Answers(&sys, "pricey_source(bike, P, S)"),
            (std::vector<std::string>{"(bike, frame, bolt_co)",
                                      "(bike, wheel, acme)"}));
}

TEST(ExamplesGoldenTest, SameGeneration) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(ReadExample("same_generation.ldl")).ok());
  EXPECT_EQ(Answers(&sys, "sg(1, Y)"), (std::vector<std::string>{"(1, 6)"}));
  EXPECT_EQ(Answers(&sys, "sg(X, Y)"),
            (std::vector<std::string>{"(1, 6)", "(2, 6)", "(3, 7)",
                                      "(11, 12)", "(11, 15)", "(12, 13)",
                                      "(12, 15)", "(21, 22)"}));
}

TEST(ExamplesGoldenTest, EveryEmbeddedQueryEvaluates) {
  // Catch-all: examples may grow queries; each must at least evaluate.
  // (The explicit goldens above pin the ones that exist today.)
  for (const char* name : {"ancestor.ldl", "assembly.ldl", "corporate.ldl",
                           "same_generation.ldl"}) {
    LdlSystem sys;
    ASSERT_TRUE(sys.LoadProgram(ReadExample(name)).ok()) << name;
    EXPECT_FALSE(sys.pending_queries().empty()) << name;
    for (const auto& q : sys.pending_queries()) {
      auto result = sys.Query(q.goal);
      EXPECT_TRUE(result.ok())
          << name << " " << q.goal.ToString() << ": " << result.status();
    }
  }
}

}  // namespace
}  // namespace ldl
