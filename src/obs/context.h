#ifndef LDLOPT_OBS_CONTEXT_H_
#define LDLOPT_OBS_CONTEXT_H_

#include <cstddef>
#include <string_view>
#include <unordered_map>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace ldl {

class SearchTracer;  // obs/search_trace.h

/// The observability handle threaded through the optimizer and the engine.
/// All pointers are optional and non-owning; a default-constructed context
/// is inert and costs one branch per instrumentation site, so it can be
/// carried through hot paths unconditionally.
struct TraceContext {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Search introspection (obs/search_trace.h): candidate orders, memo
  /// lattice, per-clique method races. Consulted only by the optimizer;
  /// sites must check both non-null and enabled() before building labels.
  SearchTracer* search = nullptr;
  /// Per-query resource meter; Relation/Database storage and the NR-OPT
  /// memo charge bytes here when attached (obs/resource.h).
  ResourceAccountant* accountant = nullptr;
  /// Cooperative cancel/deadline/budget handle; the engine and optimizer
  /// call CheckCancel() at bounded intervals.
  CancellationToken* cancel = nullptr;

  bool active() const { return tracer != nullptr || metrics != nullptr; }

  /// Cooperative check-point: typed abort Status when the query was
  /// cancelled, its deadline passed, or an attached budget tripped. The
  /// disabled path (no token) is one branch.
  Status CheckCancel() const {
    if (cancel == nullptr) return Status::OK();
    return cancel->Check();
  }

  /// Starts a span against the tracer (inert when absent/disabled).
  Span StartSpan(std::string_view name,
                 std::string_view category = "ldl") const {
    return Span(tracer, name, category);
  }

  /// Bumps a named counter (no-op without a registry). Coarse-grained
  /// sites only — hot loops should accumulate locally and export once.
  void Count(std::string_view name, uint64_t n = 1) const {
    if (metrics != nullptr) metrics->counter(name)->Increment(n);
  }

  /// Records a sample into a named histogram (no-op without a registry).
  void Observe(std::string_view name, double value) const {
    if (metrics != nullptr) metrics->histogram(name)->Record(value);
  }

  /// Sets a named gauge (no-op without a registry).
  void Set(std::string_view name, double value) const {
    if (metrics != nullptr) metrics->gauge(name)->Set(value);
  }
};

/// Measured per-operator facts from one execution, keyed by node identity
/// (the PlanNode address for processing-tree execution). This is what
/// EXPLAIN ANALYZE prints next to the optimizer's estimates.
struct NodeActuals {
  size_t executions = 0;       ///< times the node was actually evaluated
  size_t memo_hits = 0;        ///< times a prior result was reused (tabling)
  /// Total tuples produced across real evaluations. A memo hit replays a
  /// result that was already counted, so it must NOT re-add rows here —
  /// otherwise EXPLAIN ANALYZE double-counts nodes executed under
  /// memoization. The per-evaluation average (out_rows / executions) is
  /// what pairs with the optimizer's per-binding cardinality estimate.
  size_t out_rows = 0;
  size_t tuples_examined = 0;  ///< work done inside the node (inclusive)
  double wall_ms = 0;          ///< wall time across evaluations (inclusive)

  /// Average rows per real evaluation (0 when never executed).
  double RowsPerExecution() const {
    return executions == 0
               ? 0.0
               : static_cast<double>(out_rows) / static_cast<double>(executions);
  }
};

struct ExecutionProfile {
  std::unordered_map<const void*, NodeActuals> nodes;

  const NodeActuals* Find(const void* node) const {
    auto it = nodes.find(node);
    return it == nodes.end() ? nullptr : &it->second;
  }
};

}  // namespace ldl

#endif  // LDLOPT_OBS_CONTEXT_H_
