file(REMOVE_RECURSE
  "CMakeFiles/bench_strategy_scaling.dir/bench_strategy_scaling.cc.o"
  "CMakeFiles/bench_strategy_scaling.dir/bench_strategy_scaling.cc.o.d"
  "bench_strategy_scaling"
  "bench_strategy_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategy_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
