file(REMOVE_RECURSE
  "CMakeFiles/bench_opt_recursive.dir/bench_opt_recursive.cc.o"
  "CMakeFiles/bench_opt_recursive.dir/bench_opt_recursive.cc.o.d"
  "bench_opt_recursive"
  "bench_opt_recursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
