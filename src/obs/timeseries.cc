#include "obs/timeseries.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"

namespace ldl {

namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

void TimeSeriesSampler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread(&TimeSeriesSampler::Loop, this);
}

void TimeSeriesSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool TimeSeriesSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void TimeSeriesSampler::Loop() {
  // Sample immediately so even a short-lived workload leaves a first point,
  // then on every period boundary until Stop.
  SampleOnce();
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, options_.period,
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void TimeSeriesSampler::Record(const std::string& name, double t,
                               double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeriesRing(options_.capacity)).first;
  }
  it->second.Push(t, value);
}

void TimeSeriesSampler::SampleOnce() {
  // Read + push under one lock: concurrent SampleOnce calls (background
  // thread vs a scrape-triggered sample) must not interleave a stale
  // instrument reading after a newer one, or series lose time/monotone
  // order. The lock is sampler-local — query threads never touch it, and
  // the instrument reads inside are relaxed atomics — so the longer
  // critical section only serializes samplers against each other.
  std::lock_guard<std::mutex> lock(mu_);
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  std::vector<std::pair<std::string, double>> samples;
  if (options_.metrics != nullptr) {
    for (const auto& [name, value] : options_.metrics->CounterValues()) {
      samples.emplace_back(name, static_cast<double>(value));
    }
    for (const auto& [name, value] : options_.metrics->GaugeValues()) {
      samples.emplace_back(name, value);
    }
    for (const auto& [name, hist] : options_.metrics->HistogramEntries()) {
      samples.emplace_back(StrCat(name, ".count"),
                           static_cast<double>(hist->count()));
      samples.emplace_back(StrCat(name, ".p50"), hist->percentile(0.50));
      samples.emplace_back(StrCat(name, ".p99"), hist->percentile(0.99));
    }
  }
  if (options_.accountant != nullptr) {
    const ResourceAccountant* a = options_.accountant;
    samples.emplace_back("resource.current_bytes",
                         static_cast<double>(a->current_bytes()));
    samples.emplace_back("resource.peak_bytes",
                         static_cast<double>(a->peak_bytes()));
    samples.emplace_back("resource.tuples_examined",
                         static_cast<double>(a->tuples_examined()));
    samples.emplace_back("resource.tuples_derived",
                         static_cast<double>(a->tuples_derived()));
  }

  for (const auto& [name, value] : samples) Record(name, t, value);
  ++samples_;
}

uint64_t TimeSeriesSampler::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::map<std::string, std::vector<TimeSeriesPoint>>
TimeSeriesSampler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::vector<TimeSeriesPoint>> out;
  for (const auto& [name, ring] : series_) out.emplace(name, ring.Snapshot());
  return out;
}

void TimeSeriesSampler::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"period_ms\":"
     << JsonNumber(static_cast<double>(options_.period.count()))
     << ",\"samples\":" << samples_ << ",\"series\":{";
  bool first = true;
  for (const auto& [name, ring] : series_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"t\":[";
    const std::vector<TimeSeriesPoint> points = ring.Snapshot();
    for (size_t i = 0; i < points.size(); ++i) {
      if (i) os << ",";
      os << JsonNumber(points[i].t_seconds);
    }
    os << "],\"v\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i) os << ",";
      os << JsonNumber(points[i].value);
    }
    os << "]}";
  }
  os << "}}";
}

}  // namespace ldl
