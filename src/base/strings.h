#ifndef LDLOPT_BASE_STRINGS_H_
#define LDLOPT_BASE_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ldl {

/// Concatenates the string representations of all arguments (ostream-based).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  // void cast: with an empty pack the fold reduces to plain `os`.
  static_cast<void>((os << ... << args));
  return os.str();
}

/// Appends the string representations of all arguments to `*dest`.
template <typename... Args>
void StrAppend(std::string* dest, const Args&... args) {
  dest->append(StrCat(args...));
}

/// Joins `parts` with `sep`, applying `fmt` to each element.
template <typename Container, typename Formatter>
std::string StrJoin(const Container& parts, std::string_view sep,
                    Formatter fmt) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    os << fmt(p);
  }
  return os.str();
}

/// Joins string-like `parts` with `sep`.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  return StrJoin(parts, sep, [](const auto& s) { return s; });
}

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Escapes `text` for inclusion inside a double-quoted JSON string
/// (quotes, backslashes, control characters). Does not add the quotes.
std::string JsonEscape(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

}  // namespace ldl

#endif  // LDLOPT_BASE_STRINGS_H_
