file(REMOVE_RECURSE
  "CMakeFiles/bench_kbz_quality.dir/bench_kbz_quality.cc.o"
  "CMakeFiles/bench_kbz_quality.dir/bench_kbz_quality.cc.o.d"
  "bench_kbz_quality"
  "bench_kbz_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kbz_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
