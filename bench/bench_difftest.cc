// Experiment E13 — throughput of the differential-testing harness: how many
// randomly generated recursive programs per second the full method x
// strategy x annotation matrix sustains, per EDB shape and per matrix
// slice. The harness is only useful if iterations are cheap enough to run
// hundreds per CI job; this table is the budget behind the CI difftest job
// (`ldl_difftest --seed 1..5 --iters 50`).

#include <benchmark/benchmark.h>

#include <string>

#include "base/rng.h"
#include "bench_util.h"
#include "testing/difftest.h"
#include "testing/program_gen.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

struct SweepResult {
  size_t iterations = 0;
  size_t configs = 0;
  size_t failures = 0;
  double ms = 0;
};

SweepResult Sweep(const testing::DiffTestOptions& options, uint64_t seed,
                  size_t iters) {
  SweepResult r;
  Rng rng(seed);
  Stopwatch watch;
  for (size_t i = 0; i < iters; ++i) {
    testing::GeneratedProgram prog =
        testing::GenerateProgram(&rng, options.gen);
    testing::DiffOutcome outcome = testing::RunDifferential(prog, options);
    ++r.iterations;
    r.configs += outcome.configs.size();
    if (outcome.failed() || outcome.reference_failed) ++r.failures;
  }
  r.ms = watch.ElapsedMs();
  return r;
}

}  // namespace

void PrintExperiment() {
  constexpr uint64_t kSeed = 1;
  constexpr size_t kIters = 40;

  bench::Banner("E13", "differential-testing throughput "
                       "(full matrix per generated program)");
  {
    Table table({"shape", "iters", "configs", "failures", "ms", "iters/s"});
    for (testing::EdbShape shape :
         {testing::EdbShape::kChain, testing::EdbShape::kTree,
          testing::EdbShape::kCycle, testing::EdbShape::kRandom,
          testing::EdbShape::kMixed}) {
      testing::DiffTestOptions options;
      options.gen.shape = shape;
      SweepResult r = Sweep(options, kSeed, kIters);
      table.AddRow({testing::EdbShapeToString(shape),
                    std::to_string(r.iterations), std::to_string(r.configs),
                    std::to_string(r.failures), Fmt(r.ms, "%.1f"),
                    Fmt(r.iterations / (r.ms / 1000.0), "%.0f")});
    }
    table.Print();
  }

  bench::Banner("E13b", "matrix-slice cost (mixed shapes; where the "
                        "difftest budget goes)");
  {
    Table table({"slice", "configs", "ms", "iters/s"});
    struct Slice {
      const char* name;
      bool methods, strategies, tree, metamorphic;
    };
    for (const Slice& s : {Slice{"reference only", false, false, false, false},
                           Slice{"+ recursion methods", true, false, false,
                                 false},
                           Slice{"+ optimizer strategies", true, true, false,
                                 false},
                           Slice{"+ processing trees", true, true, true,
                                 false},
                           Slice{"full (+ metamorphic)", true, true, true,
                                 true}}) {
      testing::DiffTestOptions options;
      options.run_naive = options.run_magic = options.run_counting =
          s.methods;
      if (!s.strategies) options.strategies.clear();
      options.run_tree_interpreter = s.tree;
      options.run_metamorphic = s.metamorphic;
      SweepResult r = Sweep(options, kSeed, kIters);
      table.AddRow({s.name, std::to_string(r.configs), Fmt(r.ms, "%.1f"),
                    Fmt(r.iterations / (r.ms / 1000.0), "%.0f")});
    }
    table.Print();
  }
}

namespace {

void BM_FullMatrixIteration(benchmark::State& state) {
  testing::DiffTestOptions options;
  Rng rng(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    testing::GeneratedProgram prog =
        testing::GenerateProgram(&rng, options.gen);
    testing::DiffOutcome outcome = testing::RunDifferential(prog, options);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_FullMatrixIteration)->Arg(1)->Arg(2);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("difftest");
  return 0;
}
