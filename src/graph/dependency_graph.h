#ifndef LDLOPT_GRAPH_DEPENDENCY_GRAPH_H_
#define LDLOPT_GRAPH_DEPENDENCY_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "base/status.h"

namespace ldl {

/// A maximal set of mutually recursive predicates (paper section 2: the
/// implication relation partitions recursive predicates into disjoint
/// "recursive cliques"), together with the rules that define them.
struct RecursiveClique {
  std::vector<PredicateId> predicates;
  /// Indices into Program::rules() of every rule whose head is in the
  /// clique. Partitioned into:
  std::vector<size_t> recursive_rules;  ///< body mentions a clique predicate
  std::vector<size_t> exit_rules;       ///< body does not

  bool Contains(const PredicateId& pred) const;
  std::string ToString() const;
};

/// The predicate dependency graph of a rule base: P -> Q when P occurs in
/// the body of a rule with head Q. Strongly connected components with a
/// cycle are the recursive cliques; the condensation provides the "follow"
/// partial order and the stratification used for negation.
class DependencyGraph {
 public:
  /// Builds the graph for `program`. The program must outlive the graph.
  static DependencyGraph Build(const Program& program);

  /// True iff `pred` belongs to a recursive clique (including direct
  /// self-recursion).
  bool IsRecursive(const PredicateId& pred) const;

  /// Index into cliques() or -1.
  int CliqueIndex(const PredicateId& pred) const;

  const std::vector<RecursiveClique>& cliques() const { return cliques_; }

  /// All derived predicates in bottom-up dependency order: if P is used to
  /// define Q (directly or transitively), P precedes Q. Mutually recursive
  /// predicates appear adjacently in clique order.
  const std::vector<PredicateId>& topological_order() const {
    return topo_order_;
  }

  /// Bottom-up order grouped by strongly connected component: each inner
  /// vector is either a single non-recursive predicate or the predicates of
  /// one recursive clique.
  const std::vector<std::vector<PredicateId>>& topological_components() const {
    return topo_components_;
  }

  /// Stratum number of a derived predicate (0 = lowest). Base predicates
  /// report stratum 0. Meaningful only when CheckStratified() passed.
  int Stratum(const PredicateId& pred) const;

  /// Verifies that no predicate depends on its own negation (stratified
  /// negation, [BN 87] in the paper). Returns kInvalidArgument otherwise.
  Status CheckStratified() const;

  /// True iff `user` depends (directly or transitively) on `used`;
  /// the paper's `used => user` implication.
  bool DependsOn(const PredicateId& user, const PredicateId& used) const;

  /// Direct adjacency exports for dataflow clients (analysis/dataflow.h).
  /// Derived body predicates of `head`'s rules, in rule/body order (one
  /// entry per occurrence, duplicates preserved). Empty for unknown preds.
  const std::vector<PredicateId>& BodyPredicatesOf(
      const PredicateId& head) const;
  /// Derived heads whose rules mention `body` positively or negated, in
  /// rule order (one entry per occurrence). Empty for unknown preds.
  const std::vector<PredicateId>& DependentsOf(const PredicateId& body) const;

  std::string ToString() const;

 private:
  struct NodeInfo {
    int component = -1;
    int stratum = 0;
  };

  const Program* program_ = nullptr;
  std::unordered_map<PredicateId, NodeInfo, PredicateIdHash> nodes_;
  std::vector<RecursiveClique> cliques_;
  // component id -> clique index (-1 for non-recursive components).
  std::vector<int> component_clique_;
  std::vector<PredicateId> topo_order_;
  std::vector<std::vector<PredicateId>> topo_components_;
  // Transitive dependency sets, keyed by derived predicate: the set of
  // derived predicates it depends on.
  std::unordered_map<PredicateId, std::vector<PredicateId>, PredicateIdHash>
      depends_;
  // Direct adjacency, both directions (see BodyPredicatesOf/DependentsOf).
  std::unordered_map<PredicateId, std::vector<PredicateId>, PredicateIdHash>
      uses_;        // head -> derived body predicates
  std::unordered_map<PredicateId, std::vector<PredicateId>, PredicateIdHash>
      dependents_;  // body -> derived heads using it
  Status stratified_ = Status::OK();
};

}  // namespace ldl

#endif  // LDLOPT_GRAPH_DEPENDENCY_GRAPH_H_
