#include "analysis/diagnostic.h"

#include <algorithm>
#include <sstream>

#include "base/strings.h"

namespace ldl {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string SourceLocation::ToString() const {
  if (rule_index == SIZE_MAX) return context;
  if (context.empty()) return StrCat("rule ", rule_index);
  return StrCat("rule ", rule_index, ": ", context);
}

std::string Diagnostic::ToString() const {
  std::string out = StrCat(SeverityToString(severity), " ", code, ": ",
                           message);
  if (!location.empty()) {
    out += StrCat("  (", location.ToString(), ")");
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& diagnostic) {
  return os << diagnostic.ToString();
}

void DiagnosticSink::Report(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) error_count_++;
  if (diagnostic.severity == Severity::kWarning) warning_count_++;
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::Error(std::string code, std::string message,
                           SourceLocation loc) {
  Report({std::move(code), Severity::kError, std::move(message),
          std::move(loc)});
}

void DiagnosticSink::Warning(std::string code, std::string message,
                             SourceLocation loc) {
  Report({std::move(code), Severity::kWarning, std::move(message),
          std::move(loc)});
}

void DiagnosticSink::Note(std::string code, std::string message,
                          SourceLocation loc) {
  Report({std::move(code), Severity::kNote, std::move(message),
          std::move(loc)});
}

bool DiagnosticSink::Has(const std::string& code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

size_t DiagnosticSink::Count(const std::string& code) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) n++;
  }
  return n;
}

void DiagnosticSink::StableSortByLocation() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.location.rule_index != b.location.rule_index) {
                       return a.location.rule_index < b.location.rule_index;
                     }
                     return a.code < b.code;
                   });
}

std::string DiagnosticSink::ToString() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) os << d.ToString() << '\n';
  return os.str();
}

Status DiagnosticSink::ToStatus(StatusCode code) const {
  if (!HasErrors()) return Status::OK();
  std::ostringstream os;
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != Severity::kError) continue;
    if (!first) os << "; ";
    first = false;
    os << d.code << ": " << d.message;
    if (!d.location.empty()) os << " (" << d.location.ToString() << ")";
  }
  return Status(code, os.str());
}

}  // namespace ldl
