#include "engine/fixpoint.h"

#include <algorithm>
#include <chrono>

#include "base/strings.h"
#include "graph/dependency_graph.h"

namespace ldl {

const char* RecursionMethodToString(RecursionMethod method) {
  switch (method) {
    case RecursionMethod::kNaive:
      return "naive";
    case RecursionMethod::kSemiNaive:
      return "seminaive";
    case RecursionMethod::kMagic:
      return "magic";
    case RecursionMethod::kCounting:
      return "counting";
  }
  return "?";
}

std::string FixpointStats::ToString() const {
  return StrCat("iterations=", iterations, " ", counters.ToString());
}

void FixpointStats::ExportTo(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->counter("engine.fixpoint.iterations")->Increment(iterations);
  counters.ExportTo(metrics);
}

void FixpointStats::WriteIterationsJson(std::ostream& os) const {
  os << "[";
  for (size_t i = 0; i < per_iteration.size(); ++i) {
    const FixpointIteration& it = per_iteration[i];
    if (i > 0) os << ",";
    os << "\n  {\"clique\": \"" << JsonEscape(it.clique)
       << "\", \"method\": \"" << JsonEscape(it.method)
       << "\", \"iteration\": " << it.iteration
       << ", \"delta_tuples\": " << it.delta_tuples
       << ", \"derivations\": " << it.derivations
       << ", \"wall_ms\": " << it.wall_ms << "}";
  }
  if (!per_iteration.empty()) os << "\n";
  os << "]\n";
}

namespace {

/// Shared machinery for evaluating one program bottom-up, one strongly
/// connected component at a time.
class ProgramEvaluator {
 public:
  ProgramEvaluator(const Program& program, RecursionMethod method,
                   Database* base, Database* scratch, FixpointStats* stats,
                   const FixpointOptions& options)
      : program_(program),
        method_(method),
        base_(base),
        scratch_(scratch),
        stats_(stats),
        options_(options) {}

  Status Run() {
    DependencyGraph graph = DependencyGraph::Build(program_);
    LDL_RETURN_NOT_OK(graph.CheckStratified());
    for (const auto& component : graph.topological_components()) {
      // Ensure relations exist for every member up front.
      for (const PredicateId& pred : component) scratch_->GetOrCreate(pred);
      bool recursive = graph.IsRecursive(component[0]);
      if (!recursive) {
        LDL_RETURN_NOT_OK(EvaluateOnce(component[0]));
      } else if (method_ == RecursionMethod::kNaive) {
        LDL_RETURN_NOT_OK(EvaluateCliqueNaive(component, graph));
      } else {
        LDL_RETURN_NOT_OK(EvaluateCliqueSemiNaive(component, graph));
      }
    }
    return Status::OK();
  }

 private:
  Relation* Resolve(const Literal& lit) {
    const PredicateId pred = lit.predicate();
    if (program_.IsDerived(pred)) return scratch_->GetOrCreate(pred);
    return base_->Find(pred);
  }

  RelationResolver MakeResolver() {
    return [this](const Literal& lit, size_t) { return Resolve(lit); };
  }

  RuleEvalOptions OptionsForRule(size_t rule_index) const {
    RuleEvalOptions opts;
    opts.max_derivations = options_.max_derivations;
    opts.cancel = options_.trace.cancel;
    opts.accountant = options_.trace.accountant;
    auto it = options_.rule_orders.find(rule_index);
    if (it != options_.rule_orders.end()) opts.order = it->second;
    return opts;
  }

  /// Transient per-round relations (deltas, rule temporaries) count against
  /// the query's byte budget too — they are where a blow-up shows up first.
  void Attach(Relation* rel) const {
    if (options_.trace.accountant != nullptr) {
      rel->set_accountant(options_.trace.accountant);
    }
  }

  /// Per-round check-point: polls cancellation/deadline/budget and charges
  /// the round into the accountant.
  Status RoundCheckpoint() {
    if (options_.trace.accountant != nullptr) {
      options_.trace.accountant->AddFixpointRounds(1);
    }
    return options_.trace.CheckCancel();
  }

  /// The method name to stamp on recorded iterations: the caller's label
  /// (e.g. "magic" for a rewritten program running semi-naive) when given,
  /// else the raw fixpoint discipline.
  std::string_view MethodLabel(std::string_view discipline) const {
    return options_.method_label.empty()
               ? discipline
               : std::string_view(options_.method_label);
  }

  void RecordIteration(const PredicateId& clique_rep,
                       std::string_view method, size_t round, size_t delta,
                       size_t derivations, double wall_ms) {
    FixpointIteration it;
    it.clique = clique_rep.ToString();
    it.method = std::string(method);
    it.iteration = round;
    it.delta_tuples = delta;
    it.derivations = derivations;
    it.wall_ms = wall_ms;
    stats_->per_iteration.push_back(std::move(it));
    if (options_.trace.metrics != nullptr) {
      options_.trace.Observe(StrCat("engine.fixpoint.iteration_ms.", method),
                             wall_ms);
    }
  }

  // Non-recursive predicate: fire each of its rules once.
  Status EvaluateOnce(const PredicateId& pred) {
    Span span = options_.trace.StartSpan("eval-once", "engine");
    if (span.active()) span.AddArg("predicate", pred.ToString());
    LDL_RETURN_NOT_OK(options_.trace.CheckCancel());
    Relation* out = scratch_->GetOrCreate(pred);
    RelationResolver resolve = MakeResolver();
    for (size_t rule_index : program_.RulesFor(pred)) {
      auto n = EvaluateRule(program_.rules()[rule_index], resolve, out,
                            &stats_->counters, OptionsForRule(rule_index));
      LDL_RETURN_NOT_OK(n.status());
    }
    return Status::OK();
  }

  // Naive fixpoint: every round re-fires every rule of the clique against
  // the full current relations, until a round adds nothing.
  Status EvaluateCliqueNaive(const std::vector<PredicateId>& members,
                             const DependencyGraph& graph) {
    const RecursiveClique& clique =
        graph.cliques()[graph.CliqueIndex(members[0])];
    Span span = options_.trace.StartSpan("fixpoint", "engine");
    if (span.active()) {
      span.AddArg("clique", members[0].ToString());
      span.AddArg("method", "naive");
    }
    RelationResolver resolve = MakeResolver();
    std::vector<size_t> all_rules = clique.exit_rules;
    all_rules.insert(all_rules.end(), clique.recursive_rules.begin(),
                     clique.recursive_rules.end());
    size_t round = 0;
    while (true) {
      if (++round > options_.max_iterations) {
        return Status::ResourceExhausted(
            StrCat("naive fixpoint exceeded ", options_.max_iterations,
                   " iterations for ", clique.ToString()));
      }
      stats_->iterations++;
      LDL_RETURN_NOT_OK(RoundCheckpoint());
      const size_t deriv_before = stats_->counters.derivations;
      std::chrono::steady_clock::time_point round_start;
      if (options_.record_iterations) {
        round_start = std::chrono::steady_clock::now();
      }
      // Round-based: evaluate all rules into per-predicate temporaries,
      // then merge, so each round sees exactly the previous round's state.
      std::unordered_map<PredicateId, Relation, PredicateIdHash> temp;
      for (const PredicateId& pred : members) {
        Attach(&temp.emplace(pred, Relation(pred.name, pred.arity))
                    .first->second);
      }
      for (size_t rule_index : all_rules) {
        const Rule& rule = program_.rules()[rule_index];
        auto n = EvaluateRule(rule, resolve, &temp.at(rule.head().predicate()),
                              &stats_->counters, OptionsForRule(rule_index));
        LDL_RETURN_NOT_OK(n.status());
      }
      size_t added = 0;
      for (const PredicateId& pred : members) {
        added += scratch_->GetOrCreate(pred)->InsertAll(temp.at(pred));
      }
      options_.trace.Count("engine.fixpoint.rounds");
      options_.trace.Observe("engine.fixpoint.delta_tuples",
                             static_cast<double>(added));
      if (options_.record_iterations) {
        // Every naive round does full-rule work, including the final
        // added == 0 convergence round — record them all.
        RecordIteration(members[0], MethodLabel("naive"), round, added,
                        stats_->counters.derivations - deriv_before,
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - round_start)
                            .count());
      }
      if (added == 0) break;
    }
    if (span.active()) span.AddArg("rounds", std::to_string(round));
    return Status::OK();
  }

  // Semi-naive fixpoint: exit rules once; then each round fires each
  // recursive rule once per occurrence of a clique predicate in its body,
  // with that occurrence reading the previous round's delta.
  Status EvaluateCliqueSemiNaive(const std::vector<PredicateId>& members,
                                 const DependencyGraph& graph) {
    const RecursiveClique& clique =
        graph.cliques()[graph.CliqueIndex(members[0])];
    Span span = options_.trace.StartSpan("fixpoint", "engine");
    if (span.active()) {
      span.AddArg("clique", members[0].ToString());
      span.AddArg("method", "seminaive");
    }

    auto in_clique = [&clique](const Literal& lit) {
      return !lit.IsBuiltin() && !lit.negated() &&
             clique.Contains(lit.predicate());
    };

    std::unordered_map<PredicateId, Relation, PredicateIdHash> delta;
    for (const PredicateId& pred : members) {
      Attach(&delta.emplace(pred, Relation(pred.name, pred.arity))
                  .first->second);
    }

    // Seed with the exit rules.
    RelationResolver resolve = MakeResolver();
    for (size_t rule_index : clique.exit_rules) {
      const Rule& rule = program_.rules()[rule_index];
      Relation temp(rule.head().predicate().name, rule.head().arity());
      Attach(&temp);
      auto n = EvaluateRule(rule, resolve, &temp, &stats_->counters,
                            OptionsForRule(rule_index));
      LDL_RETURN_NOT_OK(n.status());
      Relation* full = scratch_->GetOrCreate(rule.head().predicate());
      Relation& d = delta.at(rule.head().predicate());
      for (const Tuple& t : temp.tuples()) {
        if (full->Insert(t)) d.Insert(t);
      }
    }

    size_t round = 0;
    while (true) {
      if (++round > options_.max_iterations) {
        return Status::ResourceExhausted(
            StrCat("seminaive fixpoint exceeded ", options_.max_iterations,
                   " iterations for ", clique.ToString()));
      }
      stats_->iterations++;
      LDL_RETURN_NOT_OK(RoundCheckpoint());
      bool any_delta = std::any_of(
          members.begin(), members.end(),
          [&delta](const PredicateId& p) { return !delta.at(p).empty(); });
      if (!any_delta) break;
      // Work rounds only: the final empty-delta round breaks above without
      // firing a rule, so per_iteration holds iterations - 1 entries.
      const size_t deriv_before = stats_->counters.derivations;
      std::chrono::steady_clock::time_point round_start;
      if (options_.record_iterations) {
        round_start = std::chrono::steady_clock::now();
      }

      std::unordered_map<PredicateId, Relation, PredicateIdHash> new_delta;
      for (const PredicateId& pred : members) {
        Attach(&new_delta.emplace(pred, Relation(pred.name, pred.arity))
                    .first->second);
      }

      for (size_t rule_index : clique.recursive_rules) {
        const Rule& rule = program_.rules()[rule_index];
        // One differentiated firing per clique-predicate occurrence.
        for (size_t occ = 0; occ < rule.body().size(); ++occ) {
          if (!in_clique(rule.body()[occ])) continue;
          RelationResolver diff_resolve =
              [this, &delta, &in_clique, occ](const Literal& lit,
                                              size_t body_pos) -> Relation* {
            if (body_pos == occ && in_clique(lit)) {
              return &delta.at(lit.predicate());
            }
            return Resolve(lit);
          };
          Relation temp(rule.head().predicate().name, rule.head().arity());
          Attach(&temp);
          auto n = EvaluateRule(rule, diff_resolve, &temp, &stats_->counters,
                                OptionsForRule(rule_index));
          LDL_RETURN_NOT_OK(n.status());
          Relation* full = scratch_->GetOrCreate(rule.head().predicate());
          Relation& nd = new_delta.at(rule.head().predicate());
          for (const Tuple& t : temp.tuples()) {
            if (full->Insert(t)) nd.Insert(t);
          }
        }
      }
      delta = std::move(new_delta);
      if (options_.trace.metrics != nullptr || options_.record_iterations) {
        size_t added = 0;
        for (const PredicateId& pred : members) added += delta.at(pred).size();
        options_.trace.Count("engine.fixpoint.rounds");
        options_.trace.Observe("engine.fixpoint.delta_tuples",
                               static_cast<double>(added));
        if (options_.record_iterations) {
          RecordIteration(members[0], MethodLabel("seminaive"), round, added,
                          stats_->counters.derivations - deriv_before,
                          std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - round_start)
                              .count());
        }
      }
    }
    if (span.active()) span.AddArg("rounds", std::to_string(round));
    return Status::OK();
  }

  const Program& program_;
  RecursionMethod method_;
  Database* base_;
  Database* scratch_;
  FixpointStats* stats_;
  const FixpointOptions& options_;
};

}  // namespace

Status EvaluateProgram(const Program& program, RecursionMethod method,
                       Database* base, Database* scratch,
                       FixpointStats* stats, const FixpointOptions& options) {
  if (method != RecursionMethod::kNaive &&
      method != RecursionMethod::kSemiNaive) {
    return Status::InvalidArgument(
        StrCat("EvaluateProgram supports naive/seminaive, got ",
               RecursionMethodToString(method),
               " (use MagicRewrite/CountingRewrite first)"));
  }
  FixpointStats local;
  ProgramEvaluator evaluator(program, method, base, scratch, &local, options);
  Status st = evaluator.Run();
  local.ExportTo(options.trace.metrics);
  if (stats != nullptr) {
    stats->iterations += local.iterations;
    stats->counters.Add(local.counters);
    for (FixpointIteration& it : local.per_iteration) {
      stats->per_iteration.push_back(std::move(it));
    }
  }
  return st;
}

}  // namespace ldl
