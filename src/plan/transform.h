#ifndef LDLOPT_PLAN_TRANSFORM_H_
#define LDLOPT_PLAN_TRANSFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "plan/processing_tree.h"

namespace ldl {

/// The equivalence-preserving transformations of the paper's section 5.
/// Each maps a processing tree to a logically equivalent processing tree;
/// the execution space is the closure of a tree under a chosen subset of
/// these rules. The optimizer's search enumerates {MP, PR, PA} implicitly;
/// these explicit rewrites exist as the formal definition of the space, for
/// tests, and for the documented FU extension (section 8.3).

/// MP — Materialize/Pipeline: flips the materialization flag of a node.
Status TransformMp(PlanNode* node);

/// PR — Permute: reorders the children of an AND node by `permutation`
/// (a permutation of 0..n-1 over current child positions). body_order is
/// composed accordingly.
Status TransformPr(PlanNode* and_node, const std::vector<size_t>& permutation);

/// PA — Permute & Adorn: installs a c-permutation (one body order per
/// clique rule) and a recursive-method label on a CC node.
Status TransformPa(PlanNode* cc_node,
                   const std::vector<std::vector<size_t>>& c_permutation,
                   const std::string& method);

/// EL — Exchange Label: replaces the method label of a node. The label must
/// be available for the node's kind ("nested-loop"/"index-join"/"hash-join"
/// for AND, "union" for OR, "naive"/"seminaive"/"magic"/"counting" for CC,
/// "scan"/"index-scan" for leaves).
Status TransformEl(PlanNode* node, const std::string& method);

/// PS — PushSelect: records that argument position `arg` of `node`'s goal
/// is restricted (bound) — piggy-backing the selection onto the node. Pull
/// is the inverse (unbinding).
Status TransformPushSelect(PlanNode* node, size_t arg);
Status TransformPullSelect(PlanNode* node, size_t arg);

/// PP — PushProject: records the set of goal argument positions ancestors
/// need; PullProject clears it.
Status TransformPushProject(PlanNode* node, std::vector<size_t> columns);
Status TransformPullProject(PlanNode* node);

/// FU — Flatten: distributes a join over a union. Given an AND node with an
/// OR child at `child_pos`, returns a new OR node whose k-th child is a copy
/// of the AND node with the OR child replaced by the OR's k-th alternative
/// (an AND child, inlined). This is the transformation the paper's first
/// optimizer version excludes (section 5) — implemented here as the
/// documented extension, and exercised by the section 8.3 example tests.
Result<std::unique_ptr<PlanNode>> TransformFlatten(const PlanNode& and_node,
                                                   size_t child_pos);

/// FU⁻¹ — Unflatten: inverse of Flatten for an OR node whose children are
/// AND nodes identical except at one position (factored back into a single
/// AND over an OR). Returns kInvalidArgument when the pattern does not
/// match.
Result<std::unique_ptr<PlanNode>> TransformUnflatten(const PlanNode& or_node);

}  // namespace ldl

#endif  // LDLOPT_PLAN_TRANSFORM_H_
