// Tests for the observability layer (src/obs/): span lifecycle and nesting,
// the zero-allocation disabled path, the metrics registry, and the Chrome
// trace / metrics JSON exports.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <sstream>
#include <thread>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/search_trace.h"
#include "obs/trace.h"

// Global allocation counter for the zero-allocation tests. Counting is
// process-wide, so the measured block must not run concurrently with other
// allocating threads (true under gtest's single-threaded runner).
static std::atomic<uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace ldl {
namespace {

TEST(TracerTest, RecordsSpanWithDuration) {
  Tracer tracer;
  {
    Span span(&tracer, "work", "test");
    span.AddArg("k", "v");
  }
  ASSERT_EQ(tracer.event_count(), 1u);
  TraceEvent event = tracer.snapshot()[0];
  EXPECT_EQ(event.name, "work");
  EXPECT_EQ(event.category, "test");
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].first, "k");
  EXPECT_EQ(event.args[0].second, "v");
  EXPECT_GE(event.thread_id, 1u);
}

TEST(TracerTest, NestedSpansAreContainedInParentRange) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer");
    {
      Span inner(&tracer, "inner");
      // A little real work so durations are nonzero-ish but tiny.
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink += i;
    }
  }
  ASSERT_EQ(tracer.event_count(), 2u);
  auto events = tracer.snapshot();
  // Inner finishes (and records) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);
  EXPECT_LE(inner.duration_us, outer.duration_us);
}

TEST(TracerTest, TimingIsMonotonic) {
  Tracer tracer;
  uint64_t last = tracer.NowMicros();
  for (int i = 0; i < 100; ++i) {
    uint64_t now = tracer.NowMicros();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(TracerTest, FinishEndsSpanEarly) {
  Tracer tracer;
  Span span(&tracer, "early");
  span.Finish();
  EXPECT_FALSE(span.active());
  EXPECT_EQ(tracer.event_count(), 1u);
  span.Finish();  // idempotent
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(TracerTest, MoveTransfersOwnership) {
  Tracer tracer;
  {
    Span a(&tracer, "moved");
    Span b = std::move(a);
    EXPECT_FALSE(a.active());
    EXPECT_TRUE(b.active());
  }
  // Exactly one event despite two Span objects.
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  {
    Span span(&tracer, "skipped");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, DisabledPathDoesNotAllocate) {
  Tracer tracer;
  tracer.set_enabled(false);
  TraceContext null_context;  // no tracer, no metrics
  TraceContext disabled{&tracer, nullptr};

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    Span a(nullptr, "null-tracer");
    a.AddArg("key", "value");
    Span b(&tracer, "disabled-tracer");
    b.AddArg("key", "value");
    b.Finish();
    Span c = null_context.StartSpan("context");
    null_context.Count("counter");
    null_context.Observe("histogram", 1.0);
    null_context.Set("gauge", 1.0);
    Span d = disabled.StartSpan("disabled-context");
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer tracer;
  {
    Span span(&tracer, "na\"me", "cat");
    span.AddArg("detail", "line1\nline2");
  }
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("na\\\"me"), std::string::npos);   // escaped quote
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);  // escaped \n
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);  // no raw newline
}

TEST(TracerTest, SpansFromMultipleThreadsGetDistinctIds) {
  Tracer tracer;
  std::thread t1([&] { Span span(&tracer, "t1"); });
  std::thread t2([&] { Span span(&tracer, "t2"); });
  t1.join();
  t2.join();
  auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
}

TEST(MetricsTest, CounterGaugeHistogram) {
  MetricsRegistry registry;
  registry.counter("c")->Increment();
  registry.counter("c")->Increment(4);
  EXPECT_EQ(registry.counter_value("c"), 5u);
  EXPECT_EQ(registry.counter_value("missing"), 0u);

  registry.gauge("g")->Set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge_value("g"), 2.5);

  Histogram* h = registry.histogram("h");
  h->Record(1);
  h->Record(3);
  h->Record(8);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 12);
  EXPECT_DOUBLE_EQ(h->min(), 1);
  EXPECT_DOUBLE_EQ(h->max(), 8);
  EXPECT_DOUBLE_EQ(h->mean(), 4);
  EXPECT_EQ(registry.find_histogram("h"), h);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
}

TEST(MetricsTest, HistogramPercentileBounds) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0);  // empty
  for (int v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1);
  EXPECT_DOUBLE_EQ(h.percentile(1), 100);
  // Interpolation inside a log2 bucket is within a factor of 2 of the true
  // order statistic, and percentiles are monotone in p.
  double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 25);
  EXPECT_LE(p50, 100);
  EXPECT_LE(h.percentile(0.25), p50);
  EXPECT_LE(p50, h.percentile(0.95));
}

TEST(MetricsTest, HistogramPercentileSingleValueClampsToObserved) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(7);
  // The containing bucket is [4, 8) but the observed range is [7, 7]: every
  // percentile must clamp to the one real value.
  for (double p : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 7) << "p=" << p;
  }
}

TEST(MetricsTest, HistogramJsonAndTextIncludePercentiles) {
  MetricsRegistry registry;
  registry.histogram("delta")->Record(4);
  std::ostringstream os;
  registry.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string text = registry.ToString();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c = registry.counter("stable");
  for (int i = 0; i < 100; ++i) {
    registry.counter("other" + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("stable"), c);
}

TEST(MetricsTest, WriteJsonShape) {
  MetricsRegistry registry;
  registry.counter("engine.tuples")->Increment(7);
  registry.gauge("fanout")->Set(1.5);
  registry.histogram("delta")->Record(4);
  std::ostringstream os;
  registry.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.tuples\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(ContextTest, ActiveAndInert) {
  TraceContext inert;
  EXPECT_FALSE(inert.active());

  Tracer tracer;
  MetricsRegistry metrics;
  TraceContext context{&tracer, &metrics};
  EXPECT_TRUE(context.active());
  {
    Span span = context.StartSpan("spanned", "test");
    EXPECT_TRUE(span.active());
  }
  context.Count("hits", 2);
  context.Observe("sizes", 10);
  context.Set("level", 3);
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_EQ(metrics.counter_value("hits"), 2u);
  EXPECT_EQ(metrics.find_histogram("sizes")->count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.gauge_value("level"), 3);
}

TEST(ContextTest, ExecutionProfileLookup) {
  ExecutionProfile profile;
  int node = 0;
  EXPECT_EQ(profile.Find(&node), nullptr);
  profile.nodes[&node].out_rows = 9;
  ASSERT_NE(profile.Find(&node), nullptr);
  EXPECT_EQ(profile.Find(&node)->out_rows, 9u);
}

TEST(SearchTracerTest, RecordsCandidatesUnderScopes) {
  SearchTracer tracer;
  uint32_t root = tracer.BeginScope("p anc.bf/2");
  tracer.RecordCandidate({1, 0}, 12.5, CandidateDisposition::kKept,
                         "textual order");
  {
    SearchScope inner(&tracer, "rule 0 [bf]");
    tracer.RecordCandidateStep({1}, 2, 99.0,
                               CandidateDisposition::kPrunedBound);
  }
  ASSERT_EQ(tracer.candidates().size(), 2u);
  const SearchCandidate& kept = tracer.candidates()[0];
  EXPECT_EQ(kept.scope, root);
  EXPECT_EQ(tracer.OrderOf(kept), (std::vector<size_t>{1, 0}));
  EXPECT_EQ(tracer.DetailOf(kept), "textual order");
  const SearchCandidate& pruned = tracer.candidates()[1];
  EXPECT_EQ(tracer.OrderOf(pruned), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(tracer.scopes()[pruned.scope].label, "rule 0 [bf]");
  EXPECT_EQ(tracer.scopes()[pruned.scope].parent,
            static_cast<int32_t>(root));
  EXPECT_EQ(tracer.CountDisposition(CandidateDisposition::kKept), 1u);
  EXPECT_EQ(tracer.CountDisposition(CandidateDisposition::kPrunedBound), 1u);
}

TEST(SearchTracerTest, MemoLatticeInternsAndResolvesHits) {
  SearchTracer tracer;
  uint32_t anc = tracer.InternMemoNode("anc.bf/2");
  uint32_t par = tracer.InternMemoNode("par.bf/2");
  EXPECT_EQ(tracer.InternMemoNode("anc.bf/2"), anc);  // interned once
  tracer.SetMemoNode(anc, 15.0, 5.0, true, "counting", "");
  tracer.AddMemoEdge(anc, par);
  tracer.AddMemoEdge(anc, par);  // deduplicated
  ASSERT_EQ(tracer.memo().size(), 2u);
  EXPECT_EQ(tracer.memo()[anc].children, std::vector<uint32_t>{par});
  tracer.MarkWinning("anc.bf/2");
  EXPECT_TRUE(tracer.memo()[anc].winning);
  EXPECT_FALSE(tracer.memo()[par].winning);
  // A memo-hit event carries the node index; the detail resolves to the
  // node's key without the recorder ever building the string again.
  tracer.RecordMemoHit(anc, 15.0);
  ASSERT_EQ(tracer.candidates().size(), 1u);
  EXPECT_EQ(tracer.candidates()[0].disposition,
            CandidateDisposition::kMemoHit);
  EXPECT_EQ(tracer.DetailOf(tracer.candidates()[0]), "anc.bf/2");
}

TEST(SearchTracerTest, CandidateCapCountsDrops) {
  SearchTracer tracer;
  tracer.set_max_candidates(2);
  for (int i = 0; i < 5; ++i) {
    tracer.RecordCandidate({0}, 1.0, CandidateDisposition::kDominated);
  }
  EXPECT_EQ(tracer.candidates().size(), 2u);
  EXPECT_EQ(tracer.dropped_candidates(), 3u);
}

TEST(SearchTracerTest, ClearResetsStateAndBumpsGeneration) {
  SearchTracer tracer;
  tracer.BeginScope("s");
  tracer.RecordCandidate({0}, 1.0, CandidateDisposition::kKept);
  tracer.InternMemoNode("n/1");
  const uint32_t gen = tracer.generation();
  tracer.Clear();
  EXPECT_EQ(tracer.generation(), gen + 1);
  EXPECT_TRUE(tracer.scopes().empty());
  EXPECT_TRUE(tracer.candidates().empty());
  EXPECT_TRUE(tracer.memo().empty());
  // The index was cleared with the nodes: re-interning starts over.
  EXPECT_EQ(tracer.InternMemoNode("n/1"), 0u);
}

TEST(SearchTracerTest, JsonAndDotShape) {
  SearchTracer tracer;
  tracer.BeginScope("p q.bf/2");
  tracer.RecordCandidate({0, 1}, 3.5, CandidateDisposition::kKept, "de\"tail");
  // Unsafe subplans are priced at +inf (§8.2); that must still be JSON.
  tracer.RecordCandidate({1, 0}, std::numeric_limits<double>::infinity(),
                         CandidateDisposition::kPrunedUnsafe);
  uint32_t n = tracer.InternMemoNode("q.bf/2");
  tracer.SetMemoNode(n, 3.5, 2.0, true, "semi-naive", "");
  tracer.MarkWinning("q.bf/2");
  std::ostringstream json;
  tracer.WriteJson(json);
  EXPECT_NE(json.str().find("\"scopes\""), std::string::npos);
  EXPECT_NE(json.str().find("\"candidates\""), std::string::npos);
  EXPECT_NE(json.str().find("\"order\":[0,1]"), std::string::npos);
  EXPECT_NE(json.str().find("\"disposition\":\"kept\""), std::string::npos);
  EXPECT_NE(json.str().find("de\\\"tail"), std::string::npos);
  EXPECT_NE(json.str().find("\"cost\":\"inf\""), std::string::npos);
  EXPECT_EQ(json.str().find("\"cost\":inf"), std::string::npos);
  EXPECT_NE(json.str().find("\"memo\""), std::string::npos);
  std::ostringstream dot;
  tracer.WriteDot(dot);
  EXPECT_NE(dot.str().find("digraph memo_lattice"), std::string::npos);
  EXPECT_NE(dot.str().find("lightgoldenrod"), std::string::npos);
}

TEST(SearchTracerTest, DisabledPathDoesNotAllocate) {
  SearchTracer tracer;
  tracer.set_enabled(false);
  // The order vector is the caller's; build it outside the counted block
  // (real call sites pass vectors the search owns anyway).
  const std::vector<size_t> order = {0, 1, 2};
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    SearchScope null_scope(nullptr, "ignored");
    SearchScope off_scope(&tracer, "ignored");
    tracer.RecordCandidate(order, 1.0, CandidateDisposition::kKept);
    tracer.RecordCandidateStep(order, 3, 1.0,
                               CandidateDisposition::kPrunedBound);
    tracer.RecordMemoHit(0, 1.0);
    tracer.InternMemoNode("q.bf/2");
    tracer.SetMemoNode(0, 1.0, 1.0, true, "m", "n");
    tracer.AddMemoEdge(0, 1);
    tracer.MarkWinning("q.bf/2");
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_TRUE(tracer.candidates().empty());
  EXPECT_TRUE(tracer.scopes().empty());
  EXPECT_TRUE(tracer.memo().empty());
}

TEST(TracerTest, EventBufferIsCappedAndCountsDrops) {
  Tracer tracer;
  tracer.set_max_events(4);
  for (int i = 0; i < 10; ++i) {
    Span span(&tracer, "work");
  }
  // The first max_events spans are kept (the head of the trace is what
  // explains a runaway query); the rest are counted, not stored.
  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  EXPECT_NE(os.str().find("\"droppedEvents\":6"), std::string::npos);

  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(TracerTest, DefaultCapIsLarge) {
  Tracer tracer;
  EXPECT_EQ(tracer.max_events(), 64u * 1024u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(MetricsTest, HistogramConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Lock-free CAS recording: every sample lands exactly once in count, sum,
  // min, and max, regardless of interleaving.
  const uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(h.count(), n);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(n) * (n + 1) / 2);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(n));
  EXPECT_GT(h.percentile(0.5), 0);
}

}  // namespace
}  // namespace ldl
