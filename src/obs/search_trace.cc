#include "obs/search_trace.h"

#include <cmath>

#include "base/strings.h"

namespace ldl {

const char* CandidateDispositionToString(CandidateDisposition d) {
  switch (d) {
    case CandidateDisposition::kKept:
      return "kept";
    case CandidateDisposition::kDominated:
      return "dominated";
    case CandidateDisposition::kPrunedBound:
      return "pruned-bound";
    case CandidateDisposition::kPrunedUnsafe:
      return "pruned-unsafe";
    case CandidateDisposition::kMemoHit:
      return "memo-hit";
    case CandidateDisposition::kPrunedUnreachable:
      return "pruned-unreachable";
  }
  return "?";
}

uint32_t SearchTracer::CurrentScope() {
  if (!scope_stack_.empty()) return scope_stack_.back();
  // Candidates recorded outside any scope get an implicit root.
  scopes_.push_back({"(search)", -1});
  uint32_t root = static_cast<uint32_t>(scopes_.size() - 1);
  scope_stack_.push_back(root);
  return root;
}

uint32_t SearchTracer::BeginScope(std::string_view label) {
  if (!enabled_) return 0;
  SearchScopeInfo info;
  info.label.assign(label.data(), label.size());
  info.parent = scope_stack_.empty()
                    ? -1
                    : static_cast<int32_t>(scope_stack_.back());
  scopes_.push_back(std::move(info));
  uint32_t id = static_cast<uint32_t>(scopes_.size() - 1);
  scope_stack_.push_back(id);
  return id;
}

void SearchTracer::EndScope() {
  if (!enabled_) return;
  if (!scope_stack_.empty()) scope_stack_.pop_back();
}

uint32_t SearchTracer::InternDetail(std::string_view text) {
  if (text.empty()) {
    if (details_.empty()) details_.emplace_back();
    return 0;
  }
  if (details_.empty()) details_.emplace_back();
  details_.emplace_back(text);
  return static_cast<uint32_t>(details_.size() - 1);
}

void SearchTracer::RecordCandidate(const std::vector<size_t>& order,
                                   double cost,
                                   CandidateDisposition disposition,
                                   std::string_view detail) {
  if (!enabled_) return;
  if (candidates_.size() >= max_candidates_) {
    ++dropped_;
    return;
  }
  SearchCandidate c;
  c.scope = CurrentScope();
  c.order_offset = static_cast<uint32_t>(order_arena_.size());
  c.order_len = static_cast<uint32_t>(order.size());
  for (size_t idx : order) order_arena_.push_back(static_cast<uint32_t>(idx));
  c.cost = cost;
  c.disposition = disposition;
  c.detail = InternDetail(detail);
  candidates_.push_back(c);
}

void SearchTracer::RecordCandidateStep(const std::vector<size_t>& prefix,
                                       size_t next, double cost,
                                       CandidateDisposition disposition,
                                       std::string_view detail) {
  if (!enabled_) return;
  if (candidates_.size() >= max_candidates_) {
    ++dropped_;
    return;
  }
  SearchCandidate c;
  c.scope = CurrentScope();
  c.order_offset = static_cast<uint32_t>(order_arena_.size());
  c.order_len = static_cast<uint32_t>(prefix.size() + 1);
  for (size_t idx : prefix) order_arena_.push_back(static_cast<uint32_t>(idx));
  order_arena_.push_back(static_cast<uint32_t>(next));
  c.cost = cost;
  c.disposition = disposition;
  c.detail = InternDetail(detail);
  candidates_.push_back(c);
}

void SearchTracer::RecordMemoHit(uint32_t node, double cost) {
  if (!enabled_) return;
  if (candidates_.size() >= max_candidates_) {
    ++dropped_;
    return;
  }
  SearchCandidate c;
  c.scope = CurrentScope();
  c.order_offset = static_cast<uint32_t>(order_arena_.size());
  c.cost = cost;
  c.disposition = CandidateDisposition::kMemoHit;
  c.memo_node = node;
  candidates_.push_back(c);
}

uint32_t SearchTracer::InternMemoNode(std::string_view key) {
  if (!enabled_) return 0;
  auto it = memo_index_.find(key);
  if (it != memo_index_.end()) return it->second;
  MemoNodeInfo node;
  node.key.assign(key.data(), key.size());
  memo_.push_back(std::move(node));
  uint32_t id = static_cast<uint32_t>(memo_.size() - 1);
  memo_index_.emplace(memo_.back().key, id);
  return id;
}

void SearchTracer::SetMemoNode(uint32_t node, double cost, double card,
                               bool safe, std::string_view method,
                               std::string_view note) {
  if (!enabled_ || node >= memo_.size()) return;
  MemoNodeInfo& n = memo_[node];
  n.cost = cost;
  n.card = card;
  n.safe = safe;
  n.method.assign(method.data(), method.size());
  n.note.assign(note.data(), note.size());
}

void SearchTracer::AddMemoEdge(uint32_t parent, uint32_t child) {
  if (!enabled_ || parent >= memo_.size() || child >= memo_.size()) return;
  std::vector<uint32_t>& children = memo_[parent].children;
  for (uint32_t c : children) {
    if (c == child) return;
  }
  children.push_back(child);
}

void SearchTracer::MarkWinning(std::string_view key) {
  if (!enabled_) return;
  auto it = memo_index_.find(key);
  if (it != memo_index_.end()) memo_[it->second].winning = true;
}

void SearchTracer::Clear() {
  ++generation_;
  dropped_ = 0;
  scopes_.clear();
  scope_stack_.clear();
  candidates_.clear();
  order_arena_.clear();
  details_.clear();
  memo_.clear();
  memo_index_.clear();
}

std::vector<size_t> SearchTracer::OrderOf(const SearchCandidate& c) const {
  std::vector<size_t> order;
  order.reserve(c.order_len);
  for (uint32_t i = 0; i < c.order_len; ++i) {
    order.push_back(order_arena_[c.order_offset + i]);
  }
  return order;
}

const std::string& SearchTracer::DetailOf(const SearchCandidate& c) const {
  static const std::string kEmpty;
  if (c.memo_node != UINT32_MAX && c.memo_node < memo_.size()) {
    return memo_[c.memo_node].key;
  }
  if (c.detail == 0 || c.detail >= details_.size()) return kEmpty;
  return details_[c.detail];
}

size_t SearchTracer::CountDisposition(CandidateDisposition d) const {
  size_t n = 0;
  for (const SearchCandidate& c : candidates_) {
    if (c.disposition == d) ++n;
  }
  return n;
}

namespace {

/// Costs can legitimately be infinite (§8.2 prices unsafe subplans at
/// +inf), but bare inf/nan are not JSON — emit those as strings.
void WriteJsonNumber(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << '"' << (std::isnan(v) ? "nan" : v > 0 ? "inf" : "-inf") << '"';
  }
}

}  // namespace

void SearchTracer::WriteJson(std::ostream& os) const {
  os << "{\"scopes\":[";
  for (size_t i = 0; i < scopes_.size(); ++i) {
    if (i) os << ',';
    os << "{\"id\":" << i << ",\"label\":\"" << JsonEscape(scopes_[i].label)
       << "\",\"parent\":" << scopes_[i].parent << "}";
  }
  os << "],\"candidates\":[";
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const SearchCandidate& c = candidates_[i];
    if (i) os << ',';
    os << "{\"scope\":" << c.scope << ",\"order\":[";
    for (uint32_t j = 0; j < c.order_len; ++j) {
      if (j) os << ',';
      os << order_arena_[c.order_offset + j];
    }
    os << "],\"cost\":";
    WriteJsonNumber(os, c.cost);
    os << ",\"disposition\":\"" << CandidateDispositionToString(c.disposition)
       << "\"";
    if (!DetailOf(c).empty()) {
      os << ",\"detail\":\"" << JsonEscape(DetailOf(c)) << "\"";
    }
    os << "}";
  }
  os << "],\"dropped_candidates\":" << dropped_ << ",\"memo\":[";
  for (size_t i = 0; i < memo_.size(); ++i) {
    const MemoNodeInfo& n = memo_[i];
    if (i) os << ',';
    os << "{\"key\":\"" << JsonEscape(n.key) << "\",\"cost\":";
    WriteJsonNumber(os, n.cost);
    os << ",\"card\":";
    WriteJsonNumber(os, n.card);
    os << ",\"safe\":" << (n.safe ? "true" : "false")
       << ",\"winning\":" << (n.winning ? "true" : "false");
    if (!n.method.empty()) {
      os << ",\"method\":\"" << JsonEscape(n.method) << "\"";
    }
    if (!n.note.empty()) os << ",\"note\":\"" << JsonEscape(n.note) << "\"";
    os << ",\"children\":[";
    for (size_t j = 0; j < n.children.size(); ++j) {
      if (j) os << ',';
      os << n.children[j];
    }
    os << "]}";
  }
  os << "]}\n";
}

namespace {

/// DOT double-quoted string escaping (quotes and backslashes).
std::string DotEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

}  // namespace

void SearchTracer::WriteDot(std::ostream& os) const {
  os << "digraph memo_lattice {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  for (size_t i = 0; i < memo_.size(); ++i) {
    const MemoNodeInfo& n = memo_[i];
    os << "  n" << i << " [label=\"" << DotEscape(n.key);
    if (n.safe) {
      os << "\\ncost " << n.cost << "  card " << n.card;
      if (!n.method.empty()) os << "\\n" << DotEscape(n.method);
    } else {
      os << "\\nUNSAFE";
    }
    os << "\"";
    if (!n.safe) {
      os << ", color=gray, fontcolor=gray";
    } else if (n.winning) {
      os << ", style=filled, fillcolor=lightgoldenrod, penwidth=2";
    }
    os << "];\n";
  }
  for (size_t i = 0; i < memo_.size(); ++i) {
    for (uint32_t child : memo_[i].children) {
      os << "  n" << i << " -> n" << child;
      if (memo_[i].winning && child < memo_.size() &&
          memo_[child].winning) {
        os << " [color=red, penwidth=2]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace ldl
