#ifndef LDLOPT_GRAPH_ADORNMENT_H_
#define LDLOPT_GRAPH_ADORNMENT_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "base/status.h"
#include "graph/binding.h"

namespace ldl {

/// Chooses the SIP (sideways-information-passing order) for each rule: a
/// permutation of the body literal positions. "A given permutation is
/// associated with a unique SIP" (paper section 2). The default is the
/// textual left-to-right order.
class SipStrategy {
 public:
  SipStrategy() = default;

  /// Fixes the body order for `rule_index` (a permutation of 0..n-1),
  /// regardless of the head adornment.
  void SetOrder(size_t rule_index, std::vector<size_t> order);

  /// Fixes the body order for `rule_index` when its head is adorned `adn`.
  /// Takes precedence over SetOrder; the optimizer uses this because the
  /// best SIP generally depends on the binding (section 7.2).
  void SetOrderForAdornment(size_t rule_index, const Adornment& adn,
                            std::vector<size_t> order);

  /// The body order for a rule under `head_adn`; falls back to the
  /// adornment-independent order, then to identity.
  std::vector<size_t> OrderFor(size_t rule_index, size_t body_size,
                               const Adornment& head_adn = Adornment()) const;

  bool HasOrder(size_t rule_index) const {
    return orders_.count(rule_index) > 0;
  }

 private:
  std::unordered_map<size_t, std::vector<size_t>> orders_;
  std::map<std::pair<size_t, std::string>, std::vector<size_t>>
      adorned_orders_;
};

/// One adorned rule: the original rule with (a) body literals permuted into
/// SIP order, (b) derived predicates renamed to their adorned versions
/// (p becomes `p.bf`), including the head.
struct AdornedRule {
  size_t rule_index = 0;      ///< into Program::rules()
  PredicateId head_original;  ///< head predicate before renaming
  Adornment head_adornment;
  Rule renamed;               ///< SIP-ordered, adorned-renamed rule
  /// The SIP permutation used: renamed.body()[j] came from
  /// original.body()[body_order[j]].
  std::vector<size_t> body_order;
  /// Adornment of each body literal of `renamed` (builtins get an empty
  /// adornment; base literals get their computed binding pattern too, which
  /// the cost model uses for index selection).
  std::vector<Adornment> body_adornments;
  /// For each body position of `renamed`: the *original* predicate id if
  /// that literal is a derived-predicate occurrence, else nullopt. Used by
  /// the magic rewrite to name magic predicates.
  std::vector<std::optional<PredicateId>> body_derived;

  std::string ToString() const;
};

/// The adorned version Pgm' of a program for one query form (paper
/// section 7.3): every derived predicate reachable from the query is
/// replicated per binding pattern in which it is used.
struct AdornedProgram {
  AdornedPredicate query;
  /// The query goal with its original constants (seed for magic sets).
  Literal query_goal;
  std::vector<AdornedRule> rules;
  /// All adorned derived predicates generated, in generation order
  /// (query's own adorned predicate first).
  std::vector<AdornedPredicate> predicates;

  std::string ToString() const;
};

/// Builds the adorned program for `query_goal` over `program` using the
/// given SIPs. Follows the paper's marking procedure: start from the query's
/// adornment, generate an adorned version of each rule whose head unifies,
/// adorning body literals left to right in SIP order; repeat for every newly
/// generated adorned predicate until none is unmarked.
///
/// Fails with kInvalidArgument if the query predicate is not derived.
Result<AdornedProgram> AdornProgramForQuery(const Program& program,
                                            const Literal& query_goal,
                                            const SipStrategy& sips);

}  // namespace ldl

#endif  // LDLOPT_GRAPH_ADORNMENT_H_
