#ifndef LDLOPT_BASE_RNG_H_
#define LDLOPT_BASE_RNG_H_

#include <cstdint>
#include <vector>

namespace ldl {

/// Deterministic 64-bit PRNG (splitmix64). Used by the simulated-annealing
/// search, the benchmark workload generators, and the differential-testing
/// program generator so that every experiment is reproducible from its seed.
///
/// Determinism guarantee: the sequence produced from a given seed is a pure
/// function of the splitmix64 recurrence — no global state, no
/// platform-dependent types, no std::random machinery — so it is identical
/// across runs, platforms, compilers, and library versions. Seed-addressed
/// artifacts (bench workloads, difftest repros like "seed 7, iteration 8")
/// therefore replay exactly, forever. The sequence is pinned by golden
/// values in tests/base_test.cc; changing the recurrence breaks every
/// recorded seed and MUST be treated as a format break, not a refactor.
/// Seed 0 is remapped to the splitmix64 increment (a zero state would not
/// mix well in the first few outputs).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace ldl

#endif  // LDLOPT_BASE_RNG_H_
