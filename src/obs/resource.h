#ifndef LDLOPT_OBS_RESOURCE_H_
#define LDLOPT_OBS_RESOURCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "base/status.h"

namespace ldl {

/// Hard limits one accountant enforces. Zero means unlimited; budgets are
/// checked cooperatively at cancellation check-points, so a query can
/// overshoot by at most one check interval before it aborts.
struct ResourceBudget {
  uint64_t max_bytes = 0;            ///< peak derived-storage bytes
  uint64_t max_tuples_examined = 0;  ///< join/lookup work across the query
};

/// Caller-facing per-query limits (the knobs ldl_profile exposes). Zero
/// means unlimited. LdlSystem::Query translates these into a per-query
/// ResourceAccountant budget + CancellationToken deadline.
struct QueryLimits {
  uint64_t budget_bytes = 0;   ///< cap on peak derived-storage bytes
  uint64_t budget_tuples = 0;  ///< cap on tuples examined
  double deadline_ms = 0;      ///< wall-clock deadline from query start

  bool any() const {
    return budget_bytes != 0 || budget_tuples != 0 || deadline_ms > 0;
  }
};

/// Per-query (or per-session) resource meter: bytes held by derived tuple
/// storage (scratch relations, interpreter tables, the NR-OPT memo), tuples
/// examined/derived, and fixpoint rounds.
///
/// Accountants form a hierarchy: every charge also rolls up into the parent
/// (a session- or server-level accountant), and a budget violation anywhere
/// on the ancestor chain cancels the query — the admission-control shape a
/// serving layer needs (one tenant's budget, the process's budget, or the
/// query's own budget can each be the binding constraint).
///
/// All mutators are relaxed atomics: the parallel engine's workers charge
/// this concurrently (each flushes locally accumulated work at
/// check-points), so totals are exact under any schedule — no charge is
/// lost or double-counted. peak_bytes is maintained with a CAS loop and is
/// exact up to check-point granularity. Configuration (set_budget, the
/// parent link) must be fixed before evaluation starts and not changed
/// while workers are running; readers may sample meters at any time.
class ResourceAccountant {
 public:
  explicit ResourceAccountant(ResourceAccountant* parent = nullptr)
      : parent_(parent) {}

  ResourceAccountant(const ResourceAccountant&) = delete;
  ResourceAccountant& operator=(const ResourceAccountant&) = delete;

  ResourceAccountant* parent() const { return parent_; }

  void set_budget(ResourceBudget budget) { budget_ = budget; }
  const ResourceBudget& budget() const { return budget_; }

  void AddBytes(uint64_t n) {
    if (n == 0) return;
    uint64_t now =
        current_bytes_.fetch_add(n, std::memory_order_relaxed) + n;
    uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    if (parent_ != nullptr) parent_->AddBytes(n);
  }

  void ReleaseBytes(uint64_t n) {
    if (n == 0) return;
    // Saturating: estimates can drift (a relation re-estimated smaller than
    // it charged); never wrap below zero.
    uint64_t cur = current_bytes_.load(std::memory_order_relaxed);
    while (!current_bytes_.compare_exchange_weak(
        cur, cur >= n ? cur - n : 0, std::memory_order_relaxed)) {
    }
    if (parent_ != nullptr) parent_->ReleaseBytes(n);
  }

  void AddTuplesExamined(uint64_t n) {
    tuples_examined_.fetch_add(n, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->AddTuplesExamined(n);
  }
  void AddTuplesDerived(uint64_t n) {
    tuples_derived_.fetch_add(n, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->AddTuplesDerived(n);
  }
  void AddFixpointRounds(uint64_t n) {
    fixpoint_rounds_.fetch_add(n, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->AddFixpointRounds(n);
  }

  uint64_t current_bytes() const {
    return current_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t tuples_examined() const {
    return tuples_examined_.load(std::memory_order_relaxed);
  }
  uint64_t tuples_derived() const {
    return tuples_derived_.load(std::memory_order_relaxed);
  }
  uint64_t fixpoint_rounds() const {
    return fixpoint_rounds_.load(std::memory_order_relaxed);
  }

  /// Zeroes every meter (budget and parent link are kept). Only valid
  /// between queries, when no charges are outstanding.
  void Reset() {
    current_bytes_.store(0, std::memory_order_relaxed);
    peak_bytes_.store(0, std::memory_order_relaxed);
    tuples_examined_.store(0, std::memory_order_relaxed);
    tuples_derived_.store(0, std::memory_order_relaxed);
    fixpoint_rounds_.store(0, std::memory_order_relaxed);
  }

  /// Non-OK iff this accountant or any ancestor is over one of its budget
  /// limits (kResourceExhausted naming which limit and which level).
  Status CheckBudget() const;

 private:
  ResourceAccountant* parent_ = nullptr;
  ResourceBudget budget_;
  std::atomic<uint64_t> current_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> tuples_examined_{0};
  std::atomic<uint64_t> tuples_derived_{0};
  std::atomic<uint64_t> fixpoint_rounds_{0};
};

/// Cooperative cancellation handle threaded through the optimizer search,
/// the fixpoint loop, rule evaluation, and the tree interpreter via
/// TraceContext. Check() is called at bounded intervals (per fixpoint
/// round, per plan-node execution, every kCheckIntervalTuples tuples inside
/// a rule body join) and returns the typed abort reason:
///
///   - kCancelled          RequestCancel() was called (or on a parent);
///   - kDeadlineExceeded   the wall-clock deadline passed;
///   - kResourceExhausted  the attached accountant chain is over budget.
///
/// Tokens chain like accountants: a per-query token can point at a session
/// token, so a server can cancel every in-flight query with one call.
///
/// Concurrency: Check() and RequestCancel() are safe from any number of
/// threads (the cancel flag and check counter are atomics; the accountant
/// chain is itself thread-safe). The deadline and accountant pointer are
/// configuration — set them before evaluation fans out (LdlSystem does this
/// during query setup) and leave them fixed while workers poll. Parallel
/// fixpoint tasks each poll the same token every kCheckIntervalTuples, so
/// a mid-round abort is observed by every worker within one interval.
class CancellationToken {
 public:
  /// Tuples examined between consecutive budget/deadline checks inside the
  /// innermost join loop — the bound on cancellation latency in units of
  /// work (tests assert real queries observe it).
  static constexpr uint64_t kCheckIntervalTuples = 1024;

  explicit CancellationToken(CancellationToken* parent = nullptr)
      : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Sets the deadline `budget` from now (steady clock).
  void set_deadline_after(std::chrono::duration<double, std::milli> budget) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    budget);
  }
  void clear_deadline() { deadline_.reset(); }
  bool has_deadline() const { return deadline_.has_value(); }

  void set_accountant(ResourceAccountant* accountant) {
    accountant_ = accountant;
  }
  ResourceAccountant* accountant() const { return accountant_; }

  /// The cooperative check-point. Ordering: explicit cancel beats deadline
  /// beats budget (the caller asked first). Checks this token, then every
  /// parent. Counts each call so tests can bound check cadence.
  Status Check();

  /// Check() calls performed against this token (not parents').
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }

 private:
  CancellationToken* parent_ = nullptr;
  std::atomic<bool> cancelled_{false};
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  ResourceAccountant* accountant_ = nullptr;
  std::atomic<uint64_t> checks_{0};
};

}  // namespace ldl

#endif  // LDLOPT_OBS_RESOURCE_H_
