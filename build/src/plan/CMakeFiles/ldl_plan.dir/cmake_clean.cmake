file(REMOVE_RECURSE
  "CMakeFiles/ldl_plan.dir/interpreter.cc.o"
  "CMakeFiles/ldl_plan.dir/interpreter.cc.o.d"
  "CMakeFiles/ldl_plan.dir/processing_tree.cc.o"
  "CMakeFiles/ldl_plan.dir/processing_tree.cc.o.d"
  "CMakeFiles/ldl_plan.dir/transform.cc.o"
  "CMakeFiles/ldl_plan.dir/transform.cc.o.d"
  "libldl_plan.a"
  "libldl_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldl_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
