#include "engine/builtins.h"

#include <cmath>

#include "base/strings.h"

namespace ldl {

namespace {

bool IsArithFunctor(const std::string& f, size_t arity) {
  return arity == 2 &&
         (f == "+" || f == "-" || f == "*" || f == "/" || f == "mod");
}

}  // namespace

bool ContainsArithmetic(const Term& t) {
  if (t.kind() != TermKind::kFunction) return false;
  if (IsArithFunctor(t.text(), t.arity())) return true;
  for (const Term& a : t.args()) {
    if (ContainsArithmetic(a)) return true;
  }
  return false;
}

Result<Term> EvalArithmetic(const Term& t) {
  if (t.kind() != TermKind::kFunction) return t;
  std::vector<Term> args;
  args.reserve(t.arity());
  for (const Term& a : t.args()) {
    LDL_ASSIGN_OR_RETURN(Term folded, EvalArithmetic(a));
    args.push_back(std::move(folded));
  }
  if (IsArithFunctor(t.text(), t.arity()) && args[0].IsNumeric() &&
      args[1].IsNumeric()) {
    const std::string& op = t.text();
    bool both_int = args[0].kind() == TermKind::kInt &&
                    args[1].kind() == TermKind::kInt;
    if (op == "mod") {
      if (!both_int || args[1].int_value() == 0) {
        return Status::InvalidArgument("mod requires nonzero integers");
      }
      return Term::MakeInt(args[0].int_value() % args[1].int_value());
    }
    if (op == "/") {
      if (args[1].AsDouble() == 0.0) {
        return Status::InvalidArgument("division by zero");
      }
      if (both_int && args[0].int_value() % args[1].int_value() == 0) {
        return Term::MakeInt(args[0].int_value() / args[1].int_value());
      }
      return Term::MakeReal(args[0].AsDouble() / args[1].AsDouble());
    }
    if (both_int) {
      int64_t x = args[0].int_value();
      int64_t y = args[1].int_value();
      if (op == "+") return Term::MakeInt(x + y);
      if (op == "-") return Term::MakeInt(x - y);
      if (op == "*") return Term::MakeInt(x * y);
    } else {
      double x = args[0].AsDouble();
      double y = args[1].AsDouble();
      if (op == "+") return Term::MakeReal(x + y);
      if (op == "-") return Term::MakeReal(x - y);
      if (op == "*") return Term::MakeReal(x * y);
    }
  }
  return Term::MakeFunction(t.text(), std::move(args));
}

namespace {

// Three-way comparison of ground terms: numeric when both numeric, term
// order otherwise. Returns -1/0/+1.
int CompareGround(const Term& a, const Term& b) {
  if (a.IsNumeric() && b.IsNumeric()) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

BuiltinOutcome FromBool(bool ok) {
  return ok ? BuiltinOutcome::kSatisfied : BuiltinOutcome::kFailed;
}

}  // namespace

BuiltinOutcome EvalBuiltin(const Literal& lit, Substitution* subst) {
  const Term lhs = subst->Apply(lit.args()[0]);
  const Term rhs = subst->Apply(lit.args()[1]);
  const bool lhs_ground = lhs.IsGround();
  const bool rhs_ground = rhs.IsGround();

  if (lit.builtin() == BuiltinKind::kEq) {
    if (!lhs_ground && !rhs_ground) return BuiltinOutcome::kNotComputable;
    // A ground side can be evaluated and unified against the other side
    // only if that side is a constructor pattern; residual arithmetic
    // would require equation solving.
    if (!lhs_ground && ContainsArithmetic(lhs)) {
      return BuiltinOutcome::kNotComputable;
    }
    if (!rhs_ground && ContainsArithmetic(rhs)) {
      return BuiltinOutcome::kNotComputable;
    }
    size_t mark = subst->Mark();
    Term l = lhs;
    Term r = rhs;
    if (lhs_ground) {
      auto folded = EvalArithmetic(l);
      if (!folded.ok()) return BuiltinOutcome::kFailed;
      l = std::move(folded).value();
    }
    if (rhs_ground) {
      auto folded = EvalArithmetic(r);
      if (!folded.ok()) return BuiltinOutcome::kFailed;
      r = std::move(folded).value();
    }
    if (Unify(l, r, subst)) return BuiltinOutcome::kSatisfied;
    subst->UndoTo(mark);
    return BuiltinOutcome::kFailed;
  }

  // Ordering comparisons need both sides ground.
  if (!lhs_ground || !rhs_ground) return BuiltinOutcome::kNotComputable;
  auto l = EvalArithmetic(lhs);
  auto r = EvalArithmetic(rhs);
  if (!l.ok() || !r.ok()) return BuiltinOutcome::kFailed;
  int cmp = CompareGround(*l, *r);
  switch (lit.builtin()) {
    case BuiltinKind::kNe:
      return FromBool(cmp != 0);
    case BuiltinKind::kLt:
      return FromBool(cmp < 0);
    case BuiltinKind::kLe:
      return FromBool(cmp <= 0);
    case BuiltinKind::kGt:
      return FromBool(cmp > 0);
    case BuiltinKind::kGe:
      return FromBool(cmp >= 0);
    default:
      return BuiltinOutcome::kFailed;
  }
}

bool BuiltinComputableWith(BuiltinKind kind, bool lhs_bound, bool rhs_bound) {
  if (kind == BuiltinKind::kEq) return lhs_bound || rhs_bound;
  return lhs_bound && rhs_bound;
}

bool BuiltinComputable(const Literal& lit, bool lhs_bound, bool rhs_bound) {
  if (lit.builtin() != BuiltinKind::kEq) {
    return lhs_bound && rhs_bound;
  }
  if (lhs_bound && rhs_bound) return true;
  if (lhs_bound) return !ContainsArithmetic(lit.args()[1]);
  if (rhs_bound) return !ContainsArithmetic(lit.args()[0]);
  return false;
}

}  // namespace ldl
