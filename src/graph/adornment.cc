#include "graph/adornment.h"

#include <deque>
#include <set>
#include <sstream>

#include "base/strings.h"

namespace ldl {

void SipStrategy::SetOrder(size_t rule_index, std::vector<size_t> order) {
  orders_[rule_index] = std::move(order);
}

void SipStrategy::SetOrderForAdornment(size_t rule_index, const Adornment& adn,
                                       std::vector<size_t> order) {
  adorned_orders_[{rule_index, adn.ToString()}] = std::move(order);
}

std::vector<size_t> SipStrategy::OrderFor(size_t rule_index, size_t body_size,
                                          const Adornment& head_adn) const {
  auto ait = adorned_orders_.find({rule_index, head_adn.ToString()});
  if (ait != adorned_orders_.end()) return ait->second;
  auto it = orders_.find(rule_index);
  if (it != orders_.end()) return it->second;
  std::vector<size_t> identity(body_size);
  for (size_t i = 0; i < body_size; ++i) identity[i] = i;
  return identity;
}

std::string AdornedRule::ToString() const { return renamed.ToString(); }

std::string AdornedProgram::ToString() const {
  std::ostringstream os;
  os << "% adorned program for " << query.ToString() << "\n";
  for (const AdornedRule& r : rules) os << r.ToString() << "\n";
  return os.str();
}

Result<AdornedProgram> AdornProgramForQuery(const Program& program,
                                            const Literal& query_goal,
                                            const SipStrategy& sips) {
  if (!program.IsDerived(query_goal.predicate())) {
    return Status::InvalidArgument(
        StrCat("query predicate ", query_goal.predicate().ToString(),
               " is not defined by any rule"));
  }

  AdornedProgram out;
  out.query = {query_goal.predicate(), Adornment::FromGoal(query_goal)};
  out.query_goal = query_goal;

  std::set<AdornedPredicate> marked;
  std::deque<AdornedPredicate> worklist;
  worklist.push_back(out.query);
  marked.insert(out.query);
  out.predicates.push_back(out.query);

  while (!worklist.empty()) {
    AdornedPredicate ap = worklist.front();
    worklist.pop_front();

    for (size_t rule_index : program.RulesFor(ap.pred)) {
      const Rule& rule = program.rules()[rule_index];
      std::vector<size_t> order =
          sips.OrderFor(rule_index, rule.body().size(), ap.adornment);

      AdornedRule adorned;
      adorned.rule_index = rule_index;
      adorned.head_original = rule.head().predicate();
      adorned.head_adornment = ap.adornment;
      adorned.body_order = order;

      BoundVars bound;
      BindHeadVariables(rule.head(), ap.adornment, &bound);

      std::vector<Literal> new_body;
      new_body.reserve(rule.body().size());
      for (size_t pos : order) {
        const Literal& lit = rule.body()[pos];
        Adornment lit_adn = AdornLiteral(lit, bound);
        // A negated derived literal must see the *complete* relation for
        // its stratum: binding restriction under negation would change the
        // meaning (absence in a magic-restricted set is not absence). Use
        // the all-free adornment; the magic rewrite then emits a 0-ary
        // demand flag for it.
        if (lit.negated()) lit_adn = Adornment::AllFree(lit.arity());
        Literal renamed = lit;
        std::optional<PredicateId> derived_pred;
        if (!lit.IsBuiltin() && program.IsDerived(lit.predicate())) {
          derived_pred = lit.predicate();
          AdornedPredicate body_ap{lit.predicate(), lit_adn};
          renamed = lit.WithPredicateName(body_ap.RenamedId().name);
          if (marked.insert(body_ap).second) {
            worklist.push_back(body_ap);
            out.predicates.push_back(body_ap);
          }
        }
        adorned.body_derived.push_back(derived_pred);
        adorned.body_adornments.push_back(lit_adn);
        new_body.push_back(std::move(renamed));
        PropagateBindings(lit, &bound);
      }

      AdornedPredicate head_ap{rule.head().predicate(), ap.adornment};
      Literal new_head =
          rule.head().WithPredicateName(head_ap.RenamedId().name);
      adorned.renamed = Rule(std::move(new_head), std::move(new_body));
      out.rules.push_back(std::move(adorned));
    }
  }

  return out;
}

}  // namespace ldl
