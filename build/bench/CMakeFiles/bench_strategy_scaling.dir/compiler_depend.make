# Empty compiler generated dependencies file for bench_strategy_scaling.
# This may be replaced when dependencies are built.
