#ifndef LDLOPT_ENGINE_UNIFY_H_
#define LDLOPT_ENGINE_UNIFY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/literal.h"
#include "ast/term.h"

namespace ldl {

/// A substitution: variable name -> term. Bindings may map to terms that
/// themselves contain variables (full unification); during bottom-up rule
/// evaluation they are always ground.
///
/// Supports O(1) snapshot/undo through a trail, which the tuple-at-a-time
/// rule evaluator uses for backtracking.
class Substitution {
 public:
  Substitution() = default;

  /// The binding of `var`, or nullptr.
  const Term* Lookup(const std::string& var) const;

  /// Binds `var` (must be unbound) and records it on the trail.
  void Bind(const std::string& var, Term value);

  /// Current trail position; pass to UndoTo to roll back.
  size_t Mark() const { return trail_.size(); }
  /// Removes all bindings made after `mark`.
  void UndoTo(size_t mark);

  /// Applies the substitution: replaces each bound variable by its (fully
  /// dereferenced) binding. Unbound variables remain.
  Term Apply(const Term& t) const;
  Literal Apply(const Literal& lit) const;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  std::string ToString() const;

 private:
  std::unordered_map<std::string, Term> map_;
  std::vector<std::string> trail_;
};

/// General unification of two terms under `subst`, extending it on success.
/// On failure `subst` is restored to its state at entry. No occurs check
/// (consistent with Prolog practice; the engine only ever unifies against
/// ground terms, where the check is moot).
bool Unify(const Term& a, const Term& b, Substitution* subst);

/// One-way pattern match of `pattern` against a ground `value`: like Unify
/// but guaranteed not to bind variables inside `value`.
bool Match(const Term& pattern, const Term& value, Substitution* subst);

}  // namespace ldl

#endif  // LDLOPT_ENGINE_UNIFY_H_
