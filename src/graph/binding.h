#ifndef LDLOPT_GRAPH_BINDING_H_
#define LDLOPT_GRAPH_BINDING_H_

#include <set>
#include <string>
#include <vector>

#include "ast/literal.h"
#include "ast/term.h"
#include "base/status.h"

namespace ldl {

/// A binding pattern (adornment): one bound/free flag per argument position.
/// `sg.bf` means first argument bound, second free (paper sections 2, 7.3).
class Adornment {
 public:
  Adornment() = default;
  /// All-free adornment of the given arity.
  explicit Adornment(size_t arity) : bound_(arity, false) {}

  static Adornment AllFree(size_t arity) { return Adornment(arity); }
  static Adornment AllBound(size_t arity);
  /// From a goal literal: an argument is bound iff it is ground.
  static Adornment FromGoal(const Literal& goal);
  /// From "bf"-style text.
  static Result<Adornment> FromString(const std::string& text);

  size_t size() const { return bound_.size(); }
  bool IsBound(size_t i) const { return bound_[i]; }
  void SetBound(size_t i, bool b) { bound_[i] = b; }
  size_t BoundCount() const;
  bool AllArgsFree() const { return BoundCount() == 0; }
  bool AllArgsBound() const { return BoundCount() == size(); }

  /// "bf", "bbf", ... ; empty adornment renders as "".
  std::string ToString() const;

  bool operator==(const Adornment& other) const {
    return bound_ == other.bound_;
  }
  bool operator!=(const Adornment& other) const { return !(*this == other); }
  bool operator<(const Adornment& other) const { return bound_ < other.bound_; }

  size_t Hash() const;

 private:
  std::vector<bool> bound_;
};

/// A predicate tagged with an adornment, e.g. sg/2 with "bf".
struct AdornedPredicate {
  PredicateId pred;
  Adornment adornment;

  /// The renamed predicate used in adorned/rewritten programs: "sg.bf"/2.
  /// For an all-free adornment the original name is kept.
  PredicateId RenamedId() const;

  bool operator==(const AdornedPredicate& other) const {
    return pred == other.pred && adornment == other.adornment;
  }
  bool operator<(const AdornedPredicate& other) const {
    if (pred != other.pred) return pred < other.pred;
    return adornment < other.adornment;
  }

  std::string ToString() const;
};

struct AdornedPredicateHash {
  size_t operator()(const AdornedPredicate& ap) const {
    size_t seed = PredicateIdHash{}(ap.pred);
    HashCombine(&seed, ap.adornment.Hash());
    return seed;
  }
};

/// The set of variables known to be bound at some point of a left-to-right
/// (SIP-ordered) walk over a rule body. This is the engine of sideways
/// information passing: literals consume bindings and produce new ones.
class BoundVars {
 public:
  BoundVars() = default;

  bool IsBound(const std::string& var) const { return vars_.count(var) > 0; }
  void Bind(const std::string& var) { vars_.insert(var); }

  /// True iff every variable in `t` is bound (ground terms qualify).
  bool IsTermBound(const Term& t) const;
  /// Marks every variable in `t` bound.
  void BindTerm(const Term& t);

  size_t size() const { return vars_.size(); }

 private:
  std::set<std::string> vars_;
};

/// Adornment of `lit` under the current bindings: argument i is bound iff
/// all its variables are bound (constants are always bound).
Adornment AdornLiteral(const Literal& lit, const BoundVars& bound);

/// Updates `bound` with the bindings produced by evaluating `lit`:
///  - positive non-builtin literal: all its variables become bound;
///  - `=` builtin: if one side is fully bound, the other side's variables
///    become bound (one direction per call; callers walking a body in order
///    get exactly SIP semantics);
///  - other comparisons and negated literals produce no bindings.
void PropagateBindings(const Literal& lit, BoundVars* bound);

/// Binds the variables in the bound argument positions of `goal` per `adn`.
void BindHeadVariables(const Literal& goal, const Adornment& adn,
                       BoundVars* bound);

}  // namespace ldl

#endif  // LDLOPT_GRAPH_BINDING_H_
