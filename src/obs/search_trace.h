#ifndef LDLOPT_OBS_SEARCH_TRACE_H_
#define LDLOPT_OBS_SEARCH_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ldl {

/// What happened to one candidate subplan the optimizer's search visited.
/// The dispositions mirror the search disciplines of the paper: dominated
/// candidates lose the cost race (section 7.1), pruned-bound prefixes fail
/// the branch-and-bound test, pruned-unsafe candidates get the infinite
/// cost of section 8.2, and memo hits are Figure 7-1's "optimized exactly
/// ONCE for each binding".
enum class CandidateDisposition : uint8_t {
  kKept,          ///< became (or extended) the best candidate so far
  kDominated,     ///< costed, complete/valid, but beaten by a cheaper one
  kPrunedBound,   ///< abandoned: prefix already costs >= the best bound
  kPrunedUnsafe,  ///< abandoned at infinite cost (EC violation, section 8.2)
  kMemoHit,       ///< answered from the (predicate, adornment) memo
  kPrunedUnreachable,  ///< skipped: static analysis proved the adornment
                       ///< unreachable from the query (analysis/analyzer.h)
};

const char* CandidateDispositionToString(CandidateDisposition d);

/// One nesting level of the search ("rule 2 [bf]", "clique #0 anc[bf]").
struct SearchScopeInfo {
  std::string label;
  int32_t parent = -1;  ///< index into scopes(), -1 for a root scope
};

/// One candidate event. The proposed order lives in a shared arena
/// (order_offset/order_len) so recording stays cheap on hot search paths;
/// use SearchTracer::OrderOf to materialize it.
struct SearchCandidate {
  uint32_t scope = 0;
  uint32_t order_offset = 0;
  uint32_t order_len = 0;
  double cost = 0;
  CandidateDisposition disposition = CandidateDisposition::kKept;
  uint32_t detail = 0;  ///< index into details(), 0 = no detail
  /// Memo lattice node this event refers to (memo hits), or UINT32_MAX.
  /// When set, DetailOf resolves to the node's key — so the hot memo-hit
  /// path records an index instead of building the key string again.
  uint32_t memo_node = UINT32_MAX;
};

/// One node of the final (predicate, adornment) -> Subplan memo lattice.
struct MemoNodeInfo {
  std::string key;  ///< AdornedPredicate::ToString(), e.g. "anc[bf]"
  double cost = 0;
  double card = 0;
  bool safe = true;
  bool winning = false;  ///< on the chosen plan's dependency closure
  std::string method;    ///< recursive method for clique nodes, else ""
  std::string note;      ///< diagnostic for unsafe nodes
  std::vector<uint32_t> children;  ///< memo node indices (deduplicated)
};

/// Recorder for the optimizer's search: every candidate order each join
/// order strategy visits, every memo interaction, the per-clique method
/// race, and the final memo lattice. Exported as JSON (ldl_profile
/// --search-json), Graphviz DOT of the lattice (--dot), and the EXPLAIN
/// OPTIMIZE rendering (plan/explain.h).
///
/// Cost contract, mirroring Tracer/Span: every mutator is a single branch
/// and touches nothing when the tracer is disabled, so a disabled tracer
/// can stay attached to hot paths (asserted allocation-free in obs_test).
/// All parameters are views — callers must not build strings for a
/// disabled tracer. NOT thread-safe: the optimizer's search is
/// single-threaded and so is this recorder.
class SearchTracer {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Caps the number of recorded candidates; further ones only bump
  /// dropped_candidates() (no silent truncation). Scopes and memo nodes
  /// are not capped (they are bounded by program size, not search size).
  void set_max_candidates(size_t cap) { max_candidates_ = cap; }

  /// Opens a nested scope; subsequent candidates attach to it. Returns the
  /// scope id (0 when disabled).
  uint32_t BeginScope(std::string_view label);
  void EndScope();

  /// Records one candidate (a complete or partial order) in the current
  /// scope. `order` uses the caller's item indexing; an empty order means
  /// the candidate is not an order (method race entries, memo hits).
  void RecordCandidate(const std::vector<size_t>& order, double cost,
                       CandidateDisposition disposition,
                       std::string_view detail = {});
  /// Same, with the order given as a prefix plus one extension item (the
  /// shape branch-and-bound and DP naturally produce).
  void RecordCandidateStep(const std::vector<size_t>& prefix, size_t next,
                           double cost, CandidateDisposition disposition,
                           std::string_view detail = {});
  /// Records a memo hit against an already-interned lattice node. This is
  /// the one per-cost-evaluation event of NR-OPT, so it must not build any
  /// strings: the node index stands in for the key (DetailOf resolves it).
  void RecordMemoHit(uint32_t node, double cost);

  /// Interns a memo lattice node by key, creating a placeholder on first
  /// sight. Returns 0 when disabled.
  uint32_t InternMemoNode(std::string_view key);
  /// Fills in the facts of a memo node (placeholders stay zeroed).
  void SetMemoNode(uint32_t node, double cost, double card, bool safe,
                   std::string_view method, std::string_view note);
  /// Adds a parent -> child dependency edge (deduplicated).
  void AddMemoEdge(uint32_t parent, uint32_t child);
  /// Marks the node for `key` as part of the winning plan, if it exists.
  void MarkWinning(std::string_view key);

  /// Drops all recorded state (scopes, candidates, memo); keeps enabled()
  /// and the candidate cap, and bumps generation(). For per-query reuse of
  /// one tracer.
  void Clear();

  /// Bumped on every Clear(). Callers that cache node indices from
  /// InternMemoNode (the optimizer's memo does) must revalidate against
  /// this before reusing them.
  uint32_t generation() const { return generation_; }

  const std::vector<SearchScopeInfo>& scopes() const { return scopes_; }
  const std::vector<SearchCandidate>& candidates() const {
    return candidates_;
  }
  const std::vector<MemoNodeInfo>& memo() const { return memo_; }
  size_t dropped_candidates() const { return dropped_; }

  /// Materializes a candidate's proposed order from the arena.
  std::vector<size_t> OrderOf(const SearchCandidate& c) const;
  /// The detail string of a candidate ("" when none).
  const std::string& DetailOf(const SearchCandidate& c) const;
  size_t CountDisposition(CandidateDisposition d) const;

  /// One JSON object: {"scopes": [...], "candidates": [...],
  /// "dropped_candidates": N, "memo": [...]}.
  void WriteJson(std::ostream& os) const;
  /// Graphviz digraph of the memo lattice; winning nodes and the edges
  /// between them are highlighted.
  void WriteDot(std::ostream& os) const;

 private:
  uint32_t InternDetail(std::string_view text);
  uint32_t CurrentScope();

  /// Heterogeneous lookup so InternMemoNode/MarkWinning can probe with a
  /// string_view without materializing a std::string per call.
  struct TransparentStringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  bool enabled_ = true;
  size_t max_candidates_ = 1u << 20;
  size_t dropped_ = 0;
  uint32_t generation_ = 0;
  std::vector<SearchScopeInfo> scopes_;
  std::vector<uint32_t> scope_stack_;
  std::vector<SearchCandidate> candidates_;
  std::vector<uint32_t> order_arena_;
  std::vector<std::string> details_;  ///< details_[0] is always ""
  std::vector<MemoNodeInfo> memo_;
  std::unordered_map<std::string, uint32_t, TransparentStringHash,
                     std::equal_to<>>
      memo_index_;
};

/// RAII scope against a possibly-null, possibly-disabled tracer; mirrors
/// Span's inert-by-default contract. Move-only.
class SearchScope {
 public:
  SearchScope() = default;
  SearchScope(SearchTracer* tracer, std::string_view label) {
    if (tracer == nullptr || !tracer->enabled()) return;
    tracer_ = tracer;
    tracer->BeginScope(label);
  }
  SearchScope(SearchScope&& other) noexcept : tracer_(other.tracer_) {
    other.tracer_ = nullptr;
  }
  SearchScope& operator=(SearchScope&& other) noexcept {
    if (this != &other) {
      Close();
      tracer_ = other.tracer_;
      other.tracer_ = nullptr;
    }
    return *this;
  }
  SearchScope(const SearchScope&) = delete;
  SearchScope& operator=(const SearchScope&) = delete;
  ~SearchScope() { Close(); }

  bool active() const { return tracer_ != nullptr; }

 private:
  void Close() {
    if (tracer_ == nullptr) return;
    tracer_->EndScope();
    tracer_ = nullptr;
  }
  SearchTracer* tracer_ = nullptr;
};

}  // namespace ldl

#endif  // LDLOPT_OBS_SEARCH_TRACE_H_
