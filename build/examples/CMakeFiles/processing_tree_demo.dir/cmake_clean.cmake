file(REMOVE_RECURSE
  "CMakeFiles/processing_tree_demo.dir/processing_tree_demo.cpp.o"
  "CMakeFiles/processing_tree_demo.dir/processing_tree_demo.cpp.o.d"
  "processing_tree_demo"
  "processing_tree_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processing_tree_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
