// Experiment E15 — cost of the query-lifecycle layer:
//
// LdlSystem::Query only engages per-query metering (a ResourceAccountant
// wired through relation storage plus a CancellationToken checked every
// kCheckIntervalTuples join steps) when the caller sets limits or attaches
// a query log. The contract this bench pins:
//
//  - the *unmetered* path must be indistinguishable from a system with no
//    lifecycle layer at all — every hook is a single null-pointer branch,
//    so its overhead target is < 2% of query wall time;
//  - the *metered* path (generous budget, nothing ever trips) stays cheap:
//    accounting is relaxed atomics and the token fires once per 1024
//    tuples examined;
//  - a tripped budget aborts promptly: the wall time of an over-budget
//    query on a large recursion is bounded by work-to-budget, not by the
//    full fixpoint.
//
// It also measures Histogram::Record (satellite: lock-free CAS recording)
// single-threaded and under 4-way contention, since the metrics registry
// sits on the same always-on path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "base/strings.h"
#include "bench_util.h"
#include "ldl/ldl.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/resource.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

/// Linear-chain transitive closure: tc over an `n`-edge chain derives
/// O(n^2) tuples, so the fixpoint does real storage and join work — the
/// shape where per-tuple metering hooks would show up if they cost
/// anything.
std::string ChainProgram(int n) {
  std::string text =
      "tc(X, Y) <- edge(X, Y).\n"
      "tc(X, Y) <- edge(X, Z), tc(Z, Y).\n";
  for (int i = 0; i < n; ++i) {
    text += StrCat("edge(n", i, ", n", i + 1, ").\n");
  }
  return text;
}

enum class Metering { kOff, kOn, kOnWithLog };

const char* MeteringName(Metering mode) {
  switch (mode) {
    case Metering::kOff: return "unmetered";
    case Metering::kOn: return "metered";
    case Metering::kOnWithLog: return "metered+log";
  }
  return "?";
}

/// Minimum per-query wall ms over `kSamples` samples (minimum is the
/// noise-robust estimator for overhead comparisons: background load only
/// ever adds time). The system is built once per mode; each sample re-runs
/// the same bound query.
double MeasureQueryMs(const std::string& program, const std::string& goal,
                      Metering mode) {
  constexpr size_t kSamples = 15;
  LdlSystem sys;
  Status st = sys.LoadProgram(program);
  if (!st.ok()) {
    std::fprintf(stderr, "bench_lifecycle: %s\n", st.ToString().c_str());
    std::abort();
  }
  if (mode != Metering::kOff) {
    OptimizerOptions options;
    // Generous enough that nothing ever trips: the point is the cost of
    // live accounting, not of aborting.
    options.limits.budget_bytes = 1ull << 32;
    options.limits.budget_tuples = 1ull << 40;
    sys.set_options(options);
  }
  QueryLog log;
  if (mode == Metering::kOnWithLog) sys.set_query_log(&log);
  std::vector<double> ms;
  ms.reserve(kSamples);
  for (size_t s = 0; s < kSamples; ++s) {
    Stopwatch watch;
    auto answer = sys.Query(goal);
    benchmark::DoNotOptimize(answer);
    if (!answer.ok()) {
      std::fprintf(stderr, "bench_lifecycle: %s\n",
                   answer.status().ToString().c_str());
      std::abort();
    }
    ms.push_back(watch.ElapsedMs());
  }
  return *std::min_element(ms.begin(), ms.end());
}

/// Wall ms until an over-budget full-closure query returns its typed
/// abort. With cooperative checks every 1024 examined tuples this should
/// be a small fraction of the unconstrained query time on the same chain.
double MeasureAbortMs(const std::string& program, const std::string& goal,
                      uint64_t budget_tuples) {
  constexpr size_t kSamples = 15;
  LdlSystem sys;
  if (!sys.LoadProgram(program).ok()) std::abort();
  OptimizerOptions options;
  options.limits.budget_tuples = budget_tuples;
  sys.set_options(options);
  std::vector<double> ms;
  ms.reserve(kSamples);
  for (size_t s = 0; s < kSamples; ++s) {
    Stopwatch watch;
    auto answer = sys.Query(goal);
    if (answer.ok() ||
        answer.status().code() != StatusCode::kResourceExhausted) {
      std::fprintf(stderr,
                   "bench_lifecycle: expected ResourceExhausted, got %s\n",
                   answer.ok() ? "ok" : answer.status().ToString().c_str());
      std::abort();
    }
    ms.push_back(watch.ElapsedMs());
  }
  return *std::min_element(ms.begin(), ms.end());
}

/// ns per Histogram::Record with `threads` recorders hammering the same
/// histogram. The lock-free CAS loop should scale far better than a mutex
/// would; the absolute single-thread number is the always-on metrics cost.
double MeasureRecordNs(size_t threads, size_t per_thread) {
  Histogram hist;
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&hist, t, per_thread] {
      for (size_t i = 0; i < per_thread; ++i) {
        hist.Record(static_cast<double>(t * per_thread + i + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  double total_ns = watch.ElapsedMs() * 1e6;
  if (hist.count() != threads * per_thread) {
    std::fprintf(stderr, "bench_lifecycle: lost histogram records\n");
    std::abort();
  }
  return total_ns / static_cast<double>(threads * per_thread);
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E15", "query-lifecycle overhead: unmetered pass-through vs "
                       "live accounting, abort latency, histogram recording");

  Table overhead({"workload", "metering", "ms/query", "overhead %"});
  struct Shape {
    std::string name;
    std::string program;
    std::string goal;
  };
  const std::vector<Shape> shapes = {
      {"tc chain 120 bound", ChainProgram(120), "tc(n0, Y)"},
      {"tc chain 60 full", ChainProgram(60), "tc(X, Y)"},
  };
  for (const Shape& shape : shapes) {
    double base_ms = 0;
    for (Metering mode :
         {Metering::kOff, Metering::kOn, Metering::kOnWithLog}) {
      double ms = MeasureQueryMs(shape.program, shape.goal, mode);
      if (mode == Metering::kOff) base_ms = ms;
      double pct = base_ms > 0 ? (ms / base_ms - 1.0) * 100.0 : 0.0;
      overhead.AddRow({StrCat(shape.name, " / ", MeteringName(mode)),
                       MeteringName(mode), Fmt(ms, "%.3f"),
                       mode == Metering::kOff ? "-" : Fmt(pct, "%.1f")});
    }
  }
  overhead.Print();

  Table abort_table({"workload", "budget tuples", "abort ms", "full ms"});
  {
    const std::string program = ChainProgram(160);
    double full_ms = MeasureQueryMs(program, "tc(X, Y)", Metering::kOff);
    // The unconstrained closure examines ~26k tuples, so both budgets trip
    // mid-fixpoint — one early, one late.
    for (uint64_t budget : {4096ull, 16384ull}) {
      double abort_ms = MeasureAbortMs(program, "tc(X, Y)", budget);
      abort_table.AddRow({StrCat("tc chain 160 / budget ", budget),
                          std::to_string(budget), Fmt(abort_ms, "%.3f"),
                          Fmt(full_ms, "%.3f")});
    }
  }
  abort_table.Print();

  Table hist({"recorders", "ns/record"});
  for (size_t threads : {1, 4}) {
    hist.AddRow({std::to_string(threads),
                 Fmt(MeasureRecordNs(threads, 200000), "%.1f")});
  }
  hist.Print();

  std::printf(
      "Expected shape: the metered rows sit within noise of the unmetered\n"
      "rows (every hook is one null check when off, relaxed atomics when\n"
      "on; the <2%% pass-through contract is asserted as a latency bound in\n"
      "tests/lifecycle_test.cc via the 1024-tuple check cadence). Abort ms\n"
      "tracks the budget, not the full closure time. Histogram recording\n"
      "stays tens of ns even under contention — it is fetch_add on count\n"
      "and buckets plus a CAS loop on sum/min/max.\n\n");
}

namespace {

void BM_QueryLifecycle(benchmark::State& state) {
  Metering mode = static_cast<Metering>(state.range(0));
  LdlSystem sys;
  if (!sys.LoadProgram(ChainProgram(60)).ok()) std::abort();
  if (mode != Metering::kOff) {
    OptimizerOptions options;
    options.limits.budget_bytes = 1ull << 32;
    sys.set_options(options);
  }
  QueryLog log;
  if (mode == Metering::kOnWithLog) sys.set_query_log(&log);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.Query("tc(n0, Y)"));
  }
  state.SetLabel(MeteringName(mode));
}
BENCHMARK(BM_QueryLifecycle)->Arg(0)->Arg(1)->Arg(2);

void BM_HistogramRecord(benchmark::State& state) {
  static Histogram hist;
  double v = 1.0;
  for (auto _ : state) {
    hist.Record(v);
    v += 1.0;
  }
}
BENCHMARK(BM_HistogramRecord)->Threads(1)->Threads(4);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("lifecycle");
  return 0;
}
