#ifndef LDLOPT_AST_TERM_H_
#define LDLOPT_AST_TERM_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace ldl {

/// The kind of a term. LDL terms cover both flat relational values and the
/// "complex objects" of the paper's section 1: hierarchies (function terms)
/// and lists (encoded as nested cons/nil function terms).
enum class TermKind {
  kVariable,  ///< Logical variable, e.g. X.
  kInt,       ///< 64-bit integer constant.
  kReal,      ///< Double constant.
  kString,    ///< Quoted string constant, e.g. "austin".
  kSymbol,    ///< Unquoted atom constant, e.g. austin.
  kFunction,  ///< Complex term f(t1, ..., tn), n >= 1.
};

/// An immutable first-order term. Terms are cheap to copy: function-term
/// argument vectors are shared via shared_ptr, scalars are stored inline.
///
/// One Term representation is used end to end — parser AST, stored tuples,
/// and runtime values — mirroring LDL's elimination of the impedance
/// mismatch between language and data.
class Term {
 public:
  /// Default-constructs the symbol `nil` (rarely useful; containers need it).
  Term() : kind_(TermKind::kSymbol), text_("nil") {}

  /// Factory functions; the only way to create terms.
  static Term MakeVariable(std::string name);
  static Term MakeInt(int64_t value);
  static Term MakeReal(double value);
  static Term MakeString(std::string value);
  static Term MakeSymbol(std::string name);
  static Term MakeFunction(std::string functor, std::vector<Term> args);

  /// Builds the list [t1, ..., tn | tail] as nested '.'/2 cons terms.
  /// With no explicit tail, the empty-list symbol "[]" terminates it.
  static Term MakeList(const std::vector<Term>& items);
  static Term MakeList(const std::vector<Term>& items, Term tail);

  TermKind kind() const { return kind_; }
  bool IsVariable() const { return kind_ == TermKind::kVariable; }
  bool IsConstant() const {
    return kind_ != TermKind::kVariable && kind_ != TermKind::kFunction;
  }
  bool IsFunction() const { return kind_ == TermKind::kFunction; }
  bool IsNumeric() const {
    return kind_ == TermKind::kInt || kind_ == TermKind::kReal;
  }

  /// Variable name, symbol name, string value, or functor, by kind.
  const std::string& text() const { return text_; }
  int64_t int_value() const { return int_value_; }
  double real_value() const { return real_value_; }
  /// Numeric value as double regardless of kInt/kReal.
  double AsDouble() const {
    return kind_ == TermKind::kInt ? static_cast<double>(int_value_)
                                   : real_value_;
  }

  /// Function-term arguments; empty for non-function terms.
  const std::vector<Term>& args() const;
  size_t arity() const { return args().size(); }

  /// True iff no variable occurs anywhere in the term.
  bool IsGround() const;

  /// Appends the names of all variables occurring in the term (with
  /// duplicates) to `out`.
  void CollectVariables(std::vector<std::string>* out) const;

  /// True iff the variable `name` occurs in the term.
  bool ContainsVariable(const std::string& name) const;

  /// True iff `other` is a strict (proper) subterm of *this. Used by the
  /// safety analysis: recursion on a strictly decreasing term argument is
  /// well-founded (paper section 8.1, the list-traversal example).
  bool HasStrictSubterm(const Term& other) const;

  /// Number of function symbols + constants + variables in the term.
  size_t Size() const;
  /// Nesting depth: constants/variables have depth 1.
  size_t Depth() const;

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }
  /// Total order (by kind, then content). Suitable for sorting tuples.
  bool operator<(const Term& other) const;

  size_t Hash() const;

  /// Prolog-ish rendering: f(a, X), [1, 2 | T], "str", 42.
  std::string ToString() const;

 private:
  Term(TermKind kind, std::string text) : kind_(kind), text_(std::move(text)) {}

  TermKind kind_;
  int64_t int_value_ = 0;
  double real_value_ = 0.0;
  std::string text_;
  std::shared_ptr<const std::vector<Term>> args_;  // kFunction only
};

std::ostream& operator<<(std::ostream& os, const Term& term);

/// Hash functor for unordered containers keyed by Term.
struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace ldl

#endif  // LDLOPT_AST_TERM_H_
