#include "ast/program.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Rule FirstRule(const char* text) { return P(text).rules()[0]; }

TEST(RuleTest, VariablesInFirstOccurrenceOrder) {
  Rule r = FirstRule("q(A, B) <- r(B, C), s(C, A, D).");
  EXPECT_EQ(r.Variables(),
            (std::vector<std::string>{"A", "B", "C", "D"}));
}

TEST(RuleTest, RangeRestriction) {
  EXPECT_TRUE(FirstRule("q(X) <- r(X).").IsRangeRestricted());
  EXPECT_FALSE(FirstRule("q(X, Z) <- r(X).").IsRangeRestricted());
  // Z grounded through the eq chain: Z = Y + 1, Y from r.
  EXPECT_TRUE(
      FirstRule("q(Z) <- r(Y), Z = Y + 1.").IsRangeRestricted());
  // Chain of two equalities.
  EXPECT_TRUE(
      FirstRule("q(W) <- r(Y), Z = Y + 1, W = Z * 2.").IsRangeRestricted());
  // Negated literals ground nothing.
  EXPECT_FALSE(FirstRule("q(X) <- not r(X).").IsRangeRestricted());
  // Comparison grounds nothing either.
  EXPECT_FALSE(FirstRule("q(X) <- r(Y), X > Y.").IsRangeRestricted());
}

TEST(ProgramTest, BaseAndDerivedPredicates) {
  Program p = P(R"(
    a(X) <- b(X), c(X, Y).
    c(X, Y) <- d(X), e(Y).
  )");
  auto derived = p.DerivedPredicates();
  ASSERT_EQ(derived.size(), 2u);
  EXPECT_EQ(derived[0].ToString(), "a/1");
  EXPECT_EQ(derived[1].ToString(), "c/2");
  auto base = p.BasePredicates();
  ASSERT_EQ(base.size(), 3u);  // b, d, e
  EXPECT_EQ(base[0].ToString(), "b/1");
}

TEST(ProgramTest, RulesForLookup) {
  Program p = P(R"(
    a(X) <- b(X).
    a(X) <- c(X).
    d(X) <- a(X).
  )");
  EXPECT_EQ(p.RulesFor({"a", 1}).size(), 2u);
  EXPECT_EQ(p.RulesFor({"d", 1}).size(), 1u);
  EXPECT_TRUE(p.RulesFor({"nope", 1}).empty());
}

TEST(ProgramTest, ToStringRoundTripsThroughParser) {
  Program p = P(R"(
    f(1, a).
    q(X, Y) <- r(X, Z), s(Z, Y), X != Y.
    q(1, Y)?
  )");
  auto reparsed = ParseProgram(p.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << p.ToString();
  EXPECT_EQ(reparsed->rules().size(), p.rules().size());
  EXPECT_EQ(reparsed->facts().size(), p.facts().size());
  EXPECT_EQ(reparsed->queries().size(), p.queries().size());
}

TEST(ProgramTest, ArithmeticPrintsInfixAndReparses) {
  Program p = P("q(Z) <- r(X), Z = (X + 1) * 2.");
  std::string text = p.rules()[0].ToString();
  EXPECT_EQ(text, "q(Z) <- r(X), Z = (X + 1) * 2.");
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->rules()[0].ToString(), text);
}

TEST(ProgramTest, ValidateCatchesBuiltinHead) {
  // Constructed directly (the parser already rejects this shape).
  Program p;
  p.AddRule(Rule(Literal::MakeBuiltin(BuiltinKind::kLt, Term::MakeInt(1),
                                      Term::MakeInt(2)),
                 {}));
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProgramTest, ValidateCatchesNegatedHead) {
  Program p;
  p.AddRule(Rule(Literal::MakeNegated("q", {Term::MakeVariable("X")}),
                 {Literal::Make("r", {Term::MakeVariable("X")})}));
  EXPECT_FALSE(p.Validate().ok());
}

TEST(QueryFormTest, ToStringAppendsQuestionMark) {
  QueryForm q{Literal::Make("p", {Term::MakeInt(1)})};
  EXPECT_EQ(q.ToString(), "p(1)?");
}

}  // namespace
}  // namespace ldl
