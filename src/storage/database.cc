#include "storage/database.h"

#include <algorithm>
#include <sstream>

#include "base/strings.h"

namespace ldl {

Relation* Database::GetOrCreate(const PredicateId& pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_
             .emplace(pred,
                      std::make_unique<Relation>(pred.name, pred.arity))
             .first;
    if (accountant_ != nullptr) it->second->set_accountant(accountant_);
  }
  return it->second.get();
}

void Database::set_accountant(ResourceAccountant* accountant) {
  accountant_ = accountant;
  for (auto& [_, rel] : relations_) rel->set_accountant(accountant);
}

Relation* Database::Find(const PredicateId& pred) {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Database::Find(const PredicateId& pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status Database::AddFact(const Literal& fact) {
  if (fact.IsBuiltin() || fact.negated()) {
    return Status::InvalidArgument(
        StrCat("not a storable fact: ", fact.ToString()));
  }
  Tuple t;
  t.reserve(fact.args().size());
  for (const Term& a : fact.args()) {
    if (!a.IsGround()) {
      return Status::InvalidArgument(
          StrCat("non-ground fact: ", fact.ToString()));
    }
    t.push_back(a);
  }
  GetOrCreate(fact.predicate())->Insert(std::move(t));
  return Status::OK();
}

std::vector<PredicateId> Database::Predicates() const {
  std::vector<PredicateId> out;
  out.reserve(relations_.size());
  for (const auto& [pred, _] : relations_) out.push_back(pred);
  std::sort(out.begin(), out.end());
  return out;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [_, rel] : relations_) n += rel->size();
  return n;
}

std::string Database::ToString() const {
  std::ostringstream os;
  for (const PredicateId& pred : Predicates()) {
    os << Find(pred)->ToString() << "\n";
  }
  return os.str();
}

}  // namespace ldl
