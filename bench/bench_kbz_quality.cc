// Experiment E1 — the [Vil 87] study quoted in the paper's section 7.1:
//
//   "The results showed that the quadratic algorithm chooses the optimal
//    permutation in most cases and in more than 90% of the cases, it
//    produces no worse than twice/thrice the optimal."
//
// We regenerate the study: random conjunctive queries (acyclic and cyclic
// query graphs) over random database states; the KBZ quadratic strategy's
// plan cost is compared against the exhaustive optimum under the real cost
// model. The table reports the fraction optimal / within 2x / within 3x,
// the worst ratio observed, and the average number of cost evaluations.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "optimizer/join_order.h"
#include "testing/query_gen.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Pct;
using bench::Table;
using testing::MakeRandomConjunct;
using testing::QueryShape;

struct QualityRow {
  size_t optimal = 0;
  size_t within2 = 0;
  size_t within3 = 0;
  size_t total = 0;
  double worst_ratio = 1.0;
  double evals_kbz = 0;
  double evals_exhaustive = 0;
};

QualityRow Measure(QueryShape shape, size_t n, size_t trials) {
  StrategyOptions options;
  CostModel model;
  // DP is exact (= exhaustive optimum; verified in join_order_test) and
  // keeps the n = 10 rows tractable.
  auto exhaustive = MakeStrategy(SearchStrategy::kDynamicProgramming, options);
  auto kbz = MakeStrategy(SearchStrategy::kKbz, options);
  QualityRow row;
  for (size_t trial = 0; trial < trials; ++trial) {
    Rng rng(trial * 1099511628211ULL + n * 40503 +
            static_cast<uint64_t>(shape));
    auto q = MakeRandomConjunct(shape, n, &rng);
    BoundVars none;
    OrderResult best = exhaustive->FindOrder(q.items, none, model);
    OrderResult heur = kbz->FindOrder(q.items, none, model);
    if (!best.safe || !heur.safe) continue;
    double ratio = heur.cost / best.cost;
    row.total++;
    if (ratio <= 1.0001) row.optimal++;
    if (ratio <= 2.0) row.within2++;
    if (ratio <= 3.0) row.within3++;
    row.worst_ratio = std::max(row.worst_ratio, ratio);
    row.evals_kbz += static_cast<double>(heur.cost_evaluations);
    row.evals_exhaustive += static_cast<double>(best.cost_evaluations);
  }
  if (row.total > 0) {
    row.evals_kbz /= static_cast<double>(row.total);
    row.evals_exhaustive /= static_cast<double>(row.total);
  }
  return row;
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E1", "KBZ quadratic strategy vs exhaustive optimum "
                      "([Vil 87] reproduction, 60 random queries per row)");
  Table table({"shape", "n", "optimal", "<=2x opt", "<=3x opt", "worst",
               "evals kbz", "evals dp"});
  const size_t trials = 60;
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                           QueryShape::kCycle, QueryShape::kRandom}) {
    for (size_t n : {4, 6, 8, 10}) {
      QualityRow row = Measure(shape, n, trials);
      table.AddRow({testing::QueryShapeToString(shape), std::to_string(n),
                    Pct(row.optimal, row.total), Pct(row.within2, row.total),
                    Pct(row.within3, row.total), Fmt(row.worst_ratio, "%.2f"),
                    Fmt(row.evals_kbz, "%.0f"),
                    Fmt(row.evals_exhaustive, "%.0f")});
    }
  }
  table.Print();
  std::printf(
      "Paper's bar: optimal in most cases; >=90%% within 2-3x of optimal.\n\n");
}

void BM_KbzOrder(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42 + n);
  auto q = MakeRandomConjunct(QueryShape::kRandom, n, &rng);
  StrategyOptions options;
  CostModel model;
  auto kbz = MakeStrategy(SearchStrategy::kKbz, options);
  BoundVars none;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kbz->FindOrder(q.items, none, model));
  }
}
BENCHMARK(BM_KbzOrder)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("kbz_quality");
  return 0;
}
