#include <gtest/gtest.h>

#include <set>

#include "base/hash.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"

namespace ldl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  Status st = Status::Unsafe("rule r is not computable");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsafe);
  EXPECT_EQ(st.ToString(), "Unsafe: rule r is not computable");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kUnsafe, StatusCode::kUnsupported, StatusCode::kInternal,
        StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Chain(int x) {
  LDL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  LDL_ASSIGN_OR_RETURN(int w, ParsePositive(v - 1));
  return v + w;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Chain(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_FALSE(Chain(1).ok());   // inner call fails
  EXPECT_FALSE(Chain(-1).ok());  // outer call fails
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ", "), "x, y, z");
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ","), "");
  std::vector<int> nums{1, 2, 3};
  EXPECT_EQ(StrJoin(nums, "+", [](int v) { return std::to_string(v); }),
            "1+2+3");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("\n \t"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, GoldenSequenceIsPinned) {
  // Golden splitmix64 outputs. Seed-addressed artifacts (bench workloads,
  // difftest repro files) replay through these exact values; a failure
  // here means the recurrence changed and every recorded seed is invalid
  // (see the determinism guarantee in base/rng.h).
  constexpr uint64_t kSeed42[] = {
      0xbdd732262feb6e95ULL, 0x28efe333b266f103ULL, 0x47526757130f9f52ULL,
      0x581ce1ff0e4ae394ULL, 0x09bc585a244823f2ULL,
  };
  Rng rng(42);
  for (uint64_t want : kSeed42) EXPECT_EQ(rng.Next(), want);
  // splitmix64(1) from the reference implementation.
  Rng one(1);
  EXPECT_EQ(one.Next(), 0x910a2dec89025cc1ULL);
  // Derived draws are pinned too (Uniform is Next() % bound).
  Rng u(42);
  EXPECT_EQ(u.Uniform(100), 13u);
  EXPECT_EQ(u.Uniform(100), 91u);
  EXPECT_EQ(u.Uniform(100), 58u);
}

TEST(RngTest, SeedZeroRemapsToIncrement) {
  Rng zero(0);
  Rng inc(0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(zero.Next(), inc.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(HashTest, CombineChangesWithOrder) {
  size_t a = 0, b = 0;
  HashValue(&a, 1);
  HashValue(&a, 2);
  HashValue(&b, 2);
  HashValue(&b, 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ldl
