#include "optimizer/project_pushdown.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "engine/query_eval.h"
#include "ldl/ldl.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

std::vector<Tuple> Sorted(const Relation& r) {
  std::vector<Tuple> out = r.tuples();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ProjectPushdownTest, DropsDeadRecursiveArgument) {
  // reachable(X) only cares about anc's first argument; the second is dead
  // through the whole recursion.
  Program p = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
    reachable(X) <- anc(X, Y).
  )");
  auto projected = PushProjections(p, L("reachable(X)"));
  ASSERT_TRUE(projected.ok()) << projected.status();
  EXPECT_EQ(projected->positions_dropped, 1u);
  ASSERT_EQ(projected->kept_positions.count({"anc", 2}), 1u);
  EXPECT_EQ(projected->kept_positions.at({"anc", 2}),
            (std::vector<size_t>{0}));
  // The rewritten program uses anc.pp/1.
  bool uses_reduced = false;
  for (const Rule& rule : projected->rewritten.rules()) {
    if (rule.head().predicate().ToString() == "anc.pp/1") uses_reduced = true;
  }
  EXPECT_TRUE(uses_reduced);
}

TEST(ProjectPushdownTest, KeepsJoinVariables) {
  Program p = P(R"(
    a(X, Y) <- r(X, Y).
    q(X) <- a(X, Y), s(Y).
  )");
  auto projected = PushProjections(p, L("q(X)"));
  ASSERT_TRUE(projected.ok());
  // Y is a join variable with s: both positions of a stay.
  EXPECT_EQ(projected->positions_dropped, 0u);
}

TEST(ProjectPushdownTest, KeepsConstantsAndPatterns) {
  Program p = P(R"(
    a(X, Y) <- r(X, Y).
    q(X) <- a(X, 7).
    w(X) <- a(X, f(Z)).
  )");
  auto q_result = PushProjections(p, L("q(X)"));
  ASSERT_TRUE(q_result.ok());
  // The constant 7 selects on a's second position: must stay.
  EXPECT_EQ(q_result->kept_positions.count({"a", 2}), 0u);
}

TEST(ProjectPushdownTest, KeepsBuiltinAndNegationVariables) {
  Program p = P(R"(
    a(X, Y) <- r(X, Y).
    q(X) <- a(X, Y), Y > 3.
    w(X) <- a(X, Y), not s(Y).
  )");
  for (const char* goal : {"q(X)", "w(X)"}) {
    auto projected = PushProjections(p, L(goal));
    ASSERT_TRUE(projected.ok());
    EXPECT_EQ(projected->kept_positions.count({"a", 2}), 0u) << goal;
  }
}

TEST(ProjectPushdownTest, QueryPredicateKeepsAllPositions) {
  Program p = P("a(X, Y) <- r(X, Y).");
  auto projected = PushProjections(p, L("a(X, Y)"));
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->positions_dropped, 0u);
  EXPECT_EQ(projected->rewritten.rules()[0].head().predicate().ToString(),
            "a/2");
}

TEST(ProjectPushdownTest, CascadesThroughLayers) {
  // The dead position of `top` makes `mid`'s second position dead, which
  // makes `bot`'s second position dead.
  Program p = P(R"(
    bot(X, Y) <- r(X, Y).
    mid(X, Y) <- bot(X, Y).
    top(X) <- mid(X, Y).
  )");
  auto projected = PushProjections(p, L("top(X)"));
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->positions_dropped, 2u);
  EXPECT_EQ(projected->kept_positions.at({"mid", 2}),
            (std::vector<size_t>{0}));
  EXPECT_EQ(projected->kept_positions.at({"bot", 2}),
            (std::vector<size_t>{0}));
}

TEST(ProjectPushdownTest, AnswersUnchangedOnRealData) {
  Program p = P(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
    has_ancestor(X) <- anc(X, Y).
  )");
  Database db;
  testing::MakeTreeParentData(3, 5, &db);
  Literal goal = L("has_ancestor(X)");

  auto projected = PushProjections(p, goal);
  ASSERT_TRUE(projected.ok());
  ASSERT_GT(projected->positions_dropped, 0u);

  auto original =
      EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, {});
  auto reduced = EvaluateQuery(projected->rewritten, &db, goal,
                               RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(original.ok() && reduced.ok());
  EXPECT_EQ(Sorted(original->answers), Sorted(reduced->answers));
  // And it saves work: the reduced anc.pp carries half the columns and
  // far fewer distinct tuples.
  EXPECT_LT(reduced->stats.counters.derivations,
            original->stats.counters.derivations);
}

TEST(ProjectPushdownTest, FacadeUsesItTransparently) {
  LdlSystem sys;  // push_projections defaults on
  ASSERT_TRUE(sys.LoadProgram(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
    has_ancestor(X) <- anc(X, Y).
  )")
                  .ok());
  testing::MakeTreeParentData(2, 4, sys.database());
  sys.RefreshStatistics();
  auto answer = sys.Query("has_ancestor(X)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  // Every non-root node has an ancestor: 2^1+...+2^4 = 30.
  EXPECT_EQ(answer->answers.size(), 30u);

  OptimizerOptions no_pp;
  no_pp.push_projections = false;
  LdlSystem sys2(no_pp);
  ASSERT_TRUE(sys2.LoadProgram(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
    has_ancestor(X) <- anc(X, Y).
  )")
                  .ok());
  testing::MakeTreeParentData(2, 4, sys2.database());
  sys2.RefreshStatistics();
  auto answer2 = sys2.Query("has_ancestor(X)");
  ASSERT_TRUE(answer2.ok());
  EXPECT_EQ(Sorted(answer->answers), Sorted(answer2->answers));
  EXPECT_LE(answer->exec_stats.counters.derivations,
            answer2->exec_stats.counters.derivations);
}

TEST(ProjectPushdownTest, ZeroArityReduction) {
  // Pure existence check: all of a's positions are dead.
  Program p = P(R"(
    a(X, Y) <- r(X, Y).
    nonempty <- a(X, Y).
  )");
  auto projected = PushProjections(p, L("nonempty"));
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->positions_dropped, 2u);
  EXPECT_EQ(projected->kept_positions.at({"a", 2}), (std::vector<size_t>{}));
  // Execute: a.pp/0 holds the single empty tuple iff r is nonempty.
  Database db;
  (void)db.AddFact(L("r(1, 2)"));
  auto result = EvaluateQuery(projected->rewritten, &db, L("nonempty"),
                              RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 1u);
}

}  // namespace
}  // namespace ldl
