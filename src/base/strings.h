#ifndef LDLOPT_BASE_STRINGS_H_
#define LDLOPT_BASE_STRINGS_H_

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ldl {
namespace strings_internal {

// Fast single-argument append. The non-template overloads win resolution
// for the common pieces (string-likes, single characters); the template
// formats integers via to_string and floating point via %.6g (the same
// digits default-formatted ostream insertion produces), and falls back to
// an ostringstream only for types that merely provide operator<<.
inline void AppendPiece(std::string* out, const std::string& v) {
  out->append(v);
}
inline void AppendPiece(std::string* out, std::string_view v) {
  out->append(v);
}
inline void AppendPiece(std::string* out, const char* v) { out->append(v); }
inline void AppendPiece(std::string* out, char v) { out->push_back(v); }
inline void AppendPiece(std::string* out, signed char v) {
  out->push_back(static_cast<char>(v));
}
inline void AppendPiece(std::string* out, unsigned char v) {
  out->push_back(static_cast<char>(v));
}

template <typename T>
void AppendPiece(std::string* out, const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    out->push_back(v ? '1' : '0');
  } else if constexpr (std::is_integral_v<T>) {
    out->append(std::to_string(v));
  } else if constexpr (std::is_floating_point_v<T>) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", static_cast<double>(v));
    out->append(buf);
  } else {
    std::ostringstream os;
    os << v;
    out->append(os.str());
  }
}

}  // namespace strings_internal

/// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::string out;
  (strings_internal::AppendPiece(&out, args), ...);
  return out;
}

/// Appends the string representations of all arguments to `*dest`.
template <typename... Args>
void StrAppend(std::string* dest, const Args&... args) {
  (strings_internal::AppendPiece(dest, args), ...);
}

/// Joins `parts` with `sep`, applying `fmt` to each element.
template <typename Container, typename Formatter>
std::string StrJoin(const Container& parts, std::string_view sep,
                    Formatter fmt) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    os << fmt(p);
  }
  return os.str();
}

/// Joins string-like `parts` with `sep`.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  return StrJoin(parts, sep, [](const auto& s) { return s; });
}

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Escapes `text` for inclusion inside a double-quoted JSON string
/// (quotes, backslashes, control characters). Does not add the quotes.
std::string JsonEscape(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

}  // namespace ldl

#endif  // LDLOPT_BASE_STRINGS_H_
