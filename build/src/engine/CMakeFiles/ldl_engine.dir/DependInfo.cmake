
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/builtins.cc" "src/engine/CMakeFiles/ldl_engine.dir/builtins.cc.o" "gcc" "src/engine/CMakeFiles/ldl_engine.dir/builtins.cc.o.d"
  "/root/repo/src/engine/counting.cc" "src/engine/CMakeFiles/ldl_engine.dir/counting.cc.o" "gcc" "src/engine/CMakeFiles/ldl_engine.dir/counting.cc.o.d"
  "/root/repo/src/engine/fixpoint.cc" "src/engine/CMakeFiles/ldl_engine.dir/fixpoint.cc.o" "gcc" "src/engine/CMakeFiles/ldl_engine.dir/fixpoint.cc.o.d"
  "/root/repo/src/engine/magic.cc" "src/engine/CMakeFiles/ldl_engine.dir/magic.cc.o" "gcc" "src/engine/CMakeFiles/ldl_engine.dir/magic.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/engine/CMakeFiles/ldl_engine.dir/operators.cc.o" "gcc" "src/engine/CMakeFiles/ldl_engine.dir/operators.cc.o.d"
  "/root/repo/src/engine/query_eval.cc" "src/engine/CMakeFiles/ldl_engine.dir/query_eval.cc.o" "gcc" "src/engine/CMakeFiles/ldl_engine.dir/query_eval.cc.o.d"
  "/root/repo/src/engine/rule_eval.cc" "src/engine/CMakeFiles/ldl_engine.dir/rule_eval.cc.o" "gcc" "src/engine/CMakeFiles/ldl_engine.dir/rule_eval.cc.o.d"
  "/root/repo/src/engine/unify.cc" "src/engine/CMakeFiles/ldl_engine.dir/unify.cc.o" "gcc" "src/engine/CMakeFiles/ldl_engine.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ldl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ldl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/ldl_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ldl_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
