#include "obs/process_metrics.h"

#include <cstdio>
#include <cstring>
#include <ctime>

#include "base/strings.h"

namespace ldl {

namespace {

std::string CompilerVersion() {
#if defined(__clang__)
  return StrCat("clang ", __clang_major__, ".", __clang_minor__, ".",
                __clang_patchlevel__);
#elif defined(__GNUC__)
  return StrCat("gcc ", __GNUC__, ".", __GNUC_MINOR__, ".",
                __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

BuildInfo MakeBuildInfo() {
  BuildInfo info;
  info.compiler = CompilerVersion();
  info.standard = StrCat("c++", static_cast<long>(__cplusplus / 100 % 10000));
#ifdef LDLOPT_BUILD_TYPE
  info.build_type = LDLOPT_BUILD_TYPE;
#else
  info.build_type = "unknown";
#endif
#ifdef LDLOPT_GIT_DESCRIBE
  info.git = LDLOPT_GIT_DESCRIBE;
#else
  info.git = "unknown";
#endif
#ifdef LDLOPT_SANITIZE_TAG
  info.sanitizer = LDLOPT_SANITIZE_TAG;
#endif
  if (info.build_type.empty()) info.build_type = "unknown";
  if (info.git.empty()) info.git = "unknown";
  return info;
}

}  // namespace

const BuildInfo& CurrentBuildInfo() {
  static const BuildInfo info = MakeBuildInfo();
  return info;
}

uint64_t ReadPeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // "VmHWM:    123456 kB" — peak resident set size.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + 6, "%llu", &v) == 1) kib = v;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

ProcessMetricsSource::ProcessMetricsSource(MetricsRegistry* registry)
    : registry_(registry), start_(std::chrono::steady_clock::now()) {
  if (registry_ != nullptr) {
    registry_->gauge("process.start_unix_seconds")
        ->Set(static_cast<double>(std::time(nullptr)));
  }
  Refresh();
}

double ProcessMetricsSource::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void ProcessMetricsSource::Refresh() {
  if (registry_ == nullptr) return;
  registry_->gauge("process.uptime_seconds")->Set(uptime_seconds());
  registry_->gauge("process.peak_rss_bytes")
      ->Set(static_cast<double>(ReadPeakRssBytes()));
}

}  // namespace ldl
