// Tests for the metrics time-series sampler (src/obs/timeseries.h): ring
// overflow/wraparound semantics, the series a sampling pass produces from a
// live registry and accountant, the background thread's lifecycle, and
// sampling concurrent with lock-free instrument updates (the interleaving
// the TSan CI job checks).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/timeseries.h"

namespace ldl {
namespace {

TEST(TimeSeriesRingTest, FillsToCapacityWithoutWrap) {
  TimeSeriesRing ring(4);
  ring.Push(0.0, 10);
  ring.Push(1.0, 11);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.total_pushed(), 2u);
  const auto points = ring.Snapshot();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t_seconds, 0.0);
  EXPECT_EQ(points[0].value, 10);
  EXPECT_EQ(points[1].value, 11);
}

TEST(TimeSeriesRingTest, OverflowDropsOldestKeepsOrder) {
  TimeSeriesRing ring(3);
  for (int i = 0; i < 7; ++i) {
    ring.Push(static_cast<double>(i), 100.0 + i);
  }
  EXPECT_EQ(ring.size(), 3u);          // saturated at capacity
  EXPECT_EQ(ring.total_pushed(), 7u);  // overflow stays observable
  const auto points = ring.Snapshot();
  ASSERT_EQ(points.size(), 3u);
  // The three newest survive, oldest-first.
  EXPECT_EQ(points[0].t_seconds, 4.0);
  EXPECT_EQ(points[1].t_seconds, 5.0);
  EXPECT_EQ(points[2].t_seconds, 6.0);
  EXPECT_EQ(points[2].value, 106.0);
}

TEST(TimeSeriesRingTest, CapacityZeroIsClampedToOne) {
  TimeSeriesRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Push(0.0, 1);
  ring.Push(1.0, 2);
  const auto points = ring.Snapshot();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].value, 2);
}

TEST(TimeSeriesSamplerTest, SampleOnceCapturesRegistryAndAccountant) {
  MetricsRegistry metrics;
  metrics.counter("engine.tuples_examined")->Increment(7);
  metrics.gauge("optimizer.memo.size")->Set(2.5);
  metrics.histogram("fixpoint.delta")->Record(4);
  ResourceAccountant accountant;
  accountant.AddBytes(100);
  accountant.AddTuplesExamined(3);

  TimeSeriesOptions options;
  options.metrics = &metrics;
  options.accountant = &accountant;
  TimeSeriesSampler sampler(options);
  sampler.SampleOnce();
  sampler.SampleOnce();

  EXPECT_EQ(sampler.samples_taken(), 2u);
  const auto series = sampler.Snapshot();
  ASSERT_EQ(series.count("engine.tuples_examined"), 1u);
  EXPECT_EQ(series.at("engine.tuples_examined").size(), 2u);
  EXPECT_EQ(series.at("engine.tuples_examined")[0].value, 7.0);
  EXPECT_EQ(series.at("optimizer.memo.size")[0].value, 2.5);
  EXPECT_EQ(series.at("fixpoint.delta.count")[0].value, 1.0);
  ASSERT_EQ(series.count("fixpoint.delta.p50"), 1u);
  ASSERT_EQ(series.count("fixpoint.delta.p99"), 1u);
  EXPECT_EQ(series.at("resource.current_bytes")[0].value, 100.0);
  EXPECT_EQ(series.at("resource.tuples_examined")[0].value, 3.0);
}

TEST(TimeSeriesSamplerTest, SeriesRespectCapacity) {
  MetricsRegistry metrics;
  metrics.counter("c")->Increment();
  TimeSeriesOptions options;
  options.metrics = &metrics;
  options.capacity = 3;
  TimeSeriesSampler sampler(options);
  for (int i = 0; i < 10; ++i) sampler.SampleOnce();
  const auto series = sampler.Snapshot();
  EXPECT_EQ(series.at("c").size(), 3u);
  EXPECT_EQ(sampler.samples_taken(), 10u);
}

TEST(TimeSeriesSamplerTest, BackgroundThreadSamplesAndStops) {
  MetricsRegistry metrics;
  metrics.counter("c")->Increment();
  TimeSeriesOptions options;
  options.metrics = &metrics;
  options.period = std::chrono::milliseconds(5);
  TimeSeriesSampler sampler(options);
  EXPECT_FALSE(sampler.running());
  sampler.Start();
  sampler.Start();  // idempotent
  EXPECT_TRUE(sampler.running());
  // The loop samples immediately, then every 5 ms; two samples arrive well
  // within the deadline even on a loaded machine.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sampler.samples_taken() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sampler.samples_taken(), 2u);
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_FALSE(sampler.running());
  const uint64_t after_stop = sampler.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sampler.samples_taken(), after_stop);
}

// The interleaving that matters in production: query threads hammer the
// lock-free instruments while the sampler thread snapshots them. Run under
// TSan in CI; also asserts the sampler sees monotone counter values.
TEST(TimeSeriesSamplerTest, SamplesConcurrentWithInstrumentUpdates) {
  MetricsRegistry metrics;
  Counter* counter = metrics.counter("engine.tuples_examined");
  Histogram* hist = metrics.histogram("fixpoint.delta");
  TimeSeriesOptions options;
  options.metrics = &metrics;
  options.period = std::chrono::milliseconds(1);
  TimeSeriesSampler sampler(options);
  sampler.Start();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      counter->Increment();
      hist->Record(static_cast<double>(i % 100));
    }
    done.store(true);
  });
  while (!done.load()) sampler.SampleOnce();
  writer.join();
  sampler.SampleOnce();
  sampler.Stop();

  const auto series = sampler.Snapshot();
  const auto& points = series.at("engine.tuples_examined");
  ASSERT_FALSE(points.empty());
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].value, points[i].value)
        << "counter series must be monotone";
  }
  EXPECT_EQ(points.back().value, 20000.0);
}

TEST(TimeSeriesSamplerTest, WriteJsonShape) {
  MetricsRegistry metrics;
  metrics.counter("c")->Increment(3);
  TimeSeriesOptions options;
  options.metrics = &metrics;
  options.period = std::chrono::milliseconds(250);
  TimeSeriesSampler sampler(options);
  sampler.SampleOnce();
  std::ostringstream os;
  sampler.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"period_ms\":250"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":1"), std::string::npos);
  EXPECT_NE(json.find("\"c\":{\"t\":["), std::string::npos);
  EXPECT_NE(json.find("\"v\":[3]"), std::string::npos);
}

}  // namespace
}  // namespace ldl
