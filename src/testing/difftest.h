#ifndef LDLOPT_TESTING_DIFFTEST_H_
#define LDLOPT_TESTING_DIFFTEST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "optimizer/join_order.h"
#include "testing/program_gen.h"

namespace ldl {
namespace testing {

/// What goes wrong when a fault is injected (harness self-tests): the
/// canonical "flipped join predicate" — the first binary literal of the
/// first multi-literal rule gets its arguments swapped, which changes the
/// program's meaning on asymmetric data while keeping it safe and
/// well-formed.
enum class Fault {
  kNone,
  kFlipJoin,
};

/// Returns `prog` with the fault applied (kNone returns it unchanged).
GeneratedProgram ApplyFault(const GeneratedProgram& prog, Fault fault);

/// The configuration matrix one generated program is evaluated under. The
/// reference is always direct semi-naive evaluation; every other
/// configuration must produce the identical answer set:
///  - direct engine evaluation per recursion method (naive, magic,
///    counting-with-fallback);
///  - the optimized path (LdlSystem::Query) per join-order strategy,
///    including the lexicographic no-optimizer baseline, plus an
///    exhaustive run with projection pushdown disabled (canonical vs
///    rewritten program);
///  - the §4 processing-tree interpreter with materialization considered
///    and with pipeline-only plans (MP ablation).
/// Metamorphic checks ride on top: growing the EDB never shrinks a
/// positive query's answers, and a bound query equals the filtered free
/// query.
struct DiffTestOptions {
  ProgramGenOptions gen;
  bool run_naive = true;
  bool run_magic = true;
  bool run_counting = true;
  std::vector<SearchStrategy> strategies = {
      SearchStrategy::kExhaustive, SearchStrategy::kDynamicProgramming,
      SearchStrategy::kKbz, SearchStrategy::kAnnealing,
      SearchStrategy::kLexicographic};
  bool run_tree_interpreter = true;
  bool run_metamorphic = true;
  /// Adds an "opt:analysis" configuration: exhaustive search with the
  /// semantic pre-optimization passes on (dead-rule elimination +
  /// adornment-reachability pruning) and plan verification. Proves the
  /// analyses answer-preserving over the generated corpus.
  bool run_analysis_pruned = true;
  /// Adds an "opt:feedback" configuration: a warm pass under default
  /// options populates a feedback statistics catalog (goal answer counts +
  /// derived fixpoint sizes), then the query re-plans in feedback mode —
  /// the cost model consulting the catalog's blended
  /// measured-over-estimated overlay — with plan verification on. The
  /// overlay may change the chosen plan; the answers must not change
  /// (obs/feedback.h).
  bool run_feedback = true;
  /// Fault injected into a shadow configuration ("fault:..."): the shadow
  /// evaluates the mutated program and must be flagged as a mismatch —
  /// end-to-end proof the oracle can see and the shrinker can minimize.
  Fault fault = Fault::kNone;
  /// Parallel-engine axis: for each N here, re-run every enabled direct
  /// method ("par:N:eval:<method>") and every join-order strategy
  /// ("par:N:opt:<strategy>") with EngineOptions::num_threads = N, against
  /// the same sequential reference fingerprint. N = 1 pins that the
  /// parallel plumbing leaves the sequential path untouched; N > 1 pins
  /// that hash-partitioned rounds and the sharded merge barrier are answer-
  /// identical under real concurrency (run under TSan in CI for the data-
  /// race half of that claim). Empty = axis off.
  std::vector<size_t> thread_counts;
};

/// One configuration's outcome.
struct ConfigResult {
  std::string config;
  bool ok = false;           ///< evaluation succeeded
  size_t rows = 0;
  std::string fingerprint;   ///< AnswerFingerprint (engine/query_eval.h)
  bool agrees = false;       ///< matches the reference answer set
  std::string detail;        ///< error or mismatch sample
};

/// Outcome of the full matrix on one program.
struct DiffOutcome {
  /// The reference evaluation itself failed (generator defect, not an
  /// engine disagreement); no differential verdict possible.
  bool reference_failed = false;
  /// A non-reference configuration produced a different answer set.
  bool mismatch = false;
  /// A non-reference configuration failed to evaluate at all (the
  /// reference succeeded, so the program is valid — the config is wrong
  /// to reject it). Kept distinct from `mismatch` so the shrinker can
  /// tell "answers differ" apart from "evaluation errored": reductions
  /// routinely turn one into the other (e.g. dropping the last rule of
  /// the query predicate makes optimizer configs error with "unknown
  /// predicate"), and a shrink that swaps failure modes has lost the bug.
  bool config_error = false;
  bool metamorphic_violation = false;
  std::vector<ConfigResult> configs;
  /// Human-readable report of the first few disagreements.
  std::string detail;

  /// True when the program should be handed to the shrinker.
  bool failed() const {
    return mismatch || config_error || metamorphic_violation;
  }

  /// One tag per failing check: "neq:<config>" (answer sets differ),
  /// "err:<config>" (evaluation failed), "meta" (metamorphic violation).
  /// Shrink predicates compare these against the original failure so a
  /// reduction is only accepted while it reproduces (a subset of) the
  /// original failure modes, never a new one.
  std::vector<std::string> FailureSignatures() const;
};

/// Runs the full differential matrix over one generated program.
DiffOutcome RunDifferential(const GeneratedProgram& prog,
                            const DiffTestOptions& options);

/// Delta-debugging shrinker: greedily removes rules, EDB facts (ddmin-style
/// chunking), and body literals while `still_fails` keeps returning true.
/// `still_fails` must treat invalid/unevaluable reductions as "does not
/// fail" (RunDifferential does: reference_failed programs never count as
/// failures). Deterministic; bounded by `max_evaluations` predicate calls.
struct ShrinkStats {
  size_t evaluations = 0;
  size_t rules_removed = 0;
  size_t facts_removed = 0;
  size_t literals_removed = 0;
};

GeneratedProgram ShrinkFailure(
    const GeneratedProgram& failing,
    const std::function<bool(const GeneratedProgram&)>& still_fails,
    size_t max_evaluations = 2000, ShrinkStats* stats = nullptr);

/// Writes `prog` (with `detail` as a comment header) to
/// `<dir>/repro-seed<seed>-i<iter>.ldl`. Returns the path, or "" when the
/// file could not be written. The file is directly runnable through
/// ldl_profile / ldl_lint and re-loadable by the harness.
std::string WriteRepro(const std::string& dir, uint64_t seed, size_t iter,
                       const GeneratedProgram& prog,
                       const std::string& detail);

}  // namespace testing
}  // namespace ldl

#endif  // LDLOPT_TESTING_DIFFTEST_H_
