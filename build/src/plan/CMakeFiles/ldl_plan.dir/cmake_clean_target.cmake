file(REMOVE_RECURSE
  "libldl_plan.a"
)
