file(REMOVE_RECURSE
  "CMakeFiles/unify_builtins_test.dir/unify_builtins_test.cc.o"
  "CMakeFiles/unify_builtins_test.dir/unify_builtins_test.cc.o.d"
  "unify_builtins_test"
  "unify_builtins_test.pdb"
  "unify_builtins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_builtins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
