// A knowledge- and data-intensive application in the paper's sense: a
// corporate knowledge base mixing flat relations, complex terms
// (addresses as structured values), recursion (org chart, bill of
// materials), arithmetic, comparisons, and stratified negation.
//
// Build & run:  ./build/examples/corporate_kb

#include <cstdio>

#include "ldl/ldl.h"

namespace {

void Show(ldl::LdlSystem* sys, const char* query) {
  auto answer = sys->Query(query);
  std::printf("?- %s\n", query);
  if (!answer.ok()) {
    std::printf("   %s\n\n", answer.status().ToString().c_str());
    return;
  }
  for (const ldl::Tuple& t : answer->answers.tuples()) {
    std::printf("   %s\n", ldl::TupleToString(t).c_str());
  }
  std::printf("   [%zu answers, method %s, %zu tuples examined]\n\n",
              answer->answers.size(),
              ldl::RecursionMethodToString(answer->plan.top_method),
              answer->exec_stats.counters.tuples_examined);
}

}  // namespace

int main() {
  ldl::LdlSystem sys;
  ldl::Status st = sys.LoadProgram(R"(
    % ---- facts: employees with structured addresses ----
    employee(alice,  eng,   120, addr("main st", 12)).
    employee(bob,    eng,    95, addr("oak ave", 3)).
    employee(carol,  sales,  80, addr("main st", 40)).
    employee(dave,   sales,  70, addr("elm rd", 7)).
    employee(erin,   hr,     90, addr("main st", 12)).

    manages(alice, bob).
    manages(alice, carol).
    manages(carol, dave).
    manages(erin, alice).

    % ---- bill of materials ----
    part_of(wheel, bike).     part_of(frame, bike).
    part_of(spoke, wheel).    part_of(rim, wheel).
    part_of(tube, frame).

    % ---- rules ----
    % transitive reporting chain (recursive clique #1)
    reports_to(X, Y) <- manages(Y, X).
    reports_to(X, Y) <- manages(Z, X), reports_to(Z, Y).

    % transitive components (recursive clique #2)
    component(X, Y) <- part_of(X, Y).
    component(X, Y) <- part_of(X, Z), component(Z, Y).

    % arithmetic: salary after a 10 percent raise
    raised(E, S2) <- employee(E, D, S, A), S2 = S + S / 10.

    % comparison + join: engineers earning more than a colleague in sales
    outearns_sales(E) <- employee(E, eng, S1, A1),
                         employee(F, sales, S2, A2), S1 > S2.

    % complex-term matching: who lives on main st?
    on_main_st(E) <- employee(E, D, S, addr("main st", N)).

    % stratified negation: employees who manage nobody
    manager(X) <- manages(X, Y).
    individual_contributor(E) <- employee(E, D, S, A), not manager(E).

    % housemates: same structured address, different people
    housemates(E, F) <- employee(E, D1, S1, A), employee(F, D2, S2, A),
                        E != F.
  )");
  if (!st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Show(&sys, "reports_to(dave, Y)");          // bound recursion -> magic
  Show(&sys, "component(spoke, Y)");          // second clique
  Show(&sys, "raised(alice, S)");             // arithmetic
  Show(&sys, "outearns_sales(E)");            // comparison join
  Show(&sys, "on_main_st(E)");                // complex-term pattern
  Show(&sys, "individual_contributor(E)");    // negation
  Show(&sys, "housemates(E, F)");             // self-join on complex value

  // The optimizer's view of one of these:
  auto explain = sys.Explain("reports_to(dave, Y)");
  if (explain.ok()) {
    std::printf("--- plan for reports_to(dave, Y)? ---\n%s", explain->c_str());
  }
  return 0;
}
