#ifndef LDLOPT_OBS_QUERY_LOG_H_
#define LDLOPT_OBS_QUERY_LOG_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"

namespace ldl {

/// One structured record per executed query — the unit of the JSONL query
/// log. Everything offline analysis needs to reconstruct what the system
/// did and what it cost: identity (program, query text, adornment), the
/// optimizer's decision (method, plan fingerprint, statistics epoch), the
/// resource profile (bytes/tuples/rounds/checks), the outcome (typed), and
/// the wall-time breakdown.
///
/// The record is deliberately FLAT (scalar fields only) so the log can be
/// parsed back without a general JSON library; ToJson emits one line,
/// FromJson inverts it exactly (ToJson → FromJson → ToJson is identity).
struct QueryLogRecord {
  // --- identity ---
  std::string program;    ///< source .ldl path ("" when built in-process)
  std::string query;      ///< query goal text, e.g. "anc(john, X)?"
  std::string adornment;  ///< binding pattern of the goal, e.g. "bf"

  // --- plan decision ---
  std::string method;            ///< chosen top-level recursion method
  std::string plan_fingerprint;  ///< stable hash of all plan decisions
  uint64_t stats_epoch = 0;      ///< statistics generation the plan used
  bool prune = false;            ///< reachability pruning was enabled

  // --- outcome ---
  std::string outcome = "ok";        ///< "ok" | lowercased StatusCode name
  std::string error;                 ///< status message when outcome != ok
  std::string answer_fingerprint;    ///< order-independent answer hash
  uint64_t answers = 0;              ///< answer tuple count

  // --- limits in force (0 = unlimited) ---
  uint64_t budget_bytes = 0;
  double deadline_ms = 0;

  // --- resource profile ---
  uint64_t peak_bytes = 0;       ///< peak derived-storage bytes
  uint64_t tuples_examined = 0;
  uint64_t tuples_derived = 0;
  uint64_t fixpoint_rounds = 0;
  uint64_t rule_firings = 0;
  uint64_t cancel_checks = 0;    ///< cooperative check-points hit

  // --- wall-time breakdown (milliseconds) ---
  double optimize_ms = 0;
  double execute_ms = 0;
  double total_ms = 0;

  /// One JSON object on one line (no trailing newline). Keys are emitted
  /// in a fixed order, so equal records serialize identically.
  std::string ToJson() const;

  /// Parses a line produced by ToJson (a flat JSON object). Unknown keys
  /// are ignored — old readers keep working when fields are added.
  static Result<QueryLogRecord> FromJson(const std::string& line);

  bool operator==(const QueryLogRecord& other) const;
  bool operator!=(const QueryLogRecord& other) const {
    return !(*this == other);
  }
};

/// Append-only JSONL sink for QueryLogRecords. Thread-safe; each Append
/// writes and flushes one line, so a crash loses at most the in-flight
/// record. With no file open, records are kept in memory (tests, and the
/// embedded use where the host process owns persistence).
class QueryLog {
 public:
  QueryLog() = default;

  /// Opens `path` for appending (creating it if needed).
  Status Open(const std::string& path);

  bool is_open() const { return out_.is_open(); }

  /// Stamped into records whose `program` field is empty — callers that
  /// load one program and run many queries set this once.
  void set_default_program(std::string path) {
    default_program_ = std::move(path);
  }

  void Append(QueryLogRecord record);

  size_t size() const;

  /// In-memory copies of every record appended through this object (also
  /// kept when writing to a file; the log is an operational artifact, not
  /// a high-volume data plane).
  std::vector<QueryLogRecord> snapshot() const;

  /// Reads every record of a JSONL file written by this class.
  static Result<std::vector<QueryLogRecord>> ReadFile(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  std::string default_program_;
  std::vector<QueryLogRecord> records_;
};

}  // namespace ldl

#endif  // LDLOPT_OBS_QUERY_LOG_H_
