// ldl_workload — aggregate and diff JSONL query logs (ldl_profile
// --query-log / ldl_replay output).
//
// Usage: ldl_workload [options] log.jsonl [log2.jsonl]
//
// One log: prints the workload report — one row per query signature
// (program|query|adornment) with counts, plan fingerprints, latency
// p50/p95/max, tuples, and peak bytes, then the top-N records by tuples
// examined.
//
// Two logs: prints both reports, then a diff keyed by query signature:
//
//   PLAN-DRIFT          a plan fingerprint the baseline never produced
//   OUTCOME-CHANGE      the ok/error mix changed between runs
//   LATENCY-REGRESSION  p50 grew past --threshold (with the --min-ms floor)
//   ONLY-BEFORE/AFTER   signature present in only one log (informational)
//
//   --check          exit 1 when any gating finding exists (drift, outcome
//                    change, or latency regression); requires two logs.
//   --threshold PCT  latency regression threshold in percent (default 50).
//   --min-ms X       ignore latency comparisons below this floor
//                    (default 1 ms — micro-timings are noise).
//   --top N          records in the top-by-tuples section (default 5).
//
// Exit status: 0 clean, 1 unreadable log or gated finding under --check,
// 2 usage error.

#include <iostream>
#include <string>
#include <vector>

#include "obs/query_log.h"
#include "obs/workload.h"

namespace {

int Usage() {
  std::cerr << "usage: ldl_workload [--check] [--threshold PCT] "
               "[--min-ms X] [--top N] log.jsonl [log2.jsonl]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  size_t top_n = 5;
  ldl::WorkloadThresholds thresholds;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--threshold" && i + 1 < argc) {
      thresholds.latency_pct = std::stod(argv[++i]);
    } else if (arg == "--min-ms" && i + 1 < argc) {
      thresholds.min_ms = std::stod(argv[++i]);
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = std::stoul(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ldl_workload: unknown option " << arg << "\n";
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || files.size() > 2) return Usage();
  if (check && files.size() != 2) {
    std::cerr << "ldl_workload: --check needs two logs to compare\n";
    return 2;
  }

  std::vector<ldl::WorkloadReport> reports;
  for (const std::string& file : files) {
    auto records = ldl::QueryLog::ReadFile(file);
    if (!records.ok()) {
      std::cerr << "ldl_workload: " << file << ": "
                << records.status().ToString() << "\n";
      return 1;
    }
    reports.push_back(ldl::WorkloadReport::Build(*records));
  }

  if (files.size() == 1) {
    std::cout << reports[0].ToString(top_n);
    return 0;
  }

  std::cout << "--- " << files[0] << " ---\n" << reports[0].ToString(top_n)
            << "\n--- " << files[1] << " ---\n" << reports[1].ToString(top_n)
            << "\n--- diff (" << files[0] << " -> " << files[1] << ") ---\n";
  const ldl::WorkloadDiff diff =
      ldl::WorkloadDiff::Build(reports[0], reports[1], thresholds);
  std::cout << diff.ToString();
  if (check && diff.failed()) return 1;
  return 0;
}
