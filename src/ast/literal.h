#ifndef LDLOPT_AST_LITERAL_H_
#define LDLOPT_AST_LITERAL_H_

#include <ostream>
#include <string>
#include <vector>

#include "ast/term.h"
#include "base/hash.h"

namespace ldl {

/// Identifies a predicate by name and arity, e.g. sg/2. Base relations and
/// derived predicates share this namespace; a predicate is "base" iff the
/// database has a relation for it and no rule defines it.
struct PredicateId {
  std::string name;
  size_t arity = 0;

  bool operator==(const PredicateId& other) const {
    return arity == other.arity && name == other.name;
  }
  bool operator!=(const PredicateId& other) const { return !(*this == other); }
  bool operator<(const PredicateId& other) const {
    if (name != other.name) return name < other.name;
    return arity < other.arity;
  }

  /// "name/arity".
  std::string ToString() const;
};

struct PredicateIdHash {
  size_t operator()(const PredicateId& p) const {
    size_t seed = 0;
    HashValue(&seed, p.name);
    HashValue(&seed, p.arity);
    return seed;
  }
};

/// Evaluable (built-in) comparison predicates. Formally these denote
/// infinite relations (paper section 8): x = y+1 is the set of all pairs
/// satisfying it, which is why their execution must wait for bindings.
enum class BuiltinKind {
  kNone = 0,  ///< Ordinary (base or derived) predicate.
  kEq,        ///< =   (unification / arithmetic assignment)
  kNe,        ///< !=
  kLt,        ///< <
  kLe,        ///< <=
  kGt,        ///< >
  kGe,        ///< >=
};

/// Returns the surface syntax for a builtin ("=", "<", ...).
const char* BuiltinKindToString(BuiltinKind kind);

/// A literal occurring in a rule body (or as a rule head / query goal):
/// an optionally negated predicate applied to terms, or a builtin
/// comparison between two terms.
class Literal {
 public:
  Literal() = default;

  /// Ordinary positive literal p(t1, ..., tn).
  static Literal Make(std::string predicate, std::vector<Term> args);
  /// Negated literal: not p(t1, ..., tn). Only valid in rule bodies and only
  /// for stratified programs.
  static Literal MakeNegated(std::string predicate, std::vector<Term> args);
  /// Builtin comparison lhs <op> rhs.
  static Literal MakeBuiltin(BuiltinKind kind, Term lhs, Term rhs);

  const std::string& predicate_name() const { return predicate_; }
  PredicateId predicate() const { return {predicate_, args_.size()}; }
  const std::vector<Term>& args() const { return args_; }
  size_t arity() const { return args_.size(); }

  bool negated() const { return negated_; }
  BuiltinKind builtin() const { return builtin_; }
  bool IsBuiltin() const { return builtin_ != BuiltinKind::kNone; }

  /// Appends all variable names occurring in the literal's arguments.
  void CollectVariables(std::vector<std::string>* out) const;

  /// Returns a copy with the same predicate/builtin/negation but new args.
  Literal WithArgs(std::vector<Term> args) const;
  /// Returns a copy with a different predicate name (same args). Used by the
  /// adornment and magic-set rewrites to rename p into p.bf / magic.p.bf.
  Literal WithPredicateName(std::string name) const;

  bool operator==(const Literal& other) const;

  std::string ToString() const;

 private:
  std::string predicate_;
  std::vector<Term> args_;
  bool negated_ = false;
  BuiltinKind builtin_ = BuiltinKind::kNone;
};

std::ostream& operator<<(std::ostream& os, const Literal& literal);

}  // namespace ldl

#endif  // LDLOPT_AST_LITERAL_H_
