file(REMOVE_RECURSE
  "libldl_engine.a"
)
