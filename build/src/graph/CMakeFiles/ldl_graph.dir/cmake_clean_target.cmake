file(REMOVE_RECURSE
  "libldl_graph.a"
)
